"""Shared fixtures: small, fast workloads and scheduler configurations."""

from __future__ import annotations

import pytest

from repro.core import SchedulerConfig
from repro.core.specs import PipelineSpec, QuerySpec
from repro.workloads.mixes import QueryMix


def make_query(
    name: str = "q",
    work: float = 0.02,
    pipelines: int = 2,
    rate: float = 1.0e6,
    scale_factor: float = 1.0,
    finalize: float = 0.0,
) -> QuerySpec:
    """A synthetic query of ``work`` single-thread seconds split evenly."""
    per_pipeline = work / pipelines
    specs = tuple(
        PipelineSpec(
            name=f"{name}-p{i}",
            tuples=max(1, int(per_pipeline * rate)),
            tuples_per_second=rate,
            finalize_seconds=finalize,
        )
        for i in range(pipelines)
    )
    return QuerySpec(name=name, scale_factor=scale_factor, pipelines=specs)


@pytest.fixture
def short_query() -> QuerySpec:
    """A 10 ms query."""
    return make_query("short", work=0.010, pipelines=1, scale_factor=1.0)


@pytest.fixture
def long_query() -> QuerySpec:
    """A 200 ms query."""
    return make_query("long", work=0.200, pipelines=2, scale_factor=10.0)


@pytest.fixture
def small_config() -> SchedulerConfig:
    """4 workers, paper defaults otherwise."""
    return SchedulerConfig(n_workers=4)


@pytest.fixture
def tiny_mix() -> QueryMix:
    """A 3:1 short/long mix of synthetic queries."""
    return QueryMix(
        entries=(
            (make_query("short", work=0.010, pipelines=1, scale_factor=1.0), 0.75),
            (make_query("long", work=0.120, pipelines=3, scale_factor=10.0), 0.25),
        )
    )
