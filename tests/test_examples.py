"""Smoke checks for the example scripts.

Full example runs take tens of seconds each, so the unit suite only
verifies that every example compiles and exposes a ``main`` entry point;
the cheapest one is executed end-to-end.
"""

from __future__ import annotations

import importlib.util
import pathlib
import py_compile

import pytest

EXAMPLES_DIR = pathlib.Path(__file__).resolve().parent.parent / "examples"
EXAMPLE_FILES = sorted(EXAMPLES_DIR.glob("*.py"))


def _load(path: pathlib.Path):
    spec = importlib.util.spec_from_file_location(path.stem, path)
    module = importlib.util.module_from_spec(spec)
    spec.loader.exec_module(module)
    return module


class TestExamples:
    def test_examples_exist(self):
        names = {path.stem for path in EXAMPLE_FILES}
        assert {
            "quickstart",
            "scheduler_comparison",
            "self_tuning_demo",
            "real_engine_scheduling",
            "custom_priorities",
            "adaptive_morsels_trace",
            "multi_tenant",
            "online_server",
        } <= names

    @pytest.mark.parametrize("path", EXAMPLE_FILES, ids=lambda p: p.stem)
    def test_compiles(self, path):
        py_compile.compile(str(path), doraise=True)

    @pytest.mark.parametrize("path", EXAMPLE_FILES, ids=lambda p: p.stem)
    def test_has_main(self, path):
        module = _load(path)
        assert callable(getattr(module, "main", None)), path.stem

    def test_custom_priorities_runs(self, capsys):
        """The cheapest example executes end-to-end."""
        module = _load(EXAMPLES_DIR / "custom_priorities.py")
        module.main()
        out = capsys.readouterr().out
        assert "static-p0" in out
