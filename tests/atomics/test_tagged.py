"""Tests for tagged slot pointers."""

from repro.atomics import TaggedPointer


class TestTaggedPointer:
    def test_empty_initially(self):
        pointer = TaggedPointer()
        payload, valid = pointer.load()
        assert payload is None
        assert not valid

    def test_store_makes_valid(self):
        pointer = TaggedPointer()
        pointer.store("task-set")
        payload, valid = pointer.load()
        assert payload == "task-set"
        assert valid

    def test_tag_invalid_keeps_payload_readable(self):
        pointer = TaggedPointer()
        pointer.store("task-set")
        assert pointer.tag_invalid()
        payload, valid = pointer.load()
        assert payload == "task-set"  # optimistic readers still see it
        assert not valid

    def test_tag_invalid_exactly_once(self):
        """The tag transition elects exactly one finalization coordinator."""
        pointer = TaggedPointer()
        pointer.store("task-set")
        outcomes = [pointer.tag_invalid() for _ in range(5)]
        assert outcomes == [True, False, False, False, False]

    def test_tag_invalid_on_empty(self):
        assert not TaggedPointer().tag_invalid()

    def test_store_revalidates(self):
        pointer = TaggedPointer()
        pointer.store("a")
        pointer.tag_invalid()
        pointer.store("b")
        payload, valid = pointer.load()
        assert payload == "b"
        assert valid
        assert pointer.tag_invalid()  # coordinator election works again

    def test_clear(self):
        pointer = TaggedPointer()
        pointer.store("a")
        pointer.clear()
        payload, valid = pointer.load()
        assert payload is None
        assert not valid

    def test_store_none_is_invalid(self):
        pointer = TaggedPointer()
        pointer.store(None)
        assert not pointer.valid
