"""Tests for the finalization counter."""

from hypothesis import given
from hypothesis import strategies as st

from repro.atomics import AtomicCounter


class TestAtomicCounter:
    def test_fetch_add_returns_previous(self):
        counter = AtomicCounter(0)
        assert counter.fetch_add(3) == 0
        assert counter.fetch_add(-1) == 3
        assert counter.load() == 2

    def test_add_and_fetch_returns_new(self):
        counter = AtomicCounter(0)
        assert counter.add_and_fetch(2) == 2
        assert counter.add_and_fetch(-2) == 0

    def test_may_go_negative(self):
        """§2.3: decrements can land before the coordinator's increment."""
        counter = AtomicCounter(0)
        assert counter.add_and_fetch(-1) == -1
        assert counter.add_and_fetch(-1) == -2
        assert counter.add_and_fetch(3) == 1
        assert counter.add_and_fetch(-1) == 0

    def test_op_count(self):
        counter = AtomicCounter()
        counter.fetch_add(1)
        counter.add_and_fetch(1)
        assert counter.op_count == 2

    @given(st.lists(st.integers(min_value=-5, max_value=5), max_size=50))
    def test_exactly_one_zero_crossing_protocol(self, decrements):
        """Simulate the finalization protocol: the worker whose update
        brings the counter to exactly zero is unique, regardless of the
        interleaving of coordinator increment and worker decrements."""
        count = len(decrements)
        counter = AtomicCounter(0)
        zero_hits = 0
        # Workers decrement in arbitrary positions relative to the
        # coordinator's increment (inserted in the middle).
        half = count // 2
        for _ in range(half):
            if counter.add_and_fetch(-1) == 0:
                zero_hits += 1
        if counter.add_and_fetch(count) == 0:
            zero_hits += 1
        for _ in range(count - half):
            if counter.add_and_fetch(-1) == 0:
                zero_hits += 1
        assert counter.load() == 0
        assert zero_hits == 1
