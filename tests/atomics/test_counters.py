"""Tests for the finalization counter."""

import threading

from hypothesis import given
from hypothesis import strategies as st

from repro.atomics import AtomicCounter


class TestAtomicCounter:
    def test_fetch_add_returns_previous(self):
        counter = AtomicCounter(0)
        assert counter.fetch_add(3) == 0
        assert counter.fetch_add(-1) == 3
        assert counter.load() == 2

    def test_add_and_fetch_returns_new(self):
        counter = AtomicCounter(0)
        assert counter.add_and_fetch(2) == 2
        assert counter.add_and_fetch(-2) == 0

    def test_may_go_negative(self):
        """§2.3: decrements can land before the coordinator's increment."""
        counter = AtomicCounter(0)
        assert counter.add_and_fetch(-1) == -1
        assert counter.add_and_fetch(-1) == -2
        assert counter.add_and_fetch(3) == 1
        assert counter.add_and_fetch(-1) == 0

    def test_op_count(self):
        counter = AtomicCounter()
        counter.fetch_add(1)
        counter.add_and_fetch(1)
        assert counter.op_count == 2

    @given(st.lists(st.integers(min_value=-5, max_value=5), max_size=50))
    def test_exactly_one_zero_crossing_protocol(self, decrements):
        """Simulate the finalization protocol: the worker whose update
        brings the counter to exactly zero is unique, regardless of the
        interleaving of coordinator increment and worker decrements."""
        count = len(decrements)
        counter = AtomicCounter(0)
        zero_hits = 0
        # Workers decrement in arbitrary positions relative to the
        # coordinator's increment (inserted in the middle).
        half = count // 2
        for _ in range(half):
            if counter.add_and_fetch(-1) == 0:
                zero_hits += 1
        if counter.add_and_fetch(count) == 0:
            zero_hits += 1
        for _ in range(count - half):
            if counter.add_and_fetch(-1) == 0:
                zero_hits += 1
        assert counter.load() == 0
        assert zero_hits == 1


class TestAtomicCounterThreaded:
    """The fetch-add must be a *genuine* atomic: these tests hammer it
    from real OS threads, the regime the ThreadedBackend runs it in."""

    def test_no_lost_updates(self):
        counter = AtomicCounter(0)
        n_threads, per_thread = 8, 5_000

        def hammer():
            for _ in range(per_thread):
                counter.fetch_add(1)

        threads = [threading.Thread(target=hammer) for _ in range(n_threads)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert counter.load() == n_threads * per_thread
        assert counter.op_count == n_threads * per_thread

    def test_exactly_one_zero_crossing_under_threads(self):
        """The finalization race, for real: worker threads decrement
        while the coordinator thread adds the marked count — exactly one
        thread ever observes zero, over many repetitions."""
        n_workers = 6
        for _ in range(200):
            counter = AtomicCounter(0)
            zero_hits = AtomicCounter(0)
            barrier = threading.Barrier(n_workers + 1)

            def decrement():
                barrier.wait()
                if counter.add_and_fetch(-1) == 0:
                    zero_hits.fetch_add(1)

            def coordinate():
                barrier.wait()
                if counter.add_and_fetch(n_workers) == 0:
                    zero_hits.fetch_add(1)

            threads = [
                threading.Thread(target=decrement) for _ in range(n_workers)
            ]
            threads.append(threading.Thread(target=coordinate))
            for t in threads:
                t.start()
            for t in threads:
                t.join()
            assert counter.load() == 0
            assert zero_hits.load() == 1
