"""Tests for the wide atomic bitmask.

The key property (§2.3): because publishes use word-level fetch-or and
drains use word-level exchange, no published bit is ever lost and no bit
is delivered to more than one drainer — even when drains interleave with
publishes at word granularity.
"""

from __future__ import annotations

import threading

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.atomics import AtomicBitmask, iter_set_bits


class TestIterSetBits:
    def test_empty(self):
        assert list(iter_set_bits(0)) == []

    def test_single_bits(self):
        for i in (0, 1, 7, 63, 64, 127):
            assert list(iter_set_bits(1 << i)) == [i]

    def test_ascending_order(self):
        assert list(iter_set_bits(0b10110)) == [1, 2, 4]

    @given(st.sets(st.integers(min_value=0, max_value=200)))
    def test_roundtrip(self, bits):
        value = sum(1 << b for b in bits)
        assert list(iter_set_bits(value)) == sorted(bits)


class TestAtomicBitmask:
    def test_rejects_zero_bits(self):
        with pytest.raises(ValueError):
            AtomicBitmask(0)

    def test_word_count(self):
        assert AtomicBitmask(1).nwords == 1
        assert AtomicBitmask(64).nwords == 1
        assert AtomicBitmask(65).nwords == 2
        assert AtomicBitmask(128).nwords == 2

    def test_set_and_test(self):
        mask = AtomicBitmask(128)
        assert not mask.test_bit(100)
        already = mask.set_bit(100)
        assert not already
        assert mask.test_bit(100)
        assert mask.set_bit(100)  # second publish is redundant

    def test_out_of_range(self):
        mask = AtomicBitmask(128)
        with pytest.raises(IndexError):
            mask.set_bit(128)
        with pytest.raises(IndexError):
            mask.test_bit(-1)

    def test_drain_returns_and_clears(self):
        mask = AtomicBitmask(128)
        for bit in (0, 63, 64, 127):
            mask.set_bit(bit)
        assert mask.drain() == [0, 63, 64, 127]
        assert mask.drain() == []
        assert not mask.any_set()

    def test_any_set_cheap_probe(self):
        mask = AtomicBitmask(128)
        assert not mask.any_set()
        mask.set_bit(70)
        assert mask.any_set()

    def test_peek_does_not_clear(self):
        mask = AtomicBitmask(128)
        mask.set_bit(5)
        assert mask.peek() == [5]
        assert mask.peek() == [5]

    def test_operation_counters(self):
        mask = AtomicBitmask(128)
        mask.set_bit(1)
        mask.set_bit(2)
        mask.drain()
        assert mask.fetch_or_count == 2
        assert mask.exchange_count == 2  # one exchange per word

    @given(
        st.lists(
            st.tuples(
                st.sampled_from(["set", "drain_word0", "drain_word1"]),
                st.integers(min_value=0, max_value=127),
            ),
            max_size=60,
        )
    )
    @settings(max_examples=200)
    def test_no_lost_or_duplicated_updates(self, operations):
        """Interleaving word-granular drains with publishes loses nothing.

        Every bit that was published is eventually delivered by exactly
        one drain (drains of bits set multiple times between drains
        count once, like the real mask).
        """
        mask = AtomicBitmask(128)
        published = set()
        delivered = []
        for op, bit in operations:
            if op == "set":
                mask.set_bit(bit)
                published.add(bit)
            elif op == "drain_word0":
                got = mask.drain_word(0)
                delivered.extend(got)
                for b in got:
                    published.discard(b)
            else:
                got = mask.drain_word(1)
                delivered.extend(got)
                for b in got:
                    published.discard(b)
        # Final full drain delivers exactly the outstanding publishes.
        rest = mask.drain()
        assert set(rest) == published
        # No bit is delivered while it was not published: every drained
        # bit must have been set at some point (delivered is a subset of
        # all bits ever published).
        assert all(0 <= b < 128 for b in delivered)

    def test_no_lost_or_duplicated_updates_under_threads(self):
        """The same property under real concurrency: publisher threads
        fetch-or bits while a drainer thread exchanges words out from
        under them.  Every published bit is delivered by exactly one
        drain — the guarantee the ThreadedBackend's update masks rely
        on."""
        mask = AtomicBitmask(128)
        n_publishers, per_publisher = 4, 400
        delivered: list = []
        stop = threading.Event()

        def publish(offset):
            # Each publisher owns a disjoint bit range, published many
            # times; re-publishes between drains legally collapse.
            for i in range(per_publisher):
                mask.set_bit(offset + i % 32)

        def drain_loop():
            while not stop.is_set():
                delivered.extend(mask.drain())

        drainer = threading.Thread(target=drain_loop)
        publishers = [
            threading.Thread(target=publish, args=(32 * k,))
            for k in range(n_publishers)
        ]
        drainer.start()
        for t in publishers:
            t.start()
        for t in publishers:
            t.join()
        stop.set()
        drainer.join()
        delivered.extend(mask.drain())  # anything still outstanding

        # Nothing lost: every owned bit was published at least once and
        # must have been delivered at least once.
        expected = {32 * k + i for k in range(n_publishers) for i in range(32)}
        assert set(delivered) == expected
        # Nothing duplicated *within one drain*: each drain's word
        # exchange clears what it returns, so consecutive deliveries of
        # one bit require an intervening publish.  With publishers done
        # and the mask drained, the final state must be empty.
        assert not mask.any_set()
