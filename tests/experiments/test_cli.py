"""Tests for the python -m repro.experiments CLI."""

import csv

import pytest

from repro.experiments.__main__ import build_parser, main, make_config


class TestParser:
    def test_requires_experiment(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_rejects_unknown_experiment(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["figure99"])

    def test_config_overrides(self):
        args = build_parser().parse_args(
            ["figure5", "--duration", "3", "--workers", "4", "--seed", "9"]
        )
        config = make_config(args)
        assert config.duration == 3.0
        assert config.n_workers == 4
        assert config.seed == 9

    def test_paper_preset(self):
        args = build_parser().parse_args(["figure5", "--paper"])
        assert make_config(args).duration == 300.0


class TestMain:
    def test_runs_figure5_and_exports_csv(self, tmp_path, capsys):
        exit_code = main(["figure5", "--csv", str(tmp_path)])
        assert exit_code == 0
        out = capsys.readouterr().out
        assert "Figure 5" in out
        with (tmp_path / "figure5.csv").open() as handle:
            rows = list(csv.DictReader(handle))
        assert {row["policy"] for row in rows} == {"static-60k", "adaptive-1ms"}
