"""The parallel sweep runner must be bit-identical to the sequential loop.

Each sweep cell rebuilds its workload from the experiment seed and runs a
simulation that is a pure function of (scheduler, workload, seed), so
fanning cells out over processes may not change a single bit of any
latency record.  These tests compare full ``repr`` output — covering
every float exactly — between ``jobs=1`` and multi-process runs.
"""

from __future__ import annotations

import pytest

from repro.experiments import ablation, figure7
from repro.experiments.common import ExperimentConfig
from repro.experiments.parallel import SweepCell, run_cell, run_cells


def _tiny_config(**overrides):
    base = ExperimentConfig.quick().with_options(
        duration=2.0, n_workers=4, tracking_duration=0.5, refresh_duration=1.0
    )
    return base.with_options(**overrides) if overrides else base


def _record_reprs(collector):
    return [
        (r.query_id, repr(r.arrival_time), repr(r.completion_time), repr(r.cpu_seconds))
        for r in collector.records
    ]


def _make_cells(config):
    return [
        SweepCell(system=system, rate=rate, salt=salt, config=config, max_time=config.duration)
        for salt, (system, rate) in enumerate(
            [("stride", 8.0), ("fair", 8.0), ("fifo", 10.0), ("stride", 12.0)]
        )
    ]


class TestRunCells:
    def test_parallel_matches_sequential_bit_for_bit(self):
        config = _tiny_config()
        cells = _make_cells(config)
        sequential = run_cells(cells, jobs=1)
        parallel = run_cells(cells, jobs=3, force_pool=True)
        assert len(sequential) == len(parallel) == len(cells)
        for seq, par in zip(sequential, parallel):
            assert _record_reprs(seq.records) == _record_reprs(par.records)
            assert seq.tasks_executed == par.tasks_executed
            assert seq.events_processed == par.events_processed
            assert repr(seq.end_time) == repr(par.end_time)

    def test_results_preserve_input_order(self):
        config = _tiny_config()
        cells = _make_cells(config)
        outcomes = run_cells(cells, jobs=4, force_pool=True)
        # Each outcome must correspond to its cell, not to completion
        # order: re-running any single cell reproduces its slot.
        for index in (0, 3):
            alone = run_cell(cells[index])
            assert _record_reprs(alone.records) == _record_reprs(
                outcomes[index].records
            )

    def test_jobs_one_never_touches_the_pool(self, monkeypatch):
        import repro.experiments.pool as pool_mod

        def _boom(*args, **kwargs):  # pragma: no cover - guard
            raise AssertionError("pool used with jobs=1")

        monkeypatch.setattr(pool_mod, "get_pool", _boom)
        monkeypatch.setattr(pool_mod, "SweepPool", _boom)
        config = _tiny_config()
        outcomes = run_cells(_make_cells(config)[:2], jobs=1)
        assert len(outcomes) == 2


@pytest.fixture
def force_pooling(monkeypatch):
    """Make the auto-jobs heuristic choose the pool regardless of host.

    Driver wiring should go through the real pooled path even on a
    single-CPU machine (where the heuristic would otherwise fall back
    to the sequential loop).
    """
    import repro.experiments.pool as pool_mod

    monkeypatch.setattr(pool_mod.os, "cpu_count", lambda: 8)
    monkeypatch.setattr(pool_mod, "POOL_STARTUP_SECONDS", 0.0)
    monkeypatch.setattr(pool_mod, "PER_CELL_OVERHEAD_SECONDS", 0.0)


class TestDriverWiring:
    def test_figure7_rows_identical_across_jobs(self, force_pooling):
        config = _tiny_config()
        sequential = figure7.run(
            config, schedulers=("fair", "fifo"), loads=(0.8, 1.0), jobs=1
        )
        parallel = figure7.run(
            config, schedulers=("fair", "fifo"), loads=(0.8, 1.0), jobs=2
        )
        # repr-compare: exact floats, and NaN cells (empty groups) match.
        assert repr(sequential.rows) == repr(parallel.rows)

    def test_ablation_rows_identical_across_jobs(self, force_pooling):
        config = _tiny_config()
        variants = {"fair": ("fair", {}), "tmax-4ms": ("stride", {"t_max": 0.004})}
        sequential = ablation.run(config, variants=variants, jobs=1)
        parallel = ablation.run(config, variants=variants, jobs=2)
        assert repr(sequential.rows) == repr(parallel.rows)

    def test_drivers_accept_auto_jobs(self):
        # "auto" routes through the heuristic; on any host the rows are
        # identical to the sequential loop (bit-identity is the
        # invariant; which path ran is the heuristic's business).
        config = _tiny_config()
        sequential = figure7.run(
            config, schedulers=("fair",), loads=(0.9,), jobs=1
        )
        auto = figure7.run(
            config, schedulers=("fair",), loads=(0.9,), jobs="auto"
        )
        assert repr(sequential.rows) == repr(auto.rows)

    def test_os_cell_runs(self):
        config = _tiny_config(compile_seconds=0.012)
        cell = SweepCell(
            system="monetdb",
            rate=2.0,
            salt=0,
            config=config,
            kind="os",
            max_time=config.duration,
        )
        outcome = run_cell(cell)
        assert outcome.records is not None
        assert outcome.tasks_executed == 0  # OS model has no task counter
