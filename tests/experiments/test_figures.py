"""Smoke + shape tests for the figure-reproduction drivers.

Each driver runs with a drastically scaled-down configuration so the
whole file stays fast; the assertions check the figure's qualitative
shape (who wins, and roughly by how much), not absolute numbers.
"""

from __future__ import annotations

import math

import pytest

from repro.experiments import ExperimentConfig
from repro.experiments import (
    ablation,
    figure1,
    figure5,
    figure7,
    figure8,
    figure9,
    figure10,
    figure11,
)

#: Tiny config shared by the expensive sustained-load drivers.
TINY = ExperimentConfig(
    n_workers=8,
    duration=4.0,
    tracking_duration=0.5,
    refresh_duration=1.5,
    seed=13,
)


@pytest.fixture(scope="module")
def figure7_result():
    return figure7.run(TINY, schedulers=("tuning", "fair", "fifo"), loads=(0.9,))


class TestFigure1:
    @pytest.fixture(scope="class")
    def result(self):
        # Figure 1 needs a slightly longer window: PostgreSQL's queueing
        # transient builds over tens of (cheap, fluid-model) seconds.
        return figure1.run(TINY.with_options(duration=10.0))

    def test_has_all_groups(self, result):
        groups = {(row["system"], row["query_type"]) for row in result.rows}
        assert groups == {
            ("tuning", "short"),
            ("tuning", "long"),
            ("postgresql", "short"),
            ("postgresql", "long"),
        }

    def test_short_query_tail_improvement(self, result):
        """The paper's headline: >10x better short-query tails.  The tiny
        config weakens the effect; require a clear factor."""
        assert result.tail_improvement("short", "p95") > 2.0

    def test_render(self, result):
        text = result.render()
        assert "Figure 1" in text
        assert "postgresql" in text


class TestFigure5:
    @pytest.fixture(scope="class")
    def result(self):
        return figure5.run(ExperimentConfig(n_workers=8, seed=1))

    def test_adaptive_reduces_task_duration_spread(self, result):
        assert result.spread("adaptive-1ms") < result.spread("static-60k") / 3.0

    def test_adaptive_runs_all_phases(self, result):
        phases = result.phase_counts["adaptive-1ms"]
        for phase in ("startup", "default", "shutdown"):
            assert phases.get(phase, 0) > 0

    def test_static_is_single_phase(self, result):
        assert set(result.phase_counts["static-60k"]) == {"static"}

    def test_render(self, result):
        assert "static-60k" in result.render()


class TestFigure7:
    def test_tuning_beats_fair_for_short_queries(self, figure7_result):
        tuning = dict(figure7_result.series("tuning", 3.0))[0.9]
        fair = dict(figure7_result.series("fair", 3.0))[0.9]
        assert tuning < fair

    def test_fifo_is_much_worse(self, figure7_result):
        tuning = dict(figure7_result.series("tuning", 3.0))[0.9]
        fifo = dict(figure7_result.series("fifo", 3.0))[0.9]
        assert fifo > 3.0 * tuning

    def test_rows_complete(self, figure7_result):
        assert len(figure7_result.rows) == 3 * 1 * 2  # schedulers x loads x SFs

    def test_render(self, figure7_result):
        assert "geomean" in figure7_result.render()


class TestFigure8:
    @pytest.fixture(scope="class")
    def result(self):
        return figure8.run(
            TINY.with_options(duration=6.0),
            schedulers=("tuning", "fair"),
            queries=("Q1", "Q6"),
        )

    def test_all_cells_present(self, result):
        assert len(result.rows) == 2 * 2 * 2

    def test_improvement_helper(self, result):
        # Per-query counts are single-digit at this scale, so only check
        # the helper produces a sane, positive factor; the real shape
        # check happens at benchmark scale (EXPERIMENTS.md).
        factor = result.improvement("Q6", 3.0, "mean_slowdown", baseline="fair")
        assert math.isnan(factor) or factor > 0.0

    def test_render(self, result):
        assert "Figure 8" in result.render()


class TestFigure9:
    @pytest.fixture(scope="class")
    def result(self):
        return figure9.run(
            TINY.with_options(compile_seconds=0.012),
            systems=("tuning", "postgresql"),
            loads=(0.9,),
        )

    def test_max_rates_reflect_system_speed(self, result):
        assert result.max_rates["tuning"] > 2.0 * result.max_rates["postgresql"]

    def test_tuning_wins_mean_slowdown(self, result):
        ours = result.metric("tuning", 0.9, 3.0, "mean_slowdown")
        postgres = result.metric("postgresql", 0.9, 3.0, "mean_slowdown")
        assert ours < postgres

    def test_qps_ratio(self, result):
        ours = result.metric("tuning", 0.9, 3.0, "qps")
        postgres = result.metric("postgresql", 0.9, 3.0, "qps")
        assert ours > 3.0 * postgres

    def test_render(self, result):
        assert "calibrated max rates" in result.render()


class TestFigure10:
    @pytest.fixture(scope="class")
    def result(self):
        return figure10.run(
            ExperimentConfig(seed=2, tracking_duration=0.5, refresh_duration=1.5),
            cores=(2, 8),
            queries_per_core=3,
        )

    def test_total_overhead_negligible(self, result):
        for row in result.rows:
            assert row["total"] < 1.0  # far below 1%

    def test_tuning_share_shrinks_with_cores(self, result):
        small = result.rows[0]["tuning"]
        large = result.rows[-1]["tuning"]
        assert large < small

    def test_phases_present(self, result):
        series = result.phase_series("mask_updates")
        assert len(series) == 2

    def test_render(self, result):
        assert "Figure 10" in result.render()


class TestFigure11:
    @pytest.fixture(scope="class")
    def result(self):
        return figure11.run(
            TINY.with_options(compile_seconds=0.012),
            systems=("tuning", "postgresql"),
            queries=("Q6", "Q18"),
        )

    def test_cells_present(self, result):
        assert len(result.rows) == 2 * 2 * 2

    def test_tuning_better_short_queries(self, result):
        improvement = result.improvement("Q6", 3.0, "mean_slowdown", "postgresql")
        assert improvement > 1.0

    def test_render(self, result):
        assert "Figure 11" in result.render()


class TestAblation:
    @pytest.fixture(scope="class")
    def result(self):
        variants = {
            "tuning": ("tuning", {}),
            "fair": ("fair", {}),
            "tmax-8ms": ("tuning", {"t_max": 0.008}),
        }
        return ablation.run(TINY, variants=variants)

    def test_all_variants_measured(self, result):
        names = {row["variant"] for row in result.rows}
        assert names == {"tuning", "fair", "tmax-8ms"}

    def test_decay_ablation_effect(self, result):
        assert result.metric("tuning", 3.0, "mean_slowdown") < result.metric(
            "fair", 3.0, "mean_slowdown"
        )

    def test_render(self, result):
        assert "ablation" in result.render().lower()
