"""The warm sweep pool: determinism, compact handoff, heuristics.

The hard invariant of the pool is the same as the old per-call executor:
pooled outcomes are **bit-identical** to the sequential loop — across
worker counts, chunk sizes, dispatch orders, and pool reuse.  On top of
that these tests pin the new machinery: the pickle-5 frame codec, the
flat-array outcome encoding, the per-worker workload cache, the
auto-jobs fallback, and the "no cold executor per call" regression
guard.
"""

from __future__ import annotations

import math

import numpy as np
import pytest

from repro.experiments import pool as pool_mod
from repro.experiments.common import ExperimentConfig
from repro.experiments.parallel import SweepCell, run_cell, run_cells


def _tiny_config(**overrides):
    base = ExperimentConfig.quick().with_options(
        duration=1.5, n_workers=4, tracking_duration=0.5, refresh_duration=1.0
    )
    return base.with_options(**overrides) if overrides else base


def _record_reprs(collector):
    return [
        (r.query_id, repr(r.arrival_time), repr(r.completion_time), repr(r.cpu_seconds))
        for r in collector.records
    ]


def _outcome_reprs(outcomes):
    return [
        (
            _record_reprs(o.records),
            o.tasks_executed,
            o.events_processed,
            repr(o.total_overhead_percent),
            repr(o.end_time),
        )
        for o in outcomes
    ]


def _make_cells(config, n=4):
    systems = ("stride", "fair", "fifo", "stride", "fair", "fifo", "stride", "fair")
    rates = (8.0, 8.0, 10.0, 12.0, 6.0, 9.0, 11.0, 7.0)
    return [
        SweepCell(
            system=systems[i],
            rate=rates[i],
            salt=i,
            config=config,
            max_time=config.duration,
        )
        for i in range(n)
    ]


@pytest.fixture(scope="module")
def sequential_baseline():
    config = _tiny_config()
    cells = _make_cells(config, n=8)
    return config, cells, run_cells(cells, jobs=1)


class TestPooledDeterminism:
    @pytest.mark.parametrize("jobs", [2, 4, 8])
    def test_bit_identical_across_worker_counts(self, sequential_baseline, jobs):
        _, cells, sequential = sequential_baseline
        pooled = run_cells(cells, jobs=jobs, force_pool=True)
        assert _outcome_reprs(pooled) == _outcome_reprs(sequential)

    @pytest.mark.parametrize("chunk_size", [1, 3, None])
    def test_bit_identical_across_chunk_sizes(self, sequential_baseline, chunk_size):
        _, cells, sequential = sequential_baseline
        pooled = run_cells(
            cells, jobs=2, force_pool=True, chunk_size=chunk_size
        )
        assert _outcome_reprs(pooled) == _outcome_reprs(sequential)

    @pytest.mark.parametrize("dispatch", ["cost", "input"])
    def test_bit_identical_across_dispatch_orders(self, sequential_baseline, dispatch):
        _, cells, sequential = sequential_baseline
        pooled = run_cells(cells, jobs=2, force_pool=True, dispatch=dispatch)
        assert _outcome_reprs(pooled) == _outcome_reprs(sequential)

    def test_pool_reused_across_consecutive_sweeps(self, sequential_baseline):
        _, cells, sequential = sequential_baseline
        first = run_cells(cells, jobs=2, force_pool=True)
        pool_after_first = pool_mod.get_pool(2)
        second = run_cells(cells, jobs=2, force_pool=True)
        assert pool_mod.get_pool(2) is pool_after_first
        assert _outcome_reprs(first) == _outcome_reprs(sequential)
        assert _outcome_reprs(second) == _outcome_reprs(sequential)

    def test_no_fresh_executor_per_call(self, sequential_baseline, monkeypatch):
        """run_cells must never construct a cold pool per invocation."""
        _, cells, sequential = sequential_baseline
        pool_mod.get_pool(2)  # ensure the shared pool is up

        def _boom(*args, **kwargs):  # pragma: no cover - guard
            raise AssertionError("cold ProcessPoolExecutor constructed")

        monkeypatch.setattr(pool_mod, "ProcessPoolExecutor", _boom)
        pooled = run_cells(cells[:4], jobs=2, force_pool=True)
        assert _outcome_reprs(pooled) == _outcome_reprs(sequential[:4])

    def test_unknown_dispatch_rejected(self, sequential_baseline):
        _, cells, _ = sequential_baseline
        with pytest.raises(ValueError):
            run_cells(cells, jobs=2, force_pool=True, dispatch="random")


class TestWireFormat:
    def test_oob_frame_round_trips_numpy_buffers(self):
        payload = {
            "a": np.arange(1000, dtype=np.float64),
            "b": np.arange(10, dtype=np.int32),
            "meta": ("text", 4.25, None),
        }
        blob = pool_mod.dumps_oob(payload)
        out = pool_mod.loads_oob(blob)
        assert np.array_equal(out["a"], payload["a"])
        assert np.array_equal(out["b"], payload["b"])
        assert out["meta"] == payload["meta"]

    def test_oob_frame_rejects_garbage(self):
        with pytest.raises(ValueError):
            pool_mod.loads_oob(b"not a frame at all")

    def test_outcome_codec_lossless_on_real_cell(self):
        config = _tiny_config()
        outcome = run_cell(_make_cells(config, n=1)[0])
        decoded = pool_mod.decode_outcome(pool_mod.encode_outcome(outcome))
        assert _outcome_reprs([decoded]) == _outcome_reprs([outcome])
        assert len(decoded.records) == len(outcome.records)
        for original, roundtripped in zip(
            outcome.records.records, decoded.records.records
        ):
            # repr-compare: exact float bits, and NaN base latencies
            # (fresh NaN objects are never ==) compare as "nan".
            assert repr(roundtripped) == repr(original)

    def test_outcome_codec_through_oob_frame(self):
        config = _tiny_config()
        outcome = run_cell(_make_cells(config, n=1)[0])
        blob = pool_mod.dumps_oob(pool_mod.encode_outcome(outcome))
        decoded = pool_mod.decode_outcome(pool_mod.loads_oob(blob))
        assert _outcome_reprs([decoded]) == _outcome_reprs([outcome])


class TestWorkloadCache:
    def test_cells_sharing_key_build_workload_once(self, monkeypatch):
        # Exercise the worker-side cache in-process: the functions are
        # module level precisely so this is possible.
        monkeypatch.setattr(pool_mod, "_WORKLOAD_CACHE", {})
        monkeypatch.setattr(pool_mod, "_CACHE_STATS", {"hits": 0, "misses": 0})
        config = _tiny_config()
        shared = [
            SweepCell(system=s, rate=9.0, salt=3, config=config, max_time=config.duration)
            for s in ("stride", "fair", "fifo")
        ]
        workloads = [pool_mod._cell_workload(cell) for cell in shared]
        assert pool_mod.workload_cache_stats()["misses"] == 1
        assert pool_mod.workload_cache_stats()["hits"] == 2
        assert workloads[0] is workloads[1] is workloads[2]

    def test_cached_workload_matches_fresh_build(self, monkeypatch):
        monkeypatch.setattr(pool_mod, "_WORKLOAD_CACHE", {})
        config = _tiny_config()
        cell = _make_cells(config, n=1)[0]
        cached = run_cell(cell, workload=pool_mod._cell_workload(cell))
        fresh = run_cell(cell)
        assert _outcome_reprs([cached]) == _outcome_reprs([fresh])

    def test_cache_is_bounded(self, monkeypatch):
        monkeypatch.setattr(pool_mod, "_WORKLOAD_CACHE", {})
        monkeypatch.setattr(pool_mod, "_WORKLOAD_CACHE_CAP", 4)
        config = _tiny_config(duration=0.2)
        for cell in _make_cells(config, n=8):
            pool_mod._cell_workload(cell)
        assert len(pool_mod._WORKLOAD_CACHE) <= 4


class TestAutoJobs:
    def _cells(self, duration=30.0, n=24):
        config = _tiny_config(duration=duration)
        return _make_cells(config, n=min(n, 8)) * (n // min(n, 8))

    def test_explicit_one_is_sequential(self):
        assert pool_mod.resolve_jobs(self._cells(), 1) == 1

    def test_single_cpu_falls_back_to_sequential(self, monkeypatch):
        monkeypatch.setattr(pool_mod.os, "cpu_count", lambda: 1)
        assert pool_mod.resolve_jobs(self._cells(), 4) == 1

    def test_force_pool_overrides_heuristic(self, monkeypatch):
        monkeypatch.setattr(pool_mod.os, "cpu_count", lambda: 1)
        assert pool_mod.resolve_jobs(self._cells(), 4, force_pool=True) == 4

    def test_cheap_grid_cannot_amortize_cold_pool(self, monkeypatch):
        monkeypatch.setattr(pool_mod.os, "cpu_count", lambda: 8)
        monkeypatch.setattr(pool_mod, "_POOL", None)  # cold
        cells = self._cells(duration=0.05, n=2)[:2]
        assert pool_mod.resolve_jobs(cells, 4) == 1

    def test_expensive_grid_pools(self, monkeypatch):
        monkeypatch.setattr(pool_mod.os, "cpu_count", lambda: 8)
        monkeypatch.setattr(pool_mod, "_POOL", None)
        cells = self._cells(duration=60.0, n=24)
        assert pool_mod.resolve_jobs(cells, 4) == 4

    def test_auto_asks_for_cpu_count(self, monkeypatch):
        monkeypatch.setattr(pool_mod.os, "cpu_count", lambda: 3)
        monkeypatch.setattr(pool_mod, "_POOL", None)
        cells = self._cells(duration=60.0, n=24)
        for spelling in (None, 0, "auto"):
            assert pool_mod.resolve_jobs(cells, spelling) == 3

    def test_warm_pool_lowers_the_bar(self, monkeypatch):
        monkeypatch.setattr(pool_mod.os, "cpu_count", lambda: 8)
        cells = self._cells(duration=3.0, n=8)[:8]
        cold_decision = None
        warm_decision = None
        saved_pool = pool_mod._POOL
        try:
            monkeypatch.setattr(pool_mod, "_POOL", None)
            cold_decision = pool_mod.resolve_jobs(cells, 8)
        finally:
            pool_mod._POOL = saved_pool
        # A warm pool has zero startup cost: simulate one.
        class _Fake:
            max_workers = 8

        monkeypatch.setattr(pool_mod, "_POOL", _Fake())
        warm_decision = pool_mod.resolve_jobs(cells, 8)
        # Warm pooling engages at least as eagerly as cold pooling.
        assert (warm_decision > 1) or (cold_decision == 1)

    def test_jobs_clamped_to_grid_size(self, monkeypatch):
        monkeypatch.setattr(pool_mod.os, "cpu_count", lambda: 16)
        cells = self._cells(duration=60.0, n=8)[:3]
        assert pool_mod.resolve_jobs(cells, 16, force_pool=True) == 3


class TestWarmups:
    def test_register_warmup_deduplicates(self, monkeypatch):
        monkeypatch.setattr(pool_mod, "_WARMUPS", [])
        pool_mod.register_warmup(math.gcd, 4, 6)
        pool_mod.register_warmup(math.gcd, 4, 6)
        pool_mod.register_warmup(math.gcd, 9, 6)
        assert len(pool_mod._WARMUPS) == 2

    def test_worker_init_runs_warmups(self, monkeypatch):
        calls = []
        pool_mod._worker_init([(calls.append, ("warmed",))])
        assert calls == ["warmed"]

    def test_warm_calibration_populates_cache(self):
        from repro.engine.calibration import (
            calibration_cache_size,
            clear_calibration_cache,
            warm_calibration,
        )

        clear_calibration_cache()
        count = warm_calibration(scale_factor=0.001, seed=3, queries=("Q6",))
        assert count == 1
        assert calibration_cache_size() == 1
        clear_calibration_cache()


class TestCostModel:
    def test_os_cells_cost_less_per_arrival(self):
        config = _tiny_config()
        policy = SweepCell(system="stride", rate=10.0, salt=0, config=config)
        os_cell = SweepCell(
            system="monetdb", rate=10.0, salt=0, config=config, kind="os"
        )
        assert pool_mod.estimate_cell_cost(os_cell) < pool_mod.estimate_cell_cost(
            policy
        )

    def test_grid_cost_is_sum(self):
        config = _tiny_config()
        cells = _make_cells(config, n=4)
        assert pool_mod.estimate_grid_cost(cells) == pytest.approx(
            sum(pool_mod.estimate_cell_cost(c) for c in cells)
        )
