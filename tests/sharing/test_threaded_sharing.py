"""Live folds on the real-thread backend.

Queries are submitted *before* ``start()`` so the attach decisions are
deterministic — no workers run until the fold membership is settled.
What happens after start exercises the genuinely concurrent machinery:
the tee channel records the leader's chunks, members replay them at
completion, and detaching one query never kills the shared execution.
"""

import pytest

from repro.engine import build_engine_query, generate_tpch
from repro.errors import QueryCancelledError
from repro.server import AnalyticsServer


@pytest.fixture(scope="module")
def db():
    return generate_tpch(scale_factor=0.003, seed=5)


def make_server(db, **kwargs):
    defaults = dict(
        scheduler="stride",
        n_workers=2,
        seed=5,
        database=db,
        backend="threaded",
        sharing=True,
    )
    defaults.update(kwargs)
    return AnalyticsServer(**defaults)


class TestLiveFolds:
    def test_members_replay_the_leaders_chunks_exactly(self, db):
        server = make_server(db)
        try:
            leader = server.submit("Q6")
            members = [server.submit("Q6") for _ in range(2)]
            records = server.drain()
        finally:
            server.shutdown()
        assert len(records) == 3
        assert not any(r.failed or r.cancelled for r in records)
        stats = server.sharing_stats.as_dict()
        assert stats["folds"] == 1
        assert stats["attached_queries"] == 2
        expected = build_engine_query("Q6", db).execute()
        assert server.result(leader) == pytest.approx(expected)
        for member in members:
            # Members replay the leader's chunks: equality is exact,
            # not approximate.
            assert server.result(member) == server.result(leader)
            record = server.record(member)
            assert record.cpu_seconds == 0.0
            assert record.completion_time >= record.arrival_time

    def test_distinct_fingerprints_do_not_fold(self, db):
        server = make_server(db)
        try:
            q6 = server.submit("Q6")
            q1 = server.submit("Q1")
            server.drain()
        finally:
            server.shutdown()
        assert server.sharing_stats.folds == 0
        assert server.result(q6) == pytest.approx(
            build_engine_query("Q6", db).execute()
        )
        q1_result = server.result(q1)
        assert isinstance(q1_result, list)
        assert len(q1_result) == len(build_engine_query("Q1", db).execute())

    def test_cancel_member_detaches_without_killing_the_fold(self, db):
        server = make_server(db)
        try:
            leader = server.submit("Q6")
            victim = server.submit("Q6")
            keeper = server.submit("Q6")
            assert server.cancel(victim)
            server.drain()
        finally:
            server.shutdown()
        assert server.record(victim).cancelled
        with pytest.raises(QueryCancelledError):
            server.result(victim)
        assert not server.record(leader).cancelled
        assert server.result(keeper) == server.result(leader)

    def test_cancel_leader_keeps_serving_the_members(self, db):
        server = make_server(db)
        try:
            leader = server.submit("Q6")
            member = server.submit("Q6")
            assert server.cancel(leader)
            server.drain()
        finally:
            server.shutdown()
        # The leader's delivery detached, but the shared execution ran
        # to completion for the member's sake.
        assert server.record(leader).cancelled
        with pytest.raises(QueryCancelledError):
            server.result(leader)
        member_record = server.record(member)
        assert not member_record.cancelled and not member_record.failed
        assert server.result(member) == pytest.approx(
            build_engine_query("Q6", db).execute()
        )

    def test_sharing_off_threaded_counters_stay_zero(self, db):
        server = make_server(db, sharing=False)
        try:
            server.submit("Q6")
            server.submit("Q6")
            server.drain()
        finally:
            server.shutdown()
        assert server.sharing_stats.as_dict()["folds"] == 0
