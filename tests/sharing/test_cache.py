"""The fragment result cache: LRU bound, hit counters, epoch invalidation."""

import pytest

from repro.errors import ReproError
from repro.sharing import MISS, FragmentCache, SharingStats


class TestLookup:
    def test_miss_is_distinguishable_from_cached_empty(self):
        cache = FragmentCache()
        assert cache.get("abc") is MISS
        cache.put("abc", ())
        assert cache.get("abc") == ()

    def test_hits_count_on_the_shared_stats(self):
        stats = SharingStats()
        cache = FragmentCache(stats=stats)
        cache.put("abc", ("chunk",))
        assert cache.get("abc") == ("chunk",)
        assert cache.get("abc") == ("chunk",)
        assert stats.cache_hits == 2
        assert cache.get("absent") is MISS
        assert stats.cache_hits == 2

    def test_put_overwrites_in_place(self):
        cache = FragmentCache(max_entries=2)
        cache.put("a", 1)
        cache.put("a", 2)
        assert cache.get("a") == 2
        assert len(cache) == 1


class TestLruBound:
    def test_capacity_evicts_oldest_and_counts(self):
        stats = SharingStats()
        cache = FragmentCache(max_entries=2, stats=stats)
        cache.put("a", 1)
        cache.put("b", 2)
        cache.put("c", 3)
        assert stats.cache_evictions == 1
        assert cache.get("a") is MISS
        assert cache.get("b") == 2
        assert cache.get("c") == 3

    def test_hit_refreshes_recency(self):
        cache = FragmentCache(max_entries=2)
        cache.put("a", 1)
        cache.put("b", 2)
        assert cache.get("a") == 1  # a is now the most recent
        cache.put("c", 3)
        assert cache.get("b") is MISS
        assert cache.get("a") == 1

    def test_bound_must_be_positive(self):
        with pytest.raises(ReproError):
            FragmentCache(max_entries=0)


class TestInvalidation:
    def test_invalidate_drops_everything_and_bumps_epoch(self):
        cache = FragmentCache()
        cache.put("a", 1)
        cache.put("b", 2)
        assert cache.snapshot() == {
            "entries": 2, "max_entries": 64, "epoch": 0,
        }
        cache.invalidate()
        assert cache.get("a") is MISS
        assert cache.get("b") is MISS
        assert cache.snapshot() == {
            "entries": 0, "max_entries": 64, "epoch": 1,
        }

    def test_entries_stored_after_invalidation_hit(self):
        cache = FragmentCache()
        cache.put("a", 1)
        cache.invalidate()
        cache.put("a", 2)
        assert cache.get("a") == 2
