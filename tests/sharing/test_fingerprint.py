"""Plan/spec normalization: fingerprints recognize equal work.

The fold matcher and the fragment cache both key on these, so the tests
pin the two properties everything downstream depends on: stability
(equal plans fingerprint equal, including across hash seeds — sha1,
never ``hash()``) and scheduling-metadata blindness (tags, priorities
and deadlines change *when* a query runs, never *what* it computes).
"""

from dataclasses import replace

import pytest

from repro.engine import build_engine_query, generate_tpch
from repro.engine.execution import engine_query_spec
from repro.sharing import (
    fragment_fingerprint,
    plan_fingerprint,
    spec_fingerprint,
    spec_fragment_fingerprint,
)
from repro.workloads import tpch_query


@pytest.fixture(scope="module")
def db():
    return generate_tpch(scale_factor=0.003, seed=5)


class TestPlanFingerprints:
    def test_equal_plans_fingerprint_equal(self, db):
        a = plan_fingerprint(build_engine_query("Q1", db))
        b = plan_fingerprint(build_engine_query("Q1", db))
        assert a == b

    def test_distinct_plans_fingerprint_distinct(self, db):
        fingerprints = {
            plan_fingerprint(build_engine_query(name, db))
            for name in ("Q1", "Q3", "Q6", "Q18")
        }
        assert len(fingerprints) == 4

    def test_fragment_is_the_leading_scan(self, db):
        # Q1 and Q6 both open with a lineitem scan, but with different
        # filters/projections — the fragment keys must differ.
        a = fragment_fingerprint(build_engine_query("Q1", db))
        b = fragment_fingerprint(build_engine_query("Q6", db))
        assert a != b

    def test_fingerprints_are_short_stable_hex(self, db):
        fp = plan_fingerprint(build_engine_query("Q6", db))
        assert len(fp) == 16
        int(fp, 16)  # hex digest, not repr of hash()


class TestSpecFingerprints:
    def test_engine_specs_stable(self, db):
        assert spec_fingerprint(
            engine_query_spec("Q6", db)
        ) == spec_fingerprint(engine_query_spec("Q6", db))

    def test_scheduling_metadata_excluded(self, db):
        spec = engine_query_spec("Q6", db)
        decorated = replace(
            spec,
            tags=spec.tags + ("tenant:dash", "fold:3"),
            user_priority=4.0,
            static_priority=2,
            deadline=0.5,
        )
        assert spec_fingerprint(decorated) == spec_fingerprint(spec)
        assert spec_fragment_fingerprint(decorated) == (
            spec_fragment_fingerprint(spec)
        )

    def test_distinct_specs_distinct(self, db):
        specs = [engine_query_spec(n, db) for n in ("Q1", "Q6", "Q14")]
        assert len({spec_fingerprint(s) for s in specs}) == 3

    def test_scale_factor_matters(self):
        small = tpch_query("Q6", 3.0)
        large = tpch_query("Q6", 30.0)
        assert spec_fingerprint(small) != spec_fingerprint(large)
        assert spec_fragment_fingerprint(small) != (
            spec_fragment_fingerprint(large)
        )

    def test_fragment_drops_the_query_name(self, db):
        # Same leading pipeline shape under two different names shares
        # a fragment key (the affinity term keys on the scan, not the
        # query identity).
        spec = engine_query_spec("Q6", db)
        renamed = replace(spec, name="Q6-dashboard-copy")
        assert spec_fingerprint(renamed) != spec_fingerprint(spec)
        assert spec_fragment_fingerprint(renamed) == (
            spec_fragment_fingerprint(spec)
        )
