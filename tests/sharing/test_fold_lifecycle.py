"""Fold lifecycle on the virtual-time backend: the epoch as attach window.

Identity tests pin ``supports_adaptive=False`` on their specs: adaptive
morsel sizing feeds *measured wall time* into the morsel boundaries,
which perturbs numpy's pairwise summation at the last ulp between any
two runs — sharing or not.  With fixed morsels a sharing-on run must be
bit-identical to sharing-off; the fold's extra share arrives as stride
passes, never as different morsel boundaries.
"""

from dataclasses import replace

import pytest

from repro.engine import build_engine_query, generate_tpch
from repro.errors import (
    QueryCancelledError,
    QueryFailedError,
    QueryTimeoutError,
)
from repro.runtime.faults import OPERATOR_RAISE, FaultPlan, FaultSpec
from repro.server import AnalyticsServer


@pytest.fixture(scope="module")
def db():
    return generate_tpch(scale_factor=0.003, seed=5)


def make_server(db, **kwargs):
    defaults = dict(
        scheduler="stride", n_workers=2, seed=5, database=db, sharing=True
    )
    defaults.update(kwargs)
    return AnalyticsServer(**defaults)


def fixed_spec(server, name):
    """The named spec with adaptive morsel sizing pinned off."""
    spec = server.query_spec(name)
    return replace(
        spec,
        pipelines=tuple(
            replace(p, supports_adaptive=False) for p in spec.pipelines
        ),
    )


class TestFolding:
    def test_results_bit_identical_to_sharing_off(self, db):
        def run(sharing):
            server = make_server(db, sharing=sharing)
            tickets = [
                server.submit_spec(fixed_spec(server, name))
                for name in ("Q6", "Q1", "Q6", "Q6", "Q1")
            ]
            server.run()
            return [repr(server.result(t)) for t in tickets]

        assert run(sharing=False) == run(sharing=True)

    def test_fold_counters(self, db):
        server = make_server(db)
        for name in ("Q6", "Q1", "Q6", "Q6", "Q1"):
            server.submit(name)
        records = server.run()
        assert len(records) == 5
        stats = server.sharing_stats.as_dict()
        assert stats["folds"] == 2  # one per duplicated fingerprint
        assert stats["attached_queries"] == 3
        assert stats["replay_fallbacks"] == 0

    def test_member_completes_with_the_leader_not_before_arrival(self, db):
        server = make_server(db)
        leader = server.submit("Q6", at=0.0)
        member = server.submit("Q6", at=0.5)
        server.run()
        leader_done = server.record(leader).completion_time
        member_record = server.record(member)
        assert member_record.completion_time == max(leader_done, 0.5)
        assert member_record.cpu_seconds == 0.0

    def test_noshare_tag_opts_out(self, db):
        server = make_server(db)
        spec = server.query_spec("Q6")
        for _ in range(2):
            server.submit_spec(replace(spec, tags=spec.tags + ("noshare",)))
        server.run()
        assert server.sharing_stats.folds == 0

    def test_attach_buffer_overflow_falls_back_to_fresh_scans(self, db):
        server = make_server(db, sharing_attach_buffer=1)
        tickets = [server.submit("Q6") for _ in range(3)]
        server.run()
        stats = server.sharing_stats.as_dict()
        assert stats["attached_queries"] == 1
        assert stats["replay_fallbacks"] == 1
        expected = build_engine_query("Q6", db).execute()
        for ticket in tickets:
            assert server.result(ticket) == pytest.approx(expected)

    def test_sharing_off_counters_stay_zero(self, db):
        server = make_server(db, sharing=False)
        server.submit("Q6")
        server.submit("Q6")
        server.run()
        assert server.sharing_stats.as_dict() == {
            "attached_queries": 0,
            "cache_evictions": 0,
            "cache_hits": 0,
            "folds": 0,
            "replay_fallbacks": 0,
        }


class TestMemberLifecycle:
    def test_cancelling_one_member_leaves_the_fold_intact(self, db):
        server = make_server(db)
        leader = server.submit("Q6")
        victim = server.submit("Q6")
        keeper = server.submit("Q6")
        assert server.cancel(victim)
        server.run()
        assert server.record(victim).cancelled
        with pytest.raises(QueryCancelledError):
            server.result(victim)
        expected = build_engine_query("Q6", db).execute()
        assert server.result(leader) == pytest.approx(expected)
        assert server.result(keeper) == pytest.approx(expected)
        # The cancelled member never attached, so the fold is a pair.
        assert server.sharing_stats.attached_queries == 1

    def test_member_deadline_expiry_fails_only_that_member(self, db):
        server = make_server(db)
        leader = server.submit("Q18")
        expired = server.submit("Q18", deadline=1e-9)
        sibling = server.submit("Q18")
        server.run()
        record = server.record(expired)
        assert record.failed
        assert "QueryTimeoutError" in record.error
        assert isinstance(server.failure(expired), QueryTimeoutError)
        with pytest.raises(QueryFailedError):
            server.result(expired)
        assert not server.record(leader).failed
        assert not server.record(sibling).failed
        assert server.result(sibling) == pytest.approx(server.result(leader))

    def test_shared_scan_fault_fails_members_then_retries_unshared(self, db):
        server = make_server(db)
        server.install_faults(
            FaultPlan(
                faults=(FaultSpec(kind=OPERATOR_RAISE, query="Q6", morsel=0),)
            )
        )
        tickets = [server.submit("Q6", retries=1) for _ in range(3)]
        records = server.run()
        # First epoch: the shared execution faults and every member
        # fails with the leader's cause; the retries then resubmit each
        # query *unshared* (noshare tag) and all succeed.
        assert sum(1 for r in records if r.failed) == 3
        assert server.retries_used == 3
        assert server.sharing_stats.folds == 1  # retries did not fold
        expected = build_engine_query("Q6", db).execute()
        for ticket in tickets:
            assert not server.failed(ticket)
            assert server.result(ticket) == pytest.approx(expected)


class TestFragmentCache:
    def test_repeat_query_served_from_cache(self, db):
        server = make_server(db)
        first = server.submit_spec(fixed_spec(server, "Q6"))
        server.run()
        again = server.submit_spec(fixed_spec(server, "Q6"))
        server.run()
        assert server.sharing_stats.cache_hits == 1
        # Served at arrival with zero engine work, bit-identical value.
        record = server.record(again)
        assert record.completion_time == record.arrival_time
        assert record.cpu_seconds == 0.0
        assert repr(server.result(again)) == repr(server.result(first))

    def test_invalidation_forces_re_execution(self, db):
        server = make_server(db)
        server.submit_spec(fixed_spec(server, "Q6"))
        server.run()
        server.invalidate_sharing_cache()
        again = server.submit_spec(fixed_spec(server, "Q6"))
        server.run()
        assert server.sharing_stats.cache_hits == 0
        assert server.record(again).cpu_seconds > 0.0

    def test_eviction_counter_reaches_the_server_stats(self, db):
        server = make_server(db, sharing_cache_entries=1)
        server.submit_spec(fixed_spec(server, "Q6"))
        server.submit_spec(fixed_spec(server, "Q1"))
        server.run()
        # Two distinct fingerprints through a one-entry cache: the
        # second completion evicts the first.
        assert server.sharing_stats.cache_evictions == 1
