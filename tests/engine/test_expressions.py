"""Tests for vectorised expressions, including hypothesis cross-checks
against direct numpy evaluation."""

import numpy as np
import pytest
from hypothesis import given
from hypothesis import strategies as st
from hypothesis.extra.numpy import arrays

from repro.engine.expressions import And, Col, Const, InSet, Not, Or
from repro.errors import EngineError


def batch(**columns):
    return {name: np.asarray(values) for name, values in columns.items()}


class TestBasics:
    def test_column_reference(self):
        assert Col("a").evaluate(batch(a=[1, 2, 3])).tolist() == [1, 2, 3]

    def test_missing_column(self):
        with pytest.raises(EngineError):
            Col("missing").evaluate(batch(a=[1]))

    def test_const_broadcast(self):
        assert Const(7).evaluate(batch(a=[1, 2, 3])).tolist() == [7, 7, 7]

    def test_arithmetic(self):
        b = batch(a=[1.0, 2.0], b=[10.0, 20.0])
        assert (Col("a") + Col("b")).evaluate(b).tolist() == [11.0, 22.0]
        assert (Col("b") - Col("a")).evaluate(b).tolist() == [9.0, 18.0]
        assert (Col("a") * Col("b")).evaluate(b).tolist() == [10.0, 40.0]

    def test_arithmetic_with_scalar(self):
        b = batch(a=[1.0, 2.0])
        assert (Col("a") * 3).evaluate(b).tolist() == [3.0, 6.0]

    def test_comparisons(self):
        b = batch(a=[1, 2, 3])
        assert (Col("a") < 2).evaluate(b).tolist() == [True, False, False]
        assert (Col("a") >= 2).evaluate(b).tolist() == [False, True, True]
        assert Col("a").equals(2).evaluate(b).tolist() == [False, True, False]
        assert Col("a").not_equals(2).evaluate(b).tolist() == [True, False, True]

    def test_between_inclusive(self):
        b = batch(a=[1, 2, 3, 4])
        assert Col("a").between(2, 3).evaluate(b).tolist() == [
            False,
            True,
            True,
            False,
        ]

    def test_isin(self):
        b = batch(a=[1, 2, 3])
        assert Col("a").isin([1, 3]).evaluate(b).tolist() == [True, False, True]

    def test_logical_connectives(self):
        b = batch(a=[1, 2, 3, 4])
        conj = And(Col("a") > 1, Col("a") < 4)
        assert conj.evaluate(b).tolist() == [False, True, True, False]
        disj = Or(Col("a") < 2, Col("a") > 3)
        assert disj.evaluate(b).tolist() == [True, False, False, True]
        neg = Not(Col("a").equals(2))
        assert neg.evaluate(b).tolist() == [True, False, True, True]

    def test_empty_connectives_rejected(self):
        with pytest.raises(EngineError):
            And()
        with pytest.raises(EngineError):
            Or()
        with pytest.raises(EngineError):
            InSet(Col("a"), [])


float_arrays = arrays(
    dtype=np.float64,
    shape=st.integers(min_value=1, max_value=50),
    elements=st.floats(min_value=-1e6, max_value=1e6, allow_nan=False),
)


class TestPropertyAgainstNumpy:
    @given(values=float_arrays, threshold=st.floats(min_value=-1e6, max_value=1e6))
    def test_compare_matches_numpy(self, values, threshold):
        b = batch(a=values)
        assert (
            (Col("a") < threshold).evaluate(b) == (values < threshold)
        ).all()

    @given(values=float_arrays)
    def test_arith_matches_numpy(self, values):
        b = batch(a=values)
        expr = (Col("a") * 2.0 + 1.0) - Col("a")
        np.testing.assert_allclose(expr.evaluate(b), values * 2.0 + 1.0 - values)

    @given(values=float_arrays, low=st.floats(-10.0, 0.0), width=st.floats(0.0, 10.0))
    def test_between_matches_numpy(self, values, low, width):
        high = low + width
        b = batch(a=values)
        expected = (values >= low) & (values <= high)
        assert (Col("a").between(low, high).evaluate(b) == expected).all()
