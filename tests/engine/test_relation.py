"""Tests for columnar relations."""

import numpy as np
import pytest

from repro.engine.relation import Relation, batch_length, filter_batch
from repro.errors import EngineError


def simple_relation():
    return Relation(
        {
            "k": np.arange(10, dtype=np.int64),
            "v": np.arange(10, dtype=np.float64) * 2.0,
            "s": np.array([0, 1, 0, 1, 0, 1, 0, 1, 0, 1], dtype=np.int32),
        },
        dictionaries={"s": ["yes", "no"]},
    )


class TestRelation:
    def test_row_count(self):
        assert simple_relation().n_rows == 10

    def test_rejects_empty(self):
        with pytest.raises(EngineError):
            Relation({})

    def test_rejects_ragged(self):
        with pytest.raises(EngineError):
            Relation({"a": np.arange(3), "b": np.arange(4)})

    def test_rejects_dictionary_for_missing_column(self):
        with pytest.raises(EngineError):
            Relation({"a": np.arange(3)}, dictionaries={"b": ["x"]})

    def test_unknown_column(self):
        with pytest.raises(EngineError):
            simple_relation().column("missing")

    def test_slice_is_view(self):
        relation = simple_relation()
        batch = relation.slice(2, 5)
        assert batch["k"].tolist() == [2, 3, 4]
        assert batch["k"].base is not None  # zero-copy view

    def test_slice_column_subset(self):
        batch = simple_relation().slice(0, 3, names=["v"])
        assert list(batch) == ["v"]

    def test_slice_bounds(self):
        with pytest.raises(EngineError):
            simple_relation().slice(5, 3)
        with pytest.raises(EngineError):
            simple_relation().slice(0, 11)

    def test_take(self):
        batch = simple_relation().take(np.array([9, 0, 5]))
        assert batch["k"].tolist() == [9, 0, 5]

    def test_encode_value(self):
        relation = simple_relation()
        assert relation.encode_value("s", "no") == 1

    def test_encode_unknown_value(self):
        with pytest.raises(EngineError):
            simple_relation().encode_value("s", "maybe")

    def test_encode_numeric_column_rejected(self):
        with pytest.raises(EngineError):
            simple_relation().encode_value("k", "1")

    def test_dictionary_lookup(self):
        assert simple_relation().dictionary("s") == ["yes", "no"]
        assert simple_relation().dictionary("k") is None


class TestBatchHelpers:
    def test_batch_length(self):
        assert batch_length({"a": np.arange(4)}) == 4
        assert batch_length({}) == 0

    def test_filter_batch(self):
        batch = {"a": np.arange(5), "b": np.arange(5) * 10}
        mask = np.array([True, False, True, False, True])
        filtered = filter_batch(batch, mask)
        assert filtered["a"].tolist() == [0, 2, 4]
        assert filtered["b"].tolist() == [0, 20, 40]
