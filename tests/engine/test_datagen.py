"""Tests for the TPC-H-style data generator."""

import numpy as np
import pytest

from repro.engine import generate_tpch
from repro.engine.datagen import cardinality_ratios
from repro.errors import EngineError


class TestGeneration:
    def test_cardinality_ratios(self, tiny_db):
        ratios = cardinality_ratios(tiny_db)
        assert ratios["lineitem"] == pytest.approx(4.0, rel=0.05)
        assert ratios["customer"] == pytest.approx(0.1, rel=0.05)
        assert ratios["partsupp"] == pytest.approx(8 / 15, rel=0.05)

    def test_fixed_tables_do_not_scale(self, tiny_db):
        assert tiny_db.table("nation").n_rows == 25
        assert tiny_db.table("region").n_rows == 5

    def test_scale_factor_scaling(self):
        small = generate_tpch(0.001, seed=1)
        bigger = generate_tpch(0.002, seed=1)
        assert bigger.table("lineitem").n_rows == pytest.approx(
            2 * small.table("lineitem").n_rows, rel=0.01
        )

    def test_rejects_nonpositive_sf(self):
        with pytest.raises(EngineError):
            generate_tpch(0.0)

    def test_unknown_table(self, tiny_db):
        with pytest.raises(EngineError):
            tiny_db.table("lineorder")

    def test_deterministic(self):
        a = generate_tpch(0.001, seed=5)
        b = generate_tpch(0.001, seed=5)
        assert np.array_equal(
            a.table("lineitem").column("l_extendedprice"),
            b.table("lineitem").column("l_extendedprice"),
        )

    def test_seeds_differ(self):
        a = generate_tpch(0.001, seed=5)
        b = generate_tpch(0.001, seed=6)
        assert not np.array_equal(
            a.table("lineitem").column("l_extendedprice"),
            b.table("lineitem").column("l_extendedprice"),
        )


class TestReferentialIntegrity:
    def test_lineitem_orderkeys_exist(self, tiny_db):
        orders = tiny_db.table("orders").column("o_orderkey")
        lineitem_keys = tiny_db.table("lineitem").column("l_orderkey")
        assert np.isin(lineitem_keys, orders).all()

    def test_orders_custkeys_exist(self, tiny_db):
        customers = tiny_db.table("customer").column("c_custkey")
        orders_cust = tiny_db.table("orders").column("o_custkey")
        assert np.isin(orders_cust, customers).all()

    def test_shipdate_after_orderdate(self, tiny_db):
        lineitem = tiny_db.table("lineitem")
        orders = tiny_db.table("orders")
        order_dates = orders.column("o_orderdate")[lineitem.column("l_orderkey")]
        assert (lineitem.column("l_shipdate") > order_dates).all()

    def test_receipt_after_ship(self, tiny_db):
        lineitem = tiny_db.table("lineitem")
        assert (
            lineitem.column("l_receiptdate") > lineitem.column("l_shipdate")
        ).all()


class TestValueDistributions:
    def test_discount_range(self, tiny_db):
        discount = tiny_db.table("lineitem").column("l_discount")
        assert discount.min() >= 0.0
        assert discount.max() <= 0.10 + 1e-9

    def test_quantity_range(self, tiny_db):
        quantity = tiny_db.table("lineitem").column("l_quantity")
        assert quantity.min() >= 1
        assert quantity.max() <= 50

    def test_q6_selectivity_realistic(self, small_db):
        """The Q6 predicate selects a small single-digit percentage."""
        lineitem = small_db.table("lineitem")
        mask = (
            (lineitem.column("l_shipdate") >= 1096)
            & (lineitem.column("l_shipdate") < 1460)
            & (lineitem.column("l_discount") >= 0.05)
            & (lineitem.column("l_discount") <= 0.07)
            & (lineitem.column("l_quantity") < 24)
        )
        selectivity = mask.mean()
        assert 0.005 < selectivity < 0.05

    def test_market_segments_uniformish(self, small_db):
        segments = small_db.table("customer").column("c_mktsegment")
        counts = np.bincount(segments, minlength=5)
        assert counts.min() > 0.15 * counts.sum() / 5
