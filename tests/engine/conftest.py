"""Engine test fixtures: a tiny shared TPC-H database."""

import pytest

from repro.engine import generate_tpch


@pytest.fixture(scope="session")
def tiny_db():
    """SF 0.002 (~12k lineitem rows): enough structure, fast tests."""
    return generate_tpch(scale_factor=0.002, seed=3)


@pytest.fixture(scope="session")
def small_db():
    """SF 0.01 for the heavier correctness checks."""
    return generate_tpch(scale_factor=0.01, seed=0)
