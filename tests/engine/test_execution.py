"""Tests for engine execution drivers, including scheduler-driven runs."""

import pytest

from repro.core import SchedulerConfig, make_scheduler
from repro.engine import build_engine_query, run_plan
from repro.engine.execution import EngineEnvironment, engine_query_spec
from repro.simcore import Simulator


class TestRunPlan:
    def test_timings_cover_all_pipelines(self, tiny_db):
        plan = build_engine_query("Q3", tiny_db)
        result, timings = run_plan(plan)
        assert len(timings) == len(plan.pipelines)
        assert all(t.seconds >= 0.0 for t in timings)
        assert all(t.rows >= 0 for t in timings)

    def test_rows_match_processed(self, tiny_db):
        plan = build_engine_query("Q1", tiny_db)
        _, timings = run_plan(plan, morsel_rows=512)
        assert timings[0].rows == tiny_db.table("lineitem").n_rows


class TestEngineQuerySpec:
    def test_pipeline_structure_matches_plan(self, tiny_db):
        spec = engine_query_spec("Q3", tiny_db)
        plan = build_engine_query("Q3", tiny_db)
        assert len(spec.pipelines) == len(plan.pipelines)
        assert [p.name for p in spec.pipelines] == [p.name for p in plan.pipelines]

    def test_tuple_counts_from_cardinalities(self, tiny_db):
        spec = engine_query_spec("Q6", tiny_db)
        assert spec.pipelines[0].tuples == tiny_db.table("lineitem").n_rows


class TestSchedulerDrivenExecution:
    """The paper's scheduler drives real engine morsels (measured time)."""

    def _run(self, db, names, scheduler_name="stride", t_max=0.004):
        env = EngineEnvironment(db)
        scheduler = make_scheduler(
            scheduler_name, SchedulerConfig(n_workers=2, t_max=t_max)
        )
        workload = [
            (0.0001 * i, engine_query_spec(name, db))
            for i, name in enumerate(names)
        ]
        simulator = Simulator(scheduler, workload, seed=0, environment=env)
        result = simulator.run()
        return env, scheduler, result

    def test_single_query_correct_result(self, tiny_db):
        env, scheduler, result = self._run(tiny_db, ["Q6"])
        assert result.completed == 1
        query_id = result.records.records[0].query_id
        got = env.finish_query(query_id)
        expected = build_engine_query("Q6", tiny_db).execute()
        assert got == pytest.approx(expected)

    def test_concurrent_queries_all_correct(self, tiny_db):
        names = ["Q6", "Q1", "Q6", "Q13"]
        env, scheduler, result = self._run(tiny_db, names)
        assert result.completed == len(names)
        reference = {
            name: build_engine_query(name, tiny_db).execute() for name in set(names)
        }
        for record in result.records.records:
            got = env.finish_query(record.query_id)
            want = reference[record.name]
            if isinstance(want, float):
                assert got == pytest.approx(want)
            else:
                assert len(got) == len(want)

    def test_adaptive_execution_measures_real_time(self, tiny_db):
        env, scheduler, result = self._run(tiny_db, ["Q1"])
        record = result.records.records[0]
        # Measured CPU time is strictly positive and the latency covers it.
        assert record.cpu_seconds > 0.0
        assert record.latency > 0.0

    def test_decay_scheduler_on_real_engine(self, small_db):
        # Q18 (~100ms of numpy work at SF 0.01) vs Q6 (~1.5ms): the
        # duration gap must dwarf wall-clock measurement noise.
        env, scheduler, result = self._run(
            small_db, ["Q18", "Q6"], "stride", t_max=0.002
        )
        done = {r.name: r.completion_time for r in result.records.records}
        # The short query must finish before the long one (§3.2 (1)).
        assert done["Q6"] < done["Q18"]
