"""§3.1 validated on the real engine: adaptive tasks vs. static morsels.

The Figure 5 claim — fixed-size morsels yield wildly varying task
durations while adaptive tasks are uniform — is checked here against
*measured numpy kernel times*, not the simulator's cost model.  Two
heavy queries with very different per-tuple costs (Q13's aggregation
pipeline vs. Q1's wide scan) run concurrently under both policies.
"""

from __future__ import annotations

import pytest

from repro.core import SchedulerConfig, make_scheduler
from repro.core.morsel_exec import MorselMode
from repro.engine import generate_tpch
from repro.engine.execution import EngineEnvironment, engine_query_spec
from repro.simcore import Simulator
from repro.runtime.trace import TraceRecorder


@pytest.fixture(scope="module")
def adaptive_db():
    # Big enough that pipelines span many morsels/tasks.
    return generate_tpch(scale_factor=0.02, seed=7)


def run_real_trace(db, mode: MorselMode, t_max: float = 0.001) -> TraceRecorder:
    env = EngineEnvironment(db)
    trace = TraceRecorder(enabled=True)
    scheduler = make_scheduler(
        "fair",
        SchedulerConfig(n_workers=2, t_max=t_max, morsel_mode=mode),
    )
    workload = [
        (0.0, engine_query_spec("Q13", db)),
        (0.0, engine_query_spec("Q1", db)),
    ]
    result = Simulator(
        scheduler, workload, seed=7, environment=env, trace=trace
    ).run()
    assert result.completed == 2
    return trace


class TestAdaptiveOnRealEngine:
    def test_adaptive_tasks_more_uniform_than_static(self, adaptive_db):
        static = run_real_trace(adaptive_db, MorselMode.STATIC)
        adaptive = run_real_trace(adaptive_db, MorselMode.ADAPTIVE)
        static_spread = static.duration_stats(task_level=True)["robust_spread"]
        adaptive_spread = adaptive.duration_stats(task_level=True)["robust_spread"]
        # Real timings are noisy; require a clear uniformity win, not a
        # specific factor.
        assert adaptive_spread < static_spread

    def test_adaptive_tasks_near_target_duration(self, adaptive_db):
        adaptive = run_real_trace(adaptive_db, MorselMode.ADAPTIVE, t_max=0.001)
        stats = adaptive.duration_stats(task_level=True)
        # Median-ish task duration lands within a small factor of t_max
        # (startup tasks and final slivers are shorter).
        assert stats["mean"] < 5 * 0.001
        assert stats["max"] < 20 * 0.001  # no multi-hundred-ms stalls

    def test_throughput_estimates_converge_on_real_kernels(self, adaptive_db):
        env = EngineEnvironment(adaptive_db)
        scheduler = make_scheduler(
            "fair", SchedulerConfig(n_workers=1, t_max=0.002)
        )
        workload = [(0.0, engine_query_spec("Q1", adaptive_db))]
        Simulator(scheduler, workload, seed=7, environment=env).run()
        # After the run, the first pipeline's estimate reflects the real
        # measured rate (positive, finite, plausibly > 10k tuples/s).
        group = scheduler.completed
        assert group  # completed
