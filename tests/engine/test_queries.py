"""Correctness tests for the engine query plans.

Every query result is cross-checked against a direct numpy reference
computation over the same database — the morsel-wise pipelined execution
must agree exactly.
"""

import numpy as np
import pytest

from repro.engine import ENGINE_QUERIES, build_engine_query
from repro.errors import EngineError


class TestQ1:
    def test_matches_reference(self, tiny_db):
        rows = build_engine_query("Q1", tiny_db).execute(morsel_rows=1024)
        lineitem = tiny_db.table("lineitem")
        mask = lineitem.column("l_shipdate") <= 2_467
        flags = lineitem.column("l_returnflag")[mask]
        statuses = lineitem.column("l_linestatus")[mask]
        quantity = lineitem.column("l_quantity")[mask]
        reference = {}
        for flag in np.unique(flags):
            for status in np.unique(statuses):
                group_mask = (flags == flag) & (statuses == status)
                if group_mask.any():
                    reference[(int(flag), int(status))] = (
                        float(quantity[group_mask].sum()),
                        int(group_mask.sum()),
                    )
        assert len(rows) == len(reference)
        for row in rows:
            key = (row[0], row[1])
            sum_qty, count = reference[key]
            assert row[2] == pytest.approx(sum_qty)
            assert row[-1] == count


class TestQ3:
    def test_matches_reference(self, tiny_db):
        rows = build_engine_query("Q3", tiny_db).execute(morsel_rows=512)
        customer = tiny_db.table("customer")
        orders = tiny_db.table("orders")
        lineitem = tiny_db.table("lineitem")
        building = customer.encode_value("c_mktsegment", "BUILDING")
        good_customers = set(
            customer.column("c_custkey")[
                customer.column("c_mktsegment") == building
            ].tolist()
        )
        order_mask = (orders.column("o_orderdate") < 1_600) & np.isin(
            orders.column("o_custkey"), list(good_customers)
        )
        good_orders = set(orders.column("o_orderkey")[order_mask].tolist())
        li_mask = (lineitem.column("l_shipdate") > 1_600) & np.isin(
            lineitem.column("l_orderkey"), list(good_orders)
        )
        keys = lineitem.column("l_orderkey")[li_mask]
        revenue = (
            lineitem.column("l_extendedprice")[li_mask]
            * (1.0 - lineitem.column("l_discount")[li_mask])
        )
        reference = {}
        for key in np.unique(keys):
            reference[int(key)] = float(revenue[keys == key].sum())
        expected_top = sorted(reference.items(), key=lambda kv: -kv[1])[:10]
        assert len(rows) == len(expected_top)
        for (got_key, got_rev), (want_key, want_rev) in zip(rows, expected_top):
            assert got_rev == pytest.approx(want_rev)


class TestQ6:
    def test_matches_reference(self, tiny_db):
        result = build_engine_query("Q6", tiny_db).execute(morsel_rows=777)
        lineitem = tiny_db.table("lineitem")
        mask = (
            (lineitem.column("l_shipdate") >= 1_096)
            & (lineitem.column("l_shipdate") <= 1_460)
            & (lineitem.column("l_discount") >= 0.05)
            & (lineitem.column("l_discount") <= 0.07)
            & (lineitem.column("l_quantity") < 24)
        )
        expected = float(
            (
                lineitem.column("l_extendedprice")[mask]
                * lineitem.column("l_discount")[mask]
            ).sum()
        )
        assert result == pytest.approx(expected)


class TestQ13:
    def test_matches_reference(self, tiny_db):
        rows = build_engine_query("Q13", tiny_db).execute(morsel_rows=999)
        orders_cust = tiny_db.table("orders").column("o_custkey")
        per_customer = np.bincount(
            orders_cust, minlength=tiny_db.table("customer").n_rows
        )
        reference = {}
        for count in per_customer:
            reference[int(count)] = reference.get(int(count), 0) + 1
        got = dict(rows)
        assert got == reference

    def test_total_customers_conserved(self, tiny_db):
        rows = build_engine_query("Q13", tiny_db).execute()
        assert sum(n for _, n in rows) == tiny_db.table("customer").n_rows


class TestQ18:
    def test_matches_reference(self, tiny_db):
        rows = build_engine_query("Q18", tiny_db).execute(morsel_rows=2048)
        lineitem = tiny_db.table("lineitem")
        orders = tiny_db.table("orders")
        sums = np.zeros(orders.n_rows)
        np.add.at(sums, lineitem.column("l_orderkey"), lineitem.column("l_quantity"))
        big = np.where(sums > 190.0)[0]
        prices = orders.column("o_totalprice")[big]
        expected_count = min(100, len(big))
        assert len(rows) == expected_count
        got_prices = sorted((row[3] for row in rows), reverse=True)
        want_prices = sorted(prices, reverse=True)[:expected_count]
        np.testing.assert_allclose(got_prices, want_prices)


class TestQueryCatalog:
    def test_all_engine_queries_build(self, tiny_db):
        for name in ENGINE_QUERIES:
            plan = build_engine_query(name, tiny_db)
            assert plan.pipelines

    def test_unknown_query(self, tiny_db):
        with pytest.raises(EngineError):
            build_engine_query("Q99", tiny_db)

    def test_results_independent_of_morsel_size(self, tiny_db):
        for name in ("Q1", "Q6"):
            small = build_engine_query(name, tiny_db).execute(morsel_rows=64)
            large = build_engine_query(name, tiny_db).execute(morsel_rows=100_000)
            if isinstance(small, float):
                assert small == pytest.approx(large)
            else:
                assert len(small) == len(large)


class TestQ4:
    def test_matches_reference(self, tiny_db):
        rows = build_engine_query("Q4", tiny_db).execute(morsel_rows=1024)
        lineitem = tiny_db.table("lineitem")
        orders = tiny_db.table("orders")
        late_keys = set(
            lineitem.column("l_orderkey")[
                lineitem.column("l_commitdate") < lineitem.column("l_receiptdate")
            ].tolist()
        )
        order_mask = (
            (orders.column("o_orderdate") >= 800)
            & (orders.column("o_orderdate") <= 891)
        )
        reference = {}
        priorities = orders.column("o_orderpriority")[order_mask]
        keys = orders.column("o_orderkey")[order_mask]
        for priority, key in zip(priorities, keys):
            if int(key) in late_keys:
                reference[int(priority)] = reference.get(int(priority), 0) + 1
        got = {row[0]: row[1] for row in rows}
        assert got == reference


class TestQ14:
    def test_matches_reference(self, tiny_db):
        result = build_engine_query("Q14", tiny_db).execute(morsel_rows=512)
        lineitem = tiny_db.table("lineitem")
        part_brand = tiny_db.table("part").column("p_brand")
        mask = (lineitem.column("l_shipdate") >= 1_000) & (
            lineitem.column("l_shipdate") <= 1_030
        )
        brands = part_brand[lineitem.column("l_partkey")[mask]]
        revenue = lineitem.column("l_extendedprice")[mask] * (
            1.0 - lineitem.column("l_discount")[mask]
        )
        total = float(revenue.sum())
        promo = float(revenue[brands < 5].sum())
        expected = 100.0 * promo / total if total else 0.0
        assert result == pytest.approx(expected)


class TestQ19:
    def test_matches_reference(self, tiny_db):
        result = build_engine_query("Q19", tiny_db).execute(morsel_rows=4096)
        lineitem = tiny_db.table("lineitem")
        part_brand = tiny_db.table("part").column("p_brand")
        quantity = lineitem.column("l_quantity")
        quantity_mask = (
            ((quantity >= 1) & (quantity <= 11))
            | ((quantity >= 10) & (quantity <= 20))
            | ((quantity >= 20) & (quantity <= 30))
        )
        brands = part_brand[lineitem.column("l_partkey")]
        mask = quantity_mask & np.isin(brands, [1, 7, 13])
        expected = float(
            (
                lineitem.column("l_extendedprice")[mask]
                * (1.0 - lineitem.column("l_discount")[mask])
            ).sum()
        )
        assert result == pytest.approx(expected)


class TestQ12:
    def test_matches_reference(self, tiny_db):
        rows = build_engine_query("Q12", tiny_db).execute(morsel_rows=777)
        lineitem = tiny_db.table("lineitem")
        orders = tiny_db.table("orders")
        mask = (
            (lineitem.column("l_commitdate") < lineitem.column("l_receiptdate"))
            & (lineitem.column("l_receiptdate") >= 1_096)
            & (lineitem.column("l_receiptdate") <= 1_460)
            & np.isin(lineitem.column("l_shipmode"), [5, 6])
        )
        priorities = orders.column("o_orderpriority")[
            lineitem.column("l_orderkey")[mask]
        ]
        modes = lineitem.column("l_shipmode")[mask]
        reference = {}
        for mode, priority in zip(modes, priorities):
            entry = reference.setdefault(int(mode), [0, 0])
            entry[0 if priority < 2 else 1] += 1
        got = {row[0]: [row[1], row[2]] for row in rows}
        assert got == reference


class TestQ22:
    def test_matches_reference(self, tiny_db):
        result = build_engine_query("Q22", tiny_db).execute(morsel_rows=500)
        customer = tiny_db.table("customer")
        orders = tiny_db.table("orders")
        balances = customer.column("c_acctbal")
        mean_positive = balances[balances > 0.0].mean()
        has_orders = np.zeros(customer.n_rows, dtype=bool)
        has_orders[orders.column("o_custkey")] = True
        idle_rich = (balances > mean_positive) & ~has_orders
        assert result["count"] == int(idle_rich.sum())
        assert result["total_balance"] == pytest.approx(
            float(balances[idle_rich].sum())
        )

    def test_finds_orderless_customers(self, tiny_db):
        """The dbgen rule (every third customer orderless) makes Q22
        non-degenerate."""
        result = build_engine_query("Q22", tiny_db).execute()
        assert result["count"] > 0
