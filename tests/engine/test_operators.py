"""Tests for the morsel-wise physical operators."""

import numpy as np
import pytest

from repro.engine.expressions import Col
from repro.engine.operators import (
    AntiJoinProbe,
    CollectSink,
    Filter,
    HashAggregateSink,
    HashJoinBuildSink,
    HashJoinProbe,
    JoinTable,
    LazyJoinTable,
    Project,
    ScalarAggregateSink,
    SemiJoinProbe,
    TopKSink,
)
from repro.errors import EngineError


def batch(**columns):
    return {name: np.asarray(values) for name, values in columns.items()}


class TestTransforms:
    def test_filter(self):
        out = Filter(Col("a") > 2).apply(batch(a=[1, 2, 3, 4], b=[10, 20, 30, 40]))
        assert out["a"].tolist() == [3, 4]
        assert out["b"].tolist() == [30, 40]

    def test_project(self):
        out = Project({"double": Col("a") * 2}).apply(batch(a=[1, 2]))
        assert list(out) == ["double"]
        assert out["double"].tolist() == [2, 4]

    def test_project_requires_outputs(self):
        with pytest.raises(EngineError):
            Project({})


class TestJoinTable:
    def test_lookup(self):
        table = JoinTable("k", batch(k=[5, 1, 3], v=[50, 10, 30]))
        mask, idx = table.lookup(np.array([1, 2, 5]))
        assert mask.tolist() == [True, False, True]
        payload = table.gather(idx, ["v"])
        assert payload["v"].tolist() == [10, 50]

    def test_duplicate_keys_rejected(self):
        with pytest.raises(EngineError):
            JoinTable("k", batch(k=[1, 1], v=[1, 2]))

    def test_empty_table(self):
        table = JoinTable("k", {"k": np.empty(0, dtype=np.int64)})
        mask, idx = table.lookup(np.array([1, 2]))
        assert not mask.any()
        assert len(idx) == 0

    def test_missing_key_column(self):
        with pytest.raises(EngineError):
            JoinTable("k", batch(v=[1]))


class TestJoinProbes:
    def _table(self):
        ref = LazyJoinTable()
        ref.set(JoinTable("k", batch(k=[1, 3], payload=[100, 300])))
        return ref

    def test_inner_probe_extends_payload(self):
        probe = HashJoinProbe(self._table(), "fk", ["payload"])
        out = probe.apply(batch(fk=[1, 2, 3], x=[10, 20, 30]))
        assert out["x"].tolist() == [10, 30]
        assert out["payload"].tolist() == [100, 300]

    def test_semi_join(self):
        probe = SemiJoinProbe(self._table(), "fk")
        out = probe.apply(batch(fk=[1, 2, 3]))
        assert out["fk"].tolist() == [1, 3]

    def test_anti_join(self):
        probe = AntiJoinProbe(self._table(), "fk")
        out = probe.apply(batch(fk=[1, 2, 3]))
        assert out["fk"].tolist() == [2]

    def test_unset_lazy_table_raises(self):
        """Probing before the build pipeline finalized is a plan bug."""
        probe = SemiJoinProbe(LazyJoinTable(), "fk")
        with pytest.raises(EngineError):
            probe.apply(batch(fk=[1]))


class TestBuildSink:
    def test_build_across_morsels(self):
        ref = LazyJoinTable()
        sink = HashJoinBuildSink("k", ["v"], ref)
        sink.consume(batch(k=[1, 2], v=[10, 20]))
        sink.consume(batch(k=[3], v=[30]))
        sink.finalize()
        table = ref.get()
        assert table.n_rows == 3
        mask, idx = table.lookup(np.array([2]))
        assert table.gather(idx, ["v"])["v"].tolist() == [20]

    def test_empty_build(self):
        ref = LazyJoinTable()
        sink = HashJoinBuildSink("k", [], ref)
        sink.finalize()
        assert ref.get().n_rows == 0


class TestHashAggregateSink:
    def test_single_key_sums_and_counts(self):
        sink = HashAggregateSink(["g"], {"total": Col("v")}, count_alias="n")
        sink.consume(batch(g=[1, 1, 2], v=[10.0, 20.0, 5.0]))
        sink.consume(batch(g=[2, 3], v=[5.0, 7.0]))
        rows = sink.result_rows()
        assert rows == [(1, 30.0, 2), (2, 10.0, 2), (3, 7.0, 1)]

    def test_multi_key(self):
        sink = HashAggregateSink(["a", "b"], {"s": Col("v")})
        sink.consume(batch(a=[1, 1, 2], b=[0, 1, 0], v=[1.0, 2.0, 3.0]))
        assert sink.result_rows() == [(1, 0, 1.0), (1, 1, 2.0), (2, 0, 3.0)]

    def test_requires_group_columns(self):
        with pytest.raises(EngineError):
            HashAggregateSink([], {"s": Col("v")})

    def test_empty_batches_ignored(self):
        sink = HashAggregateSink(["g"], {"s": Col("v")})
        sink.consume(batch(g=[], v=[]))
        assert sink.result_rows() == []

    def test_morsel_independence(self):
        """Results must not depend on how input is split into morsels."""
        g = np.random.default_rng(0).integers(0, 10, 1000)
        v = np.random.default_rng(1).random(1000)
        whole = HashAggregateSink(["g"], {"s": Col("v")})
        whole.consume(batch(g=g, v=v))
        split = HashAggregateSink(["g"], {"s": Col("v")})
        for start in range(0, 1000, 37):
            split.consume(batch(g=g[start : start + 37], v=v[start : start + 37]))
        for (k1, s1), (k2, s2) in zip(whole.result_rows(), split.result_rows()):
            assert k1 == k2
            assert s1 == pytest.approx(s2)


class TestScalarAggregateSink:
    def test_sums_and_count(self):
        sink = ScalarAggregateSink({"s": Col("v")})
        sink.consume(batch(v=[1.0, 2.0]))
        sink.consume(batch(v=[3.0]))
        assert sink.totals["s"] == pytest.approx(6.0)
        assert sink.count == 3


class TestTopKSink:
    def test_keeps_largest(self):
        sink = TopKSink("score", 2, ["id"])
        sink.consume(batch(score=[1.0, 9.0, 5.0], id=[1, 2, 3]))
        sink.consume(batch(score=[7.0], id=[4]))
        rows = sink.result_rows()
        # Columns sorted alphabetically: (id, score); descending by score.
        assert [row[1] for row in rows] == [9.0, 7.0]

    def test_fewer_than_k(self):
        sink = TopKSink("score", 10, ["id"])
        sink.consume(batch(score=[1.0], id=[1]))
        assert len(sink.result_rows()) == 1

    def test_empty(self):
        assert TopKSink("score", 3, []).result_rows() == []

    def test_invalid_k(self):
        with pytest.raises(EngineError):
            TopKSink("score", 0, [])


class TestCollectSink:
    def test_concatenates(self):
        sink = CollectSink(["a"])
        sink.consume(batch(a=[1, 2]))
        sink.consume(batch(a=[3]))
        sink.finalize()
        assert sink.result["a"].tolist() == [1, 2, 3]

    def test_empty(self):
        sink = CollectSink(["a"])
        sink.finalize()
        assert sink.result["a"].tolist() == []


class TestExtendedAggregates:
    def test_min_max_avg(self):
        sink = HashAggregateSink(
            ["g"],
            sums={"s": Col("v")},
            mins={"lo": Col("v")},
            maxs={"hi": Col("v")},
            avgs={"mean": Col("v")},
            count_alias="n",
        )
        sink.consume(batch(g=[1, 1, 2], v=[10.0, 20.0, 5.0]))
        sink.consume(batch(g=[1], v=[1.0]))
        rows = sink.result_rows()
        # (key, sum, min, max, avg, count)
        assert rows[0] == (1, 31.0, 1.0, 20.0, pytest.approx(31.0 / 3), 3)
        assert rows[1] == (2, 5.0, 5.0, 5.0, 5.0, 1)

    def test_avg_merges_across_morsels(self):
        """AVG must be (sum, count)-decomposed, not averaged averages."""
        whole = HashAggregateSink(["g"], sums={}, avgs={"a": Col("v")})
        whole.consume(batch(g=[1, 1, 1], v=[1.0, 2.0, 9.0]))
        split = HashAggregateSink(["g"], sums={}, avgs={"a": Col("v")})
        split.consume(batch(g=[1, 1], v=[1.0, 2.0]))
        split.consume(batch(g=[1], v=[9.0]))
        assert whole.result_rows() == split.result_rows()


class TestSortSink:
    def test_full_sort(self):
        from repro.engine.operators import SortSink

        sink = SortSink(["k"], ["v"])
        sink.consume(batch(k=[3, 1], v=[30, 10]))
        sink.consume(batch(k=[2], v=[20]))
        sink.finalize()
        rows = sink.result_rows()
        assert [row[0] for row in rows] == [1, 2, 3]

    def test_descending_with_limit(self):
        from repro.engine.operators import SortSink

        sink = SortSink(["k"], [], descending=True, limit=2)
        sink.consume(batch(k=[5, 1, 9, 3]))
        sink.finalize()
        assert [row[0] for row in sink.result_rows()] == [9, 5]

    def test_multi_column_lexicographic(self):
        from repro.engine.operators import SortSink

        sink = SortSink(["a", "b"], [])
        sink.consume(batch(a=[1, 1, 0], b=[2, 1, 9]))
        sink.finalize()
        assert sink.result_rows() == [(0, 9), (1, 1), (1, 2)]

    def test_read_before_finalize(self):
        from repro.engine.operators import SortSink

        sink = SortSink(["k"], [])
        with pytest.raises(EngineError):
            sink.result_rows()

    def test_requires_sort_columns(self):
        from repro.engine.operators import SortSink

        with pytest.raises(EngineError):
            SortSink([], [])

    def test_empty_input(self):
        from repro.engine.operators import SortSink

        sink = SortSink(["k"], [])
        sink.finalize()
        assert sink.result_rows() == []
