"""Tests for cost-model calibration against real executions."""

import pytest

from repro.engine import calibrate_pipeline_rates
from repro.engine.calibration import relative_cost_comparison


class TestCalibration:
    def test_measures_all_queries(self, tiny_db):
        calibrated = calibrate_pipeline_rates(tiny_db, queries=("Q1", "Q6"))
        assert set(calibrated) == {"Q1", "Q6"}
        for entry in calibrated.values():
            assert entry.total_seconds > 0.0
            for pipeline in entry.pipelines:
                assert pipeline.tuples_per_second > 0.0

    def test_query_spec_roundtrip(self, tiny_db):
        calibrated = calibrate_pipeline_rates(tiny_db, queries=("Q6",))
        spec = calibrated["Q6"].to_query_spec()
        assert spec.name == "Q6"
        assert spec.total_work_seconds == pytest.approx(
            calibrated["Q6"].total_seconds, rel=0.01
        )

    def test_relative_ordering_preserved(self, tiny_db):
        """Q6 is the cheapest query in both measured and shipped profiles;
        Q1/Q13/Q18 are several times more expensive."""
        calibrated = calibrate_pipeline_rates(
            tiny_db, queries=("Q1", "Q6", "Q13", "Q18")
        )
        rows = {row["query"]: row for row in relative_cost_comparison(calibrated)}
        for name in ("Q1", "Q13", "Q18"):
            # Typically >5x; the loose bound tolerates wall-clock noise
            # from concurrent processes on shared CI machines.
            assert rows[name]["measured_vs_q6"] > 1.2
            assert rows[name]["profile_vs_q6"] > 1.5

    def test_comparison_requires_q6(self, tiny_db):
        calibrated = calibrate_pipeline_rates(tiny_db, queries=("Q1",))
        with pytest.raises(ValueError):
            relative_cost_comparison(calibrated)
