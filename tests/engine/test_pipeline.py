"""Tests for pipelines and plans."""

import numpy as np
import pytest

from repro.engine.expressions import Col
from repro.engine.operators import CollectSink, Filter, ScalarAggregateSink
from repro.engine.pipeline import EnginePipeline, QueryPlan, materialized_relation
from repro.engine.relation import Relation
from repro.errors import EngineError


def relation(n=100):
    return Relation({"a": np.arange(n, dtype=np.int64)})


def simple_pipeline(n=100, name="p"):
    sink = ScalarAggregateSink({"s": Col("a")})
    pipeline = EnginePipeline(
        name=name,
        source=relation(n),
        columns=["a"],
        transforms=[],
        sink=sink,
    )
    return pipeline, sink


class TestEnginePipeline:
    def test_morsel_cursor(self):
        pipeline, sink = simple_pipeline(100)
        assert pipeline.run_morsel(30) == 30
        assert pipeline.run_morsel(80) == 70  # clamped
        assert pipeline.exhausted
        assert pipeline.run_morsel(10) == 0

    def test_result_correct_for_any_morsel_size(self):
        for morsel in (1, 7, 64, 1000):
            pipeline, sink = simple_pipeline(100)
            pipeline.run_to_completion(morsel)
            assert sink.totals["s"] == pytest.approx(sum(range(100)))

    def test_finalize_twice_rejected(self):
        pipeline, _ = simple_pipeline(10)
        pipeline.run_to_completion()
        with pytest.raises(EngineError):
            pipeline.finalize()

    def test_run_after_finalize_rejected(self):
        pipeline, _ = simple_pipeline(10)
        pipeline.run_to_completion()
        with pytest.raises(EngineError):
            pipeline.run_morsel(1)

    def test_finalize_drains_leftovers(self):
        """Under-estimated task sets must not lose rows."""
        pipeline, sink = simple_pipeline(100)
        pipeline.run_morsel(10)
        pipeline.finalize()
        assert sink.totals["s"] == pytest.approx(sum(range(100)))

    def test_lazy_source_needs_estimate(self):
        sink = ScalarAggregateSink({"s": Col("a")})
        pipeline = EnginePipeline(
            name="lazy",
            source=lambda: relation(10),
            columns=["a"],
            transforms=[],
            sink=sink,
        )
        with pytest.raises(EngineError):
            _ = pipeline.estimated_rows

    def test_lazy_source_resolved_on_demand(self):
        calls = []

        def source():
            calls.append(1)
            return relation(10)

        sink = ScalarAggregateSink({"s": Col("a")})
        pipeline = EnginePipeline(
            name="lazy",
            source=source,
            columns=["a"],
            transforms=[],
            sink=sink,
            estimated_rows=10,
        )
        assert pipeline.estimated_rows == 10
        assert not calls  # estimate does not resolve the source
        pipeline.run_to_completion()
        assert calls == [1]
        assert sink.totals["s"] == pytest.approx(45.0)


class TestQueryPlan:
    def test_requires_pipelines(self):
        with pytest.raises(EngineError):
            QueryPlan("empty", [], lambda: None)

    def test_execute_runs_in_order(self):
        collect = CollectSink(["a"])
        first = EnginePipeline("first", relation(5), ["a"], [], collect)
        second_sink = ScalarAggregateSink({"s": Col("a")})
        second = EnginePipeline(
            "second",
            source=lambda: materialized_relation(collect.result),
            columns=["a"],
            transforms=[Filter(Col("a") > 1)],
            sink=second_sink,
            estimated_rows=5,
        )
        plan = QueryPlan("demo", [first, second], lambda: second_sink.totals["s"])
        assert plan.execute() == pytest.approx(2 + 3 + 4)

    def test_result_before_finalize_rejected(self):
        pipeline, _ = simple_pipeline(10)
        plan = QueryPlan("demo", [pipeline], lambda: 1)
        with pytest.raises(EngineError):
            plan.result()


class TestMaterializedRelation:
    def test_roundtrip(self):
        rel = materialized_relation({"x": np.arange(3)})
        assert rel.n_rows == 3

    def test_empty_rejected(self):
        with pytest.raises(EngineError):
            materialized_relation({})


class TestExplain:
    def test_explain_lists_pipelines(self):
        pipeline, _ = simple_pipeline(10, name="scan-things")
        plan = QueryPlan("demo", [pipeline], lambda: None)
        text = plan.explain()
        assert "QueryPlan demo" in text
        assert "scan-things" in text
        assert "ScalarAggregateSink" in text

    def test_explain_real_query(self):
        from repro.engine import build_engine_query, generate_tpch

        db = generate_tpch(0.001, seed=1)
        text = build_engine_query("Q3", db).explain()
        assert "build-customer" in text
        assert "SemiJoinProbe" in text
