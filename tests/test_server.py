"""Tests for the AnalyticsServer facade."""

import threading

import pytest

from repro.engine import build_engine_query, generate_tpch
from repro.errors import AdmissionError, ReproError
from repro.runtime import BackendState
from repro.server import AnalyticsServer


@pytest.fixture(scope="module")
def server_db():
    return generate_tpch(scale_factor=0.003, seed=5)


def make_server(server_db, **kwargs):
    defaults = dict(scheduler="stride", n_workers=2, seed=5, database=server_db)
    defaults.update(kwargs)
    return AnalyticsServer(**defaults)


class TestSubmission:
    def test_unknown_query_rejected(self, server_db):
        with pytest.raises(ReproError):
            make_server(server_db).submit("Q99")

    def test_negative_arrival_rejected(self, server_db):
        with pytest.raises(ReproError):
            make_server(server_db).submit("Q6", at=-1.0)

    def test_tickets_are_sequential(self, server_db):
        server = make_server(server_db)
        assert server.submit("Q6") == 0
        assert server.submit("Q1") == 1

    def test_available_queries(self, server_db):
        assert "Q6" in make_server(server_db).available_queries


class TestExecution:
    def test_single_query_result(self, server_db):
        server = make_server(server_db)
        ticket = server.submit("Q6")
        records = server.run()
        assert len(records) == 1
        expected = build_engine_query("Q6", server_db).execute()
        assert server.result(ticket) == pytest.approx(expected)
        assert server.latency(ticket) > 0.0

    def test_results_map_to_tickets_with_out_of_order_arrivals(self, server_db):
        server = make_server(server_db)
        late = server.submit("Q6", at=0.01)   # ticket 0 arrives later
        early = server.submit("Q1", at=0.0)   # ticket 1 arrives first
        server.run()
        q6_expected = build_engine_query("Q6", server_db).execute()
        assert server.result(late) == pytest.approx(q6_expected)
        assert isinstance(server.result(early), list)

    def test_run_empty_is_noop(self, server_db):
        assert make_server(server_db).run() == []

    def test_result_before_run_rejected(self, server_db):
        server = make_server(server_db)
        ticket = server.submit("Q6")
        with pytest.raises(ReproError):
            server.result(ticket)
        with pytest.raises(ReproError):
            server.latency(ticket)

    def test_multiple_runs_accumulate(self, server_db):
        server = make_server(server_db)
        first = server.submit("Q6")
        server.run()
        second = server.submit("Q13")
        server.run()
        assert server.latency(first) > 0.0
        assert server.record(second).name == "Q13"

    def test_tuning_scheduler_variant(self, server_db):
        server = make_server(server_db, scheduler="tuning")
        tickets = [server.submit("Q6") for _ in range(3)]
        server.run()
        for ticket in tickets:
            assert server.latency(ticket) > 0.0


class TestConstruction:
    def test_unknown_scheduler_rejected(self, server_db):
        with pytest.raises(ReproError, match="scheduler"):
            make_server(server_db, scheduler="nope")

    def test_unknown_backend_rejected(self, server_db):
        with pytest.raises(ReproError, match="backend"):
            make_server(server_db, backend="gpu")

    def test_unknown_admission_rejected(self, server_db):
        with pytest.raises(ReproError, match="admission"):
            make_server(server_db, admission="drop")

    def test_block_admission_needs_threaded_backend(self, server_db):
        with pytest.raises(ReproError, match="block"):
            make_server(server_db, admission="block", max_pending=2)

    def test_max_pending_must_be_positive(self, server_db):
        with pytest.raises(ReproError, match="max_pending"):
            make_server(server_db, max_pending=0)


class TestLifecycle:
    def test_state_progression(self, server_db):
        server = make_server(server_db)
        assert server.state is BackendState.NEW
        server.start()
        assert server.state is BackendState.RUNNING
        server.shutdown()
        assert server.state is BackendState.CLOSED

    def test_shutdown_idempotent(self, server_db):
        server = make_server(server_db)
        server.shutdown()
        server.shutdown()
        assert server.state is BackendState.CLOSED

    def test_submit_after_shutdown_rejected(self, server_db):
        server = make_server(server_db)
        server.shutdown()
        with pytest.raises(ReproError):
            server.submit("Q6")

    def test_run_after_shutdown_rejected(self, server_db):
        server = make_server(server_db)
        server.shutdown()
        with pytest.raises(ReproError):
            server.run()

    def test_results_readable_after_shutdown(self, server_db):
        server = make_server(server_db)
        ticket = server.submit("Q6")
        server.run()
        server.shutdown()
        assert server.latency(ticket) > 0.0
        assert server.record(ticket).name == "Q6"

    def test_drain_then_submit_again(self, server_db):
        """drain() keeps the server open, unlike shutdown()."""
        server = make_server(server_db)
        server.submit("Q6")
        server.drain()
        assert server.state is BackendState.RUNNING
        second = server.submit("Q1")
        server.drain()
        assert server.latency(second) > 0.0


class TestBackpressure:
    def test_reject_when_full(self, server_db):
        server = make_server(server_db, max_pending=2)
        server.submit("Q6")
        server.submit("Q6")
        with pytest.raises(AdmissionError):
            server.submit("Q6")

    def test_admission_error_is_repro_error(self, server_db):
        server = make_server(server_db, max_pending=1)
        server.submit("Q6")
        with pytest.raises(ReproError):
            server.submit("Q6")

    def test_drain_frees_capacity(self, server_db):
        server = make_server(server_db, max_pending=1)
        server.submit("Q6")
        server.drain()
        ticket = server.submit("Q6")  # accepted: nothing pending anymore
        server.drain()
        assert server.latency(ticket) > 0.0

    def test_pending_and_completed_counts(self, server_db):
        server = make_server(server_db)
        server.submit("Q6")
        server.submit("Q1")
        assert server.pending_count == 2
        assert server.completed_count == 0
        server.drain()
        assert server.pending_count == 0
        assert server.completed_count == 2


class TestThreadedBackend:
    def make_threaded(self, server_db, **kwargs):
        return make_server(server_db, backend="threaded", n_workers=4, **kwargs)

    def test_results_match_direct_execution(self, server_db):
        server = self.make_threaded(server_db)
        try:
            ticket = server.submit("Q6")
            records = server.drain()
        finally:
            server.shutdown()
        assert len(records) == 1
        expected = build_engine_query("Q6", server_db).execute()
        assert server.result(ticket) == pytest.approx(expected)
        assert server.latency(ticket) > 0.0

    def test_submit_while_running(self, server_db):
        server = self.make_threaded(server_db)
        try:
            server.start()
            first = server.submit("Q6")
            server.wait(first, timeout=30.0)
            # The server is mid-flight; admission still works.
            second = server.submit("Q1")
            record = server.wait(second, timeout=30.0)
            assert record.name == "Q1"
            server.drain()
        finally:
            server.shutdown()

    def test_arrival_time_rejected(self, server_db):
        server = self.make_threaded(server_db)
        try:
            with pytest.raises(ReproError):
                server.submit("Q6", at=0.5)
        finally:
            server.shutdown()

    def test_wait_timeout_expires(self, server_db):
        server = make_server(server_db, backend="threaded", n_workers=1)
        try:
            server.start()
            ticket = server.submit("Q18")
            with pytest.raises(ReproError, match="did not complete"):
                server.wait(ticket, timeout=1e-4)
            # The timeout is the caller's, not the query's: the query
            # keeps running and completes normally.
            record = server.wait(ticket, timeout=60.0)
            assert not record.cancelled and not record.failed
            server.drain()
        finally:
            server.shutdown()

    def test_blocking_admission_waits_for_capacity(self, server_db):
        server = self.make_threaded(
            server_db, admission="block", max_pending=2
        )
        try:
            server.start()
            tickets = []
            # More submissions than capacity: the extra calls block
            # until earlier queries complete instead of raising.
            def submit_all():
                for _ in range(5):
                    tickets.append(server.submit("Q6"))

            submitter = threading.Thread(target=submit_all)
            submitter.start()
            submitter.join(timeout=60.0)
            assert not submitter.is_alive()
            server.drain()
        finally:
            server.shutdown()
        assert len(tickets) == 5
        for ticket in tickets:
            assert server.latency(ticket) > 0.0

    def test_wait_on_simulated_backend_requires_drain(self, server_db):
        server = make_server(server_db)
        ticket = server.submit("Q6")
        with pytest.raises(ReproError, match="drain"):
            server.wait(ticket)


class TestProcessBackend:
    def make_process(self, server_db, **kwargs):
        return make_server(server_db, backend="process", **kwargs)

    def test_results_match_direct_execution(self, server_db):
        server = self.make_process(server_db)
        try:
            ticket = server.submit("Q6")
            records = server.drain()
        finally:
            server.shutdown()
        assert len(records) == 1
        expected = build_engine_query("Q6", server_db).execute()
        assert server.result(ticket) == pytest.approx(expected)
        assert server.latency(ticket) > 0.0

    def test_matches_simulated_backend_results(self, server_db):
        # Engine morsels are timed with the wall clock, so latencies
        # are not bit-reproducible at this layer (they differ between
        # two *simulated* runs too); the query results and the
        # ticket→record mapping are deterministic and must agree.
        # Bit-identity of the pure-simulation path is covered in
        # tests/runtime/test_process_backend.py.
        def run(backend):
            server = make_server(server_db, backend=backend)
            tickets = [server.submit(n) for n in ("Q6", "Q1", "Q13")]
            server.drain()
            out = [
                (server.record(t).name, server.result(t)) for t in tickets
            ]
            server.shutdown()
            return out

        def flatten(value):
            if isinstance(value, (list, tuple)):
                return [x for item in value for x in flatten(item)]
            return [value]

        via_process = run("process")
        via_simulated = run("simulated")
        for (pname, presult), (sname, sresult) in zip(
            via_process, via_simulated
        ):
            assert pname == sname
            assert flatten(presult) == pytest.approx(flatten(sresult))

    def test_virtual_arrival_times_accepted(self, server_db):
        server = self.make_process(server_db)
        try:
            late = server.submit("Q6", at=0.01)
            early = server.submit("Q1", at=0.0)
            server.drain()
        finally:
            server.shutdown()
        assert server.record(late).name == "Q6"
        assert server.record(early).name == "Q1"

    def test_epochs_accumulate(self, server_db):
        server = self.make_process(server_db)
        try:
            first = server.submit("Q6")
            server.drain()
            second = server.submit("Q13")
            server.drain()
        finally:
            server.shutdown()
        assert server.record(first).name == "Q6"
        assert server.record(second).name == "Q13"
        assert server.completed_count == 2

    def test_hand_built_database_is_shipped_whole(self, server_db):
        """A database without a generation profile still works: the
        environment falls back to pickling the relations across."""
        from dataclasses import replace

        hand_built = replace(server_db, generated=False)
        server = make_server(hand_built, backend="process")
        try:
            ticket = server.submit("Q6")
            server.drain()
        finally:
            server.shutdown()
        expected = build_engine_query("Q6", server_db).execute()
        assert server.result(ticket) == pytest.approx(expected)

    def test_results_readable_after_shutdown(self, server_db):
        server = self.make_process(server_db)
        ticket = server.submit("Q6")
        server.drain()
        server.shutdown()
        assert server.latency(ticket) > 0.0
        assert server.record(ticket).name == "Q6"


class TestResultErrorPaths:
    """poll/wait/result semantics for unfinished, timed-out and
    cancelled tickets, across all three backends."""

    def test_simulated_poll_and_wait_before_run(self, server_db):
        server = make_server(server_db)
        ticket = server.submit("Q6")
        assert server.poll(ticket) is None
        with pytest.raises(ReproError, match="has not finished"):
            server.wait(ticket)
        with pytest.raises(ReproError, match="did you run"):
            server.result(ticket)

    def test_simulated_unknown_ticket(self, server_db):
        server = make_server(server_db)
        with pytest.raises(ReproError, match="unknown job id"):
            server.poll(99)
        with pytest.raises(ReproError, match="unknown job id"):
            server.result(99)

    def test_simulated_cancelled_ticket_result_raises(self, server_db):
        from repro.errors import QueryCancelledError

        server = make_server(server_db)
        ticket = server.submit("Q6")
        assert server.cancel(ticket) is True
        server.run()
        with pytest.raises(QueryCancelledError):
            server.result(ticket)
        assert server.poll(ticket).cancelled

    def test_threaded_wait_timeout(self, server_db):
        server = make_server(server_db, backend="threaded", n_workers=2)
        # Not started: nothing executes, so a tiny timeout must elapse.
        ticket = server.submit("Q18")
        try:
            with pytest.raises(ReproError, match="did not complete within"):
                server.wait(ticket, timeout=0.05)
        finally:
            server.start()
            server.drain()
            server.shutdown()

    def test_threaded_result_before_completion(self, server_db):
        server = make_server(server_db, backend="threaded", n_workers=2)
        ticket = server.submit("Q6")  # queued; server not started
        try:
            with pytest.raises(ReproError, match="did you run"):
                server.result(ticket)
        finally:
            server.start()
            server.drain()
            server.shutdown()

    def test_threaded_cancelled_ticket_result_raises(self, server_db):
        from repro.errors import QueryCancelledError

        server = make_server(server_db, backend="threaded", n_workers=2)
        server.start()
        try:
            ticket = server.submit("Q18")
            cancelled = server.cancel(ticket)
            record = server.wait(ticket, timeout=30.0)
            if cancelled:
                assert record.cancelled
                with pytest.raises(QueryCancelledError):
                    server.result(ticket)
            server.drain()
        finally:
            server.shutdown()

    def test_process_wait_and_result_before_run(self, server_db):
        server = make_server(server_db, backend="process")
        try:
            ticket = server.submit("Q6")
            assert server.poll(ticket) is None
            with pytest.raises(ReproError, match="has not finished"):
                server.wait(ticket)
            with pytest.raises(ReproError, match="did you run"):
                server.result(ticket)
            server.run()
            assert server.result(ticket) == pytest.approx(
                build_engine_query("Q6", server_db).execute()
            )
        finally:
            server.shutdown()

    def test_process_cancelled_ticket_result_raises(self, server_db):
        from repro.errors import QueryCancelledError

        server = make_server(server_db, backend="process")
        try:
            ticket = server.submit("Q6")
            assert server.cancel(ticket) is True
            server.run()
            with pytest.raises(QueryCancelledError):
                server.result(ticket)
        finally:
            server.shutdown()
