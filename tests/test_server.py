"""Tests for the AnalyticsServer facade."""

import pytest

from repro.engine import build_engine_query, generate_tpch
from repro.errors import ReproError
from repro.server import AnalyticsServer


@pytest.fixture(scope="module")
def server_db():
    return generate_tpch(scale_factor=0.003, seed=5)


def make_server(server_db, **kwargs):
    defaults = dict(scheduler="stride", n_workers=2, seed=5, database=server_db)
    defaults.update(kwargs)
    return AnalyticsServer(**defaults)


class TestSubmission:
    def test_unknown_query_rejected(self, server_db):
        with pytest.raises(ReproError):
            make_server(server_db).submit("Q99")

    def test_negative_arrival_rejected(self, server_db):
        with pytest.raises(ReproError):
            make_server(server_db).submit("Q6", at=-1.0)

    def test_tickets_are_sequential(self, server_db):
        server = make_server(server_db)
        assert server.submit("Q6") == 0
        assert server.submit("Q1") == 1

    def test_available_queries(self, server_db):
        assert "Q6" in make_server(server_db).available_queries


class TestExecution:
    def test_single_query_result(self, server_db):
        server = make_server(server_db)
        ticket = server.submit("Q6")
        records = server.run()
        assert len(records) == 1
        expected = build_engine_query("Q6", server_db).execute()
        assert server.result(ticket) == pytest.approx(expected)
        assert server.latency(ticket) > 0.0

    def test_results_map_to_tickets_with_out_of_order_arrivals(self, server_db):
        server = make_server(server_db)
        late = server.submit("Q6", at=0.01)   # ticket 0 arrives later
        early = server.submit("Q1", at=0.0)   # ticket 1 arrives first
        server.run()
        q6_expected = build_engine_query("Q6", server_db).execute()
        assert server.result(late) == pytest.approx(q6_expected)
        assert isinstance(server.result(early), list)

    def test_run_empty_is_noop(self, server_db):
        assert make_server(server_db).run() == []

    def test_result_before_run_rejected(self, server_db):
        server = make_server(server_db)
        ticket = server.submit("Q6")
        with pytest.raises(ReproError):
            server.result(ticket)
        with pytest.raises(ReproError):
            server.latency(ticket)

    def test_multiple_runs_accumulate(self, server_db):
        server = make_server(server_db)
        first = server.submit("Q6")
        server.run()
        second = server.submit("Q13")
        server.run()
        assert server.latency(first) > 0.0
        assert server.record(second).name == "Q13"

    def test_tuning_scheduler_variant(self, server_db):
        server = make_server(server_db, scheduler="tuning")
        tickets = [server.submit("Q6") for _ in range(3)]
        server.run()
        for ticket in tickets:
            assert server.latency(ticket) > 0.0
