"""End-to-end integration tests across the whole stack.

These drive full simulations of the real TPC-H mix and assert global
invariants that only hold if every layer (workload generation, arrival
handling, slot protocol, adaptive morsels, decay, finalization, metrics)
cooperates correctly.
"""

from __future__ import annotations

import pytest

from repro.core import SchedulerConfig, available_schedulers, make_scheduler
from repro.metrics.latency import query_key
from repro.simcore import RngFactory, Simulator
from repro.workloads import generate_workload, tpch_mix

SMALL_MIX = tpch_mix(sf_small=0.5, sf_large=5.0, names=("Q1", "Q3", "Q6", "Q11", "Q18"))


def build_small_workload(rate=60.0, duration=2.0, seed=23):
    rng = RngFactory(seed).stream("workload")
    return generate_workload(SMALL_MIX, rate=rate, duration=duration, rng=rng)


def run(scheduler_name, workload, n_workers=6, **kwargs):
    config_kwargs = dict(n_workers=n_workers)
    if scheduler_name == "tuning":
        config_kwargs.update(tracking_duration=0.3, refresh_duration=1.0)
    scheduler = make_scheduler(scheduler_name, SchedulerConfig(**config_kwargs))
    result = Simulator(scheduler, workload, seed=31, **kwargs).run()
    return scheduler, result


class TestGlobalInvariants:
    @pytest.mark.parametrize("name", sorted(set(available_schedulers())))
    def test_work_conservation(self, name):
        """Every scheduler executes exactly the offered CPU work."""
        workload = build_small_workload()
        scheduler, result = run(name, workload)
        assert result.completed == result.admitted == len(workload)
        offered = sum(q.total_work_seconds for _, q in workload)
        executed = sum(r.cpu_seconds for r in result.records.records)
        # Contention can inflate CPU slightly; it can never deflate it.
        assert executed >= offered * 0.99
        assert executed <= offered * 1.35

    @pytest.mark.parametrize("name", ["stride", "tuning", "fair"])
    def test_latency_at_least_isolated(self, name):
        """No query can beat its own isolated latency."""
        workload = build_small_workload(rate=80.0)
        bases = {}
        for _, query in workload:
            key = query_key(query.name, query.scale_factor)
            if key not in bases:
                solo_sched = make_scheduler("stride", SchedulerConfig(n_workers=6))
                solo = Simulator(
                    solo_sched, [(0.0, query)], seed=31, noise_sigma=0.0
                ).run()
                bases[key] = solo.records.records[0].latency
        _, result = run(name, workload, noise_sigma=0.0)
        for record in result.records.records:
            base = bases[query_key(record.name, record.scale_factor)]
            assert record.latency >= base * 0.8  # tolerance for contention noise

    def test_deterministic_across_schedulers_construction(self):
        """Building the same scheduler twice yields identical results."""
        workload = build_small_workload()
        _, first = run("tuning", workload)
        _, second = run("tuning", workload)
        assert [r.completion_time for r in first.records.records] == [
            r.completion_time for r in second.records.records
        ]

    def test_decay_improves_short_query_tail_at_high_load(self):
        """The paper's core claim on a real TPC-H mix."""
        workload = build_small_workload(rate=110.0, duration=3.0)
        _, stride_result = run("stride", workload, max_time=3.0)
        _, fair_result = run("fair", workload, max_time=3.0)

        def p95_short(result):
            from repro.metrics.slowdown import percentile

            latencies = [
                r.latency for r in result.records.records if r.scale_factor == 0.5
            ]
            return percentile(latencies, 95.0)

        assert p95_short(stride_result) < p95_short(fair_result)

    def test_arrival_order_independent_of_scheduler(self):
        """The workload is identical for every policy (same seed)."""
        workload_a = build_small_workload(seed=77)
        workload_b = build_small_workload(seed=77)
        assert [(t, q.name) for t, q in workload_a] == [
            (t, q.name) for t, q in workload_b
        ]


class TestSlotPressure:
    def test_burst_larger_than_slot_capacity(self):
        """A burst beyond the slot limit drains through the wait queue."""
        queries = SMALL_MIX.sample(40, RngFactory(3).stream("sample"))
        workload = [(0.0, q) for q in queries]
        scheduler = make_scheduler(
            "stride", SchedulerConfig(n_workers=4, slot_capacity=8)
        )
        result = Simulator(scheduler, workload, seed=3).run()
        assert result.completed == 40
        assert scheduler.slots.occupied == 0
        assert not scheduler.wait_queue

    def test_overhead_accounting_populated(self):
        workload = build_small_workload()
        scheduler, result = run("tuning", workload)
        assert scheduler.overhead.ops["mask_updates"] > 0
        assert scheduler.overhead.ops["local_work"] > 0
        assert scheduler.overhead.ops["finalization"] > 0
        assert result.total_overhead_percent < 1.0
