"""Tests for the pluggable cost functions and the multivariate optimizer."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.decay import DecayParameters
from repro.errors import TuningError
from repro.tuning import (
    COST_FUNCTIONS,
    get_cost_function,
    optimize,
    optimize_multivariate,
    simulate_policy_pairs,
)
from repro.tuning.cost import (
    geomean_slowdown_cost,
    max_slowdown_cost,
    mean_slowdown_cost,
    p95_slowdown_cost,
)
from repro.tuning.tracker import TrackedQuery


def tq(group_id, arrival, work):
    return TrackedQuery(
        group_id=group_id,
        name=f"q{group_id}",
        scale_factor=1.0,
        arrival_offset=arrival,
        work=work,
    )


PAIRS = [(2.0, 1.0), (3.0, 1.0), (10.0, 1.0)]  # slowdowns 2, 3, 10
QUANTUM = 0.002


class TestCostFunctions:
    def test_mean(self):
        assert mean_slowdown_cost(PAIRS) == pytest.approx(5.0)

    def test_geomean(self):
        assert geomean_slowdown_cost(PAIRS) == pytest.approx((2 * 3 * 10) ** (1 / 3))

    def test_max(self):
        assert max_slowdown_cost(PAIRS) == pytest.approx(10.0)

    def test_p95_interpolates(self):
        assert p95_slowdown_cost(PAIRS) == pytest.approx(9.3, abs=0.1)

    def test_empty_inputs(self):
        for fn in COST_FUNCTIONS.values():
            assert fn([]) == 0.0

    def test_zero_base_ignored(self):
        assert mean_slowdown_cost([(1.0, 0.0), (2.0, 1.0)]) == pytest.approx(2.0)

    def test_lookup(self):
        assert get_cost_function("p95") is p95_slowdown_cost
        with pytest.raises(TuningError):
            get_cost_function("median-of-means")

    @given(
        st.lists(
            st.tuples(
                st.floats(min_value=0.001, max_value=100.0),
                st.floats(min_value=0.001, max_value=10.0),
            ),
            min_size=1,
            max_size=30,
        )
    )
    def test_ordering_property(self, pairs):
        """geomean <= mean <= ... and p95 <= max for any input."""
        assert geomean_slowdown_cost(pairs) <= mean_slowdown_cost(pairs) + 1e-9
        assert p95_slowdown_cost(pairs) <= max_slowdown_cost(pairs) + 1e-9


class TestSimulatePolicyPairs:
    def test_one_pair_per_query(self):
        tracked = [tq(0, 0.0, 0.01), tq(1, 0.0, 0.02)]
        pairs, _ = simulate_policy_pairs(tracked, DecayParameters(), QUANTUM)
        assert len(pairs) == 2
        for latency, base in pairs:
            assert latency >= base - 1e-9


class TestCostDrivenOptimization:
    def _workload(self):
        return [tq(10, 0.0, 0.25)] + [tq(i, 0.01 + 0.03 * i, 0.002) for i in range(6)]

    def test_optimize_accepts_cost_fn(self):
        result = optimize(
            self._workload(),
            DecayParameters(decay=1.0, d_start=0),
            QUANTUM,
            cost_fn=p95_slowdown_cost,
        )
        assert result.cost <= result.baseline_cost + 1e-12

    def test_different_costs_may_pick_different_params(self):
        """Sanity: the objective actually influences the search outcome
        (costs are evaluated under the named function)."""
        tracked = self._workload()
        mean_result = optimize(tracked, DecayParameters(decay=1.0, d_start=0), QUANTUM)
        p95_result = optimize(
            tracked,
            DecayParameters(decay=1.0, d_start=0),
            QUANTUM,
            cost_fn=p95_slowdown_cost,
        )
        # Both must be valid improvements under their own objective.
        assert mean_result.cost <= mean_result.baseline_cost + 1e-12
        assert p95_result.cost <= p95_result.baseline_cost + 1e-12


class TestMultivariateOptimizer:
    def test_never_worse_than_start(self):
        tracked = [tq(10, 0.0, 0.25)] + [
            tq(i, 0.01 + 0.03 * i, 0.002) for i in range(6)
        ]
        result = optimize_multivariate(
            tracked, DecayParameters(decay=1.0, d_start=0), QUANTUM
        )
        assert result.cost <= result.baseline_cost + 1e-12

    def test_improves_bad_start(self):
        tracked = [tq(10, 0.0, 0.25)] + [
            tq(i, 0.01 + 0.03 * i, 0.002) for i in range(6)
        ]
        result = optimize_multivariate(
            tracked, DecayParameters(decay=1.0, d_start=0), QUANTUM
        )
        assert result.cost < result.baseline_cost

    def test_empty_tracked(self):
        result = optimize_multivariate([], DecayParameters(), QUANTUM)
        assert result.evaluations == 0

    def test_parameters_stay_in_bounds(self):
        tracked = [tq(i, 0.0, 0.01) for i in range(4)]
        result = optimize_multivariate(
            tracked, DecayParameters(decay=0.02, d_start=0), QUANTUM
        )
        assert 0.0 <= result.params.decay <= 1.0
        assert result.params.d_start >= 0

    @given(
        works=st.lists(
            st.floats(min_value=0.002, max_value=0.2), min_size=2, max_size=6
        )
    )
    @settings(max_examples=10, deadline=None)
    def test_heuristic_vs_multivariate_comparable(self, works):
        """The §4 comparison: the heuristic search should be at least
        competitive with (never dramatically worse than) the joint
        search — the reason the paper shipped the heuristic."""
        tracked = [tq(i, 0.02 * i, w) for i, w in enumerate(works)]
        start = DecayParameters(decay=0.9, d_start=7)
        heuristic = optimize(tracked, start, QUANTUM)
        joint = optimize_multivariate(tracked, start, QUANTUM)
        assert heuristic.cost <= joint.cost * 1.5 + 1e-9
