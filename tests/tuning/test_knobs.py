"""Tests for the declarative knob registry."""

import pytest

from repro.errors import TuningError
from repro.tuning import (
    ChoiceDomain,
    ContinuousDomain,
    IntegerDomain,
    Knob,
    KnobSpace,
    default_knob_space,
    stock_knob,
)
from repro.tuning.knobs import LAYERS, STOCK_KNOBS


class TestContinuousDomain:
    def test_clamp_and_validate(self):
        domain = ContinuousDomain(0.0, 1.0, step=0.05)
        assert domain.clamp(1.7) == 1.0
        assert domain.clamp(-0.2) == 0.0
        domain.validate(0.5)
        with pytest.raises(TuningError):
            domain.validate(1.5)

    def test_neighbors_plus_then_minus(self):
        domain = ContinuousDomain(0.0, 1.0, step=0.05)
        assert domain.neighbors(0.5, 1.0) == [0.55, 0.45]

    def test_neighbors_drop_clamped_duplicates(self):
        domain = ContinuousDomain(0.0, 1.0, step=0.05)
        # At the upper edge only the downward move survives.
        assert domain.neighbors(1.0, 1.0) == [0.95]

    def test_normalize_sample_roundtrip(self):
        domain = ContinuousDomain(0.2, 1.2, step=0.1)
        assert domain.normalize(0.7) == pytest.approx(0.5)
        assert domain.sample(0.5) == pytest.approx(0.7)

    def test_empty_domain_rejected(self):
        with pytest.raises(TuningError):
            ContinuousDomain(1.0, 1.0, step=0.1)


class TestIntegerDomain:
    def test_clamp_rounds(self):
        domain = IntegerDomain(0, 10)
        assert domain.clamp(3.6) == 4
        assert domain.clamp(99) == 10

    def test_validate_rejects_non_integer(self):
        domain = IntegerDomain(0, 10)
        with pytest.raises(TuningError):
            domain.validate(3.5)

    def test_neighbors_scale_with_width(self):
        domain = IntegerDomain(0, 100, step=2)
        assert domain.neighbors(50, 1.0) == [52, 48]
        assert domain.neighbors(50, 3.0) == [56, 44]
        # Width below one base step still moves by at least the step.
        assert domain.neighbors(50, 0.1) == [52, 48]


class TestChoiceDomain:
    def test_requires_two_values(self):
        with pytest.raises(TuningError):
            ChoiceDomain(values=("only",))

    def test_neighbors_are_adjacent_choices(self):
        domain = ChoiceDomain(values=("a", "b", "c"))
        assert domain.neighbors("b", 1.0) == ["c", "a"]
        assert domain.neighbors("a", 1.0) == ["b"]

    def test_clamp_numeric_nearest(self):
        domain = ChoiceDomain(values=(1, 4, 16))
        assert domain.clamp(5) == 4

    def test_normalize(self):
        domain = ChoiceDomain(values=("a", "b", "c"))
        assert domain.normalize("c") == 1.0


class TestKnob:
    def test_unknown_layer_rejected(self):
        with pytest.raises(TuningError):
            Knob(
                name="x",
                layer="kernel",
                domain=IntegerDomain(0, 4),
                default=2,
            )

    def test_current_falls_back_to_default_when_unbound(self):
        knob = Knob(
            name="x", layer="core", domain=IntegerDomain(0, 4), default=2
        )
        assert knob.current() == 2

    def test_current_reads_and_clamps(self):
        knob = Knob(
            name="x",
            layer="core",
            domain=IntegerDomain(0, 4),
            default=2,
            read=lambda: 99,
        )
        assert knob.current() == 4


class TestKnobSpace:
    def space(self):
        space = KnobSpace()
        space.register(
            Knob(
                name="a",
                layer="core",
                domain=ContinuousDomain(0.0, 1.0, step=0.1),
                default=0.5,
            )
        )
        space.register(
            Knob(
                name="b",
                layer="runtime",
                domain=IntegerDomain(1, 8),
                default=4,
            )
        )
        return space

    def test_registration_order_is_canonical(self):
        space = self.space()
        assert space.names() == ("a", "b")
        assert [k.name for k in space] == ["a", "b"]

    def test_duplicate_registration_rejected(self):
        space = self.space()
        with pytest.raises(TuningError):
            space.register(
                Knob(
                    name="a",
                    layer="core",
                    domain=IntegerDomain(0, 1),
                    default=0,
                )
            )

    def test_layer_filter(self):
        space = self.space()
        assert [k.name for k in space.layer("runtime")] == ["b"]

    def test_apply_skips_unbound_and_rejects_unknown(self):
        applied = {}
        space = self.space()
        space.register(
            Knob(
                name="c",
                layer="admission",
                domain=IntegerDomain(0, 10),
                default=5,
                apply=lambda v: applied.setdefault("c", v),
            )
        )
        names = space.apply({"a": 0.7, "c": 8})
        assert names == ["c"]
        assert applied == {"c": 8}
        with pytest.raises(TuningError):
            space.apply({"nope": 1})

    def test_neighbors_single_knob_moves_in_order(self):
        space = self.space()
        values = {"a": 0.5, "b": 4}
        moves = space.neighbors(values, 1.0)
        # a's ± moves first (registration order), then b's.
        assert [m["a"] for m in moves[:2]] == [0.6, 0.4]
        assert [m["b"] for m in moves[2:]] == [5, 3]
        for move in moves:
            assert sum(move[k] != values[k] for k in values) == 1

    def test_distance_normalized_l1(self):
        space = self.space()
        a = {"a": 0.0, "b": 1}
        b = {"a": 1.0, "b": 8}
        assert space.distance(a, a) == 0.0
        assert space.distance(a, b) == pytest.approx(1.0)

    def test_extend_with_prefix(self):
        space = self.space()
        other = KnobSpace()
        other.register(
            Knob(
                name="a",
                layer="cluster",
                domain=IntegerDomain(0, 1),
                default=1,
            )
        )
        space.extend(other, prefix="shard0.")
        assert "shard0.a" in space


class TestStockKnobs:
    def test_all_layers_covered(self):
        layers = {stock.layer for stock in STOCK_KNOBS}
        assert layers == set(LAYERS)

    def test_defaults_valid(self):
        space = default_knob_space()
        space.validate(space.defaults())
        assert len(space) == len(STOCK_KNOBS)

    def test_stock_knob_binds_hooks(self):
        seen = {}
        knob = stock_knob(
            "core.decay",
            read=lambda: 0.8,
            apply=lambda v: seen.setdefault("v", v),
        )
        assert knob.current() == 0.8
        knob.apply(0.7)
        assert seen == {"v": 0.7}

    def test_unknown_stock_name(self):
        with pytest.raises(TuningError):
            stock_knob("core.nonsense")

    def test_subset_space(self):
        space = default_knob_space(("core.decay", "core.d_start"))
        assert space.names() == ("core.decay", "core.d_start")
