"""Tests for the self-simulation (§4)."""

import pytest

from repro.core.decay import DecayParameters
from repro.tuning import TrackedQuery, simulate_policy


def tq(group_id, arrival, work, name="q"):
    return TrackedQuery(
        group_id=group_id,
        name=name,
        scale_factor=1.0,
        arrival_offset=arrival,
        work=work,
    )


QUANTUM = 0.002


class TestSimulatePolicy:
    def test_empty_workload(self):
        cost, steps = simulate_policy([], DecayParameters(), QUANTUM)
        assert cost == 0.0
        assert steps == 0

    def test_single_query_cost_one(self):
        """A lone query runs uninterrupted: latency == base, cost == 1."""
        cost, steps = simulate_policy([tq(0, 0.0, 0.02)], DecayParameters(), QUANTUM)
        assert cost == pytest.approx(1.0, rel=1e-6)
        assert steps == 10

    def test_two_equal_queries_fair_cost(self):
        """Two identical queries sharing one worker: the one finishing
        last has slowdown 2, the other just under 2 (alternating)."""
        queries = [tq(0, 0.0, 0.02), tq(1, 0.0, 0.02)]
        cost, _ = simulate_policy(
            queries, DecayParameters(decay=1.0, d_start=0), QUANTUM
        )
        assert cost == pytest.approx(1.95, rel=0.05)

    def test_decay_prioritizes_short_query(self):
        """Aggressive decay must reduce the mean relative slowdown when a
        short query arrives while a long, already-decayed one is running
        — the §3.2 scenario."""
        queries = [tq(0, 0.0, 0.2), tq(1, 0.05, 0.004)]
        no_decay = DecayParameters(decay=1.0, d_start=0)
        aggressive = DecayParameters(decay=0.5, d_start=0)
        cost_plain, _ = simulate_policy(queries, no_decay, QUANTUM)
        cost_decay, _ = simulate_policy(queries, aggressive, QUANTUM)
        assert cost_decay < cost_plain

    def test_idle_gaps_jump_to_next_arrival(self):
        queries = [tq(0, 0.0, 0.01), tq(1, 1.0, 0.01)]
        cost, steps = simulate_policy(queries, DecayParameters(), QUANTUM)
        # Both run alone -> both cost 1.
        assert cost == pytest.approx(1.0, rel=1e-6)
        assert steps == 10

    def test_step_count_scales_with_work(self):
        _, few = simulate_policy([tq(0, 0.0, 0.01)], DecayParameters(), QUANTUM)
        _, many = simulate_policy([tq(0, 0.0, 0.1)], DecayParameters(), QUANTUM)
        assert many == 10 * few

    def test_final_sliver_counts_fractionally(self):
        """Work that is not a quantum multiple still completes exactly."""
        cost, _ = simulate_policy([tq(0, 0.0, 0.003)], DecayParameters(), QUANTUM)
        assert cost == pytest.approx(1.0, rel=1e-6)

    def test_deterministic(self):
        queries = [tq(i, i * 0.001, 0.01 * (i + 1)) for i in range(5)]
        params = DecayParameters(decay=0.8, d_start=2)
        assert simulate_policy(queries, params, QUANTUM) == simulate_policy(
            queries, params, QUANTUM
        )
