"""Tests for greedy workload compression (WAter recipe, step 1).

The load-bearing property: the compressed replay's cost estimate stays
within :meth:`CompressedWorkload.error_bound` of the full-replay cost —
the contract the optimizer's verification step relies on when deciding
how many top candidates need a full-workload replay.
"""

import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import TuningError
from repro.tuning import (
    CompressedWorkload,
    TrackedQuery,
    compress_workload,
    replay_cost,
)


def tq(group_id, arrival, work):
    return TrackedQuery(
        group_id=group_id,
        name=f"q{group_id}",
        scale_factor=1.0,
        arrival_offset=arrival,
        work=work,
    )


def random_workload(seed, n):
    rng = random.Random(seed)
    return [
        tq(i, rng.uniform(0.0, 2.0), rng.uniform(0.005, 0.4))
        for i in range(n)
    ]


class TestCompressWorkload:
    def test_no_compression_needed(self):
        tracked = [tq(0, 0.0, 0.1), tq(1, 0.5, 0.2)]
        compressed = compress_workload(tracked, 8)
        assert compressed.fidelity == 1.0
        assert compressed.ratio == 1.0
        assert len(compressed.representatives) == 2

    def test_empty_workload(self):
        compressed = compress_workload([], 4)
        assert compressed.representatives == []
        assert compressed.fidelity == 1.0

    def test_invalid_target(self):
        with pytest.raises(TuningError):
            compress_workload([tq(0, 0.0, 0.1)], 0)

    def test_total_work_preserved(self):
        tracked = random_workload(3, 40)
        compressed = compress_workload(tracked, 6)
        assert len(compressed.representatives) == 6
        assert sum(q.work for q in compressed.representatives) == (
            pytest.approx(sum(q.work for q in tracked))
        )

    def test_arrival_order_and_earliest_arrival_kept(self):
        tracked = random_workload(4, 30)
        compressed = compress_workload(tracked, 5)
        arrivals = [q.arrival_offset for q in compressed.representatives]
        assert arrivals == sorted(arrivals)
        assert min(arrivals) == pytest.approx(
            min(q.arrival_offset for q in tracked)
        )

    def test_fidelity_degrades_with_compression(self):
        tracked = random_workload(5, 50)
        light = compress_workload(tracked, 40)
        heavy = compress_workload(tracked, 3)
        assert heavy.fidelity <= light.fidelity <= 1.0

    def test_deterministic(self):
        tracked = random_workload(6, 35)
        a = compress_workload(tracked, 7)
        b = compress_workload(list(reversed(tracked)), 7)
        assert a.representatives == b.representatives
        assert a.fidelity == b.fidelity

    def test_error_bound_formula(self):
        compressed = CompressedWorkload(
            representatives=[], fidelity=0.9, original_queries=10
        )
        from repro.tuning import FIDELITY_ERROR_FACTOR

        assert compressed.error_bound(2.0) == pytest.approx(
            (1.0 - 0.9) * FIDELITY_ERROR_FACTOR * 2.0
        )


class TestFidelityBoundsCostError:
    @settings(max_examples=25, deadline=None)
    @given(
        seed=st.integers(min_value=0, max_value=10_000),
        n=st.integers(min_value=8, max_value=40),
        target=st.integers(min_value=3, max_value=12),
    )
    def test_compressed_cost_within_error_bound(self, seed, n, target):
        """|cost_compressed − cost_full| ≤ error_bound(cost_full)."""
        tracked = random_workload(seed, n)
        compressed = compress_workload(tracked, target)
        values = {"core.decay": 0.9, "core.d_start": 7}
        full_cost, _ = replay_cost(tracked, values)
        approx_cost, _ = replay_cost(compressed.representatives, values)
        assert abs(approx_cost - full_cost) <= (
            compressed.error_bound(full_cost) + 1e-9
        )

    @settings(max_examples=10, deadline=None)
    @given(seed=st.integers(min_value=0, max_value=10_000))
    def test_full_fidelity_is_exact(self, seed):
        """fidelity == 1.0 (no merge happened) ⇒ identical replay cost."""
        tracked = random_workload(seed, 10)
        compressed = compress_workload(tracked, 10)
        assert compressed.fidelity == 1.0
        values = {"core.decay": 0.85, "core.d_start": 3}
        full_cost, full_steps = replay_cost(tracked, values)
        approx_cost, approx_steps = replay_cost(
            compressed.representatives, values
        )
        assert approx_cost == full_cost
        assert approx_steps == full_steps
