"""Tests for the periodic tuning controller (§4, Figure 6)."""

import pytest

from repro.core import SchedulerConfig, make_scheduler
from repro.simcore import RngFactory, Simulator
from repro.tuning.controller import TuningController
from repro.workloads import generate_workload

from tests.conftest import make_query


def tuned_scheduler(tracking=0.2, refresh=0.5, n_workers=2):
    config = SchedulerConfig(
        n_workers=n_workers,
        tuning_enabled=True,
        tracking_duration=tracking,
        refresh_duration=refresh,
    )
    return make_scheduler("tuning", config)


class TestControllerValidation:
    def test_rejects_bad_durations(self):
        scheduler = make_scheduler("stride", SchedulerConfig(n_workers=1))
        with pytest.raises(ValueError):
            TuningController(scheduler, tracking_duration=0.0, refresh_duration=1.0)
        with pytest.raises(ValueError):
            TuningController(scheduler, tracking_duration=2.0, refresh_duration=1.0)

    def test_quantum_capped_for_long_windows(self):
        scheduler = make_scheduler("stride", SchedulerConfig(n_workers=1, t_max=0.002))
        controller = TuningController(
            scheduler,
            tracking_duration=100.0,
            refresh_duration=300.0,
            max_sim_steps_per_eval=1000,
        )
        assert controller.sim_quantum == pytest.approx(0.1)

    def test_quantum_defaults_to_t_max(self):
        scheduler = make_scheduler("stride", SchedulerConfig(n_workers=1, t_max=0.002))
        controller = TuningController(
            scheduler, tracking_duration=1.0, refresh_duration=3.0
        )
        assert controller.sim_quantum == pytest.approx(0.002)


class TestControllerInSimulation:
    def _run(self, duration=2.0, rate=80.0):
        scheduler = tuned_scheduler()
        mix_query_short = make_query("short", work=0.004, pipelines=1)
        mix_query_long = make_query("long", work=0.08, pipelines=1)
        from repro.workloads.mixes import QueryMix

        mix = QueryMix(entries=((mix_query_short, 0.8), (mix_query_long, 0.2)))
        rng = RngFactory(17).stream("workload")
        workload = generate_workload(mix, rate=rate, duration=duration, rng=rng)
        result = Simulator(scheduler, workload, seed=17, noise_sigma=0.0).run()
        return scheduler, result

    def test_tuning_runs_periodically(self):
        scheduler, result = self._run(duration=2.0)
        # Windows every 0.5s with 0.2s tracking: ~3-4 optimizations.
        assert len(scheduler.tuner.history) >= 2
        assert result.completed == result.admitted

    def test_only_tracked_worker_tunes(self):
        scheduler, _ = self._run()
        assert scheduler.tuner.tracked_worker == 0

    def test_parameters_broadcast(self):
        scheduler, _ = self._run()
        tuned = scheduler.tuner.history[-1].params
        assert scheduler.decay_parameters == tuned

    def test_optimization_cost_charged(self):
        scheduler, _ = self._run()
        assert scheduler.overhead.seconds["tuning"] > 0.0
        # Tuning is confined to one worker and must stay tiny relative
        # to execution (§4: < 0.01% at paper scale; generous bound here).
        assert scheduler.overhead.overhead_fraction("tuning") < 0.05

    def test_history_records_tracked_queries(self):
        scheduler, _ = self._run()
        assert all(entry.tracked_queries > 0 for entry in scheduler.tuner.history)


class TestObjectiveSelection:
    def test_controller_accepts_objective(self):
        scheduler = make_scheduler(
            "tuning",
            SchedulerConfig(
                n_workers=1,
                tuning_enabled=True,
                tracking_duration=0.2,
                refresh_duration=0.5,
                tuning_objective="p95",
            ),
        )
        assert scheduler.tuner.objective == "p95"

    def test_unknown_objective_rejected(self):
        from repro.errors import TuningError

        with pytest.raises(TuningError):
            make_scheduler(
                "tuning",
                SchedulerConfig(
                    n_workers=1, tuning_enabled=True, tuning_objective="vibes"
                ),
            )

    def test_p95_objective_runs_end_to_end(self):
        scheduler = make_scheduler(
            "tuning",
            SchedulerConfig(
                n_workers=2,
                tuning_enabled=True,
                tracking_duration=0.2,
                refresh_duration=0.5,
                tuning_objective="p95",
            ),
        )
        mix_query = make_query("short", work=0.004, pipelines=1)
        workload = [(0.001 * i, mix_query) for i in range(200)]
        result = Simulator(scheduler, workload, seed=3, noise_sigma=0.0).run()
        assert result.completed == 200
