"""Bit-identity gate for the legacy (lambda, d_start) tuner.

The §4/Figure 6 experiments were validated against the original
directional-search implementation; the knob-space refactor routes
:func:`repro.tuning.optimize` through the generic
:func:`directional_line_search` helper and MUST NOT change a single
float operation.  This test vendors a frozen copy of the original
``_refine_lambda``/``optimize`` pair (as shipped before the refactor)
and asserts *exact* equality — parameters, costs, evaluation counts and
simulated steps — across a spread of workloads, quanta and cost
functions.  Any deviation, however small, fails loudly.
"""

import random

from repro.core.decay import DecayParameters
from repro.tuning import TrackedQuery, optimize
from repro.tuning.cost import COST_FUNCTIONS, mean_slowdown_cost
from repro.tuning.optimizer import (
    OptimizationResult,
    SEARCH_DIRECTIONS,
    SEARCH_STEPS,
    choose_dstart_candidates,
)
from repro.tuning.self_sim import simulate_policy_pairs


# ----------------------------------------------------------------------
# Frozen pre-refactor implementation (vendored verbatim; do not edit)
# ----------------------------------------------------------------------
def _legacy_refine_lambda(
    tracked, base_params, d_start, lambda0, quantum,
    cost_fn=mean_slowdown_cost,
):
    evaluations = 0
    simulated_steps = 0

    def evaluate(lam):
        nonlocal evaluations, simulated_steps
        pairs, steps = simulate_policy_pairs(
            tracked, base_params.with_values(lam, d_start), quantum
        )
        evaluations += 1
        simulated_steps += steps
        return cost_fn(pairs)

    current_lambda = min(1.0, max(0.0, lambda0))
    current_cost = evaluate(current_lambda)
    step_width = 1.0
    for _ in range(SEARCH_STEPS):
        candidates = []
        for direction in SEARCH_DIRECTIONS:
            lam = current_lambda + step_width * direction
            if 0.0 <= lam <= 1.0:
                candidates.append((evaluate(lam), lam))
        improving = [c for c in candidates if c[0] < current_cost]
        if improving:
            current_cost, current_lambda = min(improving)
            step_width *= 1.5
        else:
            step_width *= 0.5
    return current_lambda, current_cost, evaluations, simulated_steps


def _legacy_optimize(tracked, current, quantum, cost_fn=None):
    cost_fn = cost_fn or mean_slowdown_cost
    if not tracked:
        return OptimizationResult(
            params=current,
            cost=0.0,
            baseline_cost=0.0,
            evaluations=0,
            simulated_steps=0,
            tracked_queries=0,
        )
    evaluations = 0
    simulated_steps = 0
    baseline_pairs, steps = simulate_policy_pairs(tracked, current, quantum)
    baseline_cost = cost_fn(baseline_pairs)
    evaluations += 1
    simulated_steps += steps

    best_cost = baseline_cost
    best_params = current
    for d_start in choose_dstart_candidates(tracked, quantum):
        lam, cost, n_eval, n_steps = _legacy_refine_lambda(
            tracked, current, d_start, current.decay, quantum, cost_fn
        )
        evaluations += n_eval
        simulated_steps += n_steps
        if cost < best_cost:
            best_cost = cost
            best_params = current.with_values(lam, d_start)
    return OptimizationResult(
        params=best_params,
        cost=best_cost,
        baseline_cost=baseline_cost,
        evaluations=evaluations,
        simulated_steps=simulated_steps,
        tracked_queries=len(tracked),
    )


# ----------------------------------------------------------------------
# The gate
# ----------------------------------------------------------------------
def tq(group_id, arrival, work):
    return TrackedQuery(
        group_id=group_id,
        name=f"q{group_id}",
        scale_factor=1.0,
        arrival_offset=arrival,
        work=work,
    )


def figure6_style_workload(seed, n):
    """The §4 experiment shape: Poisson-ish arrivals, mixed sizes."""
    rng = random.Random(seed)
    tracked = []
    arrival = 0.0
    for i in range(n):
        arrival += rng.expovariate(40.0)
        work = rng.choice((0.004, 0.012, 0.05, 0.2))
        tracked.append(tq(i, arrival, work * rng.uniform(0.8, 1.2)))
    return tracked


def assert_bit_identical(new: OptimizationResult, old: OptimizationResult):
    # Exact float equality on purpose — no pytest.approx anywhere.
    assert new.params.decay == old.params.decay
    assert new.params.d_start == old.params.d_start
    assert new.cost == old.cost
    assert new.baseline_cost == old.baseline_cost
    assert new.evaluations == old.evaluations
    assert new.simulated_steps == old.simulated_steps
    assert new.tracked_queries == old.tracked_queries


class TestBitIdentity:
    def test_identical_across_workloads_and_quanta(self):
        for seed in range(6):
            for quantum in (0.001, 0.002, 0.004):
                tracked = figure6_style_workload(seed, 12 + 4 * seed)
                current = DecayParameters(decay=0.9, d_start=7)
                assert_bit_identical(
                    optimize(tracked, current, quantum),
                    _legacy_optimize(tracked, current, quantum),
                )

    def test_identical_from_warm_start(self):
        # Later cycles seed lambda from the previous optimum (§4).
        tracked = figure6_style_workload(3, 20)
        current = DecayParameters(decay=0.55, d_start=31)
        assert_bit_identical(
            optimize(tracked, current, 0.002),
            _legacy_optimize(tracked, current, 0.002),
        )

    def test_identical_under_every_cost_function(self):
        tracked = figure6_style_workload(1, 16)
        current = DecayParameters(decay=0.9, d_start=7)
        for name in sorted(COST_FUNCTIONS):
            cost_fn = COST_FUNCTIONS[name]
            assert_bit_identical(
                optimize(tracked, current, 0.002, cost_fn),
                _legacy_optimize(tracked, current, 0.002, cost_fn),
            )

    def test_identical_on_empty_and_single_query(self):
        current = DecayParameters(decay=0.9, d_start=7)
        assert_bit_identical(
            optimize([], current, 0.002),
            _legacy_optimize([], current, 0.002),
        )
        single = [tq(0, 0.0, 0.05)]
        assert_bit_identical(
            optimize(single, current, 0.002),
            _legacy_optimize(single, current, 0.002),
        )
