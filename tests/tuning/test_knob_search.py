"""Tests for the cost-bounded whole-knob-space search and its wiring.

Covers the WAter pipeline end to end — budget accounting, compression
quality, history bootstrapping — plus the online integration: the
server's bound knob space (apply == broadcast through the backend) and
the router's per-shard + placement tuning.  Determinism is checked the
strict way: identical output across ``PYTHONHASHSEED`` subprocesses.
"""

import os
import random
import subprocess
import sys

import pytest

from repro.server import AnalyticsServer
from repro.tuning import (
    KnobSearchResult,
    TrackedQuery,
    TuningHistory,
    default_knob_space,
    replay_cost,
    search_knob_space,
    workload_signature,
)


def tq(group_id, arrival, work):
    return TrackedQuery(
        group_id=group_id,
        name=f"q{group_id}",
        scale_factor=1.0,
        arrival_offset=arrival,
        work=work,
    )


def bursty_workload(seed=11, n=36):
    """Bursty arrivals + heavy tail: every knob has something to do."""
    rng = random.Random(seed)
    tracked = []
    for i in range(n):
        burst = (i // 6) * 0.4
        arrival = burst + rng.uniform(0.0, 0.05)
        work = rng.uniform(0.004, 0.03)
        if i % 7 == 0:
            work *= 12.0  # long-tail queries the decay knobs act on
        tracked.append(tq(i, arrival, work))
    return tracked


class TestSearchKnobSpace:
    def test_empty_workload_is_a_noop(self):
        space = default_knob_space()
        result = search_knob_space(space, [])
        assert result.evaluations == 0
        assert result.cost == 0.0
        assert result.values == space.current_values()

    def test_unbudgeted_search_never_regresses(self):
        space = default_knob_space()
        tracked = bursty_workload()
        result = search_knob_space(space, tracked, budget_seconds=None)
        assert isinstance(result, KnobSearchResult)
        assert result.cost <= result.baseline_cost
        assert result.within_budget  # vacuous without a budget
        # The returned cost is the true full-workload cost of the vector.
        check, _ = replay_cost(tracked, result.values)
        assert check == pytest.approx(result.cost)

    def test_budget_respected_and_wide_coverage(self):
        space = default_knob_space()
        tracked = bursty_workload()
        reference = search_knob_space(
            space, tracked, budget_seconds=None, compress_to=None
        )
        budget_seconds = 0.6 * reference.simulated_steps * 2.0e-7
        result = search_knob_space(
            space, tracked, budget_seconds=budget_seconds
        )
        assert result.budget_steps is not None
        assert result.simulated_steps <= result.budget_steps
        assert result.within_budget
        # The acceptance bar: at least 5 distinct knobs actually probed.
        assert result.knobs_evaluated >= 5
        assert result.fidelity < 1.0  # compression really happened
        assert result.compressed_queries < result.tracked_queries

    def test_budgeted_quality_within_5_percent_of_full_replay(self):
        space = default_knob_space()
        tracked = bursty_workload()
        reference = search_knob_space(
            space, tracked, budget_seconds=None, compress_to=None
        )
        budget_seconds = 0.6 * reference.simulated_steps * 2.0e-7
        budgeted = search_knob_space(
            space, tracked, budget_seconds=budget_seconds
        )
        assert budgeted.cost <= reference.cost * 1.05

    def test_tiny_budget_still_reports_honestly(self):
        space = default_knob_space()
        tracked = bursty_workload(n=16)
        result = search_knob_space(space, tracked, budget_seconds=1.0e-6)
        # Only the mandatory baseline evaluation could be afforded; the
        # start vector comes back and the overshoot is visible.
        assert result.evaluations == 1
        assert result.cost == result.baseline_cost

    def test_start_vector_is_clamped(self):
        space = default_knob_space(("core.decay", "core.d_start"))
        tracked = bursty_workload(n=10)
        result = search_knob_space(
            space,
            tracked,
            start={"core.decay": 7.0},
            budget_seconds=None,
            compress_to=None,
        )
        assert 0.0 <= result.values["core.decay"] <= 1.0

    def test_history_records_and_bootstraps(self):
        space = default_knob_space()
        tracked = bursty_workload()
        history = TuningHistory()
        first = search_knob_space(
            space, tracked, budget_seconds=None, history=history
        )
        assert len(history) >= 1 + first.verified
        # A second cycle on the same workload starts from the recorded
        # optimum (via best_vectors) and must not do worse.
        second = search_knob_space(
            space, tracked, budget_seconds=None, history=history
        )
        assert second.cost <= first.cost * (1.0 + 1e-9)

    def test_surrogate_ranking_keeps_results_deterministic(self):
        space = default_knob_space()
        tracked = bursty_workload()
        runs = []
        for _ in range(2):
            history = TuningHistory()
            signature = workload_signature(tracked)
            history.record(signature, space.defaults(), 10.0)
            runs.append(
                search_knob_space(
                    space, tracked, budget_seconds=None, history=history
                )
            )
        assert runs[0].values == runs[1].values
        assert runs[0].cost == runs[1].cost
        assert runs[0].simulated_steps == runs[1].simulated_steps


_DETERMINISM_SCRIPT = """
import random
from repro.tuning import (
    TrackedQuery, TuningHistory, default_knob_space, search_knob_space,
    workload_signature,
)

rng = random.Random(11)
tracked = []
for i in range(36):
    burst = (i // 6) * 0.4
    arrival = burst + rng.uniform(0.0, 0.05)
    work = rng.uniform(0.004, 0.03)
    if i % 7 == 0:
        work *= 12.0
    tracked.append(TrackedQuery(
        group_id=i, name=f"q{i}", scale_factor=1.0,
        arrival_offset=arrival, work=work,
    ))

space = default_knob_space()
history = TuningHistory()
history.record(workload_signature(tracked), space.defaults(), 10.0)
result = search_knob_space(
    space, tracked, budget_seconds=0.02, history=history
)
for name in space.names():
    print(name, repr(result.values[name]))
print(repr(result.cost), repr(result.baseline_cost))
print(result.evaluations, result.verified, result.simulated_steps,
      result.budget_steps, result.knobs_evaluated)
print(repr(result.fidelity), result.compressed_queries)
for entry in history.entries:
    print(repr(entry.cost), sorted(entry.values.items()))
"""


class TestHashSeedDeterminism:
    def test_compressed_tuning_identical_across_hash_seeds(self):
        # Compression, surrogate ranking and the pattern search must not
        # depend on dict/set iteration order anywhere.
        outputs = []
        for hashseed in ("0", "1", "2"):
            env = dict(os.environ, PYTHONHASHSEED=hashseed)
            env["PYTHONPATH"] = "src"
            proc = subprocess.run(
                [sys.executable, "-c", _DETERMINISM_SCRIPT],
                capture_output=True,
                text=True,
                env=env,
                cwd=os.path.dirname(
                    os.path.dirname(os.path.dirname(__file__))
                ),
                timeout=300,
            )
            assert proc.returncode == 0, proc.stderr
            outputs.append(proc.stdout)
        assert outputs[0] == outputs[1] == outputs[2]
        assert outputs[0].count("\n") > 10


def make_server(**kwargs):
    defaults = dict(
        scheduler="tuning",
        n_workers=2,
        seed=7,
        environment="model",
        max_pending=64,
    )
    defaults.update(kwargs)
    return AnalyticsServer(**defaults)


class TestServerTuning:
    def test_knob_space_covers_three_layers(self):
        server = make_server()
        names = server.knob_space().names()
        assert names == (
            "core.decay",
            "core.d_start",
            "core.t_max",
            "core.slot_limit",
            "runtime.channel_capacity",
            "runtime.retry_budget",
            "runtime.retry_backoff",
            "admission.max_pending",
        )

    def test_max_pending_knob_only_when_bounded(self):
        server = make_server(max_pending=None)
        assert "admission.max_pending" not in server.knob_space().names()

    def test_tracked_workload_excludes_failures(self):
        server = make_server()
        for i in range(6):
            server.submit("Q6", at=0.01 * i)
        server.drain()
        tracked = server.tracked_workload()
        assert len(tracked) == 6
        assert all(q.work > 0.0 for q in tracked)
        arrivals = [q.arrival_offset for q in tracked]
        assert arrivals == sorted(arrivals)

    def test_tune_applies_and_broadcasts_mid_run(self):
        server = make_server()
        for i in range(18):
            server.submit("Q6" if i % 3 else "Q18", at=0.02 * i)
        server.drain()
        result = server.tune(budget_seconds=0.05)
        assert result.within_budget
        space = server.knob_space()
        live = space.current_values()
        for name in space.names():
            assert live[name] == pytest.approx(result.values[name])
        # The server keeps serving under the broadcast configuration.
        handle = server.submit("Q6")
        server.drain()
        assert server.record(handle).failed is False

    def test_tuned_retry_knobs_steer_submissions(self):
        server = make_server()
        space = server.knob_space()
        space.apply({"runtime.retry_budget": 3, "runtime.retry_backoff": 0.2})
        assert server._retry_budget == 3
        assert server._retry_backoff == 0.2


class TestRouterTuning:
    def make_router(self, **kwargs):
        from repro.cluster import ClusterRouter

        defaults = dict(
            n_shards=2,
            scheduler="stride",
            n_workers=2,
            seed=7,
            environment="model",
        )
        defaults.update(kwargs)
        return ClusterRouter(**defaults)

    def test_router_knob_space_is_cluster_layer(self):
        router = self.make_router()
        space = router.knob_space()
        assert space.names() == (
            "cluster.placement_alpha",
            "cluster.sharing_affinity",
        )
        assert all(k.layer == "cluster" for k in space)

    def test_round_robin_has_nothing_to_tune(self):
        router = self.make_router(placement="round-robin")
        assert len(router.knob_space()) == 0
        assert router.tune_placement() == {}

    def test_tune_placement_fits_alpha_to_completions(self):
        router = self.make_router()
        for i in range(12):
            router.submit("Q6" if i % 2 else "Q18")
        router.drain()
        applied = router.tune_placement()
        assert "cluster.placement_alpha" in applied
        assert router.placement.alpha == pytest.approx(
            applied["cluster.placement_alpha"]
        )

    def test_fleet_tune_covers_live_shards_and_router(self):
        router = self.make_router()
        for i in range(16):
            router.submit("Q6" if i % 2 else "Q18")
        router.drain()
        history = TuningHistory()
        outcome = router.tune(budget_seconds=0.05, history=history)
        assert len(outcome["shards"]) == 2
        for shard_result in outcome["shards"]:
            assert shard_result.within_budget
        assert "cluster.placement_alpha" in outcome["router"]
        # One shared history accumulated observations across the fleet.
        assert len(history) >= 2
