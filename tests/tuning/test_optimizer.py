"""Tests for the directional-search parameter optimizer (§4)."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.decay import DecayParameters
from repro.tuning import TrackedQuery, choose_dstart_candidates, optimize
from repro.tuning.optimizer import undecayed_fraction


def tq(group_id, arrival, work):
    return TrackedQuery(
        group_id=group_id,
        name=f"q{group_id}",
        scale_factor=1.0,
        arrival_offset=arrival,
        work=work,
    )


QUANTUM = 0.002


class TestUndecayedFraction:
    def test_zero_dstart(self):
        assert undecayed_fraction([10, 10], 0) == 0.0

    def test_full_coverage(self):
        assert undecayed_fraction([5, 10], 10) == 1.0

    def test_partial(self):
        assert undecayed_fraction([4, 8], 4) == pytest.approx(8 / 12)

    def test_empty(self):
        assert undecayed_fraction([], 3) == 1.0

    @given(
        quanta=st.lists(st.integers(min_value=1, max_value=100), min_size=1, max_size=20),
        lower=st.integers(min_value=0, max_value=50),
        delta=st.integers(min_value=0, max_value=50),
    )
    def test_monotone_in_dstart(self, quanta, lower, delta):
        assert undecayed_fraction(quanta, lower) <= undecayed_fraction(
            quanta, lower + delta
        )


class TestDstartCandidates:
    def test_minimality(self):
        """Each candidate is the minimal d_start reaching its fraction."""
        tracked = [tq(0, 0.0, 0.02), tq(1, 0.0, 0.2)]
        quanta = [10, 100]
        for fraction, candidate in zip(
            (0.05, 0.10, 0.15, 0.20, 0.25, 0.30, 0.35),
            choose_dstart_candidates(tracked, QUANTUM),
        ):
            # May be deduplicated; verify against the full recomputation.
            pass
        candidates = choose_dstart_candidates(tracked, QUANTUM)
        for candidate in candidates:
            assert undecayed_fraction(quanta, candidate) >= 0.05
            if candidate > 0:
                # One less would miss at least the smallest fraction that
                # selected this candidate.
                fractions_reached = undecayed_fraction(quanta, candidate - 1)
                assert any(
                    fractions_reached < f
                    for f in (0.05, 0.10, 0.15, 0.20, 0.25, 0.30, 0.35)
                )

    def test_deduplicated_and_sorted_like_fractions(self):
        tracked = [tq(0, 0.0, 0.002)]
        candidates = choose_dstart_candidates(tracked, QUANTUM)
        assert len(candidates) == len(set(candidates))

    def test_empty_tracked(self):
        assert choose_dstart_candidates([], QUANTUM) == [0]


class TestOptimize:
    def test_empty_tracked_keeps_params(self):
        current = DecayParameters(decay=0.7, d_start=5)
        result = optimize([], current, QUANTUM)
        assert result.params == current
        assert result.evaluations == 0

    def test_never_worse_than_baseline(self):
        tracked = [tq(0, 0.0, 0.004), tq(1, 0.0, 0.1), tq(2, 0.05, 0.004)]
        current = DecayParameters(decay=0.9, d_start=7)
        result = optimize(tracked, current, QUANTUM)
        assert result.cost <= result.baseline_cost + 1e-12

    def test_improves_bad_starting_point(self):
        """Starting from no-decay on a skewed mix, the optimizer must
        find decaying parameters that reduce the cost.  Short queries
        arrive while the long one runs, so decaying the long query's
        priority is strictly beneficial."""
        tracked = [tq(10, 0.0, 0.3)] + [
            tq(i, 0.01 + 0.03 * i, 0.002) for i in range(6)
        ]
        current = DecayParameters(decay=1.0, d_start=0)
        result = optimize(tracked, current, QUANTUM)
        assert result.cost < result.baseline_cost

    def test_deterministic_evaluation_count(self):
        """§4: a fixed number of search steps yields deterministic cost."""
        tracked = [tq(i, 0.01 * i, 0.02 + 0.01 * i) for i in range(4)]
        current = DecayParameters()
        first = optimize(tracked, current, QUANTUM)
        second = optimize(tracked, current, QUANTUM)
        assert first.evaluations == second.evaluations
        assert first.params == second.params

    def test_lambda_stays_in_bounds(self):
        tracked = [tq(i, 0.0, 0.01 * (i + 1)) for i in range(5)]
        result = optimize(tracked, DecayParameters(decay=0.02, d_start=0), QUANTUM)
        assert 0.0 <= result.params.decay <= 1.0

    @given(
        works=st.lists(
            st.floats(min_value=0.002, max_value=0.3), min_size=1, max_size=8
        )
    )
    @settings(max_examples=15, deadline=None)
    def test_property_never_worse(self, works):
        tracked = [tq(i, 0.0, w) for i, w in enumerate(works)]
        current = DecayParameters(decay=0.9, d_start=7)
        result = optimize(tracked, current, QUANTUM)
        assert result.cost <= result.baseline_cost + 1e-9
