"""Tests for the persistent tuning history and its k-NN surrogate."""

import pytest

from repro.errors import TuningError
from repro.tuning import (
    TrackedQuery,
    TuningHistory,
    default_knob_space,
    workload_signature,
)


def tq(group_id, arrival, work):
    return TrackedQuery(
        group_id=group_id,
        name=f"q{group_id}",
        scale_factor=1.0,
        arrival_offset=arrival,
        work=work,
    )


SPACE = default_knob_space(("core.decay", "core.d_start"))


def vec(decay, d_start):
    return {"core.decay": decay, "core.d_start": d_start}


class TestWorkloadSignature:
    def test_empty(self):
        assert workload_signature([]) == (0.0, 0.0, 0.0, 0.0)

    def test_components_in_unit_range(self):
        tracked = [tq(i, 0.1 * i, 0.05) for i in range(20)]
        sig = workload_signature(tracked)
        assert len(sig) == 4
        assert all(0.0 <= x <= 1.0 for x in sig)

    def test_distinguishes_workloads(self):
        uniform = [tq(i, 0.0, 0.1) for i in range(10)]
        skewed = [tq(i, 0.0, 0.001 if i else 1.0) for i in range(10)]
        assert workload_signature(uniform) != workload_signature(skewed)

    def test_deterministic_under_order(self):
        tracked = [tq(i, 0.05 * i, 0.01 * (i + 1)) for i in range(12)]
        assert workload_signature(tracked) == workload_signature(tracked[:])


class TestPersistence:
    def test_save_load_roundtrip(self, tmp_path):
        history = TuningHistory()
        sig = (0.1, 0.2, 0.3, 0.4)
        history.record(sig, vec(0.9, 7), 1.5)
        history.record(sig, vec(0.8, 3), 1.2)
        path = history.save(tmp_path / "history.json")
        loaded = TuningHistory.load(path)
        assert len(loaded) == 2
        assert loaded.entries[0].signature == sig
        assert loaded.entries[1].values == {
            "core.decay": 0.8,
            "core.d_start": 3.0,
        }
        assert loaded.entries[1].cost == 1.2

    def test_load_missing_file_is_empty(self, tmp_path):
        assert len(TuningHistory.load(tmp_path / "absent.json")) == 0

    def test_load_corrupt_file_raises(self, tmp_path):
        path = tmp_path / "bad.json"
        path.write_text("{not json")
        with pytest.raises(TuningError):
            TuningHistory.load(path)


class TestSurrogate:
    def test_empty_history_predicts_none(self):
        history = TuningHistory()
        assert history.predict(SPACE, (0.0,) * 4, vec(0.9, 7)) is None

    def test_exact_revisit_dominates(self):
        history = TuningHistory()
        sig = (0.1, 0.1, 0.1, 0.1)
        history.record(sig, vec(0.9, 7), 5.0)
        history.record(sig, vec(0.1, 400), 100.0)
        estimate = history.predict(SPACE, sig, vec(0.9, 7), k=2)
        # The zero-distance neighbour carries almost all the weight.
        assert estimate == pytest.approx(5.0, rel=0.01)

    def test_signature_mismatch_discounts(self):
        near_sig = (0.1, 0.1, 0.1, 0.1)
        far_sig = (0.9, 0.9, 0.9, 0.9)
        history = TuningHistory()
        history.record(near_sig, vec(0.5, 10), 1.0)
        history.record(far_sig, vec(0.5, 10), 9.0)
        estimate = history.predict(SPACE, near_sig, vec(0.5, 10), k=2)
        assert estimate < 5.0  # the near-workload observation dominates

    def test_rank_orders_by_predicted_cost(self):
        sig = (0.2, 0.2, 0.2, 0.2)
        history = TuningHistory()
        history.record(sig, vec(0.9, 7), 1.0)
        history.record(sig, vec(0.1, 7), 50.0)
        good = vec(0.85, 7)
        bad = vec(0.15, 7)
        ranked = history.rank(SPACE, sig, [bad, good])
        assert ranked == [good, bad]

    def test_rank_empty_history_preserves_order(self):
        history = TuningHistory()
        candidates = [vec(0.1, 1), vec(0.9, 9)]
        assert history.rank(SPACE, (0.0,) * 4, candidates) == candidates

    def test_grown_space_skips_missing_knobs(self):
        # Old entries lack knobs the space has since grown; distance is
        # measured over the shared knobs only, never raising.
        history = TuningHistory()
        sig = (0.1, 0.1, 0.1, 0.1)
        history.record(sig, {"core.decay": 0.9}, 2.0)
        space = default_knob_space(("core.decay", "core.t_max"))
        estimate = history.predict(
            space, sig, {"core.decay": 0.9, "core.t_max": 0.002}
        )
        assert estimate == pytest.approx(2.0, rel=0.01)


class TestBestVectors:
    def test_bootstrap_order_and_dedup(self):
        sig = (0.1, 0.1, 0.1, 0.1)
        history = TuningHistory()
        history.record(sig, vec(0.9, 7), 3.0)
        history.record(sig, vec(0.8, 5), 1.0)
        history.record(sig, vec(0.8, 5), 2.0)  # duplicate vector
        history.record(sig, vec(0.7, 3), 2.5)
        best = history.best_vectors(sig, SPACE, limit=3)
        assert best[0] == {"core.decay": 0.8, "core.d_start": 5.0}
        assert len(best) == 3
        keys = {tuple(sorted(v.items())) for v in best}
        assert len(keys) == 3

    def test_empty(self):
        assert TuningHistory().best_vectors((0.0,) * 4, SPACE) == []
