"""Tests for the single-worker workload tracker."""

import pytest

from repro.core.resource_group import ResourceGroup
from repro.tuning import WorkloadTracker

from tests.conftest import make_query


def group(name="q", arrival=0.0, query_id=0):
    return ResourceGroup(make_query(name), query_id=query_id, arrival_time=arrival)


class TestWorkloadTracker:
    def test_inactive_by_default(self):
        tracker = WorkloadTracker()
        tracker.record(group(), 0.01)
        assert len(tracker) == 0

    def test_accumulates_per_group(self):
        tracker = WorkloadTracker()
        tracker.start(10.0)
        g = group(arrival=10.5, query_id=3)
        tracker.record(g, 0.01)
        tracker.record(g, 0.02)
        snapshot = tracker.snapshot()
        assert len(snapshot) == 1
        assert snapshot[0].work == pytest.approx(0.03)
        assert snapshot[0].arrival_offset == pytest.approx(0.5)

    def test_preexisting_groups_get_offset_zero(self):
        tracker = WorkloadTracker()
        tracker.start(10.0)
        g = group(arrival=2.0)
        tracker.record(g, 0.01)
        assert tracker.snapshot()[0].arrival_offset == 0.0

    def test_snapshot_sorted_by_arrival(self):
        tracker = WorkloadTracker()
        tracker.start(0.0)
        late = group("late", arrival=1.0, query_id=1)
        early = group("early", arrival=0.1, query_id=2)
        tracker.record(late, 0.01)
        tracker.record(early, 0.01)
        assert [q.name for q in tracker.snapshot()] == ["early", "late"]

    def test_stop_freezes_window(self):
        tracker = WorkloadTracker()
        tracker.start(0.0)
        tracker.record(group(query_id=1), 0.01)
        tracker.stop()
        tracker.record(group(query_id=2), 0.01)
        assert len(tracker.snapshot()) == 1

    def test_restart_clears(self):
        tracker = WorkloadTracker()
        tracker.start(0.0)
        tracker.record(group(query_id=1), 0.01)
        tracker.start(5.0)
        assert len(tracker) == 0

    def test_zero_duration_ignored(self):
        tracker = WorkloadTracker()
        tracker.start(0.0)
        tracker.record(group(), 0.0)
        assert len(tracker) == 0

    def test_base_latency_is_tracked_work(self):
        tracker = WorkloadTracker()
        tracker.start(0.0)
        g = group()
        tracker.record(g, 0.04)
        assert tracker.snapshot()[0].base_latency == pytest.approx(0.04)
