"""Tests for the Poisson arrival process."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import WorkloadError
from repro.workloads import exponential_arrivals
from repro.workloads.arrivals import fixed_count_arrivals


def rng(seed=0):
    return np.random.Generator(np.random.PCG64(seed))


class TestExponentialArrivals:
    def test_within_duration(self):
        times = exponential_arrivals(50.0, 10.0, rng())
        assert all(0.0 <= t < 10.0 for t in times)

    def test_strictly_increasing(self):
        times = exponential_arrivals(100.0, 5.0, rng())
        assert all(b > a for a, b in zip(times, times[1:]))

    def test_rate_matches_expectation(self):
        times = exponential_arrivals(200.0, 50.0, rng())
        assert len(times) == pytest.approx(200.0 * 50.0, rel=0.05)

    def test_deterministic_per_seed(self):
        assert exponential_arrivals(10.0, 5.0, rng(3)) == exponential_arrivals(
            10.0, 5.0, rng(3)
        )

    def test_validation(self):
        with pytest.raises(WorkloadError):
            exponential_arrivals(0.0, 1.0, rng())
        with pytest.raises(WorkloadError):
            exponential_arrivals(1.0, 0.0, rng())

    @given(
        rate=st.floats(min_value=1.0, max_value=500.0),
        duration=st.floats(min_value=0.1, max_value=20.0),
        seed=st.integers(min_value=0, max_value=1000),
    )
    @settings(max_examples=30, deadline=None)
    def test_property_sorted_and_bounded(self, rate, duration, seed):
        times = exponential_arrivals(rate, duration, rng(seed))
        assert times == sorted(times)
        assert all(0.0 <= t < duration for t in times)


class TestFixedCountArrivals:
    def test_exact_count(self):
        assert len(fixed_count_arrivals(10.0, 25, rng())) == 25

    def test_increasing(self):
        times = fixed_count_arrivals(10.0, 50, rng())
        assert all(b >= a for a, b in zip(times, times[1:]))

    def test_validation(self):
        with pytest.raises(WorkloadError):
            fixed_count_arrivals(-1.0, 5, rng())
        with pytest.raises(WorkloadError):
            fixed_count_arrivals(1.0, -5, rng())
