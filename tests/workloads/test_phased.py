"""Tests for phased / burst / multi-tenant workload builders."""

import pytest

from repro.errors import WorkloadError
from repro.simcore import RngFactory
from repro.workloads.mixes import QueryMix
from repro.workloads.phased import (
    Tenant,
    WorkloadPhase,
    burst_workload,
    multi_tenant_workload,
    phased_workload,
    tenant_of,
)

from tests.conftest import make_query


def mix(name="a", work=0.01):
    return QueryMix(entries=((make_query(name, work=work), 1.0),))


class TestPhasedWorkload:
    def test_phases_concatenate_in_time(self):
        phases = [
            WorkloadPhase(mix("a"), duration=1.0, rate=20.0),
            WorkloadPhase(mix("b"), duration=1.0, rate=20.0),
        ]
        workload = phased_workload(phases, n_workers=4, rng_factory=RngFactory(1))
        first = [q.name for t, q in workload if t < 1.0]
        second = [q.name for t, q in workload if t >= 1.0]
        assert set(first) == {"a"}
        assert set(second) == {"b"}

    def test_load_target_resolves_rate(self):
        phase = WorkloadPhase(mix(work=0.02), duration=1.0, load=0.5)
        # 0.5 * 4 workers / 0.02s per query = 100/s.
        assert phase.resolved_rate(4) == pytest.approx(100.0)

    def test_phase_requires_rate_or_load(self):
        phase = WorkloadPhase(mix(), duration=1.0)
        with pytest.raises(WorkloadError):
            phase.resolved_rate(4)

    def test_empty_phases_rejected(self):
        with pytest.raises(WorkloadError):
            phased_workload([], 4, RngFactory(1))

    def test_nonpositive_duration_rejected(self):
        with pytest.raises(WorkloadError):
            phased_workload(
                [WorkloadPhase(mix(), duration=0.0, rate=1.0)], 4, RngFactory(1)
            )

    def test_phase_independence(self):
        """Changing phase 2 must not reshuffle phase 1's arrivals."""
        base = [WorkloadPhase(mix("a"), duration=1.0, rate=30.0)]
        changed = base + [WorkloadPhase(mix("b"), duration=1.0, rate=5.0)]
        one = phased_workload(base, 4, RngFactory(9))
        two = phased_workload(changed, 4, RngFactory(9))
        assert [t for t, _ in one] == [t for t, _ in two[: len(one)]]


class TestBurstWorkload:
    def test_instantaneous_burst(self):
        base = phased_workload(
            [WorkloadPhase(mix("base"), duration=2.0, rate=5.0)],
            4,
            RngFactory(2),
        )
        merged = burst_workload(
            base, mix("burst"), burst_at=1.0, burst_size=10, rng_factory=RngFactory(2)
        )
        burst_times = [t for t, q in merged if q.name == "burst"]
        assert burst_times == [1.0] * 10

    def test_spread_burst_sorted(self):
        merged = burst_workload(
            [], mix("burst"), burst_at=0.5, burst_size=20,
            rng_factory=RngFactory(3), spread=1.0,
        )
        times = [t for t, _ in merged]
        assert times == sorted(times)
        assert all(0.5 <= t <= 1.5 for t in times)

    def test_negative_size_rejected(self):
        with pytest.raises(WorkloadError):
            burst_workload([], mix(), 0.0, -1, RngFactory(1))


class TestMultiTenant:
    def _tenants(self):
        return [
            Tenant("analytics", mix("a"), rate=20.0, user_priority=1.0),
            Tenant("dashboard", mix("b"), rate=20.0, user_priority=4.0),
        ]

    def test_tags_and_priorities_applied(self):
        workload = multi_tenant_workload(self._tenants(), 1.0, RngFactory(4))
        names = {tenant_of(q) for _, q in workload}
        assert names == {"analytics", "dashboard"}
        for _, query in workload:
            if tenant_of(query) == "dashboard":
                assert query.user_priority == 4.0

    def test_sorted_by_arrival(self):
        workload = multi_tenant_workload(self._tenants(), 1.0, RngFactory(4))
        times = [t for t, _ in workload]
        assert times == sorted(times)

    def test_validation(self):
        with pytest.raises(WorkloadError):
            multi_tenant_workload([], 1.0, RngFactory(1))
        with pytest.raises(WorkloadError):
            Tenant("x", mix(), rate=0.0)
        with pytest.raises(WorkloadError):
            Tenant("x", mix(), rate=1.0, user_priority=0.0)

    def test_tenant_of_untagged(self):
        assert tenant_of(make_query()) is None

    def test_high_priority_tenant_gets_better_latency(self):
        """End-to-end: the §3.2 user-priority scaling pays off."""
        from repro.core import SchedulerConfig, make_scheduler
        from repro.simcore import Simulator

        tenants = [
            Tenant("low", mix("low", work=0.02), rate=40.0, user_priority=1.0),
            Tenant("high", mix("high", work=0.02), rate=40.0, user_priority=8.0),
        ]
        workload = multi_tenant_workload(tenants, 2.0, RngFactory(6))
        scheduler = make_scheduler("stride", SchedulerConfig(n_workers=2))
        result = Simulator(scheduler, workload, seed=6, max_time=2.0).run()
        by_tenant = {"low": [], "high": []}
        for record in result.records.records:
            by_tenant[record.name].append(record.latency)
        mean_low = sum(by_tenant["low"]) / len(by_tenant["low"])
        mean_high = sum(by_tenant["high"]) / len(by_tenant["high"])
        assert mean_high < mean_low
