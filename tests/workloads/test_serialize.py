"""Tests for workload (de)serialization."""

import json

import pytest

from repro.errors import WorkloadError
from repro.simcore import RngFactory
from repro.workloads import generate_workload, tpch_mix
from repro.workloads.serialize import (
    load_workload,
    query_from_dict,
    query_to_dict,
    save_workload,
)

from tests.conftest import make_query


class TestQueryRoundtrip:
    def test_plain_query(self):
        query = make_query("q", work=0.02, pipelines=3, finalize=0.001)
        assert query_from_dict(query_to_dict(query)) == query

    def test_priorities_and_tags_preserved(self):
        from dataclasses import replace

        query = replace(
            make_query(),
            user_priority=2.0,
            static_priority=5000.0,
            tags=("tenant:etl",),
        )
        restored = query_from_dict(query_to_dict(query))
        assert restored.user_priority == 2.0
        assert restored.static_priority == 5000.0
        assert restored.tags == ("tenant:etl",)

    def test_tpch_query_roundtrip(self):
        from repro.workloads import tpch_query

        query = tpch_query("Q18", 3.0, compile_seconds=0.01)
        assert query_from_dict(query_to_dict(query)) == query


class TestWorkloadRoundtrip:
    def test_roundtrip_preserves_everything(self, tmp_path):
        mix = tpch_mix(names=("Q1", "Q6"))
        rng = RngFactory(1).stream("workload")
        workload = generate_workload(mix, rate=50.0, duration=1.0, rng=rng)
        path = save_workload(workload, tmp_path / "wl.json")
        restored = load_workload(path)
        assert len(restored) == len(workload)
        for (t1, q1), (t2, q2) in zip(workload, restored):
            assert t1 == pytest.approx(t2)
            assert q1 == q2

    def test_spec_table_deduplicates(self, tmp_path):
        query = make_query("q")
        workload = [(0.1 * i, query) for i in range(50)]
        path = save_workload(workload, tmp_path / "wl.json")
        payload = json.loads(path.read_text())
        assert len(payload["queries"]) == 1
        assert len(payload["arrivals"]) == 50

    def test_version_check(self, tmp_path):
        path = tmp_path / "bad.json"
        path.write_text(json.dumps({"format_version": 99}))
        with pytest.raises(WorkloadError):
            load_workload(path)

    def test_corrupt_index(self, tmp_path):
        path = tmp_path / "bad.json"
        path.write_text(
            json.dumps({"format_version": 1, "queries": [], "arrivals": [[0.0, 3]]})
        )
        with pytest.raises(WorkloadError):
            load_workload(path)

    def test_arrays_roundtrip_is_lossless(self):
        from repro.workloads.serialize import (
            workload_from_arrays,
            workload_to_arrays,
        )

        mix = tpch_mix(names=("Q1", "Q6", "Q13"))
        rng = RngFactory(3).stream("workload")
        workload = generate_workload(mix, rate=80.0, duration=1.0, rng=rng)
        restored = workload_from_arrays(workload_to_arrays(workload))
        assert len(restored) == len(workload)
        for (t1, q1), (t2, q2) in zip(workload, restored):
            assert repr(t1) == repr(t2)  # bit-exact, not approx
            assert q1 == q2

    def test_arrays_spec_table_deduplicates(self):
        from repro.workloads.serialize import workload_to_arrays

        query = make_query("q")
        workload = [(0.1 * i, query) for i in range(50)]
        payload = workload_to_arrays(workload)
        assert len(payload["specs"]) == 1
        assert len(payload["arrivals"]) == 50
        assert payload["arrivals"].dtype.name == "float64"
        assert set(payload["indices"]) == {0}

    def test_arrays_corrupt_index(self):
        import numpy as np

        from repro.workloads.serialize import workload_from_arrays

        payload = {
            "specs": [],
            "arrivals": np.array([0.0]),
            "indices": np.array([3], dtype=np.int32),
        }
        with pytest.raises(WorkloadError):
            workload_from_arrays(payload)

    def test_replay_gives_identical_simulation(self, tmp_path):
        """Saved workloads reproduce bit-identical runs."""
        from repro.core import SchedulerConfig, make_scheduler
        from repro.simcore import Simulator

        mix = tpch_mix(sf_small=0.5, sf_large=2.0, names=("Q3", "Q6"))
        rng = RngFactory(8).stream("workload")
        workload = generate_workload(mix, rate=30.0, duration=1.0, rng=rng)
        restored = load_workload(save_workload(workload, tmp_path / "wl.json"))

        def run(wl):
            scheduler = make_scheduler("stride", SchedulerConfig(n_workers=2))
            return Simulator(scheduler, wl, seed=8).run()

        original = run(workload)
        replayed = run(restored)
        assert [r.completion_time for r in original.records.records] == [
            r.completion_time for r in replayed.records.records
        ]
