"""Tests for the workload-profile sanity helpers."""


from repro.workloads import tpch_suite
from repro.workloads.spec_check import profile_summary, validate_suite

from tests.conftest import make_query


class TestProfileSummary:
    def test_counts_and_bounds(self):
        suite = tpch_suite(1.0, names=("Q1", "Q6"))
        summary = profile_summary(suite)
        assert summary["queries"] == 2.0
        assert summary["min_work"] <= summary["mean_work"] <= summary["max_work"]
        assert summary["per_tuple_cost_spread"] >= 1.0


class TestValidateSuite:
    def test_clean_suite(self):
        assert validate_suite(tpch_suite(3.0)) == []

    def test_detects_duplicates(self):
        query = make_query("dup")
        problems = validate_suite([query, query])
        assert any("duplicate" in p for p in problems)

    def test_allows_same_name_different_sf(self):
        a = make_query("q", scale_factor=1.0)
        b = make_query("q", scale_factor=2.0)
        assert validate_suite([a, b]) == []
