"""Tests for load calibration."""

import pytest

from repro.errors import CalibrationError
from repro.metrics.latency import query_key
from repro.workloads.load import (
    arrival_rate_for_load,
    find_oversubscription_rate,
    mean_isolated_latency,
)
from repro.workloads.mixes import QueryMix

from tests.conftest import make_query


def mix_two():
    return QueryMix(
        entries=(
            (make_query("a", work=0.01, scale_factor=1.0), 0.75),
            (make_query("b", work=0.09, scale_factor=10.0), 0.25),
        )
    )


class TestMeanIsolatedLatency:
    def test_weighted_mean(self):
        mix = mix_two()
        bases = {query_key("a", 1.0): 0.002, query_key("b", 10.0): 0.010}
        assert mean_isolated_latency(mix, bases) == pytest.approx(
            0.75 * 0.002 + 0.25 * 0.010
        )

    def test_missing_base_raises(self):
        with pytest.raises(CalibrationError):
            mean_isolated_latency(mix_two(), {})


class TestArrivalRateForLoad:
    def test_capacity_basis(self):
        mix = mix_two()
        expected_work = 0.75 * 0.01 + 0.25 * 0.09
        rate = arrival_rate_for_load(mix, 0.9, n_workers=10)
        assert rate == pytest.approx(0.9 * 10 / expected_work)

    def test_isolated_basis(self):
        mix = mix_two()
        bases = {query_key("a", 1.0): 0.002, query_key("b", 10.0): 0.010}
        rate = arrival_rate_for_load(mix, 0.8, bases, basis="isolated")
        assert rate == pytest.approx(0.8 / mean_isolated_latency(mix, bases))

    def test_capacity_requires_workers(self):
        with pytest.raises(CalibrationError):
            arrival_rate_for_load(mix_two(), 1.0)

    def test_isolated_requires_bases(self):
        with pytest.raises(CalibrationError):
            arrival_rate_for_load(mix_two(), 1.0, basis="isolated")

    def test_unknown_basis(self):
        with pytest.raises(CalibrationError):
            arrival_rate_for_load(mix_two(), 1.0, n_workers=4, basis="vibes")

    def test_nonpositive_load(self):
        with pytest.raises(CalibrationError):
            arrival_rate_for_load(mix_two(), 0.0, n_workers=4)


class TestFindOversubscriptionRate:
    def test_finds_threshold_crossing(self):
        """On a synthetic monotone response, the bisection converges to
        the crossing point within tolerance."""

        def response(rate: float) -> float:
            return rate**2  # crosses 50 at rate ~7.07

        found = find_oversubscription_rate(response, initial_rate=1.0, threshold=50.0)
        assert found == pytest.approx(50.0**0.5, rel=0.1)

    def test_bracketing_downwards(self):
        def response(rate: float) -> float:
            return rate * 10.0  # crosses 50 at 5; start above

        found = find_oversubscription_rate(response, initial_rate=400.0)
        assert found == pytest.approx(5.0, rel=0.15)

    def test_unbracketable_raises(self):
        with pytest.raises(CalibrationError):
            find_oversubscription_rate(lambda rate: 1.0, initial_rate=1.0)

    def test_invalid_initial(self):
        with pytest.raises(CalibrationError):
            find_oversubscription_rate(lambda rate: rate, initial_rate=0.0)
