"""Tests for workload generation."""

import numpy as np
import pytest

from repro.workloads import generate_workload, workload_cpu_seconds
from repro.workloads.generator import offered_load

from tests.conftest import make_query
from repro.workloads.mixes import QueryMix


def rng(seed=0):
    return np.random.Generator(np.random.PCG64(seed))


def simple_mix():
    return QueryMix(entries=((make_query("a", work=0.01), 1.0),))


class TestGenerateWorkload:
    def test_sorted_arrivals(self):
        workload = generate_workload(simple_mix(), rate=100.0, duration=2.0, rng=rng())
        times = [t for t, _ in workload]
        assert times == sorted(times)

    def test_deterministic(self):
        one = generate_workload(simple_mix(), 50.0, 1.0, rng(7))
        two = generate_workload(simple_mix(), 50.0, 1.0, rng(7))
        assert [(t, q.name) for t, q in one] == [(t, q.name) for t, q in two]

    def test_cpu_seconds(self):
        workload = generate_workload(simple_mix(), 100.0, 2.0, rng())
        assert workload_cpu_seconds(workload) == pytest.approx(0.01 * len(workload))

    def test_offered_load(self):
        workload = generate_workload(simple_mix(), rate=100.0, duration=10.0, rng=rng())
        # 100 q/s * 0.01 s/q = 1 CPU-second/second on 2 workers -> ~0.5.
        assert offered_load(workload, 10.0, 2) == pytest.approx(0.5, rel=0.1)

    def test_offered_load_degenerate(self):
        assert offered_load([], 0.0, 0) == 0.0
