"""Tests for the TPC-H workload profiles."""

import pytest

from repro.errors import WorkloadError
from repro.workloads import TPCH_QUERY_NAMES, tpch_query, tpch_suite
from repro.workloads.spec_check import profile_summary, validate_suite


class TestTpchQuery:
    def test_all_22_queries_defined(self):
        assert len(TPCH_QUERY_NAMES) == 22
        for name in TPCH_QUERY_NAMES:
            query = tpch_query(name)
            assert query.pipelines

    def test_unknown_query(self):
        with pytest.raises(WorkloadError):
            tpch_query("Q23")

    def test_scaling_preserves_rates(self):
        sf1 = tpch_query("Q1", 1.0)
        sf30 = tpch_query("Q1", 30.0)
        assert sf30.total_work_seconds == pytest.approx(
            30.0 * sf1.total_work_seconds, rel=0.01
        )
        for p1, p30 in zip(sf1.pipelines, sf30.pipelines):
            assert p30.tuples_per_second == p1.tuples_per_second

    def test_compile_pipeline_prepended(self):
        query = tpch_query("Q6", 3.0, compile_seconds=0.01)
        assert query.pipelines[0].name == "compile"
        assert not query.pipelines[0].supports_adaptive
        assert query.pipelines[0].single_thread_seconds == pytest.approx(0.01)
        # The compile cost does not scale with the data.
        sf30 = tpch_query("Q6", 30.0, compile_seconds=0.01)
        assert sf30.pipelines[0].single_thread_seconds == pytest.approx(0.01)

    def test_no_compile_pipeline_by_default(self):
        query = tpch_query("Q6", 3.0)
        assert query.pipelines[0].name != "compile"

    def test_relative_magnitudes(self):
        """The short/long structure the evaluation relies on."""
        work = {name: tpch_query(name).total_work_seconds for name in TPCH_QUERY_NAMES}
        short = ("Q6", "Q11", "Q22")
        long_ = ("Q1", "Q9", "Q13", "Q18", "Q21")
        for s in short:
            for l in long_:
                assert work[l] > 3.0 * work[s], (s, l)

    def test_per_tuple_cost_spread_exceeds_30x(self):
        """§3.1: pipeline per-tuple costs vary by more than 30x."""
        summary = profile_summary(tpch_suite(1.0))
        assert summary["per_tuple_cost_spread"] > 30.0

    def test_suite_is_consistent(self):
        assert validate_suite(tpch_suite(3.0)) == []

    def test_suite_subset(self):
        suite = tpch_suite(1.0, names=("Q1", "Q6"))
        assert [q.name for q in suite] == ["Q1", "Q6"]
