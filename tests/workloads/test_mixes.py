"""Tests for query mixes."""

import numpy as np
import pytest

from repro.errors import WorkloadError
from repro.workloads import tpch_mix
from repro.workloads.mixes import QueryMix

from tests.conftest import make_query


def rng(seed=0):
    return np.random.Generator(np.random.PCG64(seed))


class TestQueryMix:
    def test_rejects_empty(self):
        with pytest.raises(WorkloadError):
            QueryMix(entries=())

    def test_rejects_nonpositive_weights(self):
        with pytest.raises(WorkloadError):
            QueryMix(entries=((make_query(), 0.0),))

    def test_weights_normalised(self):
        mix = QueryMix(entries=((make_query("a"), 3.0), (make_query("b"), 1.0)))
        assert mix.weights.tolist() == pytest.approx([0.75, 0.25])

    def test_sample_respects_weights(self):
        mix = QueryMix(entries=((make_query("a"), 9.0), (make_query("b"), 1.0)))
        sample = mix.sample(5000, rng())
        share_a = sum(1 for q in sample if q.name == "a") / len(sample)
        assert share_a == pytest.approx(0.9, abs=0.02)

    def test_expected_work(self):
        mix = QueryMix(
            entries=(
                (make_query("a", work=0.01), 1.0),
                (make_query("b", work=0.03), 1.0),
            )
        )
        assert mix.expected_work_seconds() == pytest.approx(0.02)


class TestTpchMix:
    def test_paper_composition(self):
        """75% SF3 / 25% SF30, uniform over the 22 queries."""
        mix = tpch_mix()
        assert len(mix.entries) == 44
        by_sf = mix.by_scale_factor()
        assert by_sf[3.0] == pytest.approx(0.75)
        assert by_sf[30.0] == pytest.approx(0.25)

    def test_short_queries_minor_work_share(self):
        """§5.1: 3/4 of the queries but only ~1/4 of the execution time."""
        mix = tpch_mix()
        probabilities = mix.weights
        sf3_work = sum(
            float(p) * query.total_work_seconds
            for (query, _), p in zip(mix.entries, probabilities)
            if query.scale_factor == 3.0
        )
        total = mix.expected_work_seconds()
        assert sf3_work / total == pytest.approx(0.23, abs=0.05)

    def test_invalid_p_small(self):
        with pytest.raises(WorkloadError):
            tpch_mix(p_small=1.0)

    def test_custom_scale_factors(self):
        mix = tpch_mix(sf_small=1.0, sf_large=10.0, names=("Q1",))
        sfs = {query.scale_factor for query in mix.queries}
        assert sfs == {1.0, 10.0}


class TestEngineMix:
    def test_covers_the_ten_engine_shapes(self):
        from repro.workloads import DEFAULT_MIX_NAMES, engine_mix

        mix = engine_mix()
        assert DEFAULT_MIX_NAMES == (
            "Q1", "Q3", "Q4", "Q6", "Q12", "Q13", "Q14", "Q18", "Q19", "Q22",
        )
        assert len(mix.entries) == 2 * len(DEFAULT_MIX_NAMES)
        assert {q.name for q in mix.queries} == set(DEFAULT_MIX_NAMES)
        by_sf = mix.by_scale_factor()
        assert by_sf[3.0] == pytest.approx(0.75)
        assert by_sf[30.0] == pytest.approx(0.25)

    def test_engine_names_have_engine_plans(self):
        from repro.engine.queries import ENGINE_QUERIES
        from repro.workloads import DEFAULT_MIX_NAMES

        assert set(DEFAULT_MIX_NAMES) <= set(ENGINE_QUERIES)
