"""Tests for query/pipeline execution specs."""

import pytest

from repro.core import PipelineSpec, QuerySpec
from repro.errors import WorkloadError


def pipeline(**kwargs):
    defaults = dict(name="p", tuples=1000, tuples_per_second=1e6)
    defaults.update(kwargs)
    return PipelineSpec(**defaults)


class TestPipelineSpec:
    def test_single_thread_seconds(self):
        spec = pipeline(tuples=2_000_000, tuples_per_second=1e6, finalize_seconds=0.5)
        assert spec.single_thread_seconds == pytest.approx(2.5)

    def test_rejects_bad_values(self):
        with pytest.raises(WorkloadError):
            pipeline(tuples=-1)
        with pytest.raises(WorkloadError):
            pipeline(tuples_per_second=0.0)
        with pytest.raises(WorkloadError):
            pipeline(fixed_morsel_tuples=0)
        with pytest.raises(WorkloadError):
            pipeline(parallel_efficiency=-0.1)

    def test_scaled_preserves_rate(self):
        spec = pipeline(tuples=1000, finalize_seconds=0.01)
        scaled = spec.scaled(10.0)
        assert scaled.tuples == 10_000
        assert scaled.tuples_per_second == spec.tuples_per_second
        assert scaled.finalize_seconds == pytest.approx(0.1)

    def test_scaled_minimum_one_tuple(self):
        assert pipeline(tuples=1).scaled(0.001).tuples == 1


class TestQuerySpec:
    def test_requires_pipelines(self):
        with pytest.raises(WorkloadError):
            QuerySpec(name="q", scale_factor=1.0, pipelines=())

    def test_total_work(self):
        query = QuerySpec(
            name="q",
            scale_factor=1.0,
            pipelines=(pipeline(tuples=1_000_000), pipeline(tuples=500_000)),
        )
        assert query.total_work_seconds == pytest.approx(1.5)

    def test_single_thread_adds_compile(self):
        query = QuerySpec(
            name="q",
            scale_factor=1.0,
            pipelines=(pipeline(tuples=1_000_000),),
            compile_seconds=0.25,
        )
        assert query.single_thread_seconds == pytest.approx(1.25)

    def test_isolated_latency_decreases_with_workers(self):
        query = QuerySpec(
            name="q", scale_factor=1.0, pipelines=(pipeline(tuples=10_000_000),)
        )
        assert query.isolated_latency(8) < query.isolated_latency(2)

    def test_isolated_latency_requires_workers(self):
        query = QuerySpec(name="q", scale_factor=1.0, pipelines=(pipeline(),))
        with pytest.raises(WorkloadError):
            query.isolated_latency(0)

    def test_at_scale(self):
        query = QuerySpec(
            name="q", scale_factor=3.0, pipelines=(pipeline(tuples=3_000_000),)
        )
        rescaled = query.at_scale(30.0)
        assert rescaled.scale_factor == 30.0
        assert rescaled.pipelines[0].tuples == 30_000_000
        assert rescaled.total_work_seconds == pytest.approx(
            10.0 * query.total_work_seconds
        )

    def test_at_scale_rejects_nonpositive(self):
        query = QuerySpec(name="q", scale_factor=1.0, pipelines=(pipeline(),))
        with pytest.raises(WorkloadError):
            query.at_scale(0.0)
