"""Tests for adaptive priority decay (§3.2)."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.core.decay import DEFAULT_P0, DEFAULT_PMIN, DecayParameters, PriorityDecay
from repro.errors import TuningError


class TestDecayParameters:
    def test_defaults_match_paper(self):
        params = DecayParameters()
        assert params.p0 == 10_000.0
        assert params.p_min == 100.0

    def test_validation(self):
        with pytest.raises(TuningError):
            DecayParameters(decay=1.5)
        with pytest.raises(TuningError):
            DecayParameters(d_start=-1)
        with pytest.raises(TuningError):
            DecayParameters(p_min=0.0)
        with pytest.raises(TuningError):
            DecayParameters(p0=50.0, p_min=100.0)
        with pytest.raises(TuningError):
            DecayParameters(quantum=0.0)

    def test_with_values(self):
        params = DecayParameters().with_values(0.5, 3)
        assert params.decay == 0.5
        assert params.d_start == 3
        assert params.p0 == DEFAULT_P0

    def test_closed_form_before_onset(self):
        params = DecayParameters(decay=0.5, d_start=4)
        for quanta in range(5):
            assert params.priority_after(quanta) == DEFAULT_P0

    def test_closed_form_after_onset(self):
        params = DecayParameters(decay=0.5, d_start=2)
        assert params.priority_after(3) == pytest.approx(DEFAULT_P0 * 0.5)
        assert params.priority_after(5) == pytest.approx(DEFAULT_P0 * 0.125)

    def test_closed_form_floor(self):
        params = DecayParameters(decay=0.1, d_start=0)
        assert params.priority_after(100) == DEFAULT_PMIN

    def test_user_scale(self):
        params = DecayParameters(decay=0.1, d_start=0)
        assert params.priority_after(0, scale=2.0) == 2.0 * DEFAULT_P0
        assert params.priority_after(100, scale=2.0) == 2.0 * DEFAULT_PMIN


class TestPriorityDecay:
    def test_charge_applies_quantum_steps(self):
        params = DecayParameters(decay=0.5, d_start=0, quantum=0.002)
        decay = PriorityDecay(params)
        decay.charge(0.004)  # two quanta
        assert decay.quanta == 2
        assert decay.priority == pytest.approx(DEFAULT_P0 * 0.25)

    def test_partial_quantum_accumulates(self):
        params = DecayParameters(decay=0.5, d_start=0, quantum=0.002)
        decay = PriorityDecay(params)
        decay.charge(0.001)
        assert decay.quanta == 0
        decay.charge(0.001)
        assert decay.quanta == 1

    def test_onset_delays_decay(self):
        params = DecayParameters(decay=0.5, d_start=3, quantum=0.001)
        decay = PriorityDecay(params)
        decay.charge(0.003)
        assert decay.priority == DEFAULT_P0
        decay.charge(0.001)
        assert decay.priority == pytest.approx(DEFAULT_P0 * 0.5)

    def test_static_priority_never_decays(self):
        params = DecayParameters(decay=0.1, d_start=0, quantum=0.001)
        decay = PriorityDecay(params, static_priority=5000.0)
        decay.charge(1.0)
        assert decay.priority == 5000.0

    def test_negative_charge_ignored(self):
        decay = PriorityDecay(DecayParameters())
        decay.charge(-1.0)
        assert decay.quanta == 0

    def test_update_parameters_recomputes_closed_form(self):
        old = DecayParameters(decay=0.9, d_start=10, quantum=0.001)
        decay = PriorityDecay(old)
        decay.charge(0.005)  # 5 quanta, still before onset
        new = DecayParameters(decay=0.5, d_start=2, quantum=0.001)
        decay.update_parameters(new)
        assert decay.priority == pytest.approx(new.priority_after(5))

    @given(
        decay_factor=st.floats(min_value=0.0, max_value=1.0),
        d_start=st.integers(min_value=0, max_value=20),
        quanta=st.integers(min_value=0, max_value=200),
    )
    def test_priority_monotone_and_bounded(self, decay_factor, d_start, quanta):
        """Priorities never increase over time and never drop below p_min."""
        params = DecayParameters(decay=decay_factor, d_start=d_start, quantum=0.001)
        decay = PriorityDecay(params)
        previous = decay.priority
        for _ in range(quanta):
            decay.charge(params.quantum)
            assert decay.priority <= previous + 1e-9
            assert decay.priority >= params.p_min - 1e-9
            previous = decay.priority

    @given(
        decay_factor=st.floats(min_value=0.01, max_value=0.99),
        d_start=st.integers(min_value=0, max_value=10),
        quanta=st.integers(min_value=0, max_value=100),
    )
    def test_incremental_matches_closed_form(self, decay_factor, d_start, quanta):
        params = DecayParameters(decay=decay_factor, d_start=d_start, quantum=0.001)
        decay = PriorityDecay(params)
        for _ in range(quanta):
            decay.charge(params.quantum)
        assert decay.priority == pytest.approx(
            params.priority_after(quanta), rel=1e-9
        )
