"""Tests for thread-local worker scheduling state."""

import pytest

from repro.core.decay import DecayParameters
from repro.core.worker import STRIDE_SCALE, WorkerLocalState


def make_worker(n_slots=8):
    return WorkerLocalState(worker_id=0, n_slots=n_slots)


class TestActivityMask:
    def test_activate_deactivate(self):
        worker = make_worker()
        worker.activate(3)
        assert worker.is_active(3)
        assert list(worker.active_slots()) == [3]
        worker.deactivate(3)
        assert not worker.has_active_slots

    def test_multiple_slots_ascending(self):
        worker = make_worker()
        for slot in (5, 1, 3):
            worker.activate(slot)
        assert list(worker.active_slots()) == [1, 3, 5]


class TestSlotState:
    def test_init_slot_anchors_pass_at_global(self):
        worker = make_worker()
        worker.global_pass = 4.2
        state = worker.init_slot(2, group_id=9, params=DecayParameters())
        assert state.pass_value == 4.2
        assert worker.is_active(2)

    def test_return_slot_reanchors_stale_pass(self):
        """Event (3): a returning task set must not get a catch-up burst."""
        worker = make_worker()
        worker.init_slot(1, group_id=0, params=DecayParameters())
        worker.deactivate(1)
        worker.global_pass = 10.0
        worker.return_slot(1)
        assert worker.slot_states[1].pass_value == 10.0
        assert worker.is_active(1)

    def test_return_slot_keeps_larger_pass(self):
        worker = make_worker()
        worker.init_slot(1, group_id=0, params=DecayParameters())
        worker.slot_states[1].pass_value = 20.0
        worker.global_pass = 10.0
        worker.return_slot(1)
        assert worker.slot_states[1].pass_value == 20.0

    def test_forget_slot(self):
        worker = make_worker()
        worker.init_slot(1, group_id=0, params=DecayParameters())
        worker.forget_slot(1)
        assert 1 not in worker.slot_states
        assert not worker.is_active(1)

    def test_stride_reflects_priority(self):
        worker = make_worker()
        state = worker.init_slot(0, group_id=0, params=DecayParameters())
        assert state.stride == pytest.approx(STRIDE_SCALE / state.priority)


class TestStrideAccounting:
    def test_min_pass_slot(self):
        worker = make_worker()
        a = worker.init_slot(0, group_id=0, params=DecayParameters())
        b = worker.init_slot(1, group_id=1, params=DecayParameters())
        a.pass_value = 5.0
        b.pass_value = 3.0
        assert worker.min_pass_slot() == 1

    def test_min_pass_none_when_idle(self):
        assert make_worker().min_pass_slot() is None

    def test_min_pass_tie_breaks_low_slot(self):
        worker = make_worker()
        worker.init_slot(2, group_id=0, params=DecayParameters())
        worker.init_slot(5, group_id=1, params=DecayParameters())
        assert worker.min_pass_slot() == 2

    def test_missing_state_repair_priority(self):
        """An active bit without state is returned for lazy repair."""
        worker = make_worker()
        worker.activate(4)
        assert worker.min_pass_slot() == 4

    def test_account_execution_advances_passes(self):
        worker = make_worker()
        state = worker.init_slot(0, group_id=0, params=DecayParameters())
        worker.account_execution(0, fraction=1.0)
        assert state.pass_value == pytest.approx(state.stride)
        # Single active slot: the global stride equals the slot stride.
        assert worker.global_pass == pytest.approx(state.stride)

    def test_account_execution_fractional(self):
        """§2.1: f may exceed one for overlong tasks."""
        worker = make_worker()
        state = worker.init_slot(0, group_id=0, params=DecayParameters())
        worker.account_execution(0, fraction=2.5)
        assert state.pass_value == pytest.approx(2.5 * state.stride)

    def test_global_stride_uses_priority_sum(self):
        worker = make_worker()
        worker.init_slot(0, group_id=0, params=DecayParameters())
        worker.init_slot(1, group_id=1, params=DecayParameters())
        worker.account_execution(0, fraction=1.0)
        total = worker.total_active_priority()
        assert worker.global_pass == pytest.approx(STRIDE_SCALE / total)

    def test_account_unknown_slot_is_noop(self):
        worker = make_worker()
        worker.account_execution(7, fraction=1.0)
        assert worker.global_pass == 0.0
