"""Tests for the FIFO baseline."""

import pytest

from repro.core import SchedulerConfig, make_scheduler
from repro.simcore import Simulator

from tests.conftest import make_query


def run_fifo(workload, n_workers=2, **kwargs):
    scheduler = make_scheduler("fifo", SchedulerConfig(n_workers=n_workers))
    result = Simulator(scheduler, workload, seed=2, noise_sigma=0.0, **kwargs).run()
    return scheduler, result


class TestFifoScheduler:
    def test_strict_arrival_order(self):
        """Queries complete in exactly their arrival order."""
        queries = [make_query(f"q{i}", work=0.01, pipelines=2) for i in range(6)]
        _, result = run_fifo([(0.0001 * i, q) for i, q in enumerate(queries)])
        completed_names = [r.name for r in result.records.records]
        assert completed_names == [f"q{i}" for i in range(6)]

    def test_short_query_waits_behind_long(self):
        """The §5.2 pathology: wait time dominates short-query latency."""
        long_ = make_query("long", work=0.5, pipelines=1)
        short = make_query("short", work=0.005, pipelines=1)
        _, result = run_fifo([(0.0, long_), (0.001, short)], n_workers=1)
        records = {r.name: r for r in result.records.records}
        assert records["short"].latency > 0.4  # waited for the long query
        assert records["short"].completion_time > records["long"].completion_time

    def test_all_workers_cooperate_on_front_query(self):
        query = make_query("q", work=0.1, pipelines=1)
        _, result = run_fifo([(0.0, query)], n_workers=4)
        record = result.records.records[0]
        # Near-linear speedup (minus contention): latency ~ work / 4.
        assert record.latency < 0.1 / 2

    def test_drains_completely(self, tiny_mix):
        from repro.simcore import RngFactory
        from repro.workloads import generate_workload

        rng = RngFactory(6).stream("workload")
        workload = generate_workload(tiny_mix, rate=25.0, duration=1.0, rng=rng)
        _, result = run_fifo(workload, n_workers=3)
        assert result.completed == result.admitted

    def test_multi_pipeline_query(self):
        query = make_query("q", work=0.02, pipelines=3, finalize=0.001)
        _, result = run_fifo([(0.0, query)])
        record = result.records.records[0]
        assert record.cpu_seconds == pytest.approx(
            query.total_work_seconds, rel=0.08
        )
