"""Tests for the scheduler registry/factory."""

import pytest

from repro.core import SchedulerConfig, available_schedulers, make_scheduler
from repro.core.fair import FairScheduler
from repro.core.stride import StrideScheduler
from repro.errors import SchedulerError


class TestRegistry:
    def test_available_schedulers(self):
        names = available_schedulers()
        for expected in ("stride", "fair", "lottery", "fifo", "umbra", "tuning"):
            assert expected in names

    def test_make_each_scheduler(self):
        config = SchedulerConfig(n_workers=2)
        for name in available_schedulers():
            scheduler = make_scheduler(name, config)
            assert scheduler.n_workers == 2

    def test_unknown_name(self):
        with pytest.raises(SchedulerError):
            make_scheduler("cfs", SchedulerConfig())

    def test_tuning_is_stride_with_controller(self):
        scheduler = make_scheduler("tuning", SchedulerConfig(n_workers=2))
        assert isinstance(scheduler, StrideScheduler)
        assert scheduler.name == "tuning"
        assert scheduler.tuner is not None

    def test_baselines_never_tune(self):
        config = SchedulerConfig(n_workers=2, tuning_enabled=True)
        fair = make_scheduler("fair", config)
        assert isinstance(fair, FairScheduler)
        assert fair.tuner is None

    def test_stride_without_tuning_flag(self):
        scheduler = make_scheduler("stride", SchedulerConfig(n_workers=2))
        assert scheduler.tuner is None
