"""Tests for resource groups (per-query ordered task sets)."""

import pytest

from repro.core.resource_group import ResourceGroup
from repro.errors import SchedulerError

from tests.conftest import make_query


def make_group(pipelines=3):
    query = make_query("q", work=0.03, pipelines=pipelines)
    return ResourceGroup(query, query_id=7, arrival_time=1.0)


class TestTaskSetOrdering:
    def test_activates_in_order(self):
        group = make_group(pipelines=3)
        names = []
        while True:
            ts = group.activate_next_task_set()
            if ts is None:
                break
            names.append(ts.profile.name)
            ts.mark_finalized()
        assert names == ["q-p0", "q-p1", "q-p2"]

    def test_cannot_skip_unfinalized_task_set(self):
        """Pipeline dependencies (build before probe) are enforced."""
        group = make_group()
        group.activate_next_task_set()
        with pytest.raises(SchedulerError):
            group.activate_next_task_set()

    def test_complete_after_all_pipelines(self):
        group = make_group(pipelines=2)
        assert not group.complete
        for _ in range(2):
            ts = group.activate_next_task_set()
            ts.mark_finalized()
        assert group.activate_next_task_set() is None
        assert group.complete

    def test_not_complete_before_start(self):
        assert not make_group().complete

    def test_finished_task_sets_recorded(self):
        group = make_group(pipelines=2)
        first = group.activate_next_task_set()
        first.mark_finalized()
        group.activate_next_task_set()
        assert group.finished_task_sets == [first]


class TestAccounting:
    def test_charge_cpu(self):
        group = make_group()
        group.charge_cpu(0.5)
        group.charge_cpu(0.25)
        assert group.cpu_seconds == pytest.approx(0.75)

    def test_charge_negative_rejected(self):
        with pytest.raises(SchedulerError):
            make_group().charge_cpu(-1.0)

    def test_latency(self):
        group = make_group()
        assert group.latency is None
        group.mark_complete(3.5)
        assert group.latency == pytest.approx(2.5)

    def test_double_completion_rejected(self):
        group = make_group()
        group.mark_complete(2.0)
        with pytest.raises(SchedulerError):
            group.mark_complete(3.0)
