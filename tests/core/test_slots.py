"""Tests for the global slot array."""

import pytest

from repro.core.resource_group import ResourceGroup
from repro.core.slots import GlobalSlotArray
from repro.errors import SlotError

from tests.conftest import make_query


def group_with_task_set(query_id=0):
    query = make_query("q", pipelines=1)
    group = ResourceGroup(query, query_id=query_id, arrival_time=0.0)
    ts = group.activate_next_task_set()
    return group, ts


class TestSlotLifecycle:
    def test_acquire_release(self):
        slots = GlobalSlotArray(4)
        group, _ = group_with_task_set()
        slot = slots.acquire(group)
        assert slots.occupied == 1
        assert slots.owner(slot) is group
        slots.release(slot)
        assert slots.occupied == 0
        assert slots.owner(slot) is None

    def test_acquire_when_full_raises(self):
        slots = GlobalSlotArray(1)
        group, _ = group_with_task_set()
        slots.acquire(group)
        assert not slots.has_free_slot()
        with pytest.raises(SlotError):
            slots.acquire(group)

    def test_double_release_rejected(self):
        slots = GlobalSlotArray(2)
        group, _ = group_with_task_set()
        slot = slots.acquire(group)
        slots.release(slot)
        with pytest.raises(SlotError):
            slots.release(slot)

    def test_slot_reuse(self):
        slots = GlobalSlotArray(1)
        group_a, _ = group_with_task_set(0)
        group_b, _ = group_with_task_set(1)
        slot_a = slots.acquire(group_a)
        slots.release(slot_a)
        slot_b = slots.acquire(group_b)
        assert slot_a == slot_b
        assert slots.owner(slot_b) is group_b

    def test_capacity_validation(self):
        with pytest.raises(SlotError):
            GlobalSlotArray(0)


class TestTaskSetPointers:
    def test_store_and_read(self):
        slots = GlobalSlotArray(2)
        group, ts = group_with_task_set()
        slot = slots.acquire(group)
        slots.store_task_set(slot, ts)
        read_ts, valid = slots.read(slot)
        assert read_ts is ts
        assert valid

    def test_store_wrong_owner_rejected(self):
        slots = GlobalSlotArray(2)
        group_a, _ = group_with_task_set(0)
        _, ts_b = group_with_task_set(1)
        slot = slots.acquire(group_a)
        with pytest.raises(SlotError):
            slots.store_task_set(slot, ts_b)

    def test_tag_invalid_elects_one_coordinator(self):
        slots = GlobalSlotArray(2)
        group, ts = group_with_task_set()
        slot = slots.acquire(group)
        slots.store_task_set(slot, ts)
        assert slots.tag_invalid(slot)
        assert not slots.tag_invalid(slot)
        read_ts, valid = slots.read(slot)
        assert read_ts is ts  # optimistic readers still see the pointer
        assert not valid

    def test_release_clears_pointer(self):
        slots = GlobalSlotArray(2)
        group, ts = group_with_task_set()
        slot = slots.acquire(group)
        slots.store_task_set(slot, ts)
        slots.release(slot)
        read_ts, valid = slots.read(slot)
        assert read_ts is None
        assert not valid

    def test_store_count(self):
        slots = GlobalSlotArray(2)
        group, ts = group_with_task_set()
        slot = slots.acquire(group)
        slots.store_task_set(slot, ts)
        assert slots.store_count == 1

    def test_bounds_check(self):
        slots = GlobalSlotArray(2)
        with pytest.raises(SlotError):
            slots.read(2)
