"""Tests for the adaptive morsel execution state machine (§3.1)."""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.morsel_exec import (
    MorselExecutor,
    MorselExecutorConfig,
    MorselMode,
)
from repro.core.resource_group import ResourceGroup
from repro.core.specs import PipelineSpec, QuerySpec
from repro.core.task import PipelineState, TaskSet


class FixedRateEnv:
    """Deterministic environment: duration = tuples / rate."""

    def __init__(self, rate: float = 1e6) -> None:
        self.rate = rate
        self.calls = []

    def run_morsel(self, task_set, tuples):
        self.calls.append(tuples)
        return tuples / self.rate


def make_task_set(tuples=1_000_000, supports_adaptive=True, fixed=60_000):
    spec = PipelineSpec(
        name="p",
        tuples=tuples,
        tuples_per_second=1e6,
        supports_adaptive=supports_adaptive,
        fixed_morsel_tuples=fixed,
    )
    query = QuerySpec(name="q", scale_factor=1.0, pipelines=(spec,))
    group = ResourceGroup(query, 0, 0.0)
    return TaskSet(spec, group, 0)


def executor(t_max=0.002, mode=MorselMode.ADAPTIVE, n_workers=4, c0=16):
    return MorselExecutor(
        MorselExecutorConfig(t_max=t_max, mode=mode, n_workers=n_workers, c0=c0)
    )


class TestStartupState:
    def test_exponential_growth(self):
        env = FixedRateEnv(rate=1e6)
        ts = make_task_set()
        executed = executor().run_task(ts, env)
        sizes = [m.tuples for m in executed.morsels]
        # C0, 2*C0, 4*C0, ... doubling until the budget is exhausted.
        for previous, current in zip(sizes, sizes[1:]):
            assert current == 2 * previous
        assert sizes[0] == 16
        assert all(m.phase == "startup" for m in executed.morsels)

    def test_startup_seeds_estimate_and_transitions(self):
        env = FixedRateEnv(rate=1e6)
        ts = make_task_set()
        executor().run_task(ts, env)
        assert ts.state is PipelineState.DEFAULT
        assert ts.throughput_estimate == pytest.approx(1e6, rel=0.01)

    def test_startup_respects_budget(self):
        env = FixedRateEnv(rate=1e6)
        ts = make_task_set()
        executed = executor(t_max=0.002).run_task(ts, env)
        assert executed.duration <= 0.002 * 1.01


class TestDefaultState:
    def _warm(self, ts, env, exec_):
        exec_.run_task(ts, env)  # startup task
        assert ts.state is PipelineState.DEFAULT

    def test_single_morsel_exhausts_budget(self):
        env = FixedRateEnv(rate=1e6)
        ts = make_task_set(tuples=10_000_000)
        exec_ = executor(t_max=0.002)
        self._warm(ts, env, exec_)
        executed = exec_.run_task(ts, env)
        assert len(executed.morsels) == 1
        assert executed.duration == pytest.approx(0.002, rel=0.05)
        assert executed.morsels[0].phase == "default"

    def test_estimate_tracks_rate_change(self):
        env = FixedRateEnv(rate=1e6)
        ts = make_task_set(tuples=50_000_000)
        exec_ = executor(t_max=0.002, n_workers=1)
        self._warm(ts, env, exec_)
        env.rate = 4e6  # pipeline got faster
        for _ in range(10):
            exec_.run_task(ts, env)
        assert ts.throughput_estimate == pytest.approx(4e6, rel=0.05)


class TestShutdownState:
    def test_shutdown_triggers_near_end(self):
        env = FixedRateEnv(rate=1e6)
        # Remaining time ~8ms < W * t_max = 4 * 2ms after the startup task.
        ts = make_task_set(tuples=9_000)
        exec_ = executor(t_max=0.002, n_workers=4)
        exec_.run_task(ts, env)  # startup
        executed = exec_.run_task(ts, env)
        assert any(m.phase == "shutdown" for m in executed.morsels)

    def test_shutdown_morsels_not_below_t_min(self):
        env = FixedRateEnv(rate=1e6)
        ts = make_task_set(tuples=9_000)
        config = MorselExecutorConfig(t_max=0.002, n_workers=4, t_min=0.00025)
        exec_ = MorselExecutor(config)
        exec_.run_task(ts, env)
        while not ts.exhausted:
            executed = exec_.run_task(ts, env)
            for morsel in executed.morsels:
                if morsel.phase == "shutdown" and not ts.exhausted:
                    assert morsel.duration >= 0.00025 * 0.9


class TestNonAdaptivePipelines:
    def test_fixed_morsels_loop_until_budget(self):
        """§3.1 optimizations: short fixed morsels repeat within a task."""
        env = FixedRateEnv(rate=1e6)
        ts = make_task_set(supports_adaptive=False, fixed=100)
        executed = executor(t_max=0.002).run_task(ts, env)
        assert len(executed.morsels) > 1
        assert all(m.phase == "fixed" for m in executed.morsels)
        assert executed.duration >= 0.002


class TestStaticMode:
    def test_one_fixed_morsel_per_task(self):
        env = FixedRateEnv(rate=1e6)
        ts = make_task_set(fixed=60_000)
        executed = executor(mode=MorselMode.STATIC).run_task(ts, env)
        assert len(executed.morsels) == 1
        assert executed.morsels[0].tuples == 60_000
        assert executed.morsels[0].phase == "static"

    def test_static_last_morsel_clamped(self):
        env = FixedRateEnv(rate=1e6)
        ts = make_task_set(tuples=70_000, fixed=60_000)
        exec_ = executor(mode=MorselMode.STATIC)
        exec_.run_task(ts, env)
        executed = exec_.run_task(ts, env)
        assert executed.morsels[0].tuples == 10_000
        assert executed.exhausted_work


class TestExhaustion:
    def test_empty_task_set_returns_empty_task(self):
        env = FixedRateEnv()
        ts = make_task_set(tuples=100)
        ts.carve(100)
        executed = executor().run_task(ts, env)
        assert executed.morsels == []
        assert executed.exhausted_work

    def test_all_tuples_processed_exactly_once(self):
        env = FixedRateEnv()
        ts = make_task_set(tuples=123_456)
        exec_ = executor()
        total = 0
        while not ts.exhausted:
            executed = exec_.run_task(ts, env)
            total += executed.tuples
        assert total == 123_456


@given(
    tuples=st.integers(min_value=1, max_value=2_000_000),
    rate=st.floats(min_value=1e4, max_value=1e8),
    t_max=st.sampled_from([0.0005, 0.002, 0.008]),
    n_workers=st.integers(min_value=1, max_value=32),
)
@settings(max_examples=60, deadline=None)
def test_property_terminates_and_respects_budget(tuples, rate, t_max, n_workers):
    """For any pipeline, adaptive execution terminates, processes every
    tuple exactly once, and no task overshoots the target duration by
    more than one morsel.  The slack term covers the initial C0 probe:
    the paper assumes C0 is "sufficiently small to ensure t0 <= t_max",
    which an extremely slow pipeline can violate by at most C0/rate."""
    env = FixedRateEnv(rate=rate)
    ts = make_task_set(tuples=tuples)
    exec_ = executor(t_max=t_max, n_workers=n_workers)
    c0 = exec_.config.c0
    total = 0
    tasks = 0
    while not ts.exhausted:
        executed = exec_.run_task(ts, env)
        tasks += 1
        total += executed.tuples
        assert executed.duration <= 2.5 * t_max + 2.0 * c0 / rate
        assert tasks < 10 * (tuples / (rate * t_max) + 10)
    assert total == tuples
