"""Tests for Umbra's original scheduler (uniform worker balancing)."""

import pytest

from repro.core import SchedulerConfig, make_scheduler
from repro.simcore import Simulator

from tests.conftest import make_query


def run_legacy(workload, n_workers=2, **kwargs):
    scheduler = make_scheduler("umbra", SchedulerConfig(n_workers=n_workers))
    result = Simulator(scheduler, workload, seed=8, noise_sigma=0.0, **kwargs).run()
    return scheduler, result


class TestUniformBalancing:
    def test_single_query_gets_all_workers(self):
        query = make_query("q", work=0.1, pipelines=1)
        _, result = run_legacy([(0.0, query)], n_workers=4)
        assert result.records.records[0].latency < 0.1 / 2

    def test_two_queries_split_workers(self):
        a = make_query("a", work=0.1, pipelines=1)
        b = make_query("b", work=0.1, pipelines=1)
        _, result = run_legacy([(0.0, a), (0.0, b)], n_workers=4)
        done = {r.name: r.completion_time for r in result.records.records}
        # Two workers each: latency ~ work/2, simultaneously.
        assert done["a"] == pytest.approx(done["b"], rel=0.1)
        assert done["a"] == pytest.approx(0.05, rel=0.15)

    def test_starvation_beyond_worker_count(self):
        """With more active queries than workers, late arrivals receive
        no CPU until a head-of-queue task set finishes — the heavy-tail
        pathology of §5.2."""
        long_queries = [make_query(f"long{i}", work=0.3, pipelines=1) for i in range(2)]
        short = make_query("short", work=0.002, pipelines=1)
        _, result = run_legacy(
            [(0.0, long_queries[0]), (0.0, long_queries[1]), (0.001, short)],
            n_workers=2,
        )
        records = {r.name: r for r in result.records.records}
        # The short query starved until a long task set completed.
        assert records["short"].latency > 0.1

    def test_drains_completely(self, tiny_mix):
        from repro.simcore import RngFactory
        from repro.workloads import generate_workload

        rng = RngFactory(14).stream("workload")
        workload = generate_workload(tiny_mix, rate=25.0, duration=1.0, rng=rng)
        _, result = run_legacy(workload, n_workers=3)
        assert result.completed == result.admitted

    def test_queue_position_stable_across_pipelines(self):
        """A query's next task set takes over its queue position, so
        workers stick to their query (minimized switching)."""
        query = make_query("q", work=0.02, pipelines=3)
        scheduler, result = run_legacy([(0.0, query)], n_workers=2)
        assert result.completed == 1

    def test_rebalances_on_completion(self):
        a = make_query("a", work=0.01, pipelines=1)
        b = make_query("b", work=0.1, pipelines=1)
        _, result = run_legacy([(0.0, a), (0.0, b)], n_workers=2)
        records = {r.name: r for r in result.records.records}
        # After a finishes, b gets both workers: total time < serial plan.
        assert records["b"].completion_time < 0.1
