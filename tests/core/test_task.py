"""Tests for task sets and morsels."""

import pytest

from repro.core.resource_group import ResourceGroup
from repro.core.task import ExecutedTask, Morsel, PipelineState, TaskSet
from repro.errors import SchedulerError

from tests.conftest import make_query


def make_task_set(tuples=10_000, rate=1e6):
    query = make_query("q", work=tuples / rate, pipelines=1, rate=rate)
    group = ResourceGroup(query, query_id=0, arrival_time=0.0)
    return TaskSet(query.pipelines[0], group, 0)


class TestCarving:
    def test_carve_claims_work(self):
        ts = make_task_set(tuples=100)
        assert ts.carve(30) == 30
        assert ts.remaining_tuples == 70
        assert ts.carved_tuples == 30

    def test_carve_clamps_to_remaining(self):
        ts = make_task_set(tuples=10)
        assert ts.carve(100) == 10
        assert ts.exhausted

    def test_carve_zero_when_exhausted(self):
        ts = make_task_set(tuples=5)
        ts.carve(5)
        assert ts.carve(1) == 0

    def test_carve_negative_rejected(self):
        with pytest.raises(SchedulerError):
            make_task_set().carve(-1)

    def test_no_tuple_processed_twice(self):
        ts = make_task_set(tuples=1000)
        total = 0
        while not ts.exhausted:
            total += ts.carve(37)
        assert total == 1000


class TestThroughputEstimation:
    def test_first_observation_sets_estimate(self):
        ts = make_task_set()
        ts.observe_throughput(1e6, alpha=0.8)
        assert ts.throughput_estimate == 1e6

    def test_ewma(self):
        ts = make_task_set()
        ts.observe_throughput(1e6, alpha=0.8)
        ts.observe_throughput(2e6, alpha=0.8)
        assert ts.throughput_estimate == pytest.approx(0.8 * 2e6 + 0.2 * 1e6)

    def test_nonpositive_ignored(self):
        ts = make_task_set()
        ts.observe_throughput(0.0, alpha=0.8)
        assert ts.throughput_estimate is None

    def test_predicted_remaining(self):
        ts = make_task_set(tuples=1000)
        ts.observe_throughput(1e6, alpha=0.8)
        assert ts.predicted_remaining_seconds() == pytest.approx(0.001)

    def test_predicted_remaining_without_estimate(self):
        ts = make_task_set(tuples=10)
        assert ts.predicted_remaining_seconds() == float("inf")


class TestPinning:
    def test_pin_unpin(self):
        ts = make_task_set()
        ts.pin()
        ts.pin()
        assert ts.pinned_workers == 2
        ts.unpin()
        assert ts.pinned_workers == 1

    def test_unpin_without_pin_rejected(self):
        with pytest.raises(SchedulerError):
            make_task_set().unpin()


class TestFinalizationState:
    def test_begin_finalization_exactly_once(self):
        ts = make_task_set()
        assert ts.begin_finalization()
        assert not ts.begin_finalization()

    def test_mark_finalized_twice_rejected(self):
        ts = make_task_set()
        ts.mark_finalized()
        with pytest.raises(SchedulerError):
            ts.mark_finalized()

    def test_initial_state_is_startup(self):
        assert make_task_set().state is PipelineState.STARTUP


class TestExecutedTask:
    def test_tuple_count(self):
        ts = make_task_set()
        executed = ExecutedTask(
            task_set=ts,
            morsels=[
                Morsel(tuples=16, duration=0.001, phase="startup"),
                Morsel(tuples=32, duration=0.001, phase="startup"),
            ],
            duration=0.002,
            exhausted_work=False,
        )
        assert executed.tuples == 48
