"""Tests for the OS-delegating system models (PostgreSQL/MonetDB-like)."""

import pytest

from repro.core import MONETDB_LIKE, POSTGRES_LIKE, OsSchedulerModel, OsSystemProfile

from tests.conftest import make_query


class TestProfiles:
    def test_postgres_profile_matches_paper_setup(self):
        assert POSTGRES_LIKE.max_concurrent == 20  # PgBouncer limit
        assert MONETDB_LIKE.max_concurrent == 64

    def test_threads_scale_with_work(self):
        assert POSTGRES_LIKE.threads_for(0.001) == 1
        assert POSTGRES_LIKE.threads_for(10.0) == POSTGRES_LIKE.parallelism_cap

    def test_job_work_includes_base_speed(self):
        query = make_query("q", work=1.0, pipelines=1)
        assert POSTGRES_LIKE.job_work(query) == pytest.approx(
            1.0 / POSTGRES_LIKE.base_speed + POSTGRES_LIKE.startup_overhead
        )

    def test_effective_work_exceeds_raw_work(self):
        query = make_query("q", work=10.0, pipelines=1)
        assert POSTGRES_LIKE.effective_work(query) > POSTGRES_LIKE.job_work(query)


class TestFluidModel:
    def test_single_query_latency(self):
        model = OsSchedulerModel(POSTGRES_LIKE, n_cores=20)
        query = make_query("q", work=1.0, pipelines=1)
        collector = model.run([(0.0, query)])
        record = collector.records[0]
        work = POSTGRES_LIKE.job_work(query)
        threads = POSTGRES_LIKE.threads_for(work)
        efficiency = 1.0 / (1.0 + POSTGRES_LIKE.parallel_efficiency * (threads - 1))
        assert record.latency == pytest.approx(work / (threads * efficiency), rel=1e-6)

    def test_slowdown_below_one_at_low_load(self):
        """§5.4: intra-query parallelism yields slowdowns < 1 when idle."""
        model = OsSchedulerModel(MONETDB_LIKE, n_cores=20)
        query = make_query("q", work=1.0, pipelines=1)
        collector = model.run([(0.0, query)])
        assert collector.records[0].slowdown < 1.0

    def test_processor_sharing_two_jobs(self):
        """Two equal jobs on enough cores run at full speed in parallel."""
        profile = OsSystemProfile(
            name="test",
            max_concurrent=10,
            base_speed=1.0,
            parallelism_cap=1,
            parallel_efficiency=0.0,
            context_switch_penalty=0.0,
            startup_overhead=0.0,
        )
        model = OsSchedulerModel(profile, n_cores=2)
        query = make_query("q", work=1.0, pipelines=1)
        collector = model.run([(0.0, query), (0.0, query)])
        for record in collector.records:
            assert record.completion_time == pytest.approx(1.0, rel=1e-6)

    def test_processor_sharing_oversubscribed(self):
        """Three single-thread jobs on one core finish at 3x latency."""
        profile = OsSystemProfile(
            name="test",
            max_concurrent=10,
            base_speed=1.0,
            parallelism_cap=1,
            parallel_efficiency=0.0,
            context_switch_penalty=0.0,
            startup_overhead=0.0,
        )
        model = OsSchedulerModel(profile, n_cores=1)
        query = make_query("q", work=1.0, pipelines=1)
        collector = model.run([(0.0, query)] * 3)
        for record in collector.records:
            assert record.completion_time == pytest.approx(3.0, rel=1e-6)

    def test_admission_limit_queues_fifo(self):
        profile = OsSystemProfile(
            name="test",
            max_concurrent=1,
            base_speed=1.0,
            parallelism_cap=1,
            parallel_efficiency=0.0,
            context_switch_penalty=0.0,
            startup_overhead=0.0,
        )
        model = OsSchedulerModel(profile, n_cores=4)
        query = make_query("q", work=0.5, pipelines=1)
        collector = model.run([(0.0, query), (0.0, query), (0.0, query)])
        times = sorted(r.completion_time for r in collector.records)
        assert times == pytest.approx([0.5, 1.0, 1.5], rel=1e-6)

    def test_max_time_censors(self):
        model = OsSchedulerModel(POSTGRES_LIKE, n_cores=4)
        query = make_query("q", work=100.0, pipelines=1)
        collector = model.run([(0.0, query)], max_time=1.0)
        assert len(collector.records) == 0

    def test_arrival_before_completion_event_order(self):
        model = OsSchedulerModel(MONETDB_LIKE, n_cores=4)
        query = make_query("q", work=0.1, pipelines=1)
        workload = [(0.01 * i, query) for i in range(20)]
        collector = model.run(workload)
        assert len(collector.records) == 20

    def test_rejects_bad_core_count(self):
        from repro.errors import SimulationError

        with pytest.raises(SimulationError):
            OsSchedulerModel(POSTGRES_LIKE, n_cores=0)
