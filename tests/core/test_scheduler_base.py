"""Tests for the shared scheduler base class and its configuration."""

import pytest

from repro.core import SchedulerConfig
from repro.core.decay import DecayParameters
from repro.core.morsel_exec import MorselMode
from repro.core.stride import StrideScheduler
from repro.errors import SchedulerError

from tests.conftest import make_query


class TestSchedulerConfig:
    def test_paper_defaults(self):
        config = SchedulerConfig()
        assert config.n_workers == 20
        assert config.slot_capacity == 128
        assert config.t_max == 0.002
        assert config.c0 == 16
        assert config.ewma_alpha == 0.8
        assert config.tracking_duration == 20.0
        assert config.refresh_duration == 60.0

    def test_executor_config_derivation(self):
        config = SchedulerConfig(
            n_workers=7, t_max=0.004, c0=32, morsel_mode=MorselMode.STATIC
        )
        executor = config.executor_config()
        assert executor.n_workers == 7
        assert executor.t_max == 0.004
        assert executor.c0 == 32
        assert executor.mode is MorselMode.STATIC

    def test_effective_decay_ties_quantum_to_t_max(self):
        config = SchedulerConfig(t_max=0.008, decay=DecayParameters(decay=0.5))
        effective = config.effective_decay()
        assert effective.quantum == 0.008
        assert effective.decay == 0.5

    def test_effective_decay_defaults(self):
        assert SchedulerConfig().effective_decay().decay == 0.9

    def test_rejects_zero_workers(self):
        with pytest.raises(SchedulerError):
            StrideScheduler(SchedulerConfig(n_workers=0))


class TestBaseHelpers:
    def _scheduler(self):
        scheduler = StrideScheduler(SchedulerConfig(n_workers=2))
        scheduler.attach(
            env=type(
                "Env", (), {"run_morsel": staticmethod(lambda ts, n: n / 1e6)}
            )(),
            wake_fn=lambda w: None,
        )
        return scheduler

    def test_make_group_assigns_sequential_ids(self):
        scheduler = self._scheduler()
        a = scheduler.make_group(make_query("a"), 0.0)
        b = scheduler.make_group(make_query("b"), 0.0)
        assert (a.query_id, b.query_id) == (0, 1)

    def test_idle_and_wake_bookkeeping(self):
        scheduler = self._scheduler()
        woken = []
        scheduler._wake_fn = woken.append
        scheduler.mark_idle(0)
        scheduler.mark_idle(1)
        scheduler.wake(0)
        assert woken == [0]
        scheduler.mark_busy(0)
        scheduler.wake(0)  # not idle anymore -> no wake
        assert woken == [0]
        scheduler.wake_all()
        assert set(woken) == {0, 1}

    def test_record_completion_emits_latency_record(self):
        scheduler = self._scheduler()
        group = scheduler.make_group(make_query("q", scale_factor=3.0), 1.0)
        scheduler.admitted_count += 1
        group.charge_cpu(0.05)
        scheduler.record_completion(group, 2.5)
        record = scheduler.completed[0]
        assert record.latency == pytest.approx(1.5)
        assert record.scale_factor == 3.0
        assert scheduler.completed_count == 1

    def test_active_query_count(self):
        scheduler = self._scheduler()
        for i in range(3):
            group = scheduler.make_group(make_query(f"q{i}", work=10.0), 0.0)
            scheduler.admit(group, 0.0)
        assert scheduler.active_query_count() == 3

    def test_stats_shape(self):
        stats = self._scheduler().stats()
        for key in ("admitted", "completed", "tasks_executed", "waiting"):
            assert key in stats

    def test_env_access_requires_attach(self):
        scheduler = StrideScheduler(SchedulerConfig(n_workers=1))
        with pytest.raises(SchedulerError):
            _ = scheduler.env
