"""Starvation-freedom guarantees (§3.2 / §4).

"Finally, priorities must never drop below p_min > 0.  This ensures
that queries never starve."  These tests drive a hostile scenario — one
long query against an unbounded stream of short, always-high-priority
queries — and verify that the long query still makes progress and
completes under every decay setting.
"""

from __future__ import annotations

import pytest

from repro.core import SchedulerConfig, make_scheduler
from repro.core.decay import DecayParameters
from repro.simcore import RngFactory, Simulator
from repro.workloads import generate_workload
from repro.workloads.mixes import QueryMix

from tests.conftest import make_query


def hostile_workload(duration: float, long_work: float = 0.05):
    """One long query plus a saturating stream of short ones."""
    long_query = make_query("victim", work=long_work, pipelines=1, scale_factor=9.0)
    short = make_query("antagonist", work=0.002, pipelines=1, scale_factor=1.0)
    mix = QueryMix(entries=((short, 1.0),))
    rng = RngFactory(13).stream("hostile")
    # Offered short-query load ~ 95% of one worker's capacity.
    workload = generate_workload(mix, rate=0.95 / 0.002, duration=duration, rng=rng)
    workload.append((0.0, long_query))
    workload.sort(key=lambda item: item[0])
    return workload


class TestNoStarvation:
    @pytest.mark.parametrize(
        "decay",
        [
            DecayParameters(decay=0.5, d_start=0),   # very aggressive
            DecayParameters(decay=0.9, d_start=7),   # the default
            DecayParameters(decay=0.0, d_start=0),   # instant drop to p_min
        ],
    )
    def test_long_query_completes_under_any_decay(self, decay):
        workload = hostile_workload(duration=10.0)
        scheduler = make_scheduler(
            "stride", SchedulerConfig(n_workers=1, decay=decay)
        )
        result = Simulator(scheduler, workload, seed=13, noise_sigma=0.0).run()
        victims = [r for r in result.records.records if r.name == "victim"]
        assert len(victims) == 1
        # p_min/p0 = 1% share: 0.05s of work at >=1% of one worker
        # finishes well within the 10s window (plus slack).
        assert victims[0].latency < 9.0

    def test_share_never_below_pmin_fraction(self):
        """While competing, the decayed query's measured CPU share stays
        near or above p_min / (p_min + p0)."""
        decay = DecayParameters(decay=0.0, d_start=0)  # floor immediately
        workload = hostile_workload(duration=4.0, long_work=10.0)
        scheduler = make_scheduler(
            "stride", SchedulerConfig(n_workers=1, decay=decay)
        )
        Simulator(
            scheduler, workload, seed=13, noise_sigma=0.0, max_time=4.0
        ).run()
        victim_groups = [
            scheduler.slots.owner(slot)
            for slot in range(scheduler.slots.capacity)
            if scheduler.slots.owner(slot) is not None
            and scheduler.slots.owner(slot).query.name == "victim"
        ]
        assert victim_groups, "victim should still be running"
        victim_cpu = victim_groups[0].cpu_seconds
        floor_share = 100.0 / (100.0 + 10_000.0)
        # The victim competes against ~1 fresh short query at a time; it
        # must have received at least half the theoretical floor share.
        assert victim_cpu > 0.5 * floor_share * 4.0

    def test_zero_decay_with_fair_is_equivalent_to_no_starvation(self):
        """Sanity: the fair scheduler trivially avoids starvation; decay
        must not be *worse* than a factor ~p0/p_min against it."""
        workload = hostile_workload(duration=10.0)
        fair = make_scheduler("fair", SchedulerConfig(n_workers=1))
        fair_result = Simulator(fair, workload, seed=13, noise_sigma=0.0).run()
        fair_victim = [
            r for r in fair_result.records.records if r.name == "victim"
        ][0]
        decayed = make_scheduler(
            "stride",
            SchedulerConfig(n_workers=1, decay=DecayParameters(decay=0.0, d_start=0)),
        )
        decay_result = Simulator(decayed, workload, seed=13, noise_sigma=0.0).run()
        decay_victim = [
            r for r in decay_result.records.records if r.name == "victim"
        ][0]
        assert decay_victim.latency < 100.0 * fair_victim.latency
