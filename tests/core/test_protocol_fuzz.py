"""Randomized-interleaving fuzz tests for the scheduler protocol.

The discrete-event simulator drives workers in virtual-time order.  The
protocol of §2.3 must however survive *any* interleaving of worker
steps.  This test bypasses the simulator: it drives ``worker_decide`` /
``worker_finish`` directly in hypothesis-chosen orders and checks the
global invariants:

* every task set is finalized exactly once (double finalization raises);
* every query completes exactly once;
* no tuple is executed twice (carve accounting);
* CPU charges equal executed morsel time;
* the wait queue fully drains.
"""

from __future__ import annotations

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import SchedulerConfig, StrideScheduler
from repro.core.task import TaskSet

from tests.conftest import make_query


class _CountingEnv:
    """Deterministic environment that tallies executed tuples."""

    def __init__(self, rate: float = 1e6) -> None:
        self.rate = rate
        self.executed_tuples = 0
        self.executed_seconds = 0.0

    def run_morsel(self, task_set: TaskSet, tuples: int) -> float:
        self.executed_tuples += tuples
        duration = tuples / self.rate
        self.executed_seconds += duration
        return duration


@given(
    n_workers=st.integers(min_value=1, max_value=5),
    n_queries=st.integers(min_value=1, max_value=8),
    slot_capacity=st.integers(min_value=2, max_value=6),
    order_seed=st.randoms(use_true_random=False),
)
@settings(max_examples=40, deadline=None)
def test_random_interleavings_preserve_invariants(
    n_workers, n_queries, slot_capacity, order_seed
):
    config = SchedulerConfig(n_workers=n_workers, slot_capacity=slot_capacity)
    scheduler = StrideScheduler(config)
    env = _CountingEnv()
    scheduler.attach(env, wake_fn=lambda worker_id: None)

    queries = [
        make_query(f"q{i}", work=0.004 + 0.002 * (i % 3), pipelines=1 + i % 3)
        for i in range(n_queries)
    ]
    total_tuples = sum(p.tuples for q in queries for p in q.pipelines)

    # Admit everything at time zero (stresses the wait queue).
    for query in queries:
        group = scheduler.make_group(query, 0.0)
        scheduler.admit(group, 0.0)

    # Drive workers in random order.  Each "step" is decide+finish for
    # one worker; pending decisions may be finished out of order.
    now = 0.0
    pending = {}
    stalls = 0
    while scheduler.completed_count < n_queries:
        worker_id = order_seed.randrange(n_workers)
        if worker_id in pending:
            decision = pending.pop(worker_id)
            extra = scheduler.worker_finish(worker_id, now, decision)
            now += 1e-6 + extra
            continue
        decision = scheduler.worker_decide(worker_id, now)
        if decision is None:
            stalls += 1
            # All workers idle with work outstanding would be a deadlock.
            assert stalls < 20_000, "scheduler deadlocked"
            # Idle workers are woken by admissions/finalizations, which
            # the sequential fuzz loop performs implicitly on finish; we
            # just retry other workers.
            scheduler.mark_busy(worker_id)
            continue
        if decision.kind == "task":
            pending[worker_id] = decision
            now += decision.duration
        else:
            now += decision.duration
        stalls = 0

    # Invariants.
    assert scheduler.completed_count == n_queries
    assert not scheduler.wait_queue
    assert scheduler.slots.occupied == 0
    assert env.executed_tuples == total_tuples
    charged = sum(record.cpu_seconds for record in scheduler.completed)
    finalize_costs = sum(
        p.finalize_seconds for q in queries for p in q.pipelines
    )
    assert abs(charged - (env.executed_seconds + finalize_costs)) < 1e-9


@given(
    order_seed=st.randoms(use_true_random=False),
)
@settings(max_examples=20, deadline=None)
def test_concurrent_finish_on_shared_task_set(order_seed):
    """Several workers pinned to one task set when it drains: exactly one
    runs finalization, regardless of the finish order."""
    config = SchedulerConfig(n_workers=4, slot_capacity=4)
    scheduler = StrideScheduler(config)
    env = _CountingEnv()
    scheduler.attach(env, wake_fn=lambda worker_id: None)

    query = make_query("q", work=0.02, pipelines=2, finalize=0.001)
    group = scheduler.make_group(query, 0.0)
    scheduler.admit(group, 0.0)

    now = 0.0
    pending = {}
    guard = 0
    while scheduler.completed_count < 1:
        guard += 1
        assert guard < 50_000
        worker_id = order_seed.randrange(4)
        if worker_id in pending:
            decision = pending.pop(worker_id)
            extra = scheduler.worker_finish(worker_id, now, decision)
            now += 1e-6 + extra
            continue
        decision = scheduler.worker_decide(worker_id, now)
        if decision is None:
            scheduler.mark_busy(worker_id)
            continue
        if decision.kind == "task":
            pending[worker_id] = decision
        now += decision.duration
    # Both pipelines finalized exactly once (mark_finalized would raise),
    # and their finalize costs were charged.
    record = scheduler.completed[0]
    assert record.cpu_seconds >= query.total_work_seconds * 0.99
