"""White-box tests of the stride scheduler's update-mask machinery.

These drive ``worker_decide`` / ``worker_finish`` by hand (no simulator)
to pin down the §2.3 corner cases: the three task-set events, lazy
repair after missed notifications, and the restricted fan-out paths.
"""

from __future__ import annotations

import pytest

from repro.core import SchedulerConfig, StrideScheduler
from repro.core.decay import DEFAULT_P0

from tests.conftest import make_query


class _Env:
    def __init__(self, rate=1e6):
        self.rate = rate

    def run_morsel(self, task_set, tuples):
        return tuples / self.rate


def make_sched(n_workers=2, slot_capacity=8, **kwargs):
    scheduler = StrideScheduler(
        SchedulerConfig(n_workers=n_workers, slot_capacity=slot_capacity, **kwargs)
    )
    scheduler.attach(_Env(), wake_fn=lambda w: None)
    return scheduler


def drive_to_completion(scheduler, max_steps=200_000):
    """Round-robin decide+finish until everything admitted completes."""
    now = 0.0
    steps = 0
    while not scheduler.all_admitted_complete():
        for worker_id in range(scheduler.n_workers):
            decision = scheduler.worker_decide(worker_id, now)
            if decision is None:
                scheduler.mark_busy(worker_id)
                continue
            now += decision.duration
            if decision.kind == "task":
                now += scheduler.worker_finish(worker_id, now, decision)
        steps += 1
        assert steps < max_steps, "did not drain"
    return now


class TestUpdateEvents:
    def test_event2_change_mask_initializes_slot(self):
        """Event (2): a new resource group sets priority p0 and anchors
        the pass at the worker's global pass."""
        scheduler = make_sched()
        group = scheduler.make_group(make_query("q"), 0.0)
        scheduler.admit(group, 0.0)
        local = scheduler.workers[0]
        assert local.change_mask.any_set()
        scheduler.worker_decide(0, 0.0)  # pulls the mask
        state = local.slot_states[0]
        assert state.group_id == group.query_id
        assert state.priority == DEFAULT_P0
        assert local.is_active(0)

    def test_event3_return_mask_keeps_priority(self):
        """Event (3): the next task set of a known group reuses the
        (decayed) priority and only re-anchors the pass."""
        scheduler = make_sched(n_workers=1)
        group = scheduler.make_group(make_query("q", work=0.01, pipelines=2), 0.0)
        scheduler.admit(group, 0.0)
        local = scheduler.workers[0]
        now = 0.0
        # Execute until the first pipeline finalizes (return event fires).
        while group._next_pipeline < 2:
            decision = scheduler.worker_decide(0, now)
            assert decision is not None
            now += decision.duration
            if decision.kind == "task":
                now += scheduler.worker_finish(0, now, decision)
        priority_before = local.slot_states[0].priority
        assert local.return_mask.any_set()
        scheduler.worker_decide(0, now)  # pulls event (3)
        assert local.slot_states[0].priority == priority_before

    def test_event1_lazy_invalidation(self):
        """Event (1): no notification when a task set finishes — the
        worker discovers the tagged pointer on its next pick."""
        scheduler = make_sched(n_workers=2)
        group = scheduler.make_group(make_query("q", work=0.002, pipelines=1), 0.0)
        scheduler.admit(group, 0.0)
        # Worker 0 pulls the change and runs the whole (tiny) query.
        now = 0.0
        while not scheduler.all_admitted_complete():
            decision = scheduler.worker_decide(0, now)
            if decision is None:
                break
            now += decision.duration
            if decision.kind == "task":
                now += scheduler.worker_finish(0, now, decision)
        # Worker 1 pulled the change mask earlier? No — it never ran.
        # Its change mask still holds the bit; after draining it the
        # slot is already vacated, so the pull must cope with that.
        decision = scheduler.worker_decide(1, now)
        assert decision is None  # nothing to do, no crash
        assert not scheduler.workers[1].is_active(0)


class TestMissedNotificationRepair:
    def test_worker_outside_fanout_repairs_lazily(self):
        """A worker that never received the change event can still pick
        the slot (stale active bit) and must rebuild its local state from
        the owning resource group."""
        scheduler = make_sched(n_workers=2)
        first = scheduler.make_group(make_query("a", work=0.004, pipelines=1), 0.0)
        scheduler.admit(first, 0.0)
        local1 = scheduler.workers[1]
        # Worker 1 learns about group a (runs one task and detaches).
        warmup = scheduler.worker_decide(1, 0.0)
        assert warmup is not None
        scheduler.worker_finish(1, warmup.duration, warmup)
        # Worker 0 drains query a; then a new group b is installed into
        # the same slot.  We clear worker 1's masks to force the
        # missed-notification path (restricted fan-out).
        now = drive_to_completion_single(scheduler, worker_id=0)
        assert scheduler.all_admitted_complete()
        second = scheduler.make_group(make_query("b", work=0.004, pipelines=1), now)
        scheduler.admit(second, now)
        local1.change_mask.drain()
        local1.return_mask.drain()
        # Worker 1's activity bit for slot 0 is stale (group a), but the
        # pointer is valid (group b): lazy repair must rebuild the state.
        decision = scheduler.worker_decide(1, now)
        assert decision is not None
        assert local1.slot_states[0].group_id == second.query_id

    def test_fanout_targets_deterministic(self):
        scheduler = make_sched(n_workers=4, slot_capacity=4)
        for i in range(3):
            group = scheduler.make_group(make_query(f"q{i}", work=1.0), 0.0)
            scheduler.admit(group, 0.0)
        # 3 of 4 slots occupied -> restricted fan-out, ceil(4 * 1/2) = 2.
        targets = scheduler._update_targets(0)
        assert len(targets) == 2
        assert targets == scheduler._update_targets(0)


def drive_to_completion_single(scheduler, worker_id, max_steps=100_000):
    now = 0.0
    steps = 0
    while not scheduler.all_admitted_complete():
        decision = scheduler.worker_decide(worker_id, now)
        if decision is None:
            break
        now += decision.duration
        if decision.kind == "task":
            now += scheduler.worker_finish(worker_id, now, decision)
        steps += 1
        assert steps < max_steps
    return now


class TestPassAccounting:
    def test_pass_advances_proportionally_to_duration(self):
        scheduler = make_sched(n_workers=1, t_max=0.002)
        group = scheduler.make_group(make_query("q", work=1.0, pipelines=1), 0.0)
        scheduler.admit(group, 0.0)
        local = scheduler.workers[0]
        decision = scheduler.worker_decide(0, 0.0)
        scheduler.worker_finish(0, decision.duration, decision)
        state = local.slot_states[0]
        fraction = decision.duration / 0.002
        assert state.pass_value == pytest.approx(fraction * state.stride, rel=1e-6)

    def test_decay_quantum_tied_to_t_max(self):
        scheduler = make_sched(n_workers=1, t_max=0.001)
        group = scheduler.make_group(make_query("q", work=1.0, pipelines=1), 0.0)
        scheduler.admit(group, 0.0)
        local = scheduler.workers[0]
        now = 0.0
        for _ in range(20):
            decision = scheduler.worker_decide(0, now)
            now += decision.duration
            now += scheduler.worker_finish(0, now, decision)
        # ~20ms executed at 1ms quantum with d_start=7 default: decay ran.
        assert local.slot_states[0].priority < DEFAULT_P0


class TestSlotRecycling:
    def test_completed_groups_free_their_slots(self):
        scheduler = make_sched(n_workers=2, slot_capacity=2)
        for i in range(5):
            group = scheduler.make_group(make_query(f"q{i}", work=0.002), 0.0)
            scheduler.admit(group, 0.0)
        assert scheduler.slots.occupied == 2
        assert len(scheduler.wait_queue) == 3
        drive_to_completion(scheduler)
        assert scheduler.slots.occupied == 0
        assert scheduler.completed_count == 5
