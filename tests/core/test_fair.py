"""Tests for the fair (fixed-priority stride) baseline."""

import pytest

from repro.core import FairScheduler, SchedulerConfig, make_scheduler
from repro.simcore import Simulator

from tests.conftest import make_query


class TestFairScheduler:
    def test_is_stride_with_fixed_priorities(self):
        assert FairScheduler.fixed_priorities
        assert FairScheduler.name == "fair"

    def test_equal_shares_regardless_of_age(self):
        """Fair scheduling ignores received CPU time: an old query keeps
        the same share as a fresh one (no decay)."""
        old = make_query("old", work=0.2, pipelines=1)
        fresh = make_query("fresh", work=0.05, pipelines=1)
        scheduler = make_scheduler("fair", SchedulerConfig(n_workers=1))
        result = Simulator(
            scheduler, [(0.0, old), (0.1, fresh)], seed=0, noise_sigma=0.0
        ).run()
        done = {r.name: r.completion_time for r in result.records.records}
        # fresh arrives at 0.1 with 0.05 work; 50/50 sharing -> done ~0.2.
        assert done["fresh"] == pytest.approx(0.2, rel=0.1)

    def test_priorities_stay_at_p0(self):
        scheduler = make_scheduler("fair", SchedulerConfig(n_workers=1))
        query = make_query("q", work=0.05, pipelines=1)
        Simulator(scheduler, [(0.0, query)], seed=0, noise_sigma=0.0).run()
        # After a long run the (now drained) slot state would have
        # decayed under adaptive priorities; fair keeps p0.
        for local in scheduler.workers:
            for state in local.slot_states.values():
                assert state.decay.priority == 10_000.0

    def test_invariant_shorter_first(self):
        short = make_query("short", work=0.02, pipelines=1)
        long_ = make_query("long", work=0.2, pipelines=1)
        scheduler = make_scheduler("fair", SchedulerConfig(n_workers=2))
        result = Simulator(
            scheduler, [(0.0, short), (0.0, long_)], seed=0, noise_sigma=0.0
        ).run()
        done = {r.name: r.completion_time for r in result.records.records}
        assert done["short"] < done["long"]
