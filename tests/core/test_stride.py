"""Tests for the lock-free stride scheduler (§2).

These use the full simulator with a deterministic (noise-free)
environment so that scheduling behaviour — proportional sharing,
finalization, the wait queue, update fan-out — can be asserted exactly.
"""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import SchedulerConfig, StrideScheduler, make_scheduler
from repro.core.decay import DecayParameters
from repro.core.specs import QuerySpec
from repro.simcore import Simulator

from tests.conftest import make_query


def run_workload(workload, n_workers=2, scheduler_name="stride", config=None, **kwargs):
    config = config or SchedulerConfig(n_workers=n_workers)
    scheduler = make_scheduler(scheduler_name, config)
    result = Simulator(scheduler, workload, seed=3, noise_sigma=0.0, **kwargs).run()
    return scheduler, result


def priority_query(name, work, priority):
    base = make_query(name, work=work, pipelines=1)
    return QuerySpec(
        name=name,
        scale_factor=base.scale_factor,
        pipelines=base.pipelines,
        static_priority=priority,
    )


class TestBasicExecution:
    def test_single_query(self, short_query):
        scheduler, result = run_workload([(0.0, short_query)])
        assert result.completed == 1
        assert scheduler.stats()["tasks_executed"] > 0

    def test_multi_pipeline_ordering(self):
        """Pipelines of one query finish strictly in order."""
        query = make_query("q", work=0.02, pipelines=4)
        scheduler, result = run_workload([(0.0, query)], n_workers=4)
        group = scheduler.completed and result.records.records[0]
        assert result.completed == 1
        # CPU charge exceeds the nominal work slightly: multiple pinned
        # workers pay the pipeline-contention factor.
        assert group.cpu_seconds == pytest.approx(query.total_work_seconds, rel=0.08)

    def test_unattached_scheduler_raises(self):
        scheduler = StrideScheduler(SchedulerConfig(n_workers=1))
        from repro.errors import SchedulerError

        with pytest.raises(SchedulerError):
            _ = scheduler.env


class TestProportionalShare:
    def test_equal_priorities_share_equally(self):
        """Two equal-priority CPU-bound queries finish together."""
        a = priority_query("a", work=0.1, priority=1000.0)
        b = priority_query("b", work=0.1, priority=1000.0)
        _, result = run_workload([(0.0, a), (0.0, b)], n_workers=1)
        done = {r.name: r.completion_time for r in result.records.records}
        assert done["a"] == pytest.approx(done["b"], rel=0.05)

    def test_priority_ratio_controls_share(self):
        """Stride scheduling gives p_i / sum(p) of the CPU (§2.1).

        With priorities 2:1 and equal work, the high-priority query
        finishes when it has received its work w at rate 2/3, i.e. at
        1.5 w; the low-priority one finishes at 2 w.
        """
        high = priority_query("high", work=0.1, priority=2000.0)
        low = priority_query("low", work=0.1, priority=1000.0)
        _, result = run_workload([(0.0, high), (0.0, low)], n_workers=1)
        done = {r.name: r.completion_time for r in result.records.records}
        assert done["high"] == pytest.approx(0.15, rel=0.08)
        assert done["low"] == pytest.approx(0.20, rel=0.08)

    @given(ratio=st.sampled_from([1.0, 2.0, 4.0, 8.0]))
    @settings(max_examples=8, deadline=None)
    def test_share_matches_ratio_property(self, ratio):
        """While both queries run, CPU shares follow the priority ratio."""
        work = 0.08
        high = priority_query("high", work=work, priority=1000.0 * ratio)
        low = priority_query("low", work=work, priority=1000.0)
        _, result = run_workload([(0.0, high), (0.0, low)], n_workers=1)
        done = {r.name: r.completion_time for r in result.records.records}
        # During [0, T_high] the high query gets ratio/(1+ratio) of the CPU.
        expected_high = work * (1.0 + ratio) / ratio
        assert done["high"] == pytest.approx(expected_high, rel=0.1)

    def test_late_arrival_gets_fair_share_not_catchup(self):
        """§2.1: the global pass anchors new queries at 'now' — a late
        arrival must not starve existing queries to catch up."""
        a = priority_query("a", work=0.1, priority=1000.0)
        b = priority_query("b", work=0.05, priority=1000.0)
        _, result = run_workload([(0.0, a), (0.05, b)], n_workers=1)
        done = {r.name: r.completion_time for r in result.records.records}
        # b runs [0.05, ...] sharing 50/50: needs 0.05 work -> done ~0.15;
        # a: 0.05 alone + 0.05 shared until b leaves + rest alone -> ~0.15.
        assert done["b"] == pytest.approx(0.15, rel=0.1)
        assert done["a"] == pytest.approx(0.15, rel=0.1)


class TestInvariantShorterFirst:
    @given(
        short_work=st.floats(min_value=0.005, max_value=0.05),
        factor=st.floats(min_value=1.5, max_value=10.0),
    )
    @settings(max_examples=10, deadline=None)
    def test_equal_arrival_shorter_finishes_first(self, short_work, factor):
        """Principle (1) of §3.2 under adaptive decay."""
        short = make_query("short", work=short_work, pipelines=1)
        long_ = make_query("long", work=short_work * factor, pipelines=1)
        _, result = run_workload(
            [(0.0, short), (0.0, long_)],
            n_workers=1,
            config=SchedulerConfig(n_workers=1, decay=DecayParameters()),
        )
        done = {r.name: r.completion_time for r in result.records.records}
        assert done["short"] < done["long"]


class TestWaitQueue:
    def test_excess_queries_wait_for_slots(self):
        """§2.3: beyond the slot capacity, resource groups queue up."""
        config = SchedulerConfig(n_workers=1, slot_capacity=2)
        queries = [make_query(f"q{i}", work=0.005, pipelines=1) for i in range(6)]
        scheduler, result = run_workload(
            [(0.0, q) for q in queries], config=config
        )
        assert result.completed == 6
        assert scheduler.slots.occupied == 0  # everything drained

    def test_wait_queue_bounds_active_groups(self):
        config = SchedulerConfig(n_workers=1, slot_capacity=2)
        scheduler = make_scheduler("stride", config)
        sim = Simulator(
            scheduler,
            [(0.0, make_query(f"q{i}", work=1.0, pipelines=1)) for i in range(5)],
            seed=0,
            noise_sigma=0.0,
            max_time=0.01,
        )
        sim.run()
        assert scheduler.slots.occupied == 2
        assert len(scheduler.wait_queue) == 3


class TestFinalization:
    def test_finalize_cost_charged(self):
        query = make_query("q", work=0.01, pipelines=2, finalize=0.003)
        _, result = run_workload([(0.0, query)], n_workers=2)
        record = result.records.records[0]
        assert record.cpu_seconds == pytest.approx(
            query.total_work_seconds, rel=0.02
        )

    def test_every_task_set_finalized_exactly_once(self):
        queries = [make_query(f"q{i}", work=0.01, pipelines=3) for i in range(8)]
        scheduler, result = run_workload(
            [(0.001 * i, q) for i, q in enumerate(queries)], n_workers=4
        )
        assert result.completed == 8
        # mark_finalized raises on double finalization, so completion of
        # all queries implies exactly-once semantics; additionally every
        # pipeline must have been finalized.
        for record in result.records.records:
            assert record.cpu_seconds > 0.0


class TestFanoutRestriction:
    def _occupancy_run(self, restrict):
        config = SchedulerConfig(
            n_workers=4, slot_capacity=8, restrict_fanout=restrict
        )
        scheduler = make_scheduler("stride", config)
        workload = [
            (0.0, make_query(f"q{i}", work=0.02, pipelines=1)) for i in range(8)
        ]
        Simulator(scheduler, workload, seed=0, noise_sigma=0.0).run()
        return scheduler

    def test_restricted_fanout_pushes_fewer_updates(self):
        restricted = self._occupancy_run(True)
        unrestricted = self._occupancy_run(False)
        assert (
            restricted.overhead.ops["mask_updates"]
            < unrestricted.overhead.ops["mask_updates"]
        )

    def test_update_targets_full_when_below_half(self):
        scheduler = StrideScheduler(SchedulerConfig(n_workers=4, slot_capacity=8))
        assert scheduler._update_targets(0) == [0, 1, 2, 3]

    def test_update_targets_single_when_full(self):
        config = SchedulerConfig(n_workers=4, slot_capacity=4)
        scheduler = make_scheduler("stride", config)
        workload = [(0.0, make_query(f"q{i}", work=10.0, pipelines=1)) for i in range(4)]
        sim = Simulator(scheduler, workload, seed=0, noise_sigma=0.0, max_time=0.005)
        sim.run()
        assert scheduler.slots.occupied == 4
        assert len(scheduler._update_targets(0)) == 1


class TestTuningVariant:
    def test_tuning_updates_parameters(self, tiny_mix):
        from repro.simcore import RngFactory
        from repro.workloads import generate_workload

        config = SchedulerConfig(
            n_workers=2,
            tuning_enabled=True,
            tracking_duration=0.2,
            refresh_duration=0.5,
        )
        scheduler = make_scheduler("tuning", config)
        rng = RngFactory(11).stream("workload")
        workload = generate_workload(tiny_mix, rate=60.0, duration=2.0, rng=rng)
        result = Simulator(scheduler, workload, seed=11, noise_sigma=0.0).run()
        assert result.completed == result.admitted
        assert scheduler.tuner is not None
        assert len(scheduler.tuner.history) >= 1
        assert scheduler.overhead.seconds["tuning"] > 0.0

    def test_stride_without_tuning_has_no_tuner(self):
        scheduler = make_scheduler("stride", SchedulerConfig(n_workers=1))
        assert scheduler.tuner is None
