"""Tests for the lottery-scheduling variant (§2.3)."""

import pytest

from repro.core import LotteryScheduler, SchedulerConfig, make_scheduler
from repro.core.stride import StrideScheduler
from repro.simcore import Simulator

from tests.conftest import make_query


class TestLotteryScheduler:
    def test_only_the_pick_rule_differs(self):
        """The §2.3 claim: lottery reuses the entire stride infrastructure."""
        assert issubclass(LotteryScheduler, StrideScheduler)
        overridden = {
            name
            for name in ("_pick_slot", "_lottery_rng")
            if name in LotteryScheduler.__dict__
        }
        assert overridden == {"_pick_slot", "_lottery_rng"}

    def test_completes_workload(self):
        scheduler = make_scheduler("lottery", SchedulerConfig(n_workers=2))
        workload = [
            (0.0, make_query(f"q{i}", work=0.01, pipelines=2)) for i in range(6)
        ]
        result = Simulator(scheduler, workload, seed=4, noise_sigma=0.0).run()
        assert result.completed == 6

    def test_deterministic_given_seed(self):
        workload = [
            (0.0, make_query(f"q{i}", work=0.01, pipelines=1)) for i in range(5)
        ]
        times = []
        for _ in range(2):
            scheduler = make_scheduler("lottery", SchedulerConfig(n_workers=2))
            result = Simulator(scheduler, workload, seed=9, noise_sigma=0.0).run()
            times.append([r.completion_time for r in result.records.records])
        assert times[0] == times[1]

    def test_expected_shares_proportional(self):
        """Lottery gives proportional shares in expectation.

        Two long queries with 3:1 ticket ratio: while both are active the
        high-ticket query should accumulate roughly 3x the CPU time.
        """
        from repro.core.specs import QuerySpec

        def ticket_query(name, priority):
            base = make_query(name, work=1.0, pipelines=1)
            return QuerySpec(
                name=name,
                scale_factor=1.0,
                pipelines=base.pipelines,
                static_priority=priority,
            )

        high = ticket_query("high", 3000.0)
        low = ticket_query("low", 1000.0)
        scheduler = make_scheduler("lottery", SchedulerConfig(n_workers=1))
        sim = Simulator(
            scheduler,
            [(0.0, high), (0.0, low)],
            seed=21,
            noise_sigma=0.0,
            max_time=0.5,
        )
        sim.run()
        # Neither finished (1s work each); compare accumulated CPU.
        groups = {
            scheduler.slots.owner(slot).query.name: scheduler.slots.owner(slot)
            for slot in range(2)
        }
        ratio = groups["high"].cpu_seconds / groups["low"].cpu_seconds
        assert ratio == pytest.approx(3.0, rel=0.25)
