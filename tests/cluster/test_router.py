"""Tests for the cluster router: routing, fan-out, draining, quotas.

The determinism tests pin down the PR 7 acceptance criterion: a
4-shard cluster on the simulated backend (model environment) runs a
multi-tenant phased workload *bit-identically* — across repeated runs
in one process and across ``PYTHONHASHSEED`` values in subprocesses.
"""

import os
import subprocess
import sys

import pytest

from repro.cluster import ClusterRouter, PredictivePlacement
from repro.errors import ReproError, TenantQuotaError
from repro.runtime.tickets import ShardAddress
from repro.simcore.rng import RngFactory
from repro.workloads import Tenant, multi_tenant_workload, tpch_mix


def make_router(**kwargs):
    defaults = dict(
        n_shards=4,
        scale_factor=1.0,
        scheduler="stride",
        n_workers=2,
        seed=7,
        environment="model",
    )
    defaults.update(kwargs)
    return ClusterRouter(**defaults)


def tenant_workload(seed=3, duration=2.0):
    """Interactive dashboards (latency class) vs heavy ETL (bulk)."""
    tenants = [
        Tenant(
            "dash",
            tpch_mix(sf_small=0.25, sf_large=2.0, p_small=0.75),
            rate=20.0,
            user_priority=4.0,
            sla="latency",
        ),
        Tenant(
            "etl",
            tpch_mix(sf_small=8.0, sf_large=30.0, p_small=0.5),
            rate=3.0,
            sla="bulk",
        ),
    ]
    return multi_tenant_workload(tenants, duration, RngFactory(seed))


class TestConstruction:
    def test_needs_a_shard(self):
        with pytest.raises(ReproError):
            make_router(n_shards=0)

    def test_model_requires_simulated(self):
        with pytest.raises(ReproError, match="model"):
            make_router(backend="threaded")

    def test_bad_quota_rejected(self):
        with pytest.raises(ReproError, match="quota"):
            make_router(tenant_quotas={"a": 0})

    def test_shards_are_independent_servers(self):
        router = make_router(n_shards=3)
        assert router.n_shards == 3
        assert router.active_shards() == [0, 1, 2]
        assert len({id(s) for s in router.shards}) == 3


class TestRouting:
    def test_submit_returns_addressed_handle(self):
        router = make_router()
        handle = router.submit("Q6")
        assert handle == 0
        assert handle.address == ShardAddress(0, 0)
        router.drain()
        assert router.latency(handle) > 0.0
        assert router.record(handle).name == "Q6"

    def test_predictive_spreads_heavy_queries(self):
        router = make_router()
        shards = {router.submit("Q18").address.shard for _ in range(4)}
        assert shards == {0, 1, 2, 3}  # equal work fans out across shards

    def test_light_query_avoids_loaded_shard(self):
        router = make_router(n_shards=2)
        heavy = router.submit("Q18")
        light = router.submit("Q6")
        assert heavy.address.shard == 0
        assert light.address.shard == 1

    def test_explicit_shard_pins(self):
        router = make_router()
        handle = router.submit("Q6", shard=2)
        assert handle.address.shard == 2

    def test_bad_shard_rejected(self):
        router = make_router(n_shards=2)
        with pytest.raises(ReproError, match="not available"):
            router.submit("Q6", shard=5)

    def test_unknown_ticket_rejected(self):
        with pytest.raises(ReproError, match="unknown cluster ticket"):
            make_router().latency(99)

    def test_calibration_updates_after_drain(self):
        router = make_router()
        router.submit("Q6")
        router.drain()
        snapshot = router.placement.snapshot()
        assert "Q6" in snapshot["calibrated_work"]
        # Drain resets the per-epoch backlog horizons with the clock.
        assert snapshot["busy_until"] == [{}] * 4

    def test_workload_maps_tenants_onto_cluster(self):
        router = make_router()
        handles = router.submit_workload(tenant_workload())
        assert len(handles) > 10
        assert router.tenant_pending("dash") > 0
        assert router.tenant_pending("etl") > 0
        router.drain()
        for handle in handles:
            assert router.record(handle) is not None
        ticket = int(handles[0])
        assert router.tickets.tenant_of(ticket) in ("dash", "etl")
        assert router.tickets.sla_of(ticket) in ("latency", "bulk")


class TestTenantQuotas:
    def test_cluster_wide_quota(self):
        router = make_router(tenant_quotas={"etl": 3})
        for _ in range(3):
            router.submit("Q6", tenant="etl")
        # The three pending queries sit on *different* shards; the
        # cluster-level quota still sees them all.
        with pytest.raises(TenantQuotaError, match="cluster quota"):
            router.submit("Q6", tenant="etl")
        router.drain()
        router.submit("Q6", tenant="etl")  # freed by completion

    def test_rejected_submission_leaves_placement_untouched(self):
        router = make_router(tenant_quotas={"etl": 1})
        router.submit("Q6", tenant="etl")
        before = router.placement.snapshot()
        with pytest.raises(TenantQuotaError):
            router.submit("Q6", tenant="etl")
        assert router.placement.snapshot() == before


class TestFanout:
    def test_fanout_hits_every_active_shard(self):
        router = make_router()
        fan = router.fanout("Q6")
        assert [t.address.shard for t in fan.tickets] == [0, 1, 2, 3]
        router.drain()
        records = fan.records()
        assert [r.name for r in records] == ["Q6"] * 4
        assert all(r.latency > 0.0 for r in records)

    def test_fanout_cancel(self):
        router = make_router()
        fan = router.fanout("Q6")
        assert fan.cancel() == 4
        router.drain()
        assert all(router.record(t).cancelled for t in fan.tickets)


class TestDrainShard:
    def test_handoff_moves_pending_queries(self):
        router = make_router()
        handles = [router.submit("Q6", shard=1) for _ in range(3)]
        moved = router.drain_shard(1)
        assert moved == 3
        assert all(h.address.shard != 1 for h in handles)
        assert router.active_shards() == [0, 2, 3]
        router.drain()
        for handle in handles:
            record = router.record(handle)
            assert not record.failed and not record.cancelled

    def test_zero_lost_tickets_mid_workload(self):
        router = make_router()
        handles = router.submit_workload(tenant_workload())
        victim = handles[0].address.shard
        router.drain_shard(victim)
        router.drain()
        # Every ticket resolves to a completed record, none dangling.
        for handle in handles:
            record = router.record(handle)
            assert record is not None
            assert not record.failed and not record.cancelled
        assert victim not in {h.address.shard for h in handles}

    def test_completed_queries_stay_readable_on_retired_shard(self):
        router = make_router()
        done = router.submit("Q6", shard=1)
        router.drain()
        latency = router.latency(done)
        router.drain_shard(1)
        assert done.address.shard == 1  # never moved
        assert router.latency(done) == latency

    def test_handoff_preserves_tenant_and_sla(self):
        router = make_router(tenant_quotas={"etl": 8})
        handle = router.submit("Q18", shard=0, tenant="etl", sla="bulk")
        router.drain_shard(0)
        ticket = int(handle)
        assert router.tickets.tenant_of(ticket) == "etl"
        target = handle.address
        shard = router.shards[target.shard]
        assert shard.tickets.tenant_of(target.ticket) == "etl"
        assert shard.tickets.sla_of(target.ticket) == "bulk"

    def test_cannot_drain_last_shard(self):
        router = make_router(n_shards=1)
        with pytest.raises(ReproError, match="last active shard"):
            router.drain_shard(0)

    def test_decommissioned_shard_rejects_pins(self):
        router = make_router()
        router.drain_shard(2)
        with pytest.raises(ReproError, match="not available"):
            router.submit("Q6", shard=2)
        with pytest.raises(ReproError, match="already decommissioned"):
            router.drain_shard(2)

    def test_drain_without_decommission_reactivates(self):
        router = make_router()
        router.drain_shard(1, decommission=False)
        assert router.active_shards() == [0, 2, 3]
        router.reactivate(1)
        assert router.active_shards() == [0, 1, 2, 3]
        router.submit("Q6", shard=1)
        router.drain()


class TestPredictiveVsRoundRobin:
    def test_predictive_beats_round_robin_p99_for_latency_class(self):
        """The headline routing claim, in miniature: under a mixed
        heavy/light multi-tenant load, predictive placement cuts the
        tail latency of the latency-critical class vs round-robin."""
        import numpy as np

        def p99_latency(placement):
            router = make_router(placement=placement, scheduler="stride")
            workload = tenant_workload(seed=33, duration=4.0)
            handles = router.submit_workload(workload)
            router.drain()
            latencies = [
                router.latency(h)
                for h in handles
                if router.tickets.sla_of(int(h)) == "latency"
            ]
            assert latencies
            return float(np.percentile(latencies, 99))

        predictive = p99_latency("predictive")
        round_robin = p99_latency("round-robin")
        assert predictive < round_robin

    def test_repeated_runs_bit_identical(self):
        def run():
            router = make_router(seed=21)
            handles = router.submit_workload(tenant_workload(seed=9))
            router.drain()
            return [
                (int(h), h.address, router.latency(h)) for h in handles
            ]

        assert run() == run()


_CLUSTER_DETERMINISM_SCRIPT = """
from repro.cluster import ClusterRouter
from repro.simcore.rng import RngFactory
from repro.workloads import Tenant, multi_tenant_workload, tpch_mix

tenants = [
    Tenant("dash", tpch_mix(sf_small=0.5, sf_large=1.0), rate=8.0,
           user_priority=4.0, sla="latency"),
    Tenant("etl", tpch_mix(sf_small=2.0, sf_large=8.0), rate=4.0, sla="bulk"),
]
workload = multi_tenant_workload(tenants, 3.0, RngFactory(3))

router = ClusterRouter(n_shards=4, scale_factor=1.0, scheduler="tuning",
                       n_workers=2, seed=7, environment="model")
handles = router.submit_workload(workload)
router.drain_shard(1)
router.drain()
for handle in handles:
    record = router.record(handle)
    print(int(handle), tuple(handle.address), record.name,
          repr(record.latency), record.failed, record.cancelled)
print(router.placement.snapshot())
"""


class TestHashSeedDeterminism:
    def test_cluster_run_identical_across_hash_seeds(self):
        # Placement, routing, handoff and the tuning scheduler must not
        # depend on dict/set iteration order anywhere in the stack.
        outputs = []
        for hashseed in ("0", "1", "2"):
            env = dict(os.environ, PYTHONHASHSEED=hashseed)
            env["PYTHONPATH"] = "src"
            proc = subprocess.run(
                [sys.executable, "-c", _CLUSTER_DETERMINISM_SCRIPT],
                capture_output=True,
                text=True,
                env=env,
                cwd=os.path.dirname(
                    os.path.dirname(os.path.dirname(__file__))
                ),
                timeout=300,
            )
            assert proc.returncode == 0, proc.stderr
            outputs.append(proc.stdout)
        assert outputs[0] == outputs[1] == outputs[2]
        assert outputs[0].count("\n") > 10


class TestEngineEnvironment:
    def test_engine_cluster_shares_one_database(self):
        router = ClusterRouter(
            n_shards=2,
            scale_factor=0.003,
            scheduler="stride",
            n_workers=2,
            seed=5,
            environment="engine",
        )
        assert router.shards[0].database is router.shards[1].database
        a = router.submit("Q6", shard=0)
        b = router.submit("Q6", shard=1)
        router.drain()
        assert router.result(a) == pytest.approx(router.result(b))

    def test_engine_fanout_streams_per_shard_finals(self):
        router = ClusterRouter(
            n_shards=2,
            scale_factor=0.003,
            scheduler="stride",
            n_workers=2,
            seed=5,
            environment="engine",
        )
        fan = router.fanout("Q1")
        router.drain()
        batches = list(fan)
        assert len(batches) == 2  # one final aggregate payload per shard
        assert len(fan.results()) == 2

    def test_custom_placement_instance(self):
        policy = PredictivePlacement(alpha=0.5)
        router = make_router(placement=policy)
        assert router.placement is policy
