"""Unit tests for the shard placement policies."""

import pytest

from repro.cluster import (
    PredictivePlacement,
    RoundRobinPlacement,
    make_placement_policy,
)
from repro.errors import ReproError
from repro.metrics.latency import LatencyRecord

from tests.conftest import make_query


def record_for(name, cpu_seconds, failed=False, cancelled=False):
    return LatencyRecord(
        query_id=0,
        name=name,
        scale_factor=1.0,
        arrival_time=0.0,
        completion_time=cpu_seconds,
        cpu_seconds=cpu_seconds,
        base_latency=cpu_seconds,
        cancelled=cancelled,
        failed=failed,
    )


class TestFactory:
    def test_by_name(self):
        assert isinstance(
            make_placement_policy("round-robin"), RoundRobinPlacement
        )
        assert isinstance(
            make_placement_policy("predictive"), PredictivePlacement
        )

    def test_instance_passes_through(self):
        policy = PredictivePlacement(alpha=0.5)
        assert make_placement_policy(policy) is policy

    def test_unknown_rejected(self):
        with pytest.raises(ReproError, match="unknown placement"):
            make_placement_policy("random")


class TestRoundRobin:
    def test_cycles_active_shards(self):
        policy = RoundRobinPlacement()
        policy.bind(4, 2)
        q = make_query()
        assert [policy.choose(q, [0, 1, 2, 3]) for _ in range(6)] == [
            0, 1, 2, 3, 0, 1,
        ]

    def test_skips_inactive(self):
        policy = RoundRobinPlacement()
        policy.bind(4, 2)
        q = make_query()
        assert [policy.choose(q, [0, 2]) for _ in range(4)] == [0, 2, 0, 2]

    def test_no_active_shards(self):
        policy = RoundRobinPlacement()
        policy.bind(2, 2)
        with pytest.raises(ReproError):
            policy.choose(make_query(), [])


class TestPredictive:
    def make(self, n_shards=2, n_workers=2, alpha=0.3):
        policy = PredictivePlacement(alpha=alpha)
        policy.bind(n_shards, n_workers)
        return policy

    def test_estimate_falls_back_to_cost_model(self):
        policy = self.make()
        q = make_query("q", work=0.04)
        assert policy.estimate(q) == pytest.approx(q.total_work_seconds)

    def test_routes_to_least_loaded(self):
        policy = self.make()
        heavy = make_query("heavy", work=1.0)
        light = make_query("light", work=0.01)
        assert policy.choose(heavy, [0, 1]) == 0
        policy.on_submit(0, heavy)
        # Shard 0 now carries 1s of backlog; the light query avoids it.
        assert policy.choose(light, [0, 1]) == 1

    def test_backlog_decays_with_virtual_time(self):
        policy = self.make()
        heavy = make_query("heavy", work=1.0)
        policy.on_submit(0, heavy, at=0.0)
        light = make_query("light", work=0.01)
        # At t=0 the backlog repels traffic from shard 0 ...
        assert policy.choose(light, [0, 1], at=0.0) == 1
        # ... but once the model says the monster has finished (1s of
        # work on 2 workers → horizon 0.5), shard 0 is clean again and
        # the tie breaks back to the lowest index.
        assert policy.choose(light, [0, 1], at=0.6) == 0

    def test_weighted_backlog_discount(self):
        # A weight-1 bulk backlog delays a weight-4 query at only 1/4
        # strength; a peer weight-4 backlog counts in full.
        policy = self.make()
        bulk = make_query("bulk", work=1.0)
        policy.on_submit(0, bulk, at=0.0, weight=1.0)
        policy.on_submit(1, bulk, at=0.0, weight=4.0)
        probe = make_query("probe", work=0.01)
        backlog = 1.0 / policy.n_workers
        assert policy.predicted_latency(
            0, probe, at=0.0, weight=4.0
        ) == pytest.approx(probe.total_work_seconds + backlog / 4.0)
        assert policy.predicted_latency(
            1, probe, at=0.0, weight=4.0
        ) == pytest.approx(probe.total_work_seconds + backlog)
        assert policy.choose(probe, [0, 1], at=0.0, weight=4.0) == 0

    def test_ties_break_to_lowest_index(self):
        policy = self.make(n_shards=3)
        assert policy.choose(make_query(), [0, 1, 2]) == 0

    def test_calibrates_from_records(self):
        policy = self.make(alpha=0.5)
        q = make_query("q", work=0.1)  # cost model says 100 ms
        charge = policy.on_submit(0, q)
        policy.on_complete(0, record_for("q", 0.4), charge)  # reality: 400 ms
        assert policy.estimate(q) == pytest.approx(0.4)
        # EMA, not last-value: a second observation moves halfway.
        charge = policy.on_submit(0, q)
        policy.on_complete(0, record_for("q", 0.2), charge)
        assert policy.estimate(q) == pytest.approx(0.3)

    def test_failed_runs_do_not_calibrate(self):
        policy = self.make()
        q = make_query("q", work=0.1)
        charge = policy.on_submit(0, q)
        policy.on_complete(0, record_for("q", 0.001, failed=True), charge)
        assert policy.estimate(q) == pytest.approx(q.total_work_seconds)

    def test_transfer_charges_target(self):
        policy = self.make()
        q = make_query("q", work=0.5)
        charge = policy.on_submit(0, q)
        policy.transfer(0, 1, q, charge)
        busy = policy.snapshot()["busy_until"]
        assert busy[1][1.0] == pytest.approx(0.5 / policy.n_workers)

    def test_epoch_reset_clears_backlog_not_calibration(self):
        policy = self.make()
        q = make_query("q", work=0.5)
        charge = policy.on_submit(0, q)
        policy.on_complete(0, record_for("q", 0.6), charge)
        policy.epoch_reset()
        snapshot = policy.snapshot()
        assert snapshot["busy_until"] == [{}, {}]
        assert snapshot["calibrated_work"] == {"q": pytest.approx(0.6)}

    def test_bad_alpha_rejected(self):
        with pytest.raises(ReproError):
            PredictivePlacement(alpha=0.0)
        with pytest.raises(ReproError):
            PredictivePlacement(alpha=1.5)
