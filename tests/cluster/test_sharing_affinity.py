"""Sharing-affinity placement: steer same-fragment queries together.

The affinity term discounts a candidate shard's own work estimate when
that shard already has the probe's leading scan fragment in flight —
the shard's fold machinery can then merge the scans.  With affinity 0
(the default) nothing is tracked and the predictor is bit-identical to
the pre-sharing one.
"""

import pytest

from repro.cluster.placement import PredictivePlacement
from repro.cluster.router import ClusterRouter
from repro.errors import ReproError
from repro.sharing import SharingStats
from repro.workloads import tpch_query


def bound_policy(affinity, n_shards=2, n_workers=2):
    policy = PredictivePlacement(sharing_affinity=affinity)
    policy.bind(n_shards, n_workers)
    return policy


class TestAffinityTerm:
    def test_affinity_validated(self):
        with pytest.raises(ReproError):
            PredictivePlacement(sharing_affinity=1.0)
        with pytest.raises(ReproError):
            PredictivePlacement(sharing_affinity=-0.1)

    def test_default_tracks_nothing(self):
        policy = bound_policy(0.0)
        spec = tpch_query("Q6", 3.0)
        policy.on_submit(0, spec, at=0.0)
        snap = policy.snapshot()
        assert "fragments_in_flight" not in snap
        assert "sharing_affinity" not in snap
        # Backlogged shard 0 predicts strictly worse — no discount.
        assert policy.predicted_latency(0, spec) > (
            policy.predicted_latency(1, spec)
        )
        assert policy.choose(spec, active=[0, 1]) == 1

    def test_affinity_steers_to_the_shard_running_the_fragment(self):
        policy = bound_policy(0.75)
        spec = tpch_query("Q6", 3.0)
        policy.on_submit(0, spec, at=0.0)
        # Shard 0 carries the submitted query's backlog, but the probe's
        # fragment is live there: the discounted estimate (0.25x) beats
        # shard 1's full fresh scan plus empty backlog.
        assert policy.predicted_latency(0, spec) < (
            policy.predicted_latency(1, spec)
        )
        assert policy.choose(spec, active=[0, 1]) == 0
        snap = policy.snapshot()
        assert snap["sharing_affinity"] == 0.75
        assert len(snap["fragments_in_flight"][0]) == 1
        assert snap["fragments_in_flight"][1] == {}

    def test_different_fragment_gets_no_discount(self):
        policy = bound_policy(0.75)
        policy.on_submit(0, tpch_query("Q6", 3.0), at=0.0)
        other = tpch_query("Q18", 3.0)
        # Q18's leading scan differs: shard 0 is just backlogged.
        assert policy.choose(other, active=[0, 1]) == 1

    def test_fragment_horizon_decays_with_time(self):
        policy = bound_policy(0.75, n_workers=1)
        spec = tpch_query("Q6", 3.0)
        charge = policy.on_submit(0, spec, at=0.0)
        # Probe long after the in-flight scan finished: no live
        # fragment to fold into, so no discount survives.
        late = charge * 10.0
        assert policy.predicted_latency(0, spec, at=late) == (
            pytest.approx(policy.predicted_latency(1, spec, at=late))
        )

    def test_epoch_reset_clears_fragments(self):
        policy = bound_policy(0.5)
        policy.on_submit(0, tpch_query("Q6", 3.0), at=0.0)
        policy.epoch_reset()
        snap = policy.snapshot()
        assert snap["fragments_in_flight"] == [{}, {}]
        assert snap["busy_until"] == [{}, {}]


class TestRouterIntegration:
    def test_sharing_router_folds_and_aggregates_stats(self):
        router = ClusterRouter(
            n_shards=1, n_workers=2, environment="model", sharing=True
        )
        router.submit("Q6")
        router.submit("Q6")
        router.drain()
        assert router.sharing is True
        stats = router.sharing_stats
        assert isinstance(stats, SharingStats)
        assert stats.folds == 1
        assert stats.attached_queries == 1

    def test_sharing_off_router_reports_zero_stats(self):
        router = ClusterRouter(n_shards=2, n_workers=2, environment="model")
        router.submit("Q6")
        router.drain()
        assert router.sharing is False
        assert router.sharing_stats.as_dict()["folds"] == 0
