"""Tests for latency records and collection."""

import pytest

from repro.metrics import LatencyCollector, LatencyRecord
from repro.metrics.latency import query_key


def record(name="q", sf=3.0, arrival=0.0, completion=1.0, base=0.5, qid=0):
    return LatencyRecord(
        query_id=qid,
        name=name,
        scale_factor=sf,
        arrival_time=arrival,
        completion_time=completion,
        cpu_seconds=0.1,
        base_latency=base,
    )


class TestLatencyRecord:
    def test_latency(self):
        assert record(arrival=1.0, completion=3.5).latency == pytest.approx(2.5)

    def test_slowdown(self):
        assert record(completion=1.0, base=0.5).slowdown == pytest.approx(2.0)

    def test_with_base(self):
        rebased = record(base=float("nan")).with_base(0.25)
        assert rebased.slowdown == pytest.approx(4.0)


class TestLatencyCollector:
    def test_grouping_by_scale_factor(self):
        collector = LatencyCollector()
        collector.add(record(sf=3.0))
        collector.add(record(sf=30.0))
        collector.add(record(sf=3.0))
        groups = collector.by_scale_factor()
        assert len(groups[3.0]) == 2
        assert len(groups[30.0]) == 1

    def test_grouping_by_query(self):
        collector = LatencyCollector()
        collector.add(record(name="Q1"))
        collector.add(record(name="Q6"))
        collector.add(record(name="Q1"))
        assert len(collector.by_query()["Q1"]) == 2

    def test_filter(self):
        collector = LatencyCollector()
        collector.add(record(completion=1.0))
        collector.add(record(completion=2.0))
        slow = collector.filter(lambda r: r.latency > 1.5)
        assert len(slow) == 1

    def test_queries_per_second(self):
        collector = LatencyCollector()
        for _ in range(10):
            collector.add(record())
        assert collector.queries_per_second(5.0) == pytest.approx(2.0)
        assert collector.queries_per_second(0.0) == 0.0

    def test_apply_bases(self):
        collector = LatencyCollector()
        collector.add(record(name="Q1", sf=3.0, base=float("nan")))
        rebased = collector.apply_bases({query_key("Q1", 3.0): 0.5})
        assert rebased.records[0].slowdown == pytest.approx(2.0)

    def test_apply_bases_missing_key_keeps_record(self):
        collector = LatencyCollector()
        collector.add(record(name="Q9", sf=3.0, base=0.25))
        rebased = collector.apply_bases({})
        assert rebased.records[0].base_latency == 0.25


class TestQueryKey:
    def test_format(self):
        assert query_key("Q1", 3.0) == "Q1@3"
        assert query_key("Q1", 0.5) == "Q1@0.5"


class TestArraysRoundtrip:
    """The compact wire format used for process-pool handoff."""

    def _collector(self):
        collector = LatencyCollector()
        collector.add(record(name="Q1", sf=3.0, arrival=0.1, completion=0.7, qid=0))
        collector.add(
            record(name="Q6", sf=30.0, arrival=0.2, completion=1.9, qid=1)
        )
        # NaN base latency (rebased later by apply_bases) must survive.
        collector.add(record(name="Q1", sf=3.0, base=float("nan"), qid=2))
        # Exercise floats with no short decimal form.
        collector.add(
            record(
                name="Q13",
                sf=0.1,
                arrival=1.0 / 3.0,
                completion=2.0 / 3.0,
                base=0.1 + 0.2,
                qid=3,
            )
        )
        return collector

    def test_lossless_roundtrip(self):
        original = self._collector()
        restored = LatencyCollector.from_arrays(original.to_arrays())
        # repr covers every float exactly; NaN != NaN breaks ==.
        assert [repr(r) for r in restored.records] == [
            repr(r) for r in original.records
        ]

    def test_empty_collector(self):
        restored = LatencyCollector.from_arrays(LatencyCollector().to_arrays())
        assert len(restored) == 0

    def test_name_table_deduplicates(self):
        payload = self._collector().to_arrays()
        assert sorted(payload["names"]) == ["Q1", "Q13", "Q6"]
        assert len(payload["name_ids"]) == 4

    def test_restored_collector_still_works(self):
        restored = LatencyCollector.from_arrays(self._collector().to_arrays())
        rebased = restored.apply_bases({query_key("Q1", 3.0): 0.25})
        groups = restored.by_scale_factor()
        assert len(groups[3.0]) == 2
        assert rebased.records[2].base_latency == pytest.approx(0.25)
