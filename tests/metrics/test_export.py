"""Tests for CSV/JSON result export."""

import csv
import json
import math

from repro.metrics.export import (
    latency_records_to_csv,
    rows_to_csv,
    rows_to_json,
    trace_to_csv,
)
from repro.simcore import MorselSpan

from tests.metrics.test_latency import record


class TestRowsToCsv:
    def test_roundtrip(self, tmp_path):
        rows = [{"a": 1, "b": "x"}, {"a": 2, "b": "y"}]
        path = rows_to_csv(rows, tmp_path / "out.csv")
        with path.open() as handle:
            got = list(csv.DictReader(handle))
        assert got == [{"a": "1", "b": "x"}, {"a": "2", "b": "y"}]

    def test_heterogeneous_keys(self, tmp_path):
        rows = [{"a": 1}, {"a": 2, "b": 3}]
        path = rows_to_csv(rows, tmp_path / "out.csv")
        with path.open() as handle:
            got = list(csv.DictReader(handle))
        assert got[0]["b"] == ""
        assert got[1]["b"] == "3"

    def test_empty(self, tmp_path):
        path = rows_to_csv([], tmp_path / "empty.csv")
        assert path.read_text() == "\r\n" or path.read_text() == "\n"


class TestRowsToJson:
    def test_roundtrip(self, tmp_path):
        rows = [{"a": 1.5, "b": "x"}]
        path = rows_to_json(rows, tmp_path / "out.json")
        assert json.loads(path.read_text()) == [{"a": 1.5, "b": "x"}]


class TestLatencyExport:
    def test_fields(self, tmp_path):
        path = latency_records_to_csv([record()], tmp_path / "lat.csv")
        with path.open() as handle:
            rows = list(csv.DictReader(handle))
        assert len(rows) == 1
        assert float(rows[0]["slowdown"]) == 2.0
        assert float(rows[0]["latency"]) == 1.0


class TestTraceExport:
    def test_fields(self, tmp_path):
        span = MorselSpan(
            worker_id=1,
            start=0.5,
            end=0.75,
            query_id=3,
            pipeline_index=2,
            phase="default",
            tuples=100,
        )
        path = trace_to_csv([span], tmp_path / "trace.csv")
        with path.open() as handle:
            rows = list(csv.DictReader(handle))
        assert rows[0]["phase"] == "default"
        assert math.isclose(float(rows[0]["duration"]), 0.25)


class TestSharingStatsExport:
    def test_rows_and_csv(self, tmp_path):
        from repro.metrics.export import sharing_stats_rows, sharing_stats_to_csv
        from repro.sharing import SharingStats

        stats = SharingStats(folds=2, attached_queries=5, cache_hits=1)
        rows = sharing_stats_rows(stats, label="shard0")
        assert rows == [
            {
                "surface": "shard0",
                "attached_queries": 5,
                "cache_evictions": 0,
                "cache_hits": 1,
                "folds": 2,
                "replay_fallbacks": 0,
            }
        ]
        path = sharing_stats_to_csv(
            {"total": stats.merge(stats), "shard0": stats},
            tmp_path / "sharing.csv",
        )
        with path.open() as handle:
            got = list(csv.DictReader(handle))
        # Sorted-label order: shard0 before total; total is the merge.
        assert [row["surface"] for row in got] == ["shard0", "total"]
        assert got[1]["folds"] == "4"
        assert got[1]["attached_queries"] == "10"
