"""Tests for CSV/JSON result export."""

import csv
import json
import math

from repro.metrics.export import (
    latency_records_to_csv,
    rows_to_csv,
    rows_to_json,
    trace_to_csv,
)
from repro.simcore import MorselSpan

from tests.metrics.test_latency import record


class TestRowsToCsv:
    def test_roundtrip(self, tmp_path):
        rows = [{"a": 1, "b": "x"}, {"a": 2, "b": "y"}]
        path = rows_to_csv(rows, tmp_path / "out.csv")
        with path.open() as handle:
            got = list(csv.DictReader(handle))
        assert got == [{"a": "1", "b": "x"}, {"a": "2", "b": "y"}]

    def test_heterogeneous_keys(self, tmp_path):
        rows = [{"a": 1}, {"a": 2, "b": 3}]
        path = rows_to_csv(rows, tmp_path / "out.csv")
        with path.open() as handle:
            got = list(csv.DictReader(handle))
        assert got[0]["b"] == ""
        assert got[1]["b"] == "3"

    def test_empty(self, tmp_path):
        path = rows_to_csv([], tmp_path / "empty.csv")
        assert path.read_text() == "\r\n" or path.read_text() == "\n"


class TestRowsToJson:
    def test_roundtrip(self, tmp_path):
        rows = [{"a": 1.5, "b": "x"}]
        path = rows_to_json(rows, tmp_path / "out.json")
        assert json.loads(path.read_text()) == [{"a": 1.5, "b": "x"}]


class TestLatencyExport:
    def test_fields(self, tmp_path):
        path = latency_records_to_csv([record()], tmp_path / "lat.csv")
        with path.open() as handle:
            rows = list(csv.DictReader(handle))
        assert len(rows) == 1
        assert float(rows[0]["slowdown"]) == 2.0
        assert float(rows[0]["latency"]) == 1.0


class TestTraceExport:
    def test_fields(self, tmp_path):
        span = MorselSpan(
            worker_id=1,
            start=0.5,
            end=0.75,
            query_id=3,
            pipeline_index=2,
            phase="default",
            tuples=100,
        )
        path = trace_to_csv([span], tmp_path / "trace.csv")
        with path.open() as handle:
            rows = list(csv.DictReader(handle))
        assert rows[0]["phase"] == "default"
        assert math.isclose(float(rows[0]["duration"]), 0.25)


class TestSharingStatsExport:
    def test_rows_and_csv(self, tmp_path):
        from repro.metrics.export import sharing_stats_rows, sharing_stats_to_csv
        from repro.sharing import SharingStats

        stats = SharingStats(folds=2, attached_queries=5, cache_hits=1)
        rows = sharing_stats_rows(stats, label="shard0")
        assert rows == [
            {
                "surface": "shard0",
                "attached_queries": 5,
                "cache_evictions": 0,
                "cache_hits": 1,
                "folds": 2,
                "replay_fallbacks": 0,
            }
        ]
        path = sharing_stats_to_csv(
            {"total": stats.merge(stats), "shard0": stats},
            tmp_path / "sharing.csv",
        )
        with path.open() as handle:
            got = list(csv.DictReader(handle))
        # Sorted-label order: shard0 before total; total is the merge.
        assert [row["surface"] for row in got] == ["shard0", "total"]
        assert got[1]["folds"] == "4"
        assert got[1]["attached_queries"] == "10"


class TestTuningStatsExport:
    def test_rows_and_csv(self, tmp_path):
        from repro.metrics.export import tuning_stats_rows, tuning_stats_to_csv
        from repro.tuning import TuningCycleStats

        legacy = TuningCycleStats(
            cycle=0,
            mode="legacy",
            values={"core.decay": 0.9, "core.d_start": 7},
            cost=1.5,
            baseline_cost=2.0,
            evaluations=12,
            knobs_evaluated=2,
            tracked_queries=20,
        )
        budgeted = TuningCycleStats(
            cycle=1,
            mode="knob_space",
            values={"core.decay": 0.85, "runtime.retry_budget": 8},
            cost=1.2,
            baseline_cost=2.0,
            evaluations=30,
            verified=3,
            simulated_steps=5000,
            budget_steps=8000,
            knobs_evaluated=6,
            fidelity=0.75,
            tracked_queries=20,
        )

        rows = tuning_stats_rows([legacy, budgeted], label="shard0")
        assert len(rows) == 2
        assert rows[0]["surface"] == "shard0"
        assert rows[0]["mode"] == "legacy"
        assert rows[0]["budget_steps"] == ""
        assert rows[0]["knob:core.decay"] == 0.9
        assert rows[1]["mode"] == "knob_space"
        assert rows[1]["budget_steps"] == 8000
        assert rows[1]["knob:runtime.retry_budget"] == 8

        path = tuning_stats_to_csv(
            {"total": [budgeted], "shard0": [legacy, budgeted]},
            tmp_path / "tuning.csv",
        )
        with path.open() as handle:
            got = list(csv.DictReader(handle))
        # Sorted-label order: both shard0 cycles before the total row.
        assert [row["surface"] for row in got] == ["shard0", "shard0", "total"]
        assert got[0]["cycle"] == "0"
        assert got[1]["evaluations"] == "30"
        # Legacy cycles never touched the retry knob: cell stays empty.
        assert got[0]["knob:runtime.retry_budget"] == ""
        assert got[2]["knob:runtime.retry_budget"] == "8"
