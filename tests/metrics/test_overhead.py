"""Tests for scheduling-overhead accounting (Figure 10)."""

import pytest

from repro.metrics import OverheadAccounting, PhaseCosts


class TestOverheadAccounting:
    def test_charges_accumulate(self):
        accounting = OverheadAccounting(PhaseCosts(mask_update_op=1e-6))
        accounting.charge_mask_updates(10)
        assert accounting.ops["mask_updates"] == 10
        assert accounting.seconds["mask_updates"] == pytest.approx(1e-5)

    def test_fraction_relative_to_total(self):
        accounting = OverheadAccounting(PhaseCosts(tuning_second=1.0))
        accounting.charge_busy(99.0)
        accounting.charge_tuning(1.0)
        assert accounting.overhead_fraction("tuning") == pytest.approx(0.01)

    def test_total_fraction_sums_phases(self):
        costs = PhaseCosts(
            mask_update_op=1.0, local_work_op=1.0, finalization_op=1.0
        )
        accounting = OverheadAccounting(costs)
        accounting.charge_busy(97.0)
        accounting.charge_mask_updates(1)
        accounting.charge_local_work(1)
        accounting.charge_finalization(1)
        assert accounting.total_overhead_fraction() == pytest.approx(0.03)

    def test_breakdown_percent(self):
        accounting = OverheadAccounting(PhaseCosts(tuning_second=1.0))
        accounting.charge_busy(99.0)
        accounting.charge_tuning(1.0)
        assert accounting.breakdown_percent()["tuning"] == pytest.approx(1.0)

    def test_zero_time_is_zero_overhead(self):
        accounting = OverheadAccounting()
        assert accounting.total_overhead_fraction() == 0.0
