"""Tests for the plain-text table renderer."""

from repro.metrics import format_table


class TestFormatTable:
    def test_basic_layout(self):
        text = format_table(["name", "value"], [["a", 1], ["bb", 22]])
        lines = text.splitlines()
        assert lines[0].split() == ["name", "value"]
        assert lines[1].startswith("-")
        assert lines[2].split() == ["a", "1"]

    def test_title(self):
        text = format_table(["x"], [[1]], title="Demo")
        assert text.splitlines()[0] == "Demo"
        assert text.splitlines()[1] == "===="

    def test_float_formatting(self):
        text = format_table(["v"], [[0.123456789]])
        assert "0.1235" in text

    def test_scientific_for_extremes(self):
        text = format_table(["v"], [[1234567.0], [0.0000123]])
        assert "e+06" in text
        assert "e-05" in text

    def test_nan_rendered_as_dash(self):
        text = format_table(["v"], [[float("nan")]])
        assert text.splitlines()[-1].strip() == "-"

    def test_column_alignment(self):
        text = format_table(["a", "b"], [["xxxx", 1], ["y", 2]])
        rows = text.splitlines()[2:]
        positions = {row.rstrip().rfind(str(v)) for row, v in zip(rows, (1, 2))}
        assert len(positions) == 1  # second column aligned
