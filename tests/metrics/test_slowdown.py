"""Tests for slowdown statistics."""

import math

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.metrics import geometric_mean, mean_relative_slowdown, percentile
from repro.metrics.slowdown import slowdown_summary

from tests.metrics.test_latency import record


class TestGeometricMean:
    def test_basic(self):
        assert geometric_mean([1.0, 100.0]) == pytest.approx(10.0)

    def test_empty_is_nan(self):
        assert math.isnan(geometric_mean([]))

    def test_rejects_nonpositive(self):
        with pytest.raises(ValueError):
            geometric_mean([1.0, 0.0])

    @given(st.lists(st.floats(min_value=0.001, max_value=1000.0), min_size=1))
    def test_between_min_and_max(self, values):
        gm = geometric_mean(values)
        assert min(values) - 1e-9 <= gm <= max(values) + 1e-9


class TestPercentile:
    def test_median(self):
        assert percentile([3.0, 1.0, 2.0], 50.0) == pytest.approx(2.0)

    def test_interpolation(self):
        assert percentile([0.0, 10.0], 25.0) == pytest.approx(2.5)

    def test_extremes(self):
        values = [5.0, 1.0, 3.0]
        assert percentile(values, 0.0) == 1.0
        assert percentile(values, 100.0) == 5.0

    def test_empty_is_nan(self):
        assert math.isnan(percentile([], 50.0))

    def test_invalid_q(self):
        with pytest.raises(ValueError):
            percentile([1.0], 101.0)

    @given(
        values=st.lists(st.floats(min_value=0.0, max_value=100.0), min_size=1),
        q1=st.floats(min_value=0.0, max_value=100.0),
        q2=st.floats(min_value=0.0, max_value=100.0),
    )
    def test_monotone_in_q(self, values, q1, q2):
        lo, hi = sorted((q1, q2))
        assert percentile(values, lo) <= percentile(values, hi) + 1e-9


class TestSlowdownSummary:
    def test_mean_relative_slowdown(self):
        records = [record(completion=1.0, base=0.5), record(completion=2.0, base=1.0)]
        assert mean_relative_slowdown(records) == pytest.approx(2.0)

    def test_summary_fields(self):
        records = [record(completion=1.0, base=0.5) for _ in range(5)]
        summary = slowdown_summary(records)
        assert summary["count"] == 5
        assert summary["mean_slowdown"] == pytest.approx(2.0)
        assert summary["p95_slowdown"] == pytest.approx(2.0)
        assert summary["max_slowdown"] == pytest.approx(2.0)
        assert summary["geomean_latency"] == pytest.approx(1.0)

    def test_empty_summary(self):
        summary = slowdown_summary([])
        assert summary["count"] == 0
        assert math.isnan(summary["mean_slowdown"])
