"""Tests for the deterministic event queue."""

from repro.simcore import EventQueue


def _noop(_now: float) -> None:
    pass


class TestEventQueue:
    def test_orders_by_time(self):
        queue = EventQueue()
        queue.push(2.0, _noop, payload="b")
        queue.push(1.0, _noop, payload="a")
        queue.push(3.0, _noop, payload="c")
        assert [queue.pop().payload for _ in range(3)] == ["a", "b", "c"]

    def test_ties_break_by_insertion_order(self):
        queue = EventQueue()
        for i in range(5):
            queue.push(1.0, _noop, payload=i)
        assert [queue.pop().payload for _ in range(5)] == [0, 1, 2, 3, 4]

    def test_pop_empty(self):
        assert EventQueue().pop() is None

    def test_cancelled_events_skipped(self):
        queue = EventQueue()
        keep = queue.push(1.0, _noop, payload="keep")
        cancel = queue.push(0.5, _noop, payload="cancel")
        cancel.cancel()
        assert queue.pop() is keep
        assert queue.pop() is None

    def test_len_excludes_cancelled(self):
        queue = EventQueue()
        queue.push(1.0, _noop)
        handle = queue.push(2.0, _noop)
        handle.cancel()
        assert len(queue) == 1

    def test_peek_time(self):
        queue = EventQueue()
        assert queue.peek_time() is None
        queue.push(3.0, _noop)
        first = queue.push(1.0, _noop)
        assert queue.peek_time() == 1.0
        first.cancel()
        assert queue.peek_time() == 3.0

    def test_clear(self):
        queue = EventQueue()
        queue.push(1.0, _noop)
        queue.clear()
        assert queue.pop() is None

    def test_actions_fire_with_event_time(self):
        queue = EventQueue()
        seen = []
        queue.push(1.25, seen.append)
        event = queue.pop()
        event.action(event.time)
        assert seen == [1.25]
