"""Determinism of the batched execution fast paths.

The morsel executor costs morsels in vectorized batches (peeking the
pre-drawn noise buffer) and skips per-morsel record collection when
tracing is off.  Neither optimization may change a carve decision, an
EWMA update, or the RNG stream — these tests pin the batched paths to
the plain sequential reference bit-for-bit.
"""

from __future__ import annotations

from repro.core import SchedulerConfig, make_scheduler
from repro.core.morsel_exec import MorselExecutor, MorselExecutorConfig
from repro.core.resource_group import ResourceGroup
from repro.core.specs import PipelineSpec, QuerySpec
from repro.core.task import TaskSet
from repro.simcore import RngFactory, Simulator
from repro.simcore.simulator import SimulationEnvironment
from repro.runtime.trace import TraceRecorder
from repro.workloads import generate_workload, tpch_mix


class _PlainEnv:
    """Proxy exposing only ``run_morsel`` — forces the sequential path."""

    def __init__(self, env: SimulationEnvironment) -> None:
        self._env = env

    def run_morsel(self, task_set, tuples):
        return self._env.run_morsel(task_set, tuples)


def _fixed_task_set(tuples=200_000, fixed=100):
    spec = PipelineSpec(
        name="p",
        tuples=tuples,
        tuples_per_second=1e6,
        supports_adaptive=False,
        fixed_morsel_tuples=fixed,
    )
    query = QuerySpec(name="q", scale_factor=1.0, pipelines=(spec,))
    group = ResourceGroup(query, 0, 0.0)
    return TaskSet(spec, group, 0)


def _executor():
    return MorselExecutor(MorselExecutorConfig(t_max=0.002, n_workers=4))


class TestBatchedFixedPath:
    def test_matches_sequential_morsels_and_rng_stream(self):
        env_batched = SimulationEnvironment(RngFactory(7), noise_sigma=0.05)
        env_sequential = SimulationEnvironment(RngFactory(7), noise_sigma=0.05)
        ts_batched = _fixed_task_set()
        ts_sequential = _fixed_task_set()
        exec_batched = _executor()
        exec_sequential = _executor()
        while not ts_batched.exhausted:
            batched = exec_batched.run_task(ts_batched, env_batched)
            sequential = exec_sequential.run_task(
                ts_sequential, _PlainEnv(env_sequential)
            )
            # Exact float equality: carves, durations and phases agree.
            assert batched.morsels == sequential.morsels
            assert repr(batched.duration) == repr(sequential.duration)
            assert repr(ts_batched.throughput_estimate) == repr(
                ts_sequential.throughput_estimate
            )
        assert ts_sequential.exhausted
        # Both paths consumed the identical number of noise draws.
        assert repr(env_batched.next_noise()) == repr(env_sequential.next_noise())

    def test_noise_block_boundary_is_transparent(self):
        """Peeks that straddle a buffer refill keep the stream aligned."""
        env_a = SimulationEnvironment(RngFactory(3), noise_sigma=0.1)
        env_b = SimulationEnvironment(RngFactory(3), noise_sigma=0.1)
        # Drain most of a block one draw at a time, then peek across the
        # boundary: the peeked values must equal sequential draws.
        for _ in range(4090):
            assert repr(env_a.next_noise()) == repr(env_b.next_noise())
        peeked = [float(x) for x in env_a.peek_noise(12)]
        env_a.consume_noise(12)
        drawn = [env_b.next_noise() for _ in range(12)]
        assert [repr(x) for x in peeked] == [repr(x) for x in drawn]


class TestMorselCollectionToggle:
    def test_trace_toggle_does_not_change_results(self):
        """Skipping morsel records (trace off) is invisible to results."""
        mix = tpch_mix(names=("Q1", "Q6"))
        workload = generate_workload(
            mix, rate=10.0, duration=1.0, rng=RngFactory(5).stream("workload")
        )
        reprs = []
        for enabled in (False, True):
            scheduler = make_scheduler("stride", SchedulerConfig(n_workers=4))
            result = Simulator(
                scheduler, workload, seed=5, trace=TraceRecorder(enabled=enabled)
            ).run()
            reprs.append(
                [
                    (r.query_id, repr(r.completion_time), repr(r.cpu_seconds))
                    for r in result.records.records
                ]
            )
        assert reprs[0] == reprs[1]

    def test_collect_flag_controls_record_lists(self):
        env = SimulationEnvironment(RngFactory(2), noise_sigma=0.05)
        ts = _fixed_task_set(tuples=50_000)
        executor = MorselExecutor(MorselExecutorConfig(t_max=0.002, n_workers=4))
        executor.collect_morsels = False
        # Adaptive path: a task reports its morsel count without records.
        adaptive_ts = TaskSet(
            PipelineSpec(name="a", tuples=500_000, tuples_per_second=1e6),
            ts.resource_group,
            0,
        )
        executed = executor.run_task(adaptive_ts, env)
        assert executed.morsel_count > 0
        assert executed.morsels == []
