"""Tests for deterministic named RNG streams."""

from repro.simcore import RngFactory


class TestRngFactory:
    def test_same_name_same_stream_instance(self):
        factory = RngFactory(1)
        assert factory.stream("a") is factory.stream("a")

    def test_streams_are_independent(self):
        factory = RngFactory(1)
        a = factory.stream("a").random(8).tolist()
        b = factory.stream("b").random(8).tolist()
        assert a != b

    def test_reproducible_across_factories(self):
        one = RngFactory(42).stream("arrivals").random(16).tolist()
        two = RngFactory(42).stream("arrivals").random(16).tolist()
        assert one == two

    def test_different_seeds_differ(self):
        one = RngFactory(1).stream("x").random(8).tolist()
        two = RngFactory(2).stream("x").random(8).tolist()
        assert one != two

    def test_draw_order_isolation(self):
        """Consuming one stream must not shift another stream."""
        plain = RngFactory(7)
        shifted = RngFactory(7)
        shifted.stream("noise").random(100)  # extra consumption
        assert (
            plain.stream("arrivals").random(8).tolist()
            == shifted.stream("arrivals").random(8).tolist()
        )

    def test_fork_changes_streams(self):
        base = RngFactory(3)
        fork = base.fork(1)
        assert fork.seed != base.seed
        assert (
            base.stream("x").random(4).tolist() != fork.stream("x").random(4).tolist()
        )

    def test_fork_deterministic(self):
        assert RngFactory(3).fork(5).seed == RngFactory(3).fork(5).seed
