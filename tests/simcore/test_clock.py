"""Tests for the virtual clock."""

import pytest

from repro.errors import SimulationError
from repro.simcore import SimClock


class TestSimClock:
    def test_starts_at_zero(self):
        assert SimClock().now == 0.0

    def test_custom_start(self):
        assert SimClock(5.0).now == 5.0

    def test_negative_start_rejected(self):
        with pytest.raises(SimulationError):
            SimClock(-1.0)

    def test_advance(self):
        clock = SimClock()
        clock.advance_to(1.5)
        assert clock.now == 1.5

    def test_advance_to_same_time_allowed(self):
        clock = SimClock()
        clock.advance_to(1.0)
        clock.advance_to(1.0)
        assert clock.now == 1.0

    def test_backwards_rejected(self):
        clock = SimClock()
        clock.advance_to(2.0)
        with pytest.raises(SimulationError):
            clock.advance_to(1.999)
