"""Tests for the discrete-event simulator and its cost environment."""

from __future__ import annotations

import pytest

from repro.core import SchedulerConfig, make_scheduler
from repro.core.resource_group import ResourceGroup
from repro.core.task import TaskSet
from repro.simcore import RngFactory, Simulator
from repro.simcore.simulator import SimulationEnvironment

from tests.conftest import make_query


def _task_set(query, pipeline_index=0):
    group = ResourceGroup(query, query_id=0, arrival_time=0.0)
    return TaskSet(query.pipelines[pipeline_index], group, pipeline_index)


class TestSimulationEnvironment:
    def test_duration_matches_rate_without_noise(self):
        env = SimulationEnvironment(RngFactory(0), noise_sigma=0.0)
        query = make_query(rate=1e6)
        ts = _task_set(query)
        assert env.run_morsel(ts, 1000) == pytest.approx(0.001)

    def test_noise_has_unit_mean(self):
        env = SimulationEnvironment(RngFactory(0), noise_sigma=0.2)
        query = make_query(work=10.0, rate=1e6, pipelines=1)
        ts = _task_set(query)
        durations = [env.run_morsel(ts, 1000) for _ in range(5000)]
        mean = sum(durations) / len(durations)
        assert mean == pytest.approx(0.001, rel=0.05)

    def test_contention_slows_shared_pipelines(self):
        env = SimulationEnvironment(RngFactory(0), noise_sigma=0.0)
        query = make_query(rate=1e6)
        ts = _task_set(query)
        solo = env.run_morsel(ts, 1000)
        ts.pin()
        ts.pin()
        ts.pin()  # three workers pinned
        shared = env.run_morsel(ts, 1000)
        gamma = query.pipelines[0].parallel_efficiency
        assert shared == pytest.approx(solo * (1.0 + 2 * gamma))

    def test_cache_pressure_factor(self):
        env = SimulationEnvironment(RngFactory(0), noise_sigma=0.0, cache_pressure=0.01)
        env.active_count_fn = lambda: 11
        query = make_query(rate=1e6)
        ts = _task_set(query)
        assert env.run_morsel(ts, 1000) == pytest.approx(0.001 * 1.10)

    def test_named_rng(self):
        env = SimulationEnvironment(RngFactory(0))
        assert env.rng("lottery") is env.rng("lottery")


class TestSimulator:
    def _run(self, workload, scheduler_name="stride", n_workers=2, **kwargs):
        scheduler = make_scheduler(scheduler_name, SchedulerConfig(n_workers=n_workers))
        return Simulator(scheduler, workload, seed=1, **kwargs).run()

    def test_single_query_completes(self, short_query):
        result = self._run([(0.0, short_query)])
        assert result.completed == 1
        record = result.records.records[0]
        assert record.latency > 0.0
        assert record.cpu_seconds == pytest.approx(
            short_query.total_work_seconds, rel=0.25
        )

    def test_all_queries_complete_and_drain(self, short_query, long_query):
        workload = [(i * 0.001, short_query) for i in range(10)]
        workload += [(0.0, long_query)]
        result = self._run(workload)
        assert result.completed == result.admitted == 11

    def test_max_time_censors(self, long_query):
        result = self._run([(0.0, long_query)], max_time=0.01)
        assert result.completed == 0
        assert result.end_time <= 0.01

    def test_determinism(self, tiny_mix):
        from repro.workloads import generate_workload

        rng = RngFactory(5).stream("workload")
        workload = generate_workload(tiny_mix, rate=40.0, duration=1.0, rng=rng)
        first = self._run(workload)
        second = self._run(workload)
        assert [r.completion_time for r in first.records.records] == [
            r.completion_time for r in second.records.records
        ]
        assert first.tasks_executed == second.tasks_executed

    def test_busy_seconds_close_to_cpu_charge(self, short_query):
        result = self._run([(0.0, short_query)] * 4)
        total_busy = sum(result.worker_busy_seconds)
        total_cpu = sum(r.cpu_seconds for r in result.records.records)
        assert total_busy == pytest.approx(total_cpu, rel=0.05)

    def test_utilisation_bounded(self, short_query):
        result = self._run([(0.0, short_query)] * 8)
        assert 0.0 < result.utilisation() <= 1.0

    def test_queries_per_second(self, short_query):
        result = self._run([(0.0, short_query)] * 4)
        assert result.queries_per_second == pytest.approx(
            4 / result.end_time, rel=1e-6
        )

    def test_all_schedulers_drain(self, tiny_mix):
        from repro.workloads import generate_workload

        rng = RngFactory(9).stream("workload")
        workload = generate_workload(tiny_mix, rate=30.0, duration=1.0, rng=rng)
        for name in ("stride", "tuning", "fair", "lottery", "fifo", "umbra"):
            result = self._run(workload, scheduler_name=name, n_workers=3)
            assert result.completed == result.admitted, name


class TestSteadyState:
    def test_warmup_drops_early_arrivals(self, short_query):
        workload = [(0.0, short_query), (0.5, short_query), (1.0, short_query)]
        scheduler = make_scheduler("stride", SchedulerConfig(n_workers=2))
        result = Simulator(scheduler, workload, seed=1).run()
        steady = result.steady_state_records(warmup=0.4)
        assert len(steady) == 2
        assert all(r.arrival_time >= 0.4 for r in steady.records)

    def test_zero_warmup_keeps_everything(self, short_query):
        scheduler = make_scheduler("stride", SchedulerConfig(n_workers=2))
        result = Simulator(scheduler, [(0.0, short_query)], seed=1).run()
        assert len(result.steady_state_records(0.0)) == 1
