"""Tests for trace recording."""

import pytest

from repro.simcore import MorselSpan, TraceRecorder
from repro.runtime.trace import merge_adjacent_spans


def span(worker=0, start=0.0, end=1.0, query=0, pipeline=0, phase="default", tuples=10):
    return MorselSpan(
        worker_id=worker,
        start=start,
        end=end,
        query_id=query,
        pipeline_index=pipeline,
        phase=phase,
        tuples=tuples,
    )


class TestTraceRecorder:
    def test_disabled_by_default(self):
        recorder = TraceRecorder()
        recorder.record(span())
        assert recorder.spans == []

    def test_enabled_records(self):
        recorder = TraceRecorder(enabled=True)
        recorder.record(span())
        recorder.record_task(span(phase="task"))
        assert len(recorder.spans) == 1
        assert len(recorder.task_spans) == 1

    def test_duration_stats(self):
        recorder = TraceRecorder(enabled=True)
        recorder.record(span(start=0.0, end=0.001))
        recorder.record(span(start=0.0, end=0.004))
        stats = recorder.duration_stats()
        assert stats["min"] == 0.001
        assert stats["max"] == 0.004
        assert stats["spread"] == 4.0

    def test_duration_stats_empty(self):
        stats = TraceRecorder(enabled=True).duration_stats()
        assert stats["spread"] == 0.0

    def test_task_level_stats(self):
        recorder = TraceRecorder(enabled=True)
        recorder.record_task(span(start=0.0, end=0.002, phase="task"))
        recorder.record_task(span(start=0.0, end=0.002, phase="task"))
        stats = recorder.duration_stats(task_level=True)
        assert stats["spread"] == 1.0

    def test_makespan(self):
        recorder = TraceRecorder(enabled=True)
        recorder.record(span(start=1.0, end=2.0))
        recorder.record(span(start=0.5, end=1.5))
        assert recorder.makespan() == (0.5, 2.0)

    def test_spans_for_query(self):
        recorder = TraceRecorder(enabled=True)
        recorder.record(span(query=1))
        recorder.record(span(query=2))
        assert len(recorder.spans_for_query(1)) == 1

    def test_worker_utilisation(self):
        recorder = TraceRecorder(enabled=True)
        recorder.record(span(worker=0, start=0.0, end=1.0))
        recorder.record(span(worker=1, start=0.0, end=0.5))
        busy = recorder.worker_utilisation(2)
        assert busy[0] == 1.0
        assert busy[1] == 0.5

    def test_clear(self):
        recorder = TraceRecorder(enabled=True)
        recorder.record(span())
        recorder.record_task(span(phase="task"))
        recorder.clear()
        assert recorder.spans == []
        assert recorder.task_spans == []


class TestMergeAdjacentSpans:
    def test_merges_contiguous_same_context(self):
        spans = [
            span(start=0.0, end=1.0, tuples=5),
            span(start=1.0, end=2.0, tuples=7),
        ]
        merged = merge_adjacent_spans(spans)
        assert len(merged) == 1
        assert merged[0].tuples == 12
        assert merged[0].duration == 2.0

    def test_does_not_merge_gap(self):
        spans = [span(start=0.0, end=1.0), span(start=1.5, end=2.0)]
        assert len(merge_adjacent_spans(spans)) == 2

    def test_does_not_merge_different_worker(self):
        spans = [span(worker=0, end=1.0), span(worker=1, start=1.0, end=2.0)]
        assert len(merge_adjacent_spans(spans)) == 2

    def test_does_not_merge_different_phase(self):
        spans = [
            span(end=1.0, phase="startup"),
            span(start=1.0, end=2.0, phase="default"),
        ]
        assert len(merge_adjacent_spans(spans)) == 2


class TestShimRemoved:
    def test_simcore_trace_shim_is_gone(self):
        """The deprecated re-export module was removed; the canonical
        import path is repro.runtime.trace (re-exported by the simcore
        package for simulation-facing callers)."""
        import importlib
        import sys

        sys.modules.pop("repro.simcore.trace", None)
        with pytest.raises(ModuleNotFoundError):
            importlib.import_module("repro.simcore.trace")
