"""Unit tests for the bounded result channel and its wire codec."""

import pickle
import threading
import time

import numpy as np
import pytest

from repro.errors import ChannelClosedError, QueryCancelledError, ReproError
from repro.runtime.channel import (
    FINAL,
    NO_RESULT,
    ROWS,
    ResultChannel,
    ResultChunk,
    assemble_chunks,
    chunks_from_arrays,
    chunks_to_arrays,
)


def batch(*values):
    return {"x": np.asarray(values, dtype=np.float64)}


class TestPutGet:
    def test_fifo_order(self):
        channel = ResultChannel()
        channel.put_rows(batch(1.0), 1)
        channel.put_rows(batch(2.0), 1)
        channel.close()
        chunks = list(channel)
        assert [c.payload["x"][0] for c in chunks] == [1.0, 2.0]

    def test_get_none_at_end_of_stream(self):
        channel = ResultChannel()
        channel.close()
        assert channel.get() is None

    def test_get_on_open_empty_nonblocking_raises(self):
        channel = ResultChannel(blocking=False)
        with pytest.raises(ReproError, match="still open"):
            channel.get()

    def test_get_nowait_returns_none_when_open_and_empty(self):
        channel = ResultChannel()
        assert channel.get_nowait() is None

    def test_capacity_must_be_positive(self):
        with pytest.raises(ReproError):
            ResultChannel(0)

    def test_counters(self):
        channel = ResultChannel()
        channel.put_rows(batch(1.0, 2.0), 2)
        channel.put_rows(batch(3.0), 1)
        assert channel.chunks_put == 2
        assert channel.rows_put == 3
        assert channel.peak_depth == 2
        channel.get_nowait()
        assert channel.chunks_taken == 1
        assert channel.depth == 1

    def test_nonblocking_put_exceeds_capacity(self):
        # Virtual-time regime: capacity only feeds peak_depth.
        channel = ResultChannel(2, blocking=False)
        for i in range(5):
            channel.put_rows(batch(float(i)), 1)
        assert channel.depth == 5
        assert channel.peak_depth == 5


class TestCloseAndFail:
    def test_close_is_idempotent(self):
        channel = ResultChannel()
        channel.close()
        channel.close()
        assert channel.closed

    def test_put_after_close_raises(self):
        channel = ResultChannel()
        channel.close()
        with pytest.raises(ChannelClosedError):
            channel.put_rows(batch(1.0), 1)

    def test_fail_discards_buffer_and_poisons_get(self):
        channel = ResultChannel()
        channel.put_rows(batch(1.0), 1)
        channel.fail(QueryCancelledError("cancelled"))
        assert channel.failed
        assert channel.depth == 0
        with pytest.raises(QueryCancelledError):
            channel.get()

    def test_put_after_fail_drops_silently(self):
        channel = ResultChannel()
        channel.fail(QueryCancelledError("cancelled"))
        channel.put_rows(batch(1.0), 1)  # no exception
        assert channel.chunks_put == 0

    def test_fail_after_clean_close_is_noop(self):
        # A completed result is not retroactively poisoned: the
        # cancel-vs-complete race resolves in completion's favour.
        channel = ResultChannel()
        channel.put_rows(batch(1.0), 1)
        channel.close()
        channel.fail(QueryCancelledError("too late"))
        assert not channel.failed
        assert channel.get().rows == 1


class TestFailAfter:
    def test_armed_threshold_fires_on_the_nth_put(self):
        channel = ResultChannel()
        channel.fail_after(2)
        channel.put_rows(batch(1.0), 1)
        assert not channel.failed
        channel.put_rows(batch(2.0), 1)
        assert channel.failed
        assert channel.closed
        assert channel.depth == 0
        with pytest.raises(ChannelClosedError):
            channel.get()
        # Later puts drop silently, like any failed channel.
        channel.put_rows(batch(3.0), 1)
        assert channel.chunks_put == 2

    def test_custom_error_surfaces_to_the_consumer(self):
        channel = ResultChannel()
        channel.fail_after(1, error=QueryCancelledError("consumer gone"))
        channel.put_rows(batch(1.0), 1)
        with pytest.raises(QueryCancelledError):
            channel.get()

    def test_threshold_must_be_positive(self):
        with pytest.raises(ReproError):
            ResultChannel().fail_after(0)


class TestBlockingMode:
    def test_put_blocks_until_consumed(self):
        channel = ResultChannel(2, blocking=True)
        produced = []

        def producer():
            for i in range(6):
                channel.put_rows(batch(float(i)), 1)
                produced.append(i)
            channel.close()

        thread = threading.Thread(target=producer, daemon=True)
        thread.start()
        time.sleep(0.1)
        # Producer is parked: at most capacity chunks in, none out.
        assert len(produced) <= 2
        chunks = list(channel)
        thread.join(timeout=5.0)
        assert len(chunks) == 6
        assert channel.peak_depth <= 2

    def test_fail_wakes_parked_producer(self):
        channel = ResultChannel(1, blocking=True)
        channel.put_rows(batch(0.0), 1)
        done = threading.Event()

        def producer():
            channel.put_rows(batch(1.0), 1)  # parks on the full channel
            done.set()

        thread = threading.Thread(target=producer, daemon=True)
        thread.start()
        time.sleep(0.05)
        channel.fail(QueryCancelledError("cancelled"))
        assert done.wait(timeout=5.0)
        thread.join(timeout=5.0)

    @pytest.mark.parametrize("round_", range(3))
    def test_fail_races_many_concurrent_producers(self, round_):
        # Hammer: several producers racing a fail() at varying points of
        # the stream.  Every producer must exit (puts drop silently, no
        # exception escapes a morsel), the buffer must be empty, and the
        # consumer must see exactly the failure.
        channel = ResultChannel(2, blocking=True)
        escaped = []

        def producer():
            try:
                for i in range(50):
                    channel.put_rows(batch(float(i)), 1)
            except BaseException as exc:  # noqa: BLE001 - recorded
                escaped.append(exc)

        threads = [
            threading.Thread(target=producer, daemon=True) for _ in range(4)
        ]
        for thread in threads:
            thread.start()
        time.sleep(0.005 * (round_ + 1))
        channel.fail(QueryCancelledError("cancelled"))
        for thread in threads:
            thread.join(timeout=5.0)
        assert not any(thread.is_alive() for thread in threads)
        assert escaped == []
        assert channel.failed
        assert channel.depth == 0
        with pytest.raises(QueryCancelledError):
            channel.get()

    def test_get_timeout_raises(self):
        channel = ResultChannel(blocking=True)
        with pytest.raises(ReproError, match="within"):
            channel.get(timeout=0.05)


class TestAssembly:
    def test_empty_stream_is_no_result(self):
        assert assemble_chunks([]) is NO_RESULT

    def test_single_final_chunk_is_the_payload(self):
        value = {"sum": 42.0}
        assert assemble_chunks([ResultChunk(FINAL, value, 0)]) is value

    def test_row_chunks_concatenate(self):
        chunks = [
            ResultChunk(ROWS, batch(1.0, 2.0), 2),
            ResultChunk(ROWS, batch(3.0), 1),
        ]
        out = assemble_chunks(chunks)
        np.testing.assert_array_equal(out["x"], [1.0, 2.0, 3.0])

    def test_mixed_kinds_rejected(self):
        chunks = [
            ResultChunk(ROWS, batch(1.0), 1),
            ResultChunk(FINAL, 42.0, 0),
        ]
        with pytest.raises(ReproError, match="mixed"):
            assemble_chunks(chunks)


class TestWireCodec:
    def test_round_trip_preserves_boundaries_and_bits(self):
        chunks = [
            ResultChunk(ROWS, batch(1.0, 2.0), 2),
            ResultChunk(ROWS, batch(3.0), 1),
            ResultChunk(FINAL, {"sum": 6.0}, 0),
        ]
        decoded = chunks_from_arrays(chunks_to_arrays(chunks))
        assert [c.kind for c in decoded] == [ROWS, ROWS, FINAL]
        assert [c.rows for c in decoded] == [2, 1, 0]
        np.testing.assert_array_equal(decoded[0].payload["x"], [1.0, 2.0])
        assert decoded[2].payload == {"sum": 6.0}

    def test_channel_pickles_without_condition(self):
        # Process-backend environments ship whole; the condition
        # variable is dropped and recreated on the other side.
        channel = ResultChannel(4)
        channel.put_rows(batch(1.0), 1)
        clone = pickle.loads(pickle.dumps(channel))
        assert clone.capacity == 4
        assert clone.depth == 1
        clone.put_rows(batch(2.0), 1)  # new condition works
        assert clone.depth == 2
