"""Tests for the runtime clocks."""

import pytest

from repro.errors import ReproError
from repro.runtime import Clock, VirtualClock, WallClock


class TestVirtualClock:
    def test_starts_at_zero(self):
        assert VirtualClock().now() == 0.0

    def test_custom_start(self):
        assert VirtualClock(1.5).now() == 1.5

    def test_negative_start_rejected(self):
        with pytest.raises(ReproError):
            VirtualClock(-0.1)

    def test_advance(self):
        clock = VirtualClock()
        clock.advance_to(0.25)
        assert clock.now() == 0.25

    def test_advance_to_same_time_is_fine(self):
        clock = VirtualClock(1.0)
        clock.advance_to(1.0)
        assert clock.now() == 1.0

    def test_backwards_rejected(self):
        clock = VirtualClock(1.0)
        with pytest.raises(ReproError):
            clock.advance_to(0.5)

    def test_not_realtime(self):
        assert VirtualClock.realtime is False

    def test_satisfies_protocol(self):
        assert isinstance(VirtualClock(), Clock)


class TestWallClock:
    def test_zero_before_start(self):
        clock = WallClock()
        assert not clock.started
        assert clock.now() == 0.0

    def test_advances_after_start(self):
        clock = WallClock()
        clock.start()
        assert clock.started
        first = clock.now()
        assert first >= 0.0
        assert clock.now() >= first

    def test_start_idempotent(self):
        clock = WallClock()
        clock.start()
        t = clock.now()
        clock.start()  # must not re-pin the epoch
        assert clock.now() >= t

    def test_realtime(self):
        assert WallClock.realtime is True

    def test_satisfies_protocol(self):
        assert isinstance(WallClock(), Clock)
