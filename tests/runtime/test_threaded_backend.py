"""Protocol-invariant tests for the real-thread backend.

The discrete-event suite proves the §2.3 protocol correct under
*simulated* interleavings; these tests run the identical scheduler code
on real OS threads, where the atomics are genuinely contended, and
assert the same invariants:

* every submitted query completes exactly once;
* no tuple is lost or executed twice (exact carve accounting);
* every task set is finalized exactly once (double finalization raises
  inside a worker thread and would surface through ``drain()``);
* the slot array and the wait queue are empty after a drain.
"""

import threading

import pytest

from repro.core import SchedulerConfig, make_scheduler
from repro.core.task import TaskSet
from repro.errors import QueryFailedError, ReproError
from repro.runtime import ThreadedBackend

from tests.conftest import make_query


class ThreadSafeCountingEnv:
    """Execution environment tallying tuples under a lock.

    ``run_morsel`` performs no real work — it returns a tiny duration —
    so worker threads spin through decisions as fast as the scheduler
    lets them, maximising contention on the protocol's atomics.
    """

    def __init__(self, rate: float = 5.0e7) -> None:
        self.rate = rate
        self.executed_tuples = 0
        self._lock = threading.Lock()

    def run_morsel(self, task_set: TaskSet, tuples: int) -> float:
        with self._lock:
            self.executed_tuples += tuples
        return tuples / self.rate


class FailingEnv(ThreadSafeCountingEnv):
    """Raises on the first morsel — exercises worker-error reporting."""

    def run_morsel(self, task_set: TaskSet, tuples: int) -> float:
        raise RuntimeError("injected environment failure")


def make_backend(n_workers=4, scheduler="stride", env=None, **config_kwargs):
    config = SchedulerConfig(n_workers=n_workers, **config_kwargs)
    return ThreadedBackend(
        make_scheduler(scheduler, config), env or ThreadSafeCountingEnv()
    )


def queries(n, pipelines=2, finalize=1e-5):
    return [
        make_query(
            f"q{i}",
            work=0.002 + 0.001 * (i % 3),
            pipelines=1 + (i + pipelines) % 3,
            finalize=finalize,
        )
        for i in range(n)
    ]


def total_tuples(specs):
    return sum(p.tuples for q in specs for p in q.pipelines)


class TestProtocolInvariants:
    @pytest.mark.parametrize("round_", range(5))
    def test_no_lost_or_duplicated_work(self, round_):
        """Repeated runs with >=4 real threads: exact tuple accounting."""
        env = ThreadSafeCountingEnv()
        backend = make_backend(n_workers=4, env=env)
        specs = queries(8 + round_)
        try:
            backend.start()
            jobs = [backend.submit(q) for q in specs]
            records = backend.drain()
        finally:
            backend.shutdown()
        assert len(records) == len(specs)
        assert sorted(r.query_id for r in records) == list(range(len(specs)))
        # Exactly-once execution: the counting env saw every tuple of
        # every pipeline exactly once.
        assert env.executed_tuples == total_tuples(specs)
        scheduler = backend.scheduler
        assert scheduler.completed_count == len(specs)
        assert scheduler.slots.occupied == 0
        assert not scheduler.wait_queue
        for job in jobs:
            assert backend.poll(job) is not None

    def test_eight_workers_many_queries(self):
        env = ThreadSafeCountingEnv()
        backend = make_backend(n_workers=8, env=env, slot_capacity=4)
        specs = queries(24, finalize=2e-5)
        try:
            backend.start()
            for q in specs:
                backend.submit(q)
            records = backend.drain()
        finally:
            backend.shutdown()
        assert len(records) == len(specs)
        assert env.executed_tuples == total_tuples(specs)
        assert backend.scheduler.slots.occupied == 0

    def test_tuning_scheduler_under_threads(self):
        """The self-tuning controller runs on a real worker thread."""
        env = ThreadSafeCountingEnv()
        backend = make_backend(
            n_workers=4,
            scheduler="tuning",
            env=env,
            tracking_duration=0.005,
            refresh_duration=0.02,
        )
        specs = queries(12)
        try:
            backend.start()
            for q in specs:
                backend.submit(q)
            records = backend.drain()
        finally:
            backend.shutdown()
        assert len(records) == len(specs)
        assert env.executed_tuples == total_tuples(specs)

    def test_multiple_drains_interleaved_with_submissions(self):
        env = ThreadSafeCountingEnv()
        backend = make_backend(n_workers=4, env=env)
        first_wave = queries(6)
        second_wave = queries(6, pipelines=1)
        try:
            backend.start()
            for q in first_wave:
                backend.submit(q)
            first_records = backend.drain()
            for q in second_wave:
                backend.submit(q)
            second_records = backend.drain()
        finally:
            backend.shutdown()
        assert len(first_records) == len(first_wave)
        assert len(second_records) == len(second_wave)
        assert env.executed_tuples == total_tuples(first_wave) + total_tuples(
            second_wave
        )

    def test_submit_while_running(self):
        """True online admission: later queries arrive mid-execution."""
        env = ThreadSafeCountingEnv(rate=2.0e6)  # slow work down a bit
        backend = make_backend(n_workers=4, env=env)
        try:
            backend.start()
            first = backend.submit(make_query("first", work=0.01))
            backend.wait(first, timeout=10.0)
            late = backend.submit(make_query("late", work=0.005))
            record = backend.wait(late, timeout=10.0)
            assert record.name == "late"
            backend.drain()
        finally:
            backend.shutdown()
        assert backend.poll(first).name == "first"


class TestErrorsAndGuards:
    def test_future_arrival_rejected(self):
        backend = make_backend()
        try:
            with pytest.raises(ReproError):
                backend.submit(make_query("q"), at=1.0)
        finally:
            backend.shutdown()

    def test_used_scheduler_rejected(self):
        scheduler = make_scheduler("stride", SchedulerConfig(n_workers=2))
        scheduler.admit_query(make_query("q"), 0.0)
        with pytest.raises(ReproError):
            ThreadedBackend(scheduler, ThreadSafeCountingEnv())

    def test_environment_failure_is_isolated_to_the_query(self):
        # A raising morsel no longer kills the worker (let alone the
        # backend): the failure is captured, the query fails through the
        # finalization protocol, and the backend stays serviceable.
        backend = make_backend(env=FailingEnv())
        try:
            backend.start()
            job = backend.submit(make_query("q"))
            records = backend.drain()
            assert len(records) == 1
            assert records[0].failed
            assert "injected environment failure" in records[0].error
            assert backend.failed(job)
            with pytest.raises(QueryFailedError):
                backend.result(job)
        finally:
            backend.shutdown()

    def test_wait_unknown_job_rejected(self):
        backend = make_backend()
        try:
            with pytest.raises(ReproError):
                backend.wait(0)
        finally:
            backend.shutdown()

    def test_wait_timeout(self):
        backend = make_backend()
        try:
            backend.start()
            # Nothing submitted for this id yet -> unknown.
            with pytest.raises(ReproError):
                backend.wait(5, timeout=0.01)
        finally:
            backend.shutdown()

    def test_shutdown_joins_worker_threads(self):
        backend = make_backend()
        backend.start()
        backend.submit(make_query("q", work=0.002))
        backend.drain()
        backend.shutdown()
        assert not any(
            t.name.startswith("repro-worker-") and t.is_alive()
            for t in threading.enumerate()
        )
