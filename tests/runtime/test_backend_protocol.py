"""The same protocol fuzz, parametrized over every execution backend.

Random workloads (seeded — fully reproducible) run through the
virtual-time backend, the real-thread backend, and the process backend;
all must satisfy the backend-independent protocol invariants: every
query completes exactly once with a positive latency, job ids map to the
right queries, and the backend's bookkeeping agrees with itself.
"""

import random
import threading
from functools import partial

import pytest

from repro.core import SchedulerConfig, make_scheduler
from repro.core.task import TaskSet
from repro.runtime import ProcessBackend, SimulatedBackend, ThreadedBackend

from tests.conftest import make_query


class _CountingEnv:
    """Picklable counting environment for the process backend.

    One epoch runs single-threaded inside a worker process, so no lock
    is needed; the instance crosses the pipe whole after the drain
    (``return_environment=True``).
    """

    def __init__(self, rate: float = 2.0e7) -> None:
        self.rate = rate
        self.executed_tuples = 0

    def run_morsel(self, task_set: TaskSet, tuples: int) -> float:
        self.executed_tuples += tuples
        return tuples / self.rate


class _Env(_CountingEnv):
    """Thread-safe variant for the in-process backends."""

    def __init__(self, rate: float = 2.0e7) -> None:
        super().__init__(rate)
        self._lock = threading.Lock()

    def run_morsel(self, task_set: TaskSet, tuples: int) -> float:
        with self._lock:
            return super().run_morsel(task_set, tuples)


def random_workload(seed):
    rng = random.Random(seed)
    n = rng.randint(3, 10)
    return [
        make_query(
            f"q{i}",
            work=rng.choice([0.002, 0.004, 0.008]),
            pipelines=rng.randint(1, 3),
            finalize=rng.choice([0.0, 1e-5]),
        )
        for i in range(n)
    ]


def run_simulated(specs, n_workers):
    env = _Env()
    backend = SimulatedBackend(
        lambda: make_scheduler("stride", SchedulerConfig(n_workers=n_workers)),
        noise_sigma=0.0,
        environment_factory=lambda: env,
    )
    jobs = [backend.submit(q) for q in specs]
    backend.drain()
    backend.shutdown()
    return backend, jobs, env


def run_threaded(specs, n_workers):
    env = _Env()
    backend = ThreadedBackend(
        make_scheduler("stride", SchedulerConfig(n_workers=n_workers)), env
    )
    try:
        backend.start()
        jobs = [backend.submit(q) for q in specs]
        backend.drain()
    finally:
        backend.shutdown()
    return backend, jobs, env


def run_process(specs, n_workers):
    backend = ProcessBackend(
        partial(make_scheduler, "stride", SchedulerConfig(n_workers=n_workers)),
        noise_sigma=0.0,
        environment_factory=_CountingEnv,
        return_environment=True,
    )
    try:
        backend.start()
        jobs = [backend.submit(q) for q in specs]
        backend.drain()
    finally:
        backend.shutdown()
    return backend, jobs, backend.last_environment


@pytest.mark.parametrize("runner", [run_simulated, run_threaded, run_process])
@pytest.mark.parametrize("seed", [11, 23, 47])
def test_invariants_hold_on_both_backends(runner, seed):
    specs = random_workload(seed)
    n_workers = random.Random(seed * 31).randint(2, 6)
    backend, jobs, env = runner(specs, n_workers)

    total = sum(p.tuples for q in specs for p in q.pipelines)
    assert env.executed_tuples == total
    assert backend.completed_count == len(specs)
    assert backend.pending_count == 0
    for job, spec in zip(jobs, specs):
        record = backend.poll(job)
        assert record is not None
        assert record.name == spec.name
        assert record.latency > 0.0
