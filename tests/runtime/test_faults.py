"""Chaos suite: deterministic fault injection across all backends.

The acceptance tests of the fault-tolerance work:

* an injected operator fault fails *only* the targeted query — every
  concurrent query completes, and on the simulated backend the
  survivors' results are bit-identical to a fault-free run;
* the server keeps serving subsequent submissions without a restart on
  all three backends;
* deadlines expire through the abort protocol as
  :class:`~repro.errors.QueryTimeoutError` (running and queued alike);
* transient failures retry under the server's retry budget, permanent
  ones do not;
* worker death retires and respawns the thread (threaded) or rebuilds
  the process pool and re-runs the lost epoch (process);
* the same :class:`~repro.runtime.faults.FaultPlan` seed produces
  byte-identical failure records and survivor latencies across
  ``PYTHONHASHSEED`` 0, 1 and 2.
"""

import os
import subprocess
import sys

import numpy as np
import pytest

from repro.core import SchedulerConfig, make_scheduler
from repro.engine import generate_tpch
from repro.engine.execution import EngineEnvironment, engine_query_spec
from repro.engine.queries import build_engine_query
from repro.errors import (
    AdmissionError,
    InjectedFault,
    QueryFailedError,
    QueryTimeoutError,
    ReproError,
    UnknownTicketError,
)
from repro.runtime import ThreadedBackend
from repro.runtime.faults import (
    CONSUMER_GONE,
    OPERATOR_RAISE,
    WORKER_DEATH,
    WORKER_STALL,
    FaultPlan,
    FaultSpec,
)
from repro.server import AnalyticsServer


@pytest.fixture(scope="module")
def db():
    return generate_tpch(scale_factor=0.003, seed=5)


def make_server(db, **kwargs):
    defaults = dict(scheduler="stride", n_workers=2, seed=5, database=db)
    defaults.update(kwargs)
    return AnalyticsServer(**defaults)


def operator_fault(query="Q18", morsel=2):
    return FaultPlan(
        faults=(FaultSpec(kind=OPERATOR_RAISE, query=query, morsel=morsel),)
    )


class TestPlanConstruction:
    def test_random_plans_are_reproducible(self):
        kinds = (OPERATOR_RAISE, WORKER_STALL, WORKER_DEATH)
        a = FaultPlan.random(seed=7, n_queries=5, kinds=kinds, n_faults=4)
        b = FaultPlan.random(seed=7, n_queries=5, kinds=kinds, n_faults=4)
        assert a == b
        c = FaultPlan.random(seed=8, n_queries=5, kinds=kinds, n_faults=4)
        assert a != c

    def test_invalid_specs_rejected(self):
        with pytest.raises(ReproError):
            FaultSpec(kind="meteor_strike")
        with pytest.raises(ReproError):
            FaultSpec(kind=OPERATOR_RAISE, morsel=-1)
        with pytest.raises(ReproError):
            FaultSpec(kind=WORKER_STALL, stall_seconds=-0.1)
        with pytest.raises(ReproError):
            FaultSpec(kind=CONSUMER_GONE, after_chunks=0)


class TestSimulatedIsolation:
    def test_operator_fault_fails_only_the_target(self, db):
        server = make_server(db)
        server.install_faults(operator_fault())
        victim = server.submit("Q18")
        keeper = server.submit("Q6")
        records = server.run()
        by_name = {r.name: r for r in records}
        assert by_name["Q18"].failed
        assert "InjectedFault" in by_name["Q18"].error
        assert not by_name["Q6"].failed
        assert server.failed(victim)
        with pytest.raises(QueryFailedError) as excinfo:
            server.result(victim)
        assert isinstance(excinfo.value.__cause__, InjectedFault)
        assert server.result(keeper) == pytest.approx(
            build_engine_query("Q6", db).execute()
        )
        # The server keeps serving without a restart.
        again = server.submit("Q6")
        server.run()
        assert server.result(again) == pytest.approx(
            build_engine_query("Q6", db).execute()
        )
        server.shutdown()

    def test_survivors_identical_to_fault_free_run(self, db):
        baseline = make_server(db)
        b_qs = baseline.submit("QS")
        b_q6 = baseline.submit("Q6")
        baseline.submit("Q18")
        baseline.run()

        faulted = make_server(db)
        faulted.install_faults(operator_fault("Q18", morsel=1))
        f_qs = faulted.submit("QS")
        f_q6 = faulted.submit("Q6")
        f_victim = faulted.submit("Q18")
        faulted.run()

        assert faulted.failed(f_victim)
        reference = baseline.result(b_qs)
        survivor = faulted.result(f_qs)
        for name in reference:
            np.testing.assert_array_equal(survivor[name], reference[name])
        assert faulted.result(f_q6) == baseline.result(b_q6)
        baseline.shutdown()
        faulted.shutdown()

    def test_worker_stall_inflates_latency_deterministically(self, db):
        quiet = make_server(db)
        q_ticket = quiet.submit("Q6")
        quiet.run()

        stalled = make_server(db)
        stalled.install_faults(
            FaultPlan(
                faults=(
                    FaultSpec(
                        kind=WORKER_STALL,
                        query="Q6",
                        morsel=0,
                        stall_seconds=0.5,
                    ),
                )
            )
        )
        s_ticket = stalled.submit("Q6")
        stalled.run()
        # Virtual time: the stall lands as +0.5s of morsel duration —
        # orders of magnitude above the query's fault-free latency.
        assert not stalled.failed(s_ticket)
        assert stalled.latency(s_ticket) >= 0.5
        assert quiet.latency(q_ticket) < 0.5
        assert stalled.result(s_ticket) == pytest.approx(
            quiet.result(q_ticket)
        )
        quiet.shutdown()
        stalled.shutdown()

    def test_consumer_gone_fails_only_that_stream(self, db):
        server = make_server(db)
        server.install_faults(
            FaultPlan(
                faults=(
                    FaultSpec(kind=CONSUMER_GONE, query="QS", after_chunks=1),
                )
            )
        )
        victim = server.submit("QS")
        keeper = server.submit("Q6")
        server.run()
        assert victim.channel.failed
        with pytest.raises(ReproError):
            victim.fetch()
        assert server.result(keeper) == pytest.approx(
            build_engine_query("Q6", db).execute()
        )
        server.shutdown()

    def test_fault_fires_at_most_once(self, db):
        server = make_server(db)
        injector = server.install_faults(operator_fault("Q6", morsel=0))
        first = server.submit("Q6")
        server.run()
        assert server.failed(first)
        assert len(injector.fired) == 1
        # Same query again: the fault is spent, the query succeeds.
        second = server.submit("Q6")
        server.run()
        assert not server.failed(second)
        assert len(injector.fired) == 1
        server.shutdown()


class TestDeadlines:
    def test_running_query_misses_deadline(self, db):
        server = make_server(db)
        ticket = server.submit("Q18", deadline=1e-6)
        keeper = server.submit("Q6")
        server.run()
        assert server.failed(ticket)
        assert "QueryTimeoutError" in server.record(ticket).error
        assert isinstance(server.failure(ticket), QueryTimeoutError)
        assert not server.failed(keeper)
        server.shutdown()

    def test_queued_query_expires_in_the_wait_queue(self):
        # More queries than admission slots: the deadline query waits in
        # the scheduler's queue and must expire there — at the first
        # finalization that pops the queue — not after it finally runs.
        from dataclasses import replace

        from repro.runtime import SimulatedBackend
        from tests.conftest import make_query

        backend = SimulatedBackend(
            lambda: make_scheduler(
                "stride", SchedulerConfig(n_workers=1, slot_capacity=2)
            ),
            noise_sigma=0.0,
        )
        blockers = [
            backend.submit(make_query(f"blocker{i}", work=0.05))
            for i in range(2)
        ]
        doomed = backend.submit(
            replace(make_query("doomed", work=0.01), deadline=1e-6)
        )
        backend.drain()
        assert backend.failed(doomed)
        assert isinstance(backend.failure(doomed), QueryTimeoutError)
        assert backend.records[int(doomed)].cpu_seconds == 0.0
        for blocker in blockers:
            assert not backend.failed(blocker)
        backend.shutdown()

    def test_generous_deadline_is_harmless(self, db):
        server = make_server(db)
        ticket = server.submit("Q6", deadline=3600.0)
        server.run()
        assert not server.failed(ticket)
        assert server.result(ticket) == pytest.approx(
            build_engine_query("Q6", db).execute()
        )
        server.shutdown()

    def test_deadline_misses_are_not_retried(self, db):
        server = make_server(db)
        ticket = server.submit("Q18", deadline=1e-6, retries=3)
        server.run()
        assert server.failed(ticket)
        assert server.retries_used == 0
        server.shutdown()


class TestRetries:
    def test_transient_failure_retries_to_success(self, db):
        server = make_server(db)
        server.install_faults(operator_fault("Q6", morsel=0))
        ticket = server.submit("Q6", retries=2)
        records = server.run()
        # Both attempts surface through drain: the failed one and the
        # clean retry.
        assert [r.failed for r in records] == [True, False]
        assert server.retries_used == 1
        assert not server.failed(ticket)
        assert server.record(ticket).failed is False
        assert server.result(ticket) == pytest.approx(
            build_engine_query("Q6", db).execute()
        )
        server.shutdown()

    def test_retry_budget_bounds_resubmissions(self, db):
        server = make_server(db, retry_budget=1)
        server.install_faults(
            FaultPlan(
                faults=tuple(
                    FaultSpec(kind=OPERATOR_RAISE, query="Q6", morsel=0)
                    for _ in range(4)
                )
            )
        )
        ticket = server.submit("Q6", retries=5)
        server.run()
        # One retry allowed; it also failed (second planned fault), and
        # the budget stops further attempts.
        assert server.retries_used == 1
        assert server.failed(ticket)
        server.shutdown()

    def test_zero_retries_fail_immediately(self, db):
        server = make_server(db)
        server.install_faults(operator_fault("Q6", morsel=0))
        ticket = server.submit("Q6")
        server.run()
        assert server.failed(ticket)
        assert server.retries_used == 0
        server.shutdown()


class TestShedding:
    def test_lowest_priority_pending_query_is_shed(self, db):
        server = make_server(db, max_pending=2, admission="shed")
        low = server.submit("Q18", priority=1)
        lower = server.submit("Q18", priority=0)
        vip = server.submit("Q6", priority=5)
        assert server.failed(lower)
        assert isinstance(server.failure(lower), AdmissionError)
        server.run()
        assert server.result(vip) == pytest.approx(
            build_engine_query("Q6", db).execute()
        )
        assert not server.failed(low)
        server.shutdown()

    def test_no_lower_priority_victim_rejects_newcomer(self, db):
        server = make_server(db, max_pending=1, admission="shed")
        server.submit("Q6", priority=3)
        with pytest.raises(AdmissionError):
            server.submit("Q6", priority=3)
        server.run()
        server.shutdown()

    def test_shed_failures_are_not_retried(self, db):
        server = make_server(db, max_pending=1, admission="shed")
        victim = server.submit("Q18", priority=0, retries=3)
        server.submit("Q6", priority=1)
        server.run()
        assert server.failed(victim)
        assert server.retries_used == 0
        server.shutdown()

    def test_shed_retry_attempt_resolves_original_handle(self, db):
        """PR 7 regression: a query that was already *retried* and then
        shed must resolve its original handle to the final admission
        failure — not leave it dangling on a stale alias."""
        import threading
        import time

        server = make_server(
            db,
            backend="threaded",
            n_workers=1,
            max_pending=1,
            admission="shed",
        )
        server.install_faults(
            FaultPlan(
                faults=(
                    # Attempt 0 dies transiently -> eligible for retry.
                    FaultSpec(kind=OPERATOR_RAISE, query_index=0, morsel=0),
                    # The retry attempt stalls, pinning the only worker
                    # and keeping the server full while we overload it.
                    FaultSpec(
                        kind=WORKER_STALL,
                        query_index=1,
                        morsel=0,
                        stall_seconds=3.0,
                    ),
                )
            )
        )
        server.start()
        try:
            original = server.submit("Q6", retries=3, backoff=0.01)
            outcome = {}

            def waiter():
                outcome["record"] = server.wait(original, timeout=30.0)

            thread = threading.Thread(target=waiter)
            thread.start()
            # Let the transparent retry happen: attempt 0 fails, the
            # waiter resubmits, and the replacement occupies the server.
            deadline = time.monotonic() + 10.0
            while time.monotonic() < deadline and not (
                server.retries_used == 1 and server.pending_count == 1
            ):
                time.sleep(0.005)
            assert server.retries_used == 1
            # Overload: the VIP sheds the *retry attempt* of `original`.
            vip = server.submit("Q6", priority=5)
            thread.join(timeout=30.0)
            assert not thread.is_alive()
            # The original handle follows the alias chain to the shed
            # attempt's failure instead of dangling.
            record = outcome["record"]
            assert record.failed
            assert server.failed(original)
            assert isinstance(server.failure(original), AdmissionError)
            assert server.record(original).query_id == record.query_id
            assert server.record(original).query_id != int(original)
            # Shedding is permanent: no further retries were attempted.
            assert server.retries_used == 1
            server.wait(vip, timeout=30.0)
            assert not server.failed(vip)
        finally:
            server.shutdown()


class TestThreadedFaults:
    def test_operator_fault_isolated_under_real_threads(self, db):
        server = make_server(db, backend="threaded")
        server.install_faults(operator_fault("Q18", morsel=2))
        server.start()
        try:
            victim = server.submit("Q18")
            keeper = server.submit("Q6")
            server.drain()
            assert server.failed(victim)
            with pytest.raises(QueryFailedError):
                server.result(victim)
            assert server.result(keeper) == pytest.approx(
                build_engine_query("Q6", db).execute()
            )
            after = server.submit("Q6")
            server.wait(after, timeout=30.0)
            assert server.result(after) == pytest.approx(
                build_engine_query("Q6", db).execute()
            )
        finally:
            server.shutdown()

    def test_worker_death_retires_and_respawns_the_thread(self, db):
        server = make_server(db, backend="threaded")
        server.install_faults(
            FaultPlan(
                faults=(FaultSpec(kind=WORKER_DEATH, query="QS", morsel=3),)
            )
        )
        server.start()
        try:
            dead = server.submit("QS")
            keeper = server.submit("Q6")
            server.drain()
            assert server.failed(dead)
            assert server.backend.dead_workers == 1
            assert not server.failed(keeper)
            # The replacement thread serves new work.
            after = server.submit("Q6")
            record = server.wait(after, timeout=30.0)
            assert not record.failed
            assert server.result(after) == pytest.approx(
                build_engine_query("Q6", db).execute()
            )
        finally:
            server.shutdown()

    def test_retry_through_wait(self, db):
        server = make_server(db, backend="threaded")
        server.install_faults(operator_fault("Q6", morsel=0))
        server.start()
        try:
            ticket = server.submit("Q6", retries=2, backoff=0.001)
            record = server.wait(ticket, timeout=30.0)
            assert not record.failed
            assert server.retries_used == 1
            server.drain()
            assert server.result(ticket) == pytest.approx(
                build_engine_query("Q6", db).execute()
            )
        finally:
            server.shutdown()

    def test_dead_worker_cannot_strand_parked_producers(self, db):
        # Satellite regression test: a worker dying while a sibling is
        # parked on a full result channel must not hang shutdown — the
        # shutdown path fails every open channel before joining.
        backend = ThreadedBackend(
            make_scheduler("stride", SchedulerConfig(n_workers=2, t_max=0.002)),
            EngineEnvironment(db),
            channel_capacity=1,
        )
        backend.start()
        try:
            backend.submit(engine_query_spec("QS", db))  # never consumed
        finally:
            backend.shutdown()  # must not deadlock

    def test_wait_unknown_ticket(self, db):
        server = make_server(db, backend="threaded")
        server.start()
        try:
            with pytest.raises(UnknownTicketError):
                server.backend.wait(99)
        finally:
            server.shutdown()


class TestProcessFaults:
    def test_operator_fault_isolated_across_the_pipe(self, db):
        server = make_server(db, backend="process")
        server.install_faults(operator_fault("Q18", morsel=2))
        try:
            victim = server.submit("Q18")
            keeper = server.submit("Q6")
            server.run()
            assert server.failed(victim)
            with pytest.raises(QueryFailedError) as excinfo:
                server.result(victim)
            # Class identity survives the pipe via error_from_text.
            assert isinstance(excinfo.value.__cause__, InjectedFault)
            assert server.result(keeper) == pytest.approx(
                build_engine_query("Q6", db).execute()
            )
        finally:
            server.shutdown()

    def test_worker_death_rebuilds_the_pool_and_reruns_the_epoch(self, db):
        server = make_server(db, backend="process")
        server.install_faults(
            FaultPlan(faults=(FaultSpec(kind=WORKER_DEATH),))
        )
        try:
            first = server.submit("Q6")
            records = server.run()
            # The lost epoch re-ran after the rebuild: the query
            # completed normally despite the dead worker process.
            assert server.backend.pool_rebuilds == 1
            assert [r.failed for r in records] == [False]
            assert server.result(first) == pytest.approx(
                build_engine_query("Q6", db).execute()
            )
            # The rebuilt pool serves subsequent epochs.
            after = server.submit("Q6")
            server.run()
            assert server.result(after) == pytest.approx(
                build_engine_query("Q6", db).execute()
            )
        finally:
            server.shutdown()


_DETERMINISM_SCRIPT = """
from repro.core import SchedulerConfig, make_scheduler
from repro.core.specs import PipelineSpec, QuerySpec
from repro.runtime import SimulatedBackend
from repro.runtime.faults import (
    FaultPlan,
    OPERATOR_RAISE,
    WORKER_DEATH,
    WORKER_STALL,
)


def query(name, work):
    return QuerySpec(
        name=name,
        scale_factor=1.0,
        pipelines=(
            PipelineSpec(
                name=f"{name}-p0",
                tuples=max(1, int(work * 1e6)),
                tuples_per_second=1e6,
            ),
        ),
    )


backend = SimulatedBackend(
    lambda: make_scheduler("stride", SchedulerConfig(n_workers=2)),
    noise_sigma=0.05,
)
plan = FaultPlan.random(
    seed=13,
    n_queries=6,
    kinds=(OPERATOR_RAISE, WORKER_STALL, WORKER_DEATH),
    n_faults=3,
)
injector = backend.install_faults(plan)
jobs = [
    backend.submit(query(f"q{i}", 0.002 * (i + 1)), at=0.001 * i)
    for i in range(6)
]
records = backend.drain()
for record in records:
    print(
        record.name,
        record.failed,
        record.error,
        repr(record.latency),
        repr(record.cpu_seconds),
    )
for entry in injector.fired:
    print("fired", entry)
backend.shutdown()
"""


class TestDeterminism:
    def test_identical_failures_across_hash_seeds(self):
        # The same FaultPlan seed must produce byte-identical failure
        # records, survivor latencies and firing logs regardless of
        # dict/set iteration order.
        outputs = []
        for hashseed in ("0", "1", "2"):
            env = dict(os.environ, PYTHONHASHSEED=hashseed)
            env["PYTHONPATH"] = "src"
            proc = subprocess.run(
                [sys.executable, "-c", _DETERMINISM_SCRIPT],
                capture_output=True,
                text=True,
                env=env,
                cwd=os.path.dirname(
                    os.path.dirname(os.path.dirname(__file__))
                ),
                timeout=300,
            )
            assert proc.returncode == 0, proc.stderr
            outputs.append(proc.stdout)
        assert outputs[0] == outputs[1] == outputs[2]
        assert "True" in outputs[0]  # at least one fault actually fired
