"""Tests for the virtual-time backend adapter.

The load-bearing claim: :class:`SimulatedBackend` changes *nothing*
about how a simulation runs — results are bit-for-bit identical to
constructing the :class:`Simulator` directly.
"""

import pytest

from repro.core import SchedulerConfig, make_scheduler
from repro.errors import ReproError
from repro.runtime import SimulatedBackend
from repro.simcore import RngFactory, Simulator
from repro.workloads import generate_workload, tpch_mix

from tests.conftest import make_query


def reference_workload(duration=1.0):
    mix = tpch_mix(names=("Q1", "Q6"))
    rng = RngFactory(7).stream("workload")
    return generate_workload(mix, rate=10.0, duration=duration, rng=rng)


class TestBitIdentical:
    def test_execute_matches_direct_simulator(self):
        workload = reference_workload()
        config = SchedulerConfig(n_workers=4)

        direct = Simulator(
            make_scheduler("stride", config), list(workload), seed=7
        ).run()

        backend = SimulatedBackend(
            lambda: make_scheduler("stride", config), seed=7
        )
        via_backend = backend.execute(workload)

        assert via_backend.end_time == direct.end_time
        assert via_backend.tasks_executed == direct.tasks_executed
        assert via_backend.events_processed == direct.events_processed
        direct_latencies = [r.latency for r in direct.records.records]
        backend_latencies = [r.latency for r in via_backend.records.records]
        assert backend_latencies == direct_latencies  # exact, not approx

    def test_drain_matches_direct_simulator(self):
        workload = reference_workload()
        config = SchedulerConfig(n_workers=4)
        direct = Simulator(
            make_scheduler("stride", config), list(workload), seed=7
        ).run()

        backend = SimulatedBackend(
            lambda: make_scheduler("stride", config), seed=7
        )
        for arrival, spec in workload:
            backend.submit(spec, at=arrival)
        records = backend.drain()
        assert [r.latency for r in records] == [
            r.latency for r in direct.records.records
        ]


class TestEpochSemantics:
    def make_backend(self):
        return SimulatedBackend(
            lambda: make_scheduler("stride", SchedulerConfig(n_workers=2)),
            seed=0,
            noise_sigma=0.0,
        )

    def test_out_of_order_arrivals_map_to_job_ids(self):
        backend = self.make_backend()
        late = backend.submit(make_query("late", work=0.004), at=0.05)
        early = backend.submit(make_query("early", work=0.004), at=0.0)
        backend.drain()
        assert backend.records[late].name == "late"
        assert backend.records[early].name == "early"

    def test_negative_arrival_rejected(self):
        backend = self.make_backend()
        with pytest.raises(ReproError):
            backend.submit(make_query("q"), at=-0.5)

    def test_empty_drain_is_noop(self):
        assert self.make_backend().drain() == []

    def test_epochs_accumulate(self):
        backend = self.make_backend()
        first = backend.submit(make_query("a", work=0.004))
        backend.drain()
        second = backend.submit(make_query("b", work=0.004))
        backend.drain()
        assert backend.records[first].name == "a"
        assert backend.records[second].name == "b"
        assert backend.completed_count == 2

    def test_clock_tracks_last_epoch_end(self):
        backend = self.make_backend()
        backend.submit(make_query("q", work=0.004))
        backend.drain()
        assert backend.clock.now() == backend.last_result.end_time
