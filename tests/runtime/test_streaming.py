"""End-to-end streaming tests: channels, handles, cancellation.

These run the real engine (tiny TPC-H database) through all three
execution backends and assert the streaming refactor's contract:

* materialized results are unchanged — ``results[ticket]`` and
  ``result()`` hold exactly what the pre-streaming sink produced;
* live streams on the threaded backend are *bounded*: the producer
  parks when the channel is full, so peak buffered chunks never exceed
  the configured capacity regardless of result size;
* cancellation mid-flight frees the query's admission slot and the
  backend keeps running subsequent queries normally;
* cancellation bookkeeping is deterministic across hash seeds.
"""

import os
import subprocess
import sys

import numpy as np
import pytest

from repro.core import SchedulerConfig, make_scheduler
from repro.engine import generate_tpch
from repro.engine.execution import EngineEnvironment, engine_query_spec
from repro.engine.queries import build_engine_query
from repro.errors import QueryCancelledError, ReproError
from repro.runtime import ThreadedBackend
from repro.server import AnalyticsServer


@pytest.fixture(scope="module")
def db():
    return generate_tpch(scale_factor=0.003, seed=5)


def make_server(db, **kwargs):
    defaults = dict(scheduler="stride", n_workers=2, seed=5, database=db)
    defaults.update(kwargs)
    return AnalyticsServer(**defaults)


def expected_qs_rows(db):
    lineitem = db.tables["lineitem"]
    return int(np.count_nonzero(lineitem.column("l_discount") >= 0.05))


class TestSimulatedStreaming:
    def test_fetch_replays_the_materialized_result(self, db):
        server = make_server(db)
        handle = server.submit("QS")
        server.run()
        result = server.result(handle)
        fetched = []
        while True:
            part = handle.fetch(1000)
            if part is None:
                break
            fetched.append(part)
        replay = {
            name: np.concatenate([part[name] for part in fetched])
            for name in result
        }
        for name in result:
            np.testing.assert_array_equal(replay[name], result[name])
        # The replay is non-destructive: result() still works, and
        # rewind() replays again from the start.
        assert server.result(handle) is result
        handle.rewind()
        assert handle.fetch(10) is not None

    def test_iteration_respects_chunk_boundaries(self, db):
        server = make_server(db)
        handle = server.submit("QS")
        server.run()
        batches = list(handle)
        assert len(batches) == handle.channel.chunks_put
        total = sum(len(batch["l_orderkey"]) for batch in batches)
        assert total == expected_qs_rows(db)

    def test_aggregate_query_streams_one_final_chunk(self, db):
        server = make_server(db)
        handle = server.submit("Q6")
        server.run()
        assert handle.fetch() == pytest.approx(server.result(handle))
        assert handle.channel.chunks_put == 1

    def test_fetch_rejects_nonpositive_n(self, db):
        server = make_server(db)
        handle = server.submit("Q6")
        server.run()
        with pytest.raises(ReproError):
            handle.fetch(0)

    def test_progress_counters(self, db):
        server = make_server(db)
        handle = server.submit("QS")
        before = handle.progress()
        assert before == {
            "done": False,
            "cancelled": False,
            "failed": False,
            "chunks_put": 0,
            "rows_put": 0,
            "chunks_pending": 0,
            "rows_fetched": 0,
        }
        server.run()
        after = handle.progress()
        assert after["done"]
        assert after["rows_put"] == expected_qs_rows(db)
        handle.fetch(100)
        assert handle.progress()["rows_fetched"] == 100

    def test_cancel_pending_query(self, db):
        server = make_server(db)
        victim = server.submit("Q18")
        keeper = server.submit("Q6")
        assert server.cancel(victim) is True
        assert server.cancel(victim) is True  # idempotent
        records = server.run()
        assert server.record(victim).cancelled
        assert not server.record(keeper).cancelled
        with pytest.raises(QueryCancelledError):
            server.result(victim)
        assert server.result(keeper) == pytest.approx(
            build_engine_query("Q6", db).execute()
        )
        # Both records surfaced through drain exactly once.
        assert {r.name for r in records} == {"Q18", "Q6"}

    def test_cancel_completed_query_is_refused(self, db):
        server = make_server(db)
        ticket = server.submit("Q6")
        server.run()
        assert server.cancel(ticket) is False
        assert server.result(ticket) == pytest.approx(
            build_engine_query("Q6", db).execute()
        )


class TestThreadedStreaming:
    def make_backend(self, db, capacity=4):
        return ThreadedBackend(
            make_scheduler(
                "stride", SchedulerConfig(n_workers=2, t_max=0.002)
            ),
            EngineEnvironment(db),
            channel_capacity=capacity,
        )

    def test_live_stream_is_memory_bounded(self, db):
        # The acceptance test of the refactor: a result far larger than
        # the channel bound streams through completely while the
        # producer never buffers more than `capacity` chunks.
        capacity = 4
        backend = self.make_backend(db, capacity=capacity)
        backend.start()
        try:
            handle = backend.submit(engine_query_spec("QS", db))
            total = 0
            for batch in handle:
                total += len(batch["l_orderkey"])
            backend.drain()
        finally:
            backend.shutdown()
        assert total == expected_qs_rows(db)
        assert handle.channel.chunks_put > capacity  # stream was larger
        assert handle.channel.peak_depth <= capacity
        with pytest.raises(ReproError, match="consumed as a stream"):
            backend.result(handle)

    def test_unconsumed_stream_materializes_on_drain(self, db):
        backend = self.make_backend(db)
        backend.start()
        try:
            handle = backend.submit(engine_query_spec("QS", db))
            backend.drain()
        finally:
            backend.shutdown()
        result = backend.result(handle)
        assert len(result["l_orderkey"]) == expected_qs_rows(db)
        # Sorted content matches the serial reference execution (thread
        # interleaving may reorder whole chunks, never rows inside one).
        reference = build_engine_query("QS", db).execute()
        np.testing.assert_array_equal(
            np.sort(result["l_orderkey"]), np.sort(reference["l_orderkey"])
        )
        assert result["l_extendedprice"].sum() == pytest.approx(
            reference["l_extendedprice"].sum()
        )

    def test_cancel_mid_flight_frees_the_backend(self, db):
        server = make_server(db, backend="threaded", n_workers=2)
        server.start()
        try:
            victim = server.submit("Q18")
            assert server.cancel(victim) is True
            record = server.wait(victim, timeout=30.0)
            assert record.cancelled
            with pytest.raises(QueryCancelledError):
                server.result(victim)
            # The slot is free: subsequent queries run normally.
            after = server.submit("Q6")
            server.wait(after, timeout=30.0)
            assert server.result(after) == pytest.approx(
                build_engine_query("Q6", db).execute()
            )
            server.drain()
        finally:
            server.shutdown()

    def test_handle_cancel_shorthand(self, db):
        server = make_server(db, backend="threaded", n_workers=2)
        server.start()
        try:
            handle = server.submit("Q18")
            assert handle.cancel() is True
            assert server.wait(handle, timeout=30.0).cancelled
            server.drain()
        finally:
            server.shutdown()

    def test_rewind_refused_on_live_stream(self, db):
        backend = self.make_backend(db)
        backend.start()
        try:
            handle = backend.submit(engine_query_spec("QS", db))
            handle.fetch(10)  # destructive live consumption begins
            with pytest.raises(ReproError, match="rewind"):
                handle.rewind()
            for _ in handle:
                pass
            backend.drain()
        finally:
            backend.shutdown()


class TestProcessStreaming:
    def test_chunk_boundaries_survive_the_pipe(self, db):
        sim = make_server(db)
        sim_handle = sim.submit("QS")
        sim.run()

        proc = make_server(db, backend="process")
        handle = proc.submit("QS")
        proc.run()
        try:
            # The worker-side chunk sequence is re-put into the local
            # channel verbatim: iteration replays exactly chunks_put
            # batches whose rows add up, and the assembled value is
            # bit-identical to the in-process simulated run.  (Chunk
            # *counts* may differ between the two runs — adaptive morsel
            # sizing reacts to real measured throughput.)
            result = proc.result(handle)
            reference = sim.result(sim_handle)
            for name in reference:
                np.testing.assert_array_equal(result[name], reference[name])
            batches = list(handle)
            assert len(batches) == handle.channel.chunks_put > 0
            n_rows = sum(len(next(iter(b.values()))) for b in batches)
            assert n_rows == handle.channel.rows_put
            assert n_rows == len(next(iter(result.values())))
        finally:
            proc.shutdown()
            sim.shutdown()

    def test_cancel_pending_query(self, db):
        server = make_server(db, backend="process")
        try:
            victim = server.submit("Q6")
            assert server.cancel(victim) is True
            assert server.record(victim).cancelled
            keeper = server.submit("Q6")
            server.run()
            assert server.result(keeper) == pytest.approx(
                build_engine_query("Q6", db).execute()
            )
            with pytest.raises(QueryCancelledError):
                server.result(victim)
        finally:
            server.shutdown()


_HASHSEED_SCRIPT = """
from repro.core import SchedulerConfig, make_scheduler
from repro.core.specs import PipelineSpec, QuerySpec
from repro.runtime import SimulatedBackend


def query(name, work):
    return QuerySpec(
        name=name,
        scale_factor=1.0,
        pipelines=(
            PipelineSpec(
                name=f"{name}-p0",
                tuples=max(1, int(work * 1e6)),
                tuples_per_second=1e6,
            ),
        ),
    )


backend = SimulatedBackend(
    lambda: make_scheduler("stride", SchedulerConfig(n_workers=2)),
    noise_sigma=0.0,
)
jobs = [
    backend.submit(query(f"q{i}", 0.002 * (i + 1)), at=0.001 * i)
    for i in range(6)
]
for victim in (jobs[1], jobs[4]):
    backend.cancel(victim)
records = backend.drain()
for record in records:
    print(record.name, record.cancelled, repr(record.latency))
for job in jobs:
    print(int(job), backend.cancelled(job), repr(backend.poll(job).latency))
backend.shutdown()
"""


class TestCancellationDeterminism:
    def test_identical_across_hash_seeds(self):
        # Cancellation bookkeeping must not depend on dict/set iteration
        # order: the same mid-epoch cancellation scenario in pure
        # virtual time under PYTHONHASHSEED 0, 1 and 2 must produce
        # byte-identical records (real-engine latencies are measured in
        # wall time and can never be byte-stable, so this uses the
        # deterministic cost-model environment).
        outputs = []
        for hashseed in ("0", "1", "2"):
            env = dict(os.environ, PYTHONHASHSEED=hashseed)
            env["PYTHONPATH"] = "src"
            proc = subprocess.run(
                [sys.executable, "-c", _HASHSEED_SCRIPT],
                capture_output=True,
                text=True,
                env=env,
                cwd=os.path.dirname(os.path.dirname(os.path.dirname(__file__))),
                timeout=300,
            )
            assert proc.returncode == 0, proc.stderr
            outputs.append(proc.stdout)
        assert outputs[0] == outputs[1] == outputs[2]
