"""Tests for the GIL-free process backend.

The load-bearing claim mirrors the simulated backend's: shipping an
epoch to a warm worker process changes *nothing* about the results.
Every latency record, counter and clock value must be bit-identical to
running the same submissions through :class:`SimulatedBackend` in this
process.
"""

from functools import partial

import pytest

from repro.core import SchedulerConfig, make_scheduler
from repro.errors import ReproError
from repro.runtime import BackendState, ProcessBackend, SimulatedBackend
from repro.simcore import RngFactory
from repro.workloads import generate_workload, tpch_mix

from tests.conftest import make_query


def reference_workload(duration=1.0):
    mix = tpch_mix(names=("Q1", "Q6"))
    rng = RngFactory(7).stream("workload")
    return generate_workload(mix, rate=10.0, duration=duration, rng=rng)


def scheduler_factory(n_workers=2):
    # functools.partial over make_scheduler: picklable, unlike a lambda.
    return partial(
        make_scheduler, "stride", SchedulerConfig(n_workers=n_workers)
    )


def make_backend(**kwargs):
    kwargs.setdefault("seed", 7)
    kwargs.setdefault("noise_sigma", 0.0)
    return ProcessBackend(scheduler_factory(), **kwargs)


def _record_reprs(records):
    return [repr(r) for r in records]


class TestBitIdenticalToSimulated:
    def test_drain_matches_simulated_backend(self):
        workload = reference_workload()

        simulated = SimulatedBackend(
            scheduler_factory(4), seed=7, noise_sigma=0.05
        )
        for arrival, spec in workload:
            simulated.submit(spec, at=arrival)
        reference = simulated.drain()

        backend = ProcessBackend(scheduler_factory(4), seed=7, noise_sigma=0.05)
        for arrival, spec in workload:
            backend.submit(spec, at=arrival)
        records = backend.drain()
        backend.shutdown()

        assert _record_reprs(records) == _record_reprs(reference)
        assert backend.clock.now() == simulated.clock.now()
        assert backend.last_tasks_executed == simulated.last_result.tasks_executed
        assert (
            backend.last_events_processed
            == simulated.last_result.events_processed
        )

    def test_multi_epoch_matches_simulated_backend(self):
        def run(backend):
            out = []
            a = backend.submit(make_query("a", work=0.004))
            b = backend.submit(make_query("b", work=0.002), at=0.01)
            backend.drain()
            out.append((repr(backend.records[a]), repr(backend.records[b])))
            c = backend.submit(make_query("c", work=0.004))
            backend.drain()
            out.append(repr(backend.records[c]))
            return out

        simulated = SimulatedBackend(scheduler_factory(), seed=7, noise_sigma=0.0)
        process = make_backend()
        try:
            assert run(process) == run(simulated)
        finally:
            process.shutdown()


class TestEpochSemantics:
    def test_out_of_order_arrivals_map_to_job_ids(self):
        backend = make_backend()
        late = backend.submit(make_query("late", work=0.004), at=0.05)
        early = backend.submit(make_query("early", work=0.004), at=0.0)
        backend.drain()
        backend.shutdown()
        assert backend.records[late].name == "late"
        assert backend.records[early].name == "early"

    def test_negative_arrival_rejected(self):
        backend = make_backend()
        with pytest.raises(ReproError):
            backend.submit(make_query("q"), at=-0.5)

    def test_empty_drain_is_noop(self):
        backend = make_backend()
        assert backend.drain() == []
        backend.shutdown()

    def test_clock_tracks_last_epoch_end(self):
        backend = make_backend()
        backend.submit(make_query("q", work=0.004))
        backend.drain()
        backend.shutdown()
        assert backend.clock.now() > 0.0


class TestLifecycle:
    def test_state_machine(self):
        backend = make_backend()
        assert backend.state is BackendState.NEW
        backend.start()
        assert backend.state is BackendState.RUNNING
        backend.shutdown()
        assert backend.state is BackendState.CLOSED
        with pytest.raises(ReproError):
            backend.start()

    def test_shutdown_leaves_shared_pool_running(self):
        from repro.experiments.pool import get_pool

        backend = make_backend()
        backend.start()
        pool = get_pool()
        backend.shutdown()
        # The warm pool is shared state; closing a backend must not
        # tear it down under other users.
        assert get_pool() is pool
        assert pool.call(len, (1, 2, 3)) == 3

    def test_shutdown_drops_pending(self):
        backend = make_backend()
        backend.submit(make_query("q"))
        backend.shutdown()
        assert backend.completed_count == 0


class TestEngineEnvironmentPath:
    def test_worker_regenerates_database_from_profile(self):
        """An engine-backed drain ships (sf, seed), not relation data."""
        from repro.engine import ENGINE_QUERIES
        from repro.runtime.process import engine_environment_factory
        from repro.workloads import tpch_query

        backend = ProcessBackend(
            scheduler_factory(),
            seed=1,
            environment_factory=partial(engine_environment_factory, 0.01, 0),
        )
        job = backend.submit(tpch_query("Q6", 0.01))
        backend.drain()
        backend.shutdown()
        record = backend.records[job]
        assert record.name == "Q6"
        assert record.latency > 0.0
        # The engine actually ran: a result row came back for the job.
        assert job in backend.results
        assert "Q6" in ENGINE_QUERIES
