"""Lifecycle tests for the ExecutionBackend base contract.

Exercised through the cheap virtual-time backend; the threaded backend
inherits the identical state machine from the same base class.
"""

import pytest

from repro.core import SchedulerConfig, make_scheduler
from repro.errors import ReproError
from repro.runtime import BackendState, SimulatedBackend

from tests.conftest import make_query


def make_backend(**kwargs):
    return SimulatedBackend(
        lambda: make_scheduler("stride", SchedulerConfig(n_workers=2)),
        seed=3,
        noise_sigma=0.0,
        **kwargs,
    )


class TestLifecycle:
    def test_initial_state_is_new(self):
        assert make_backend().state is BackendState.NEW

    def test_start_moves_to_running(self):
        backend = make_backend()
        backend.start()
        assert backend.state is BackendState.RUNNING

    def test_start_idempotent_while_running(self):
        backend = make_backend()
        backend.start()
        backend.start()
        assert backend.state is BackendState.RUNNING

    def test_drain_auto_starts(self):
        backend = make_backend()
        backend.submit(make_query("q"))
        assert backend.drain()
        assert backend.state is BackendState.RUNNING

    def test_shutdown_closes(self):
        backend = make_backend()
        backend.shutdown()
        assert backend.state is BackendState.CLOSED

    def test_shutdown_idempotent(self):
        backend = make_backend()
        backend.shutdown()
        backend.shutdown()
        assert backend.state is BackendState.CLOSED

    def test_start_after_shutdown_rejected(self):
        backend = make_backend()
        backend.shutdown()
        with pytest.raises(ReproError):
            backend.start()

    def test_submit_after_shutdown_rejected(self):
        backend = make_backend()
        backend.shutdown()
        with pytest.raises(ReproError):
            backend.submit(make_query("q"))

    def test_drain_after_shutdown_rejected(self):
        backend = make_backend()
        backend.shutdown()
        with pytest.raises(ReproError):
            backend.drain()

    def test_records_survive_shutdown(self):
        backend = make_backend()
        job = backend.submit(make_query("q"))
        backend.drain()
        backend.shutdown()
        assert backend.poll(job) is not None


class TestCountsAndPoll:
    def test_job_ids_are_sequential(self):
        backend = make_backend()
        assert backend.submit(make_query("a")) == 0
        assert backend.submit(make_query("b")) == 1

    def test_counts(self):
        backend = make_backend()
        backend.submit(make_query("a"))
        backend.submit(make_query("b"))
        assert backend.submitted_count == 2
        assert backend.completed_count == 0
        assert backend.pending_count == 2
        backend.drain()
        assert backend.completed_count == 2
        assert backend.pending_count == 0

    def test_poll_none_before_completion(self):
        backend = make_backend()
        job = backend.submit(make_query("q"))
        assert backend.poll(job) is None
        backend.drain()
        assert backend.poll(job) is not None
