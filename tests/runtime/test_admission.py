"""Tests for the pluggable admission layer (repro.runtime.admission)."""

import pytest

from repro.engine import generate_tpch
from repro.errors import AdmissionError, ReproError, TenantQuotaError, error_from_text
from repro.runtime.admission import (
    ADMISSION_POLICIES,
    BULK,
    LATENCY_CRITICAL,
    AdmissionRequest,
    BlockingAdmission,
    SlaClass,
    make_admission_policy,
)
from repro.server import AnalyticsServer


@pytest.fixture(scope="module")
def server_db():
    return generate_tpch(scale_factor=0.003, seed=5)


def make_server(server_db, **kwargs):
    defaults = dict(scheduler="stride", n_workers=2, seed=5, database=server_db)
    defaults.update(kwargs)
    return AnalyticsServer(**defaults)


class TestSlaClass:
    def test_needs_name(self):
        with pytest.raises(ReproError):
            SlaClass("")

    def test_needs_positive_weight(self):
        with pytest.raises(ReproError):
            SlaClass("x", weight=0.0)

    def test_effective_priority_adds_class_base(self):
        request = AdmissionRequest(priority=3, sla=LATENCY_CRITICAL)
        assert request.effective_priority == LATENCY_CRITICAL.priority + 3
        assert AdmissionRequest(priority=3, sla=BULK).effective_priority == 3
        assert AdmissionRequest(priority=3).effective_priority == 3

    def test_latency_class_is_not_sheddable(self):
        assert not LATENCY_CRITICAL.sheddable
        assert BULK.sheddable


class TestPolicyConstruction:
    def test_unknown_policy_rejected(self):
        with pytest.raises(ReproError, match="unknown admission policy"):
            make_admission_policy("lru")

    @pytest.mark.parametrize("mode", sorted(ADMISSION_POLICIES))
    def test_known_policies_build(self, mode):
        policy = make_admission_policy(mode, max_pending=2)
        assert policy.name == mode
        assert policy.max_pending == 2

    def test_bad_max_pending_rejected(self):
        with pytest.raises(ReproError, match="max_pending"):
            make_admission_policy("reject", max_pending=0)

    def test_bad_quota_rejected(self):
        with pytest.raises(ReproError, match="quota"):
            make_admission_policy("reject", tenant_quotas={"a": 0})


class TestBlockingNeedsRealtime:
    """Satellite (a): blocking admission on virtual-time backends must
    fail eagerly at construction, not deadlock at submit time."""

    @pytest.mark.parametrize("backend", ["simulated", "process"])
    def test_block_string_rejected_eagerly(self, server_db, backend):
        with pytest.raises(ReproError, match="block"):
            make_server(
                server_db, backend=backend, max_pending=1, admission="block"
            )

    @pytest.mark.parametrize("backend", ["simulated", "process"])
    def test_block_instance_rejected_eagerly(self, server_db, backend):
        policy = BlockingAdmission(max_pending=1)
        with pytest.raises(ReproError, match="block"):
            make_server(server_db, backend=backend, admission=policy)

    def test_block_accepted_on_threaded(self, server_db):
        server = make_server(
            server_db, backend="threaded", max_pending=1, admission="block"
        )
        assert server.admission_policy.name == "block"
        server.shutdown()


class TestTenantQuotas:
    def test_quota_raises_typed_error(self, server_db):
        server = make_server(server_db, tenant_quotas={"etl": 2})
        server.submit("Q6", tenant="etl")
        server.submit("Q6", tenant="etl")
        with pytest.raises(TenantQuotaError, match="'etl' is over quota"):
            server.submit("Q6", tenant="etl")

    def test_quota_error_is_admission_error(self):
        assert issubclass(TenantQuotaError, AdmissionError)

    def test_quota_error_round_trips_text(self):
        err = error_from_text("TenantQuotaError: tenant 'a' is over quota")
        assert isinstance(err, TenantQuotaError)
        assert not err.transient

    def test_other_tenants_unaffected(self, server_db):
        server = make_server(server_db, tenant_quotas={"etl": 1})
        server.submit("Q6", tenant="etl")
        server.submit("Q6", tenant="dash")  # no quota for dash
        server.submit("Q6")                 # untenanted never counted
        assert server.tenant_pending("etl") == 1
        assert server.tenant_pending("dash") == 1

    def test_default_quota_covers_unlisted_tenants(self, server_db):
        server = make_server(server_db, default_tenant_quota=1)
        server.submit("Q6", tenant="anyone")
        with pytest.raises(TenantQuotaError):
            server.submit("Q6", tenant="anyone")

    def test_quota_frees_after_drain(self, server_db):
        server = make_server(server_db, tenant_quotas={"etl": 1})
        server.submit("Q6", tenant="etl")
        server.drain()
        server.submit("Q6", tenant="etl")  # slot freed by completion

    def test_quota_checked_before_capacity(self, server_db):
        # Quota violations surface as TenantQuotaError even when the
        # shard is also at max_pending (the more specific signal wins).
        server = make_server(
            server_db, max_pending=1, tenant_quotas={"etl": 1}
        )
        server.submit("Q6", tenant="etl")
        with pytest.raises(TenantQuotaError):
            server.submit("Q6", tenant="etl")


class TestSheddingRespectsSla:
    def test_latency_class_never_shed(self, server_db):
        server = make_server(server_db, max_pending=1, admission="shed")
        server.submit("Q6", priority=0, sla="latency")
        # Newcomer outranks the pending query's *own* priority (0), but
        # the latency class is exempt from eviction.
        with pytest.raises(AdmissionError, match="none has lower priority"):
            server.submit("Q6", priority=5)

    def test_bulk_class_shed_first(self, server_db):
        server = make_server(server_db, max_pending=2, admission="shed")
        protected = server.submit("Q6", sla="latency")
        victim = server.submit("Q6", sla="bulk")
        server.submit("Q6", priority=1)
        assert isinstance(server.failure(victim), AdmissionError)
        assert not server.failed(protected)

    def test_sla_base_priority_orders_shedding(self, server_db):
        # An un-classed newcomer cannot shed a latency-class query even
        # with a higher caller priority, because the class base wins.
        server = make_server(server_db, max_pending=1, admission="shed")
        server.submit("Q6", sla="latency")
        with pytest.raises(AdmissionError):
            server.submit("Q6", priority=99)


class TestSlaWeights:
    def test_sla_weight_scales_user_priority(self, server_db):
        server = make_server(server_db)
        ticket = server.submit("Q6", sla="latency")
        arrival, spec, job_id = server.backend._pending[0]
        assert job_id == int(ticket)
        assert spec.user_priority == LATENCY_CRITICAL.weight
        assert "sla:latency" in spec.tags

    def test_unknown_sla_rejected(self, server_db):
        with pytest.raises(ReproError, match="unknown SLA class"):
            make_server(server_db).submit("Q6", sla="gold")

    def test_custom_sla_classes(self, server_db):
        gold = SlaClass("gold", priority=50, weight=2.0, sheddable=False)
        server = make_server(server_db, sla_classes={"gold": gold})
        ticket = server.submit("Q6", sla="gold")
        assert server.tickets.sla_of(int(ticket)) == "gold"
