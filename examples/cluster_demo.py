"""A 4-shard analytics cluster with predictive placement.

Run with::

    python examples/cluster_demo.py

A ``ClusterRouter`` fronts four independent ``AnalyticsServer`` shards
(each with its own scheduler and simulated backend in the model
environment, so the whole demo is bit-reproducible).  Two tenants share
the cluster:

* ``dash`` — short interactive dashboard queries in the
  latency-critical SLA class (scheduling weight 4, never shed);
* ``etl`` — heavy extract jobs in the bulk class (weight 1, sheddable).

The router predicts each query's slowdown on every shard from the
in-flight mix (per-weight-class busy horizons, calibrated online from
completed-query records) and places it on the shard with the lowest
predicted latency.  The demo compares that policy against round-robin
on the latency class's tail, then drains a shard mid-workload and shows
the handoff machinery moving its pending queries with zero lost
tickets.
"""

from repro.cluster import ClusterRouter
from repro.metrics import format_table, percentile
from repro.simcore import RngFactory
from repro.workloads import Tenant, multi_tenant_workload, tpch_mix


def tenant_workload(seed=33, duration=4.0):
    tenants = [
        Tenant(
            "dash",
            tpch_mix(sf_small=0.25, sf_large=2.0, p_small=0.75),
            rate=20.0,
            user_priority=4.0,
            sla="latency",
        ),
        Tenant(
            "etl",
            tpch_mix(sf_small=8.0, sf_large=30.0, p_small=0.5),
            rate=3.0,
            sla="bulk",
        ),
    ]
    return multi_tenant_workload(tenants, duration, RngFactory(seed))


def run_cluster(placement):
    router = ClusterRouter(
        n_shards=4,
        scheduler="stride",
        n_workers=2,
        seed=7,
        environment="model",
        placement=placement,
    )
    handles = router.submit_workload(tenant_workload())
    router.drain()
    by_class = {"latency": [], "bulk": []}
    for handle in handles:
        sla = router.tickets.sla_of(int(handle))
        by_class[sla].append(router.latency(handle) * 1000.0)
    return by_class


def main() -> None:
    rows = []
    for placement in ("round-robin", "predictive"):
        by_class = run_cluster(placement)
        for sla, latencies in sorted(by_class.items()):
            rows.append(
                [
                    placement,
                    sla,
                    len(latencies),
                    percentile(latencies, 50.0),
                    percentile(latencies, 99.0),
                ]
            )
    print(
        format_table(
            ["placement", "class", "completed", "median_ms", "p99_ms"],
            rows,
            title="Predictive vs round-robin placement, 4 shards x 2 workers",
        )
    )

    # Drain a shard mid-workload: its pending queries hand off to the
    # surviving shards (the placement model picks each one's new home)
    # and every ticket still resolves.
    router = ClusterRouter(
        n_shards=4, scheduler="stride", n_workers=2, seed=7,
        environment="model",
    )
    handles = router.submit_workload(tenant_workload())
    victim = handles[0].address.shard
    moved = router.drain_shard(victim)
    router.drain()
    lost = sum(1 for h in handles if router.record(h) is None)
    print(
        f"\ndrained shard {victim}: {moved} pending queries handed off, "
        f"{lost} tickets lost, active shards now {router.active_shards()}"
    )


if __name__ == "__main__":
    main()
