"""Multi-tenant scheduling with user priorities (§3.2) and a burst.

Run with::

    python examples/multi_tenant.py

Three tenants share the system:

* ``etl`` — heavy background queries at user priority 1;
* ``analysts`` — the interactive mixed workload at priority 2;
* ``dashboard`` — very short queries at priority 6, plus a burst of 40
  dashboard refreshes arriving at one instant halfway through.

Each tenant still benefits from adaptive decay *within* its priority
class (the §3.2 "custom priorities" design), so short dashboard queries
stay interactive even while the burst drains through the scheduler.
"""

from repro import SchedulerConfig, Simulator, make_scheduler
from repro.metrics import format_table, percentile
from repro.simcore import RngFactory
from repro.workloads import (
    QueryMix,
    Tenant,
    burst_workload,
    multi_tenant_workload,
    tenant_of,
    tpch_query,
)


def main() -> None:
    n_workers = 12
    duration = 8.0
    rng_factory = RngFactory(seed=11)

    etl_mix = QueryMix(
        entries=((tpch_query("Q18", 4.0), 1.0), (tpch_query("Q9", 4.0), 1.0))
    )
    analyst_mix = QueryMix(
        entries=(
            (tpch_query("Q3", 1.0), 2.0),
            (tpch_query("Q13", 1.0), 1.0),
        )
    )
    dashboard_mix = QueryMix(
        entries=((tpch_query("Q6", 0.5), 3.0), (tpch_query("Q11", 0.5), 1.0))
    )

    tenants = [
        Tenant("etl", etl_mix, rate=3.0, user_priority=1.0),
        Tenant("analysts", analyst_mix, rate=25.0, user_priority=2.0),
        Tenant("dashboard", dashboard_mix, rate=30.0, user_priority=6.0),
    ]
    workload = multi_tenant_workload(tenants, duration, rng_factory)
    # A burst of 40 dashboard refreshes at t = 4s (all at once).
    dashboard_tagged = QueryMix(
        entries=tuple(
            (query, weight)
            for (query, weight) in (
                (tpch_query("Q6", 0.5), 1.0),
            )
        )
    )
    workload = burst_workload(
        workload, dashboard_tagged, burst_at=4.0, burst_size=40,
        rng_factory=rng_factory,
    )
    workload.sort(key=lambda item: item[0])
    print(f"{len(workload)} queries from 3 tenants over {duration:.0f}s "
          f"(+40-query dashboard burst at t=4s)\n")

    scheduler = make_scheduler(
        "tuning",
        SchedulerConfig(n_workers=n_workers, tracking_duration=1.5,
                        refresh_duration=4.0),
    )
    result = Simulator(scheduler, workload, seed=11, max_time=duration).run()

    # query_id equals the arrival index, so the tenant tag can be
    # recovered from the workload list.
    by_tenant = {}
    for record in result.records.records:
        query = workload[record.query_id][1]
        tenant = tenant_of(query) or "burst"
        by_tenant.setdefault(tenant, []).append(record.latency * 1000.0)

    rows = []
    for tenant, latencies in sorted(by_tenant.items()):
        rows.append(
            [
                tenant,
                len(latencies),
                percentile(latencies, 50.0),
                percentile(latencies, 95.0),
                max(latencies),
            ]
        )
    print(
        format_table(
            ["tenant", "completed", "median_ms", "p95_ms", "max_ms"],
            rows,
            title="Per-tenant latencies (priority: dashboard > analysts > etl)",
        )
    )


if __name__ == "__main__":
    main()
