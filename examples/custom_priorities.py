"""Custom query and user priorities on top of adaptive decay (§3.2).

Run with::

    python examples/custom_priorities.py

The paper supports two extensions to transparent adaptive priorities:

1. *static query priorities* — "especially important queries could have
   the static non-decayed priority p0", so they are always treated like
   a freshly arrived query;
2. *user priorities* — a per-user factor scales both p0 and p_min, so
   one user's queries consistently outrank another's while both still
   benefit from adaptive decay.

The demo runs three identical long queries concurrently — one plain,
one with a pinned static priority, one owned by a high-priority user —
plus a stream of short queries, and compares their latencies.
"""

from dataclasses import replace

from repro import SchedulerConfig, Simulator, make_scheduler
from repro.core.specs import PipelineSpec, QuerySpec
from repro.metrics import format_table
from repro.simcore import RngFactory
from repro.workloads import generate_workload
from repro.workloads.mixes import QueryMix


def long_query(name: str, **overrides) -> QuerySpec:
    base = QuerySpec(
        name=name,
        scale_factor=1.0,
        pipelines=(
            PipelineSpec(name=f"{name}-scan", tuples=2_000_000, tuples_per_second=1e6),
        ),
    )
    return replace(base, **overrides)


def short_query() -> QuerySpec:
    return QuerySpec(
        name="short",
        scale_factor=0.1,
        pipelines=(
            PipelineSpec(name="short-scan", tuples=10_000, tuples_per_second=1e6),
        ),
    )


def main() -> None:
    n_workers = 4

    competitors = [
        long_query("plain"),
        # §3.2 custom (1): pinned to the non-decayed initial priority.
        long_query("static-p0", static_priority=10_000.0),
        # §3.2 custom (2): a 4x user priority scales p0 and p_min.
        long_query("vip-user", user_priority=4.0),
    ]
    workload = [(0.0, query) for query in competitors]

    # Background load: short queries keep arriving and decaying around
    # the competitors.
    mix = QueryMix(entries=((short_query(), 1.0),))
    rng = RngFactory(5).stream("background")
    workload += generate_workload(mix, rate=60.0, duration=6.0, rng=rng)

    scheduler = make_scheduler("stride", SchedulerConfig(n_workers=n_workers))
    result = Simulator(scheduler, workload, seed=5).run()

    rows = []
    for record in result.records.records:
        if record.scale_factor == 1.0:
            rows.append([record.name, record.latency * 1000.0])
    rows.sort(key=lambda row: row[1])
    print(
        format_table(
            ["query", "latency_ms"],
            rows,
            title="Identical queries, different priority treatment",
        )
    )
    print(
        "\nThe static-p0 query never decays and the VIP user's decay floor is\n"
        "4x higher, so both finish well ahead of the plain query."
    )


if __name__ == "__main__":
    main()
