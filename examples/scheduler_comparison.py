"""Compare all scheduling policies on one high-load mixed workload.

Run with::

    python examples/scheduler_comparison.py

This is the §5.2 experiment in miniature: the same Poisson workload of
TPC-H SF3/SF30 queries is executed by every policy — the self-tuning
stride scheduler, plain stride with decay, fair stride, lottery, legacy
Umbra and FIFO — and the short-query latency statistics are compared.
Expect the ordering of Figure 7: tuning < stride < fair ~ umbra << fifo
for short queries.
"""

from repro import (
    SchedulerConfig,
    Simulator,
    available_schedulers,
    generate_workload,
    make_scheduler,
    tpch_mix,
)
from repro.metrics import format_table, slowdown_summary
from repro.metrics.latency import query_key
from repro.simcore import RngFactory
from repro.workloads.load import arrival_rate_for_load


def measure_isolated(mix, n_workers):
    """Isolated all-cores latency per distinct query (slowdown baseline)."""
    bases = {}
    for query in mix.queries:
        key = query_key(query.name, query.scale_factor)
        if key in bases:
            continue
        scheduler = make_scheduler("stride", SchedulerConfig(n_workers=n_workers))
        result = Simulator(scheduler, [(0.0, query)], seed=1, noise_sigma=0.0).run()
        bases[key] = result.records.records[0].latency
    return bases


def main() -> None:
    n_workers = 20
    duration = 10.0
    load = 0.95

    mix = tpch_mix()
    rate = arrival_rate_for_load(mix, load, n_workers=n_workers)
    rng = RngFactory(seed=7).stream("workload")
    workload = generate_workload(mix, rate=rate, duration=duration, rng=rng)
    bases = measure_isolated(mix, n_workers)
    print(f"{len(workload)} queries at {load:.0%} load, {n_workers} workers\n")

    rows = []
    for name in available_schedulers():
        scheduler = make_scheduler(
            name,
            SchedulerConfig(
                n_workers=n_workers, tracking_duration=2.0, refresh_duration=5.0
            ),
        )
        result = Simulator(scheduler, workload, seed=7, max_time=duration).run()
        records = result.records.apply_bases(bases)
        short = [r for r in records.records if r.scale_factor == 3.0]
        long_ = [r for r in records.records if r.scale_factor == 30.0]
        s_short = slowdown_summary(short)
        s_long = slowdown_summary(long_)
        rows.append(
            [
                name,
                result.completed,
                s_short["mean_slowdown"],
                s_short["p95_slowdown"],
                s_short["max_slowdown"],
                s_long["mean_slowdown"],
            ]
        )
    rows.sort(key=lambda row: row[2])
    print(
        format_table(
            [
                "scheduler",
                "done",
                "SF3 mean",
                "SF3 p95",
                "SF3 max",
                "SF30 mean",
            ],
            rows,
            title=f"Relative slowdowns at {load:.0%} load (lower is better)",
        )
    )


if __name__ == "__main__":
    main()
