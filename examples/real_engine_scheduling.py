"""Drive the paper's scheduler with *real* query execution.

Run with::

    python examples/real_engine_scheduling.py

Everything in this example is real work: the mini columnar engine
(:mod:`repro.engine`) generates a TPC-H database, and every morsel the
scheduler dispatches executes actual numpy kernels whose *measured* wall
time feeds the stride passes, the adaptive morsel sizing (§3.1) and the
priority decay (§3.2).  Because of the GIL, "workers" interleave on one
OS thread — equivalent to scheduling on a single core — but every
scheduling decision path is the genuine one.

The demo submits a batch of short (Q6) and long (Q1, Q13, Q18) queries
simultaneously and shows that the decaying-priority scheduler finishes
the short queries first while producing exactly the same results as
plain single-threaded execution.
"""

from repro import SchedulerConfig, Simulator, make_scheduler
from repro.engine import build_engine_query, generate_tpch
from repro.engine.execution import EngineEnvironment, engine_query_spec
from repro.metrics import format_table


def main() -> None:
    print("generating TPC-H data at SF 0.02 ...")
    db = generate_tpch(scale_factor=0.02, seed=1)

    names = ["Q1", "Q6", "Q13", "Q6", "Q18", "Q6"]
    workload = [(0.0, engine_query_spec(name, db)) for name in names]

    env = EngineEnvironment(db)
    scheduler = make_scheduler(
        "stride", SchedulerConfig(n_workers=4, t_max=0.004)
    )
    print(f"scheduling {len(names)} queries on 4 interleaved workers ...\n")
    result = Simulator(scheduler, workload, seed=0, environment=env).run()

    rows = []
    for record in sorted(result.records.records, key=lambda r: r.completion_time):
        rows.append(
            [
                record.name,
                record.query_id,
                record.completion_time * 1000.0,
                record.cpu_seconds * 1000.0,
            ]
        )
    print(
        format_table(
            ["query", "id", "finished_ms", "cpu_ms"],
            rows,
            title="Completion order (short Q6 instances finish first)",
        )
    )

    # Verify every result against plain single-threaded execution.
    print("\nverifying results against single-threaded execution ...")
    references = {
        name: build_engine_query(name, db).execute() for name in set(names)
    }
    for record in result.records.records:
        got = env.finish_query(record.query_id)
        want = references[record.name]
        if isinstance(want, float):
            assert abs(got - want) < 1e-6 * max(1.0, abs(want)), record.name
        else:
            assert len(got) == len(want), record.name
    print("all results identical — scheduling changed *when*, not *what*.")


if __name__ == "__main__":
    main()
