"""Watch the self-tuning optimizer adapt to a workload shift (§4).

Run with::

    python examples/self_tuning_demo.py

The paper motivates self-tuning with exactly this scenario: decay
parameters that prioritize 10ms-vs-100ms mixes well are useless for
1s-vs-10s mixes ("all requests will quickly reach the minimum priority
... we want to significantly increase the decay onset d_start").

The demo runs one simulation whose workload flips from a fine-grained
mix to a coarse-grained one halfway through, and prints the (lambda,
d_start) pair the optimizer chose after each tracking window.  Expect
d_start to jump up by roughly the ratio of the query durations after
the shift.
"""

from repro import SchedulerConfig, Simulator, make_scheduler
from repro.metrics import format_table
from repro.simcore import RngFactory
from repro.workloads import generate_workload
from repro.workloads.mixes import QueryMix
from repro.workloads.profiles import tpch_query


def phase_mix(scale: float) -> QueryMix:
    """A short/long TPC-H mix whose absolute durations scale by ``scale``."""
    return QueryMix(
        entries=(
            (tpch_query("Q6", 1.0 * scale), 0.75),   # short
            (tpch_query("Q18", 4.0 * scale), 0.25),  # long
        )
    )


def main() -> None:
    n_workers = 8
    phase_seconds = 8.0
    rng_factory = RngFactory(seed=3)

    # Phase 1: fine-grained queries (SF ~1/4); Phase 2: 8x coarser.
    fine = phase_mix(scale=1.0)
    coarse = phase_mix(scale=8.0)

    workload = []
    rate_fine = 0.9 * n_workers / fine.expected_work_seconds()
    for t in generate_workload(
        fine, rate_fine, phase_seconds, rng_factory.stream("fine")
    ):
        workload.append(t)
    rate_coarse = 0.9 * n_workers / coarse.expected_work_seconds()
    for arrival, query in generate_workload(
        coarse, rate_coarse, phase_seconds, rng_factory.stream("coarse")
    ):
        workload.append((arrival + phase_seconds, query))

    scheduler = make_scheduler(
        "tuning",
        SchedulerConfig(
            n_workers=n_workers,
            tracking_duration=1.5,
            refresh_duration=3.0,
        ),
    )
    result = Simulator(
        scheduler, workload, seed=3, max_time=2 * phase_seconds
    ).run()

    print(
        f"completed {result.completed}/{result.admitted} queries; "
        f"workload shifts from ~{fine.expected_work_seconds()*1e3:.0f}ms to "
        f"~{coarse.expected_work_seconds()*1e3:.0f}ms mean work at "
        f"t={phase_seconds:.0f}s\n"
    )

    rows = []
    for index, entry in enumerate(scheduler.tuner.history):
        rows.append(
            [
                index,
                entry.params.decay,
                entry.params.d_start,
                entry.tracked_queries,
                entry.baseline_cost,
                entry.cost,
            ]
        )
    print(
        format_table(
            ["run", "lambda", "d_start", "tracked", "cost_before", "cost_after"],
            rows,
            title="Tuning runs (decay onset adapts to the workload shift)",
        )
    )


if __name__ == "__main__":
    main()
