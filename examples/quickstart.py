"""Quickstart: schedule a mixed TPC-H workload with the self-tuning scheduler.

Run with::

    python examples/quickstart.py

This builds the paper's workload (TPC-H queries at SF3 and SF30, 3:1 in
favour of the short scale factor, Poisson arrivals), runs it through the
lock-free self-tuning stride scheduler on a simulated 20-core machine,
and prints per-scale-factor latency statistics.
"""

from repro import (
    SchedulerConfig,
    Simulator,
    generate_workload,
    make_scheduler,
    tpch_mix,
)
from repro.metrics import format_table
from repro.simcore import RngFactory
from repro.workloads.load import arrival_rate_for_load


def main() -> None:
    n_workers = 20
    duration = 10.0  # simulated seconds

    # 1. The paper's workload mix: 22 TPC-H query shapes at SF3 and SF30.
    mix = tpch_mix()

    # 2. Target 90% machine load and draw Poisson arrivals.
    rate = arrival_rate_for_load(mix, load=0.9, n_workers=n_workers)
    rng = RngFactory(seed=42).stream("workload")
    workload = generate_workload(mix, rate=rate, duration=duration, rng=rng)
    print(f"workload: {len(workload)} queries over {duration:.0f}s "
          f"(arrival rate {rate:.1f}/s)\n")

    # 3. The self-tuning stride scheduler of the paper (§2-§4).
    scheduler = make_scheduler(
        "tuning",
        SchedulerConfig(
            n_workers=n_workers,
            tracking_duration=2.0,   # paper: 20s; scaled to the short demo
            refresh_duration=5.0,    # paper: 60s
        ),
    )

    # 4. Simulate and report.
    result = Simulator(scheduler, workload, seed=42, max_time=duration).run()
    print(f"completed {result.completed}/{result.admitted} queries, "
          f"worker utilisation {result.utilisation():.0%}, "
          f"scheduling overhead {result.total_overhead_percent:.4f}%\n")

    rows = []
    for sf, records in sorted(result.records.by_scale_factor().items()):
        latencies = sorted(r.latency for r in records)
        rows.append(
            [
                f"SF{sf:g}",
                len(records),
                latencies[len(latencies) // 2] * 1000.0,
                latencies[int(0.95 * (len(latencies) - 1))] * 1000.0,
                latencies[-1] * 1000.0,
            ]
        )
    print(format_table(
        ["queries", "count", "median_ms", "p95_ms", "max_ms"],
        rows,
        title="Latencies under the self-tuning scheduler",
    ))

    # 5. The tuned decay parameters the optimizer converged to (§4).
    if scheduler.tuner is not None and scheduler.tuner.history:
        last = scheduler.tuner.history[-1]
        print(f"\ntuned decay parameters: lambda={last.params.decay:.2f}, "
              f"d_start={last.params.d_start} "
              f"(cost {last.cost:.3f} vs baseline {last.baseline_cost:.3f})")


if __name__ == "__main__":
    main()
