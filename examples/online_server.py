"""An online analytics server on real worker threads.

Run with::

    python examples/online_server.py

The :class:`~repro.server.AnalyticsServer` puts the paper's scheduler
behind a service lifecycle.  With ``backend="threaded"`` the stride
scheduler runs on one OS thread per worker — the slot array, update
masks and the §2.3 finalization protocol operate under genuine
concurrency — and queries can be submitted *while earlier ones are
executing*.  A bounded wait queue (``max_pending``) provides explicit
backpressure: a full server rejects new work with
:class:`~repro.errors.AdmissionError` instead of queueing without
limit.

The demo starts a 4-worker server, streams query batches into it while
it runs, shows a rejected submission once the queue fills, then drains
and prints per-query latencies.  It then demonstrates the streaming
result path: ``submit`` returns a
:class:`~repro.runtime.handle.QueryHandle`, and iterating it consumes
row batches *while the query runs* — the bounded result channel parks
the producing worker whenever the consumer falls behind, so peak
buffered memory never exceeds the channel capacity.  Cancelling a
handle mid-flight fails its stream with
:class:`~repro.errors.QueryCancelledError` and frees the admission slot
through the scheduler's normal finalization protocol.

Finally it switches to ``backend="process"``: the same queries run as
virtual-time epochs in a warm worker *process* of the shared sweep
pool, so the engine's numpy work never holds this process's GIL — the
worker regenerates the TPC-H database from its ``(scale_factor, seed)``
profile once and reuses it across epochs.
"""

from repro.errors import AdmissionError
from repro.metrics import format_table
from repro.server import AnalyticsServer


def main() -> None:
    print("generating TPC-H data and starting a 4-worker server ...")
    server = AnalyticsServer(
        scale_factor=0.01,
        scheduler="tuning",
        n_workers=4,
        backend="threaded",
        max_pending=8,
        seed=1,
    )
    server.start()

    # Submit a first batch and wait for one result while the rest of
    # the batch is still executing — true online operation.
    first = server.submit("Q6")
    tickets = [first] + [server.submit(name) for name in ("Q1", "Q13", "Q6")]
    record = server.wait(first, timeout=60.0)
    print(
        f"Q6 finished in {record.latency * 1e3:.1f} ms while "
        f"{server.pending_count} queries were still in flight"
    )

    # Keep submitting until admission control pushes back.
    rejected = 0
    while rejected == 0:
        try:
            tickets.append(server.submit("Q6"))
        except AdmissionError as exc:
            rejected += 1
            print(f"backpressure: {exc}")

    records = server.drain()
    print(f"\ndrained {len(records)} remaining queries:\n")
    rows = [
        (ticket, server.record(ticket).name, f"{server.latency(ticket) * 1e3:8.1f}")
        for ticket in tickets
    ]
    print(format_table(("ticket", "query", "latency [ms]"), rows))

    # ------------------------------------------------------------------
    # Streaming: consume a large scan incrementally while it executes.
    # ------------------------------------------------------------------
    print("\nstreaming a large scan (QS) batch by batch ...")
    handle = server.submit("QS")
    batches = rows = 0
    for batch in handle:
        batches += 1
        rows += len(batch["l_orderkey"])
    channel = handle.channel
    print(
        f"consumed {rows} rows in {batches} batches; peak buffered "
        f"chunks {channel.peak_depth}/{channel.capacity} "
        "(bounded no matter the result size)"
    )

    # Cancellation: abort a heavy query mid-flight; the slot frees and
    # later queries run normally.
    victim = server.submit("Q18")
    if server.cancel(victim):
        record = server.wait(victim, timeout=60.0)
        print(f"cancelled Q18 after {record.latency * 1e3:.1f} ms in flight")
    follow_up = server.submit("Q6")
    server.wait(follow_up, timeout=60.0)
    print(f"follow-up Q6 result: {server.result(follow_up):.4f}")
    server.drain()

    server.shutdown()
    print("\nserver shut down; results remain readable:",
          f"{server.completed_count} completed")

    # ------------------------------------------------------------------
    # The same service on the GIL-free process backend: each drain is a
    # virtual-time epoch executed in a warm worker process.
    # ------------------------------------------------------------------
    print("\nrestarting on the process backend (epochs in a warm worker) ...")
    gilfree = AnalyticsServer(
        scale_factor=0.01,
        scheduler="tuning",
        n_workers=4,
        backend="process",
        seed=1,
    )
    epoch1 = [gilfree.submit(name) for name in ("Q6", "Q1", "Q13")]
    records = gilfree.drain()
    print(f"epoch 1: {len(records)} queries completed in the worker")
    epoch2 = [gilfree.submit("Q6", at=0.0), gilfree.submit("Q18", at=0.005)]
    gilfree.drain()
    rows = [
        (ticket, gilfree.record(ticket).name,
         f"{gilfree.latency(ticket) * 1e3:8.1f}")
        for ticket in epoch1 + epoch2
    ]
    print(format_table(("ticket", "query", "latency [ms]"), rows))
    gilfree.shutdown()
    print("process-backend server shut down;",
          f"{gilfree.completed_count} completed")


if __name__ == "__main__":
    main()
