"""An online analytics server on real worker threads.

Run with::

    python examples/online_server.py

The :class:`~repro.server.AnalyticsServer` puts the paper's scheduler
behind a service lifecycle.  With ``backend="threaded"`` the stride
scheduler runs on one OS thread per worker — the slot array, update
masks and the §2.3 finalization protocol operate under genuine
concurrency — and queries can be submitted *while earlier ones are
executing*.  A bounded wait queue (``max_pending``) provides explicit
backpressure: a full server rejects new work with
:class:`~repro.errors.AdmissionError` instead of queueing without
limit.

The demo starts a 4-worker server, streams query batches into it while
it runs, shows a rejected submission once the queue fills, then drains
and prints per-query latencies.
"""

from repro.errors import AdmissionError
from repro.metrics import format_table
from repro.server import AnalyticsServer


def main() -> None:
    print("generating TPC-H data and starting a 4-worker server ...")
    server = AnalyticsServer(
        scale_factor=0.01,
        scheduler="tuning",
        n_workers=4,
        backend="threaded",
        max_pending=8,
        seed=1,
    )
    server.start()

    # Submit a first batch and wait for one result while the rest of
    # the batch is still executing — true online operation.
    first = server.submit("Q6")
    tickets = [first] + [server.submit(name) for name in ("Q1", "Q13", "Q6")]
    record = server.wait(first, timeout=60.0)
    print(
        f"Q6 finished in {record.latency * 1e3:.1f} ms while "
        f"{server.pending_count} queries were still in flight"
    )

    # Keep submitting until admission control pushes back.
    rejected = 0
    while rejected == 0:
        try:
            tickets.append(server.submit("Q6"))
        except AdmissionError as exc:
            rejected += 1
            print(f"backpressure: {exc}")

    records = server.drain()
    print(f"\ndrained {len(records)} remaining queries:\n")
    rows = [
        (ticket, server.record(ticket).name, f"{server.latency(ticket) * 1e3:8.1f}")
        for ticket in tickets
    ]
    print(format_table(("ticket", "query", "latency [ms]"), rows))

    server.shutdown()
    print("\nserver shut down; results remain readable:",
          f"{server.completed_count} completed")


if __name__ == "__main__":
    main()
