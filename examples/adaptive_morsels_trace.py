"""Visualise static vs. adaptive morsel execution (Figure 5) as ASCII.

Run with::

    python examples/adaptive_morsels_trace.py

TPC-H Q13 and Q21 run concurrently on 8 workers, once with HyPer-style
static 60k-tuple morsels and once with the paper's adaptive 1ms-target
tasks.  Each worker's timeline is drawn as a row of characters (one per
0.5 ms), showing which query it executed.  With static morsels the rows
are ragged (morsel durations spread >10x); with adaptive tasks every
slot is uniform and the queries photo-finish.
"""

from repro.core.morsel_exec import MorselMode
from repro.experiments.common import ExperimentConfig, run_policy
from repro.runtime.trace import TraceRecorder
from repro.workloads.profiles import tpch_query

CELL = 0.0005  # seconds per timeline character
GLYPHS = {0: "#", 1: "."}  # query 0 = Q13, query 1 = Q21


def run_trace(mode: MorselMode, t_max: float) -> TraceRecorder:
    config = ExperimentConfig(n_workers=8, seed=1)
    workload = [(0.0, tpch_query("Q13", 1.0)), (0.0, tpch_query("Q21", 1.0))]
    trace = TraceRecorder(enabled=True)
    run_policy(
        "fair",
        workload,
        config,
        trace=trace,
        scheduler_overrides={"morsel_mode": mode, "t_max": t_max},
    )
    return trace


def draw(trace: TraceRecorder, n_workers: int = 8) -> None:
    end = trace.makespan()[1]
    width = int(end / CELL) + 1
    lanes = [[" "] * width for _ in range(n_workers)]
    for span in trace.task_spans:
        glyph = GLYPHS.get(span.query_id, "?")
        for cell in range(int(span.start / CELL), int(span.end / CELL) + 1):
            if cell < width:
                lanes[span.worker_id][cell] = glyph
    for worker_id, lane in enumerate(lanes):
        print(f"w{worker_id} |{''.join(lane)}|")
    stats = trace.duration_stats(task_level=True)
    print(
        f"   tasks={len(trace.task_spans)}  makespan={end*1000:.1f}ms  "
        f"task duration spread (p95/p5) = {stats['robust_spread']:.1f}x"
    )


def main() -> None:
    print("Q13 = '#'   Q21 = '.'   one column = 0.5 ms\n")
    print("--- static 60k-tuple morsels (HyPer-style 1:1 mapping) ---")
    draw(run_trace(MorselMode.STATIC, t_max=0.002))
    print()
    print("--- adaptive tasks, 1 ms target duration (the paper, §3.1) ---")
    draw(run_trace(MorselMode.ADAPTIVE, t_max=0.001))


if __name__ == "__main__":
    main()
