"""Microbenchmarks of the scheduler's hot paths.

These complement the figure benchmarks: they measure the raw cost of
the building blocks — scheduling-decision throughput of the simulator,
atomic-bitmask operations, the self-simulation loop, the optimizer, and
the mini engine's scan rate — so regressions in any layer are visible
in isolation.
"""

from __future__ import annotations

from repro.atomics import AtomicBitmask
from repro.core import SchedulerConfig, make_scheduler
from repro.core.decay import DecayParameters
from repro.engine import build_engine_query, generate_tpch
from repro.simcore import RngFactory, Simulator
from repro.tuning import TrackedQuery, optimize, simulate_policy
from repro.workloads import generate_workload, tpch_mix


def test_simulation_decision_throughput(benchmark):
    """End-to-end simulated scheduling decisions per second of wall time."""
    mix = tpch_mix(names=("Q1", "Q3", "Q6", "Q18"))
    rng = RngFactory(1).stream("workload")
    workload = generate_workload(mix, rate=15.0, duration=2.0, rng=rng)

    def run():
        scheduler = make_scheduler("stride", SchedulerConfig(n_workers=8))
        return Simulator(scheduler, workload, seed=1).run().tasks_executed

    tasks = benchmark(run)
    assert tasks > 1000


def test_bitmask_publish_drain(benchmark):
    """One push + drain cycle over a 128-slot update mask."""
    mask = AtomicBitmask(128)

    def cycle():
        for bit in (3, 64, 90, 127):
            mask.set_bit(bit)
        return mask.drain()

    drained = benchmark(cycle)
    assert len(drained) in (0, 4)


def test_self_simulation_speed(benchmark):
    """One cost-function evaluation over a 100-query tracked workload."""
    tracked = [
        TrackedQuery(
            group_id=i,
            name=f"q{i}",
            scale_factor=1.0,
            arrival_offset=0.01 * i,
            work=0.005 + 0.002 * (i % 10),
        )
        for i in range(100)
    ]
    params = DecayParameters(decay=0.8, d_start=3)
    cost, steps = benchmark(simulate_policy, tracked, params, 0.002)
    assert steps > 100


def test_optimizer_run(benchmark):
    """A full directional-search optimization (§4: 20-100ms in Umbra)."""
    tracked = [
        TrackedQuery(
            group_id=i,
            name=f"q{i}",
            scale_factor=1.0,
            arrival_offset=0.02 * i,
            work=0.004 if i % 4 else 0.1,
        )
        for i in range(50)
    ]
    result = benchmark(optimize, tracked, DecayParameters(), 0.002)
    assert result.evaluations > 10


def test_engine_scan_throughput(benchmark):
    """Tuples/second of the real engine's Q6 filter+sum scan."""
    db = generate_tpch(scale_factor=0.02, seed=0)

    def scan():
        return build_engine_query("Q6", db).execute(morsel_rows=65_536)

    result = benchmark(scan)
    assert result > 0.0


def test_engine_join_pipeline(benchmark):
    """The Q3 build/build/probe chain on the real engine."""
    db = generate_tpch(scale_factor=0.01, seed=0)

    def join():
        return build_engine_query("Q3", db).execute(morsel_rows=65_536)

    rows = benchmark(join)
    assert len(rows) <= 10
