"""Benchmark regenerating Figure 7: geomean latency under increasing load.

Paper shape: the self-tuning scheduler keeps near-flat SF3 latencies as
load rises (paper: ~17% degradation 0.8 -> 1.0 vs ~63% for fair, ~2x
advantage at full load, >4.5x vs legacy Umbra, >5x vs FIFO).
"""

from benchmarks.conftest import run_once
from repro.experiments import figure7

LOADS = (0.8, 0.9, 1.0)


def test_figure7(benchmark, bench_config):
    result = run_once(
        benchmark, lambda: figure7.run(bench_config, loads=LOADS)
    )
    print()
    print(result.render())

    def sf3_at(scheduler, load):
        return dict(result.series(scheduler, 3.0))[load]

    # Ordering at high load: tuning < fair <= umbra << fifo.
    assert sf3_at("tuning", 1.0) < sf3_at("fair", 1.0)
    assert sf3_at("tuning", 1.0) < sf3_at("umbra", 1.0)
    assert sf3_at("fifo", 1.0) > 3.0 * sf3_at("tuning", 1.0)
    # Graceful degradation: tuning's SF3 geomean degrades less than
    # fair's from the lowest to the highest load.
    assert result.degradation("tuning", 3.0) < result.degradation("fair", 3.0) * 1.1
    print(f"degradation 0.8->1.0: tuning {result.degradation('tuning', 3.0):.2f}x, "
          f"fair {result.degradation('fair', 3.0):.2f}x, "
          f"fifo {result.degradation('fifo', 3.0):.2f}x")
