"""Shared benchmark configuration.

Every figure benchmark runs its experiment exactly once (rounds=1): the
simulations are deterministic, so repeated rounds would only re-measure
Python's execution of the same event sequence.  The rendered figure
tables are printed so the benchmark log doubles as the reproduction
record (see EXPERIMENTS.md).
"""

from __future__ import annotations

import pytest

from repro.experiments import ExperimentConfig


@pytest.fixture(scope="session")
def bench_config() -> ExperimentConfig:
    """The scaled-down configuration used by the figure benchmarks.

    The paper's runs last 5-30 minutes on real hardware; the pure-Python
    discrete-event simulation processes roughly 10k scheduling decisions
    per simulated worker-second, so the benchmarks use O(10s) windows.
    All comparisons are within-workload, so relative effects survive.
    """
    return ExperimentConfig(
        n_workers=20,
        duration=10.0,
        tracking_duration=2.0,
        refresh_duration=6.0,
        seed=42,
    )


def run_once(benchmark, fn):
    """Run an experiment exactly once under pytest-benchmark timing."""
    return benchmark.pedantic(fn, rounds=1, iterations=1)
