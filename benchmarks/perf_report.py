"""Performance report for the simulation kernel.

Measures the event-loop fast path on the reference scheduling scenario
(the workload of ``bench_micro.py::test_simulation_decision_throughput``)
plus the wall time of representative figure sweep cells, and writes the
numbers to ``BENCH_simcore.json`` at the repository root.

The committed JSON records the seed-revision baseline next to the
current measurement, so kernel regressions show up as a ratio without
having to check out old revisions.  Absolute numbers are machine
dependent; the ratio on one machine is the comparable quantity.

Usage::

    PYTHONPATH=src python benchmarks/perf_report.py            # full report
    PYTHONPATH=src python benchmarks/perf_report.py --smoke    # CI smoke
    PYTHONPATH=src python benchmarks/perf_report.py -o out.json
"""

from __future__ import annotations

import argparse
import json
import platform
import time
from pathlib import Path

from repro.core import SchedulerConfig, make_scheduler
from repro.experiments import figure7
from repro.experiments.common import (
    ExperimentConfig,
    clear_isolated_latency_cache,
    measure_isolated_latencies,
)
from repro.simcore import RngFactory, Simulator
from repro.workloads import generate_workload, tpch_mix

#: Seed-revision numbers for the reference scenario on the machine that
#: produced the committed BENCH_simcore.json (best of 5 runs).
SEED_BASELINE = {
    "wall_seconds": 0.2392546730000049,
    "tasks_executed": 12512,
    "events_processed": 25157,
}


def reference_workload():
    """The bench_micro reference scenario (kept in sync with it)."""
    mix = tpch_mix(names=("Q1", "Q3", "Q6", "Q18"))
    rng = RngFactory(1).stream("workload")
    return generate_workload(mix, rate=15.0, duration=2.0, rng=rng)


def measure_decision_throughput(repeats: int = 5) -> dict:
    """Best-of-N wall time of the reference stride simulation."""
    workload = reference_workload()
    best = float("inf")
    result = None
    for _ in range(repeats):
        scheduler = make_scheduler("stride", SchedulerConfig(n_workers=8))
        simulator = Simulator(scheduler, workload, seed=1)
        start = time.perf_counter()
        result = simulator.run()
        elapsed = time.perf_counter() - start
        best = min(best, elapsed)
    return {
        "wall_seconds": best,
        "tasks_executed": result.tasks_executed,
        "events_processed": result.events_processed,
        "tasks_per_second": result.tasks_executed / best,
        "events_per_second": result.events_processed / best,
    }


def measure_figure_cells(jobs: int = 1) -> dict:
    """Wall time of a small figure7 sweep (per cell and total)."""
    config = ExperimentConfig.quick().with_options(duration=3.0, n_workers=8)
    schedulers = ("stride", "fair")
    loads = (0.8, 1.0)
    start = time.perf_counter()
    figure7.run(config, schedulers=schedulers, loads=loads, jobs=jobs)
    total = time.perf_counter() - start
    cells = len(schedulers) * len(loads)
    return {
        "jobs": jobs,
        "cells": cells,
        "wall_seconds_total": total,
        "wall_seconds_per_cell": total / cells,
    }


def measure_base_latency_cache() -> dict:
    """Cold vs. warm cost of the memoized isolated-latency baseline.

    Every figure sweep starts by measuring each query's isolated base
    latency; the result is memoized in ``repro.experiments.common``, so
    repeat runs under the same config (e.g. the sequential and parallel
    figure sweeps below) pay the cold cost once.  The warm/cold ratio
    recorded here is the per-reuse saving.
    """
    config = ExperimentConfig.quick().with_options(duration=3.0, n_workers=8)
    queries = config.mix().queries
    clear_isolated_latency_cache()
    start = time.perf_counter()
    measure_isolated_latencies(queries, config)
    cold = time.perf_counter() - start
    start = time.perf_counter()
    measure_isolated_latencies(queries, config)
    warm = time.perf_counter() - start
    return {
        "queries": len(queries),
        "cold_seconds": cold,
        "warm_seconds": warm,
        "speedup": cold / warm if warm > 0 else float("inf"),
    }


def build_report(smoke: bool = False) -> dict:
    current = measure_decision_throughput(repeats=2 if smoke else 5)
    report = {
        "scenario": "stride, tpch_mix(Q1,Q3,Q6,Q18), rate=15/s, 2s, 8 workers",
        "baseline_seed_revision": dict(
            SEED_BASELINE,
            tasks_per_second=SEED_BASELINE["tasks_executed"]
            / SEED_BASELINE["wall_seconds"],
            events_per_second=SEED_BASELINE["events_processed"]
            / SEED_BASELINE["wall_seconds"],
        ),
        "current": current,
        "speedup_vs_seed": SEED_BASELINE["wall_seconds"] / current["wall_seconds"],
        "python": platform.python_version(),
    }
    if not smoke:
        report["base_latency_cache"] = measure_base_latency_cache()
        report["figure7_cells_sequential"] = measure_figure_cells(jobs=1)
        report["figure7_cells_parallel"] = measure_figure_cells(jobs=4)
    return report


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--smoke",
        action="store_true",
        help="fast run for CI: decision throughput only, 2 repeats",
    )
    parser.add_argument(
        "-o",
        "--output",
        default=str(Path(__file__).resolve().parent.parent / "BENCH_simcore.json"),
        help="output JSON path (default: repo-root BENCH_simcore.json)",
    )
    args = parser.parse_args(argv)
    report = build_report(smoke=args.smoke)
    Path(args.output).write_text(json.dumps(report, indent=2) + "\n")
    current = report["current"]
    print(
        f"decision throughput: {current['tasks_per_second']:,.0f} tasks/s, "
        f"{current['events_per_second']:,.0f} events/s "
        f"({current['wall_seconds']:.4f} s wall; "
        f"{report['speedup_vs_seed']:.2f}x vs seed baseline)"
    )
    print(f"report written to {args.output}")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
