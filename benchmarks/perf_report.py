"""Performance report for the simulation kernel.

Measures the event-loop fast path on the reference scheduling scenario
(the workload of ``bench_micro.py::test_simulation_decision_throughput``)
plus the wall time of representative figure sweep cells, and writes the
numbers to ``BENCH_simcore.json`` at the repository root.

The committed JSON records the seed-revision baseline next to the
current measurement, so kernel regressions show up as a ratio without
having to check out old revisions.  Absolute numbers are machine
dependent; the ratio on one machine is the comparable quantity.

Usage::

    PYTHONPATH=src python benchmarks/perf_report.py            # full report
    PYTHONPATH=src python benchmarks/perf_report.py --smoke    # CI smoke
    PYTHONPATH=src python benchmarks/perf_report.py -o out.json
"""

from __future__ import annotations

import argparse
import json
import os
import platform
import statistics
import time
from pathlib import Path

from dataclasses import replace

from repro.core import SchedulerConfig, make_scheduler
from repro.experiments import figure7
from repro.experiments.common import (
    ExperimentConfig,
    clear_isolated_latency_cache,
    measure_isolated_latencies,
)
from repro.experiments.parallel import SweepCell, run_cells
from repro.experiments.pool import shutdown_pool
from repro.simcore import RngFactory, Simulator
from repro.workloads import generate_workload, tpch_mix

#: Seed-revision numbers for the reference scenario on the machine that
#: produced the committed BENCH_simcore.json (best of 5 runs).
SEED_BASELINE = {
    "wall_seconds": 0.2392546730000049,
    "tasks_executed": 12512,
    "events_processed": 25157,
}


def reference_workload():
    """The bench_micro reference scenario (kept in sync with it)."""
    mix = tpch_mix(names=("Q1", "Q3", "Q6", "Q18"))
    rng = RngFactory(1).stream("workload")
    return generate_workload(mix, rate=15.0, duration=2.0, rng=rng)


def measure_decision_throughput(repeats: int = 5) -> dict:
    """Median-of-N wall time of the reference stride simulation.

    The median (not the minimum) is the gated statistic: best-of-N is a
    biased estimator whose bias *shrinks* as the host gets quieter, so
    a report regenerated on a quiet machine sets a floor a normally
    loaded CI run cannot meet.  The median of the same samples is
    stable under one-sided scheduler noise.
    """
    workload = reference_workload()
    times = []
    result = None
    for _ in range(repeats):
        scheduler = make_scheduler("stride", SchedulerConfig(n_workers=8))
        simulator = Simulator(scheduler, workload, seed=1)
        start = time.perf_counter()
        result = simulator.run()
        times.append(time.perf_counter() - start)
    wall = statistics.median(times)
    return {
        "repeats": repeats,
        "wall_seconds": wall,
        "wall_seconds_best": min(times),
        "tasks_executed": result.tasks_executed,
        "events_processed": result.events_processed,
        "tasks_per_second": result.tasks_executed / wall,
        "events_per_second": result.events_processed / wall,
    }


def measure_fault_free_overhead(repeats: int = 5) -> dict:
    """Cost of arming the fault-tolerance hooks when nothing fails.

    Runs the reference scenario twice per repeat — once plain, once with
    every query carrying a (never-expiring) deadline, so the per-decide
    deadline sweep and the abort bookkeeping are armed on every group —
    and gates on the **median of the paired** armed/plain wall-time
    ratios.  Each pair runs back to back in one process, so its ratio
    cancels machine speed; the median over pairs cancels the one-sided
    scheduler jitter that made extreme-of-N statistics sign-unstable.
    The gated claim: fault tolerance you do not use is (nearly) free.
    """
    plain = reference_workload()
    armed = [(t, replace(q, deadline=1.0e6)) for t, q in plain]

    def run_once(workload):
        scheduler = make_scheduler("stride", SchedulerConfig(n_workers=8))
        simulator = Simulator(scheduler, workload, seed=1)
        start = time.perf_counter()
        simulator.run()
        return time.perf_counter() - start

    plain_times = []
    armed_times = []
    ratios = []
    for repeat in range(repeats):
        # Alternate pair order so periodic host jitter cannot land on
        # the same side of every pair.
        if repeat % 2 == 0:
            p = run_once(plain)
            a = run_once(armed)
        else:
            a = run_once(armed)
            p = run_once(plain)
        plain_times.append(p)
        armed_times.append(a)
        ratios.append(a / p)
    return {
        "repeats": repeats,
        "plain_seconds": statistics.median(plain_times),
        "armed_seconds": statistics.median(armed_times),
        "overhead_fraction": statistics.median(ratios) - 1.0,
        "overhead_fraction_min": min(ratios) - 1.0,
    }


def measure_figure_cells(jobs: int = 1) -> dict:
    """Wall time of a small figure7 sweep (per cell and total)."""
    config = ExperimentConfig.quick().with_options(duration=3.0, n_workers=8)
    schedulers = ("stride", "fair")
    loads = (0.8, 1.0)
    start = time.perf_counter()
    figure7.run(config, schedulers=schedulers, loads=loads, jobs=jobs)
    total = time.perf_counter() - start
    cells = len(schedulers) * len(loads)
    return {
        "jobs": jobs,
        "cells": cells,
        "wall_seconds_total": total,
        "wall_seconds_per_cell": total / cells,
    }


def _scaling_cells():
    """A 24-cell sweep grid (3 schedulers x 8 rates) for scaling runs."""
    config = ExperimentConfig.quick().with_options(duration=1.0, n_workers=8)
    return [
        SweepCell(
            system=system,
            rate=rate,
            salt=salt,
            config=config,
            max_time=config.duration,
        )
        for salt, system in enumerate(("stride", "fair", "fifo"))
        for rate in (4.0, 6.0, 8.0, 10.0, 12.0, 14.0, 16.0, 18.0)
    ]


def measure_sweep_scaling(job_counts=(1, 2, 4, 8)) -> dict:
    """Cold- and warm-pool wall time of a 24-cell sweep per job count.

    *Cold* shuts the shared pool down first, so the measurement pays
    worker spawn + pre-import + warmup; *warm* reruns against the pool
    the cold run just started — the steady-state cost a multi-figure
    session actually sees.  ``force_pool=True`` bypasses the auto-jobs
    fallback so the pooled path is what gets measured even on hosts
    with fewer cores than jobs (``cpu_count`` is recorded: speedups
    are only expected when cores are available).
    """
    cells = _scaling_cells()
    rows = []
    for jobs in job_counts:
        if jobs == 1:
            start = time.perf_counter()
            run_cells(cells, jobs=1)
            cold = time.perf_counter() - start
            start = time.perf_counter()
            run_cells(cells, jobs=1)
            warm = time.perf_counter() - start
        else:
            shutdown_pool()
            start = time.perf_counter()
            run_cells(cells, jobs=jobs, force_pool=True)
            cold = time.perf_counter() - start
            start = time.perf_counter()
            run_cells(cells, jobs=jobs, force_pool=True)
            warm = time.perf_counter() - start
        rows.append(
            {
                "jobs": jobs,
                "cold_seconds": cold,
                "warm_seconds": warm,
            }
        )
    shutdown_pool()
    sequential_warm = rows[0]["warm_seconds"]
    for row in rows:
        row["warm_speedup_vs_sequential"] = sequential_warm / row["warm_seconds"]
    return {
        "cells": len(cells),
        "cpu_count": os.cpu_count(),
        "runs": rows,
    }


def measure_base_latency_cache() -> dict:
    """Cold vs. warm cost of the memoized isolated-latency baseline.

    Every figure sweep starts by measuring each query's isolated base
    latency; the result is memoized in ``repro.experiments.common``, so
    repeat runs under the same config (e.g. the sequential and parallel
    figure sweeps below) pay the cold cost once.  The warm/cold ratio
    recorded here is the per-reuse saving.
    """
    config = ExperimentConfig.quick().with_options(duration=3.0, n_workers=8)
    queries = config.mix().queries
    clear_isolated_latency_cache()
    start = time.perf_counter()
    measure_isolated_latencies(queries, config)
    cold = time.perf_counter() - start
    start = time.perf_counter()
    measure_isolated_latencies(queries, config)
    warm = time.perf_counter() - start
    return {
        "queries": len(queries),
        "cold_seconds": cold,
        "warm_seconds": warm,
        "speedup": cold / warm if warm > 0 else float("inf"),
    }


def measure_streaming_latency(scale_factor: float = 0.02, repeats: int = 3) -> dict:
    """Time-to-first-batch vs time-to-last-batch for a large scan.

    Runs the streaming scan QS on the threaded backend and consumes its
    result channel live.  Pre-refactor, the first row was only available
    at query end; with the streaming result path the first batch arrives
    after roughly one morsel of the final pipeline.  The
    ``first_batch_fraction`` (TTFB / TTLB) is the gated quantity: it is
    a ratio of two measurements on the same machine, so it is stable
    where absolute wall times are not.
    """
    from repro.engine import generate_tpch
    from repro.engine.execution import EngineEnvironment, engine_query_spec
    from repro.runtime import ThreadedBackend

    db = generate_tpch(scale_factor=scale_factor, seed=7)
    samples = []
    rows = 0
    batches = 0
    for _ in range(repeats):
        backend = ThreadedBackend(
            make_scheduler(
                "stride", SchedulerConfig(n_workers=4, t_max=0.002)
            ),
            EngineEnvironment(db),
        )
        backend.start()
        start = time.perf_counter()
        handle = backend.submit(engine_query_spec("QS", db))
        first = None
        rows = 0
        batches = 0
        for batch in handle:
            if first is None:
                first = time.perf_counter() - start
            rows += len(next(iter(batch.values())))
            batches += 1
        last = time.perf_counter() - start
        backend.drain()
        backend.shutdown()
        samples.append(
            {
                "first_batch_seconds": first,
                "last_batch_seconds": last,
                "first_batch_fraction": first / last if last > 0 else 1.0,
            }
        )
    # Each sample's fraction is a paired (same-run) ratio; gate on the
    # median over repeats, like every other noise-prone gate here.
    fractions = sorted(s["first_batch_fraction"] for s in samples)
    median = fractions[len(fractions) // 2]
    chosen = next(
        s for s in samples if s["first_batch_fraction"] == median
    )
    return {
        "repeats": repeats,
        "scale_factor": scale_factor,
        "rows": rows,
        "batches": batches,
        "first_batch_seconds": chosen["first_batch_seconds"],
        "last_batch_seconds": chosen["last_batch_seconds"],
        "first_batch_fraction": chosen["first_batch_fraction"],
    }


def _cluster_workload(seed: int = 33, duration: float = 4.0):
    """The reference two-tenant cluster scenario (dashboards vs ETL)."""
    from repro.workloads import Tenant, multi_tenant_workload

    tenants = [
        Tenant(
            "dash",
            tpch_mix(sf_small=0.25, sf_large=2.0, p_small=0.75),
            rate=20.0,
            user_priority=4.0,
            sla="latency",
        ),
        Tenant(
            "etl",
            tpch_mix(sf_small=8.0, sf_large=30.0, p_small=0.5),
            rate=3.0,
            sla="bulk",
        ),
    ]
    return multi_tenant_workload(tenants, duration, RngFactory(seed))


def measure_routing(repeats: int = 3) -> dict:
    """Router overhead plus the predictive-placement tail-latency win.

    Two gated quantities, both same-machine ratios:

    * ``routing_overhead_fraction`` — wall time of the reference
      cluster workload through a *one-shard* ``ClusterRouter`` (pays
      placement, the cluster ticket registry and quota checks on every
      submit) vs the same workload submitted straight to the bare
      shard.  Each repeat times the bare and routed runs back to back
      (GC paused, order alternating) and the gated overhead is the
      **median** of the per-pair ratios.  The minimum looked appealing
      (least-interfered pair) but is sign-unstable: jitter landing on
      the bare side of a single pair produces a *negative* "overhead"
      that the committed report then enshrines as the floor — exactly
      what happened to the seed report (-2.4% min vs +6.9% median).
      The median moves only if most pairs move, which is what a real
      bookkeeping regression does; the min is kept in the JSON for
      reporting.
    * ``latency_class_p99`` — p99 latency of the latency-critical SLA
      class on a 4-shard cluster under predictive vs round-robin
      placement.  Predictive must win; in the model environment both
      runs are fully deterministic, so the comparison is exact.
    """
    from repro.cluster import ClusterRouter
    from repro.metrics import percentile
    from repro.server import AnalyticsServer
    from repro.workloads import sla_of, tenant_of

    workload = _cluster_workload()
    passes = 3  # amortize timer noise: one sample times several runs

    def run_bare():
        server = AnalyticsServer(
            scheduler="stride", n_workers=2, seed=7, environment="model"
        )
        start = time.perf_counter()
        for _ in range(passes):
            for at, query in workload:
                server.submit_spec(
                    query, at=at, tenant=tenant_of(query), sla=sla_of(query)
                )
            server.drain()
        return time.perf_counter() - start

    def run_routed():
        router = ClusterRouter(
            n_shards=1,
            scheduler="stride",
            n_workers=2,
            seed=7,
            environment="model",
        )
        start = time.perf_counter()
        for _ in range(passes):
            router.submit_workload(workload)
            router.drain()
        return time.perf_counter() - start

    import gc

    best_bare = float("inf")
    best_routed = float("inf")
    ratios = []
    gc_was_enabled = gc.isenabled()
    gc.disable()  # a collection landing inside one sample skews its pair
    try:
        for repeat in range(repeats):
            gc.collect()
            # Alternate which run goes first so periodic host jitter
            # cannot systematically land on one side of every pair.
            if repeat % 2 == 0:
                bare = run_bare()
                routed = run_routed()
            else:
                routed = run_routed()
                bare = run_bare()
            best_bare = min(best_bare, bare)
            best_routed = min(best_routed, routed)
            ratios.append(routed / bare)
    finally:
        if gc_was_enabled:
            gc.enable()

    def p99_latency(placement):
        router = ClusterRouter(
            n_shards=4,
            scheduler="stride",
            n_workers=2,
            seed=7,
            environment="model",
            placement=placement,
        )
        handles = router.submit_workload(workload)
        router.drain()
        latencies = [
            router.latency(handle)
            for handle in handles
            if router.tickets.sla_of(int(handle)) == "latency"
        ]
        return percentile(latencies, 99.0)

    return {
        "repeats": repeats,
        "queries": len(workload),
        "bare_seconds": best_bare,
        "routed_seconds": best_routed,
        "routing_overhead_fraction": statistics.median(ratios) - 1.0,
        "routing_overhead_min": min(ratios) - 1.0,
        "latency_class_p99": {
            "predictive": p99_latency("predictive"),
            "round_robin": p99_latency("round-robin"),
        },
    }


def measure_work_sharing(scale_factor: float = 0.02) -> dict:
    """Throughput of a high-overlap scenario with work sharing on vs off.

    Twelve concurrent engine queries — four submissions each of Q1, Q6
    and Q14, all scanning lineitem — run on the simulated backend with
    ``sharing=False`` and ``sharing=True`` against the same database.
    Specs are pinned to fixed-size morsels so both runs produce exactly
    the same chunks: adaptive sizing feeds measured wall time into the
    morsel boundaries, which perturbs numpy's pairwise summation at the
    last ulp and would make a bit-identity gate flaky for reasons that
    have nothing to do with sharing.

    Both gated quantities are *virtual-time* measurements and therefore
    deterministic — no repeats, no noise statistics:

    * ``speedup`` — makespan off / makespan on.  Sharing folds the
      twelve submissions into three executions, so the gate demands at
      least 1.5x.
    * ``results_identical`` — per-query results must be bit-identical
      between the two modes (members replay the leader's chunks; the
      fold's extra stride share arrives as scheduling passes, never as
      different morsel boundaries).
    """
    from repro.engine import generate_tpch
    from repro.server import AnalyticsServer

    names = ("Q1", "Q6", "Q14") * 4
    db = generate_tpch(scale_factor=scale_factor, seed=7)

    def fixed_spec(server, name):
        spec = server.query_spec(name)
        return replace(
            spec,
            pipelines=tuple(
                replace(p, supports_adaptive=False) for p in spec.pipelines
            ),
        )

    def run(sharing: bool):
        server = AnalyticsServer(
            scale_factor=scale_factor,
            scheduler="stride",
            n_workers=4,
            seed=7,
            database=db,
            sharing=sharing,
        )
        tickets = [server.submit_spec(fixed_spec(server, n)) for n in names]
        records = server.run()
        makespan = max(r.completion_time for r in records)
        results = [repr(server.result(t)) for t in tickets]
        return makespan, results, server.sharing_stats.as_dict()

    makespan_off, results_off, _ = run(sharing=False)
    makespan_on, results_on, stats = run(sharing=True)
    return {
        "queries": len(names),
        "scale_factor": scale_factor,
        "makespan_off_virtual_seconds": makespan_off,
        "makespan_on_virtual_seconds": makespan_on,
        "speedup": makespan_off / makespan_on,
        "results_identical": results_off == results_on,
        "sharing_stats": stats,
    }


def measure_tuning_overhead() -> dict:
    """Cost-bounded knob search vs the exhaustive full-replay search.

    Runs the whole-knob-space tuner twice over the same bursty tracked
    workload: once unbudgeted and uncompressed (the reference — every
    candidate replayed against the full workload) and once with a step
    budget of 60% of whatever the reference spent.  All quantities are
    simulated-step counts and replay costs, so the comparison is fully
    deterministic — no repeats, no noise statistics.

    Three gated claims: the budgeted search stays within its budget, it
    still probes a wide slice of the space (>= 5 distinct knobs), and
    the vector it lands on is within 5% of the reference's replay cost.
    """
    import random

    from repro.tuning import (
        SIM_STEP_COST,
        TrackedQuery,
        default_knob_space,
        search_knob_space,
    )

    rng = random.Random(11)
    tracked = []
    for i in range(36):
        burst = (i // 6) * 0.4
        arrival = burst + rng.uniform(0.0, 0.05)
        work = rng.uniform(0.004, 0.03)
        if i % 7 == 0:
            work *= 12.0  # long-tail queries the decay knobs act on
        tracked.append(
            TrackedQuery(
                group_id=i,
                name=f"q{i}",
                scale_factor=1.0,
                arrival_offset=arrival,
                work=work,
            )
        )

    start = time.perf_counter()
    reference = search_knob_space(
        default_knob_space(), tracked, budget_seconds=None, compress_to=None
    )
    reference_wall = time.perf_counter() - start

    budget_seconds = 0.6 * reference.simulated_steps * SIM_STEP_COST
    start = time.perf_counter()
    budgeted = search_knob_space(
        default_knob_space(), tracked, budget_seconds=budget_seconds
    )
    budgeted_wall = time.perf_counter() - start

    return {
        "tracked_queries": len(tracked),
        "reference": {
            "cost": reference.cost,
            "evaluations": reference.evaluations,
            "simulated_steps": reference.simulated_steps,
            "wall_seconds": reference_wall,
        },
        "budgeted": {
            "cost": budgeted.cost,
            "evaluations": budgeted.evaluations,
            "verified": budgeted.verified,
            "simulated_steps": budgeted.simulated_steps,
            "budget_steps": budgeted.budget_steps,
            "within_budget": budgeted.within_budget,
            "knobs_evaluated": budgeted.knobs_evaluated,
            "fidelity": budgeted.fidelity,
            "compressed_queries": budgeted.compressed_queries,
            "wall_seconds": budgeted_wall,
        },
        "budget_fraction": 0.6,
        "step_ratio": budgeted.simulated_steps / reference.simulated_steps,
        "cost_ratio": budgeted.cost / reference.cost,
    }


def build_report(smoke: bool = False) -> dict:
    current = measure_decision_throughput(repeats=2 if smoke else 5)
    report = {
        "scenario": "stride, tpch_mix(Q1,Q3,Q6,Q18), rate=15/s, 2s, 8 workers",
        "baseline_seed_revision": dict(
            SEED_BASELINE,
            tasks_per_second=SEED_BASELINE["tasks_executed"]
            / SEED_BASELINE["wall_seconds"],
            events_per_second=SEED_BASELINE["events_processed"]
            / SEED_BASELINE["wall_seconds"],
        ),
        "current": current,
        "speedup_vs_seed": SEED_BASELINE["wall_seconds"] / current["wall_seconds"],
        "python": platform.python_version(),
        "cpu_count": os.cpu_count(),
        "streaming": measure_streaming_latency(repeats=2 if smoke else 3),
        "fault_free_overhead": measure_fault_free_overhead(
            repeats=3 if smoke else 5
        ),
        "cluster_routing": measure_routing(repeats=3 if smoke else 7),
        "work_sharing": measure_work_sharing(),
        "tuning_overhead": measure_tuning_overhead(),
    }
    if not smoke:
        report["base_latency_cache"] = measure_base_latency_cache()
        report["figure7_cells_sequential"] = measure_figure_cells(jobs=1)
        report["figure7_cells_parallel"] = measure_figure_cells(jobs=4)
        report["sweep_scaling"] = measure_sweep_scaling()
    return report


def check_against(report: dict, committed: dict, tolerance: float) -> int:
    """Fail (return 1) if throughput regressed beyond ``tolerance``.

    Compares the current ``tasks_per_second`` against the committed
    report's measurement of the same scenario.  Both numbers come from
    the same machine class in CI, so the ratio is meaningful there.
    """
    reference = committed["current"]["tasks_per_second"]
    measured = report["current"]["tasks_per_second"]
    ratio = measured / reference
    floor = 1.0 - tolerance
    verdict = "OK" if ratio >= floor else "REGRESSION"
    print(
        f"throughput check: {measured:,.0f} tasks/s vs committed "
        f"{reference:,.0f} tasks/s (ratio {ratio:.2f}, floor {floor:.2f}) "
        f"-> {verdict}"
    )
    failed = ratio < floor
    # Streaming gate: once the committed report records the streaming
    # path, the first batch of a large scan must keep arriving well
    # before the last one.  The fraction is a same-machine ratio, so a
    # fixed ceiling is meaningful where absolute wall times are not.
    if "streaming" in committed and "streaming" in report:
        fraction = report["streaming"]["first_batch_fraction"]
        ceiling = 0.5
        stream_verdict = "OK" if fraction <= ceiling else "REGRESSION"
        print(
            f"streaming check: first batch at {fraction:.2f} of "
            f"time-to-last-batch (ceiling {ceiling:.2f}) -> {stream_verdict}"
        )
        failed = failed or fraction > ceiling
    # Fault-tolerance gate: arming the isolation/deadline hooks on every
    # query must stay cheap vs the plain run.  A same-machine,
    # same-process *median-of-pairs* ratio — the ceiling is wider than
    # the old best-of-N gate's 2% because the median includes typical
    # jitter instead of the single least-interfered sample.
    if "fault_free_overhead" in report:
        overhead = report["fault_free_overhead"]["overhead_fraction"]
        overhead_ceiling = 0.05
        fault_verdict = "OK" if overhead <= overhead_ceiling else "REGRESSION"
        print(
            f"fault-free overhead check: armed deadlines cost "
            f"{overhead:+.2%} vs plain (ceiling {overhead_ceiling:.0%}) "
            f"-> {fault_verdict}"
        )
        failed = failed or overhead > overhead_ceiling
    # Cluster-routing gates: the router's per-submit bookkeeping
    # (placement, registry, quotas) must stay cheap vs submitting to the
    # bare shard, and predictive placement must beat round-robin on the
    # latency class's p99 — both deterministic model-mode runs.  The
    # overhead gate uses the median-of-pairs ratio (the minimum was
    # sign-unstable under jitter), so its ceiling is wider than the old
    # best-pair 5%.
    if "cluster_routing" in report:
        routing = report["cluster_routing"]
        overhead = routing["routing_overhead_fraction"]
        routing_ceiling = 0.12
        routing_verdict = "OK" if overhead <= routing_ceiling else "REGRESSION"
        print(
            f"routing overhead check: one-shard router costs "
            f"{overhead:+.2%} vs bare shard (ceiling {routing_ceiling:.0%}) "
            f"-> {routing_verdict}"
        )
        failed = failed or overhead > routing_ceiling
        p99 = routing["latency_class_p99"]
        placement_verdict = (
            "OK" if p99["predictive"] < p99["round_robin"] else "REGRESSION"
        )
        print(
            f"placement check: latency-class p99 "
            f"{p99['predictive'] * 1000.0:.1f} ms predictive vs "
            f"{p99['round_robin'] * 1000.0:.1f} ms round-robin "
            f"-> {placement_verdict}"
        )
        failed = failed or p99["predictive"] >= p99["round_robin"]
    # Work-sharing gates: folding eight-plus concurrent scans over the
    # same tables must cut the virtual-time makespan by at least 1.5x,
    # and per-query results must be bit-identical with sharing on or
    # off.  Both quantities are deterministic (fixed morsels, simulated
    # clock), so no repeat statistics are needed.
    if "work_sharing" in report:
        sharing = report["work_sharing"]
        speedup = sharing["speedup"]
        speedup_floor = 1.5
        identical = sharing["results_identical"]
        sharing_verdict = (
            "OK" if speedup >= speedup_floor and identical else "REGRESSION"
        )
        print(
            f"work-sharing check: sharing-on makespan speedup "
            f"{speedup:.2f}x (floor {speedup_floor:.1f}x), results "
            f"identical={identical} -> {sharing_verdict}"
        )
        failed = failed or speedup < speedup_floor or not identical
    # Tuning gates: the cost-bounded knob search must honour its step
    # budget, still probe a wide slice of the knob space, and land
    # within 5% of the exhaustive full-replay search's cost.  All three
    # quantities are simulated-step/replay-cost measurements and
    # therefore deterministic.
    if "tuning_overhead" in report:
        tuning = report["tuning_overhead"]
        budgeted = tuning["budgeted"]
        cost_ratio = tuning["cost_ratio"]
        cost_ceiling = 1.05
        knobs_floor = 5
        tuning_ok = (
            budgeted["within_budget"]
            and budgeted["knobs_evaluated"] >= knobs_floor
            and cost_ratio <= cost_ceiling
        )
        tuning_verdict = "OK" if tuning_ok else "REGRESSION"
        print(
            f"tuning check: budgeted search used "
            f"{budgeted['simulated_steps']:,} of "
            f"{budgeted['budget_steps']:,} steps "
            f"(within_budget={budgeted['within_budget']}), probed "
            f"{budgeted['knobs_evaluated']} knobs (floor {knobs_floor}), "
            f"cost ratio {cost_ratio:.3f} vs full replay "
            f"(ceiling {cost_ceiling:.2f}) -> {tuning_verdict}"
        )
        failed = failed or not tuning_ok
    return 1 if failed else 0


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--smoke",
        action="store_true",
        help="fast run for CI: decision throughput only, 2 repeats",
    )
    parser.add_argument(
        "-o",
        "--output",
        default=str(Path(__file__).resolve().parent.parent / "BENCH_simcore.json"),
        help="output JSON path (default: repo-root BENCH_simcore.json)",
    )
    parser.add_argument(
        "--check-against",
        metavar="JSON",
        default=None,
        help=(
            "compare tasks_per_second against a committed report and "
            "exit 1 on a regression beyond --tolerance"
        ),
    )
    parser.add_argument(
        "--tolerance",
        type=float,
        default=0.20,
        help="allowed relative throughput drop for --check-against",
    )
    args = parser.parse_args(argv)
    # Read the committed report up front: the output path may be the
    # same file, and the comparison must use the pre-run contents.
    committed = None
    if args.check_against is not None:
        committed = json.loads(Path(args.check_against).read_text())
    report = build_report(smoke=args.smoke)
    Path(args.output).write_text(json.dumps(report, indent=2) + "\n")
    current = report["current"]
    print(
        f"decision throughput: {current['tasks_per_second']:,.0f} tasks/s, "
        f"{current['events_per_second']:,.0f} events/s "
        f"({current['wall_seconds']:.4f} s wall; "
        f"{report['speedup_vs_seed']:.2f}x vs seed baseline)"
    )
    if "sweep_scaling" in report:
        for row in report["sweep_scaling"]["runs"]:
            print(
                f"sweep scaling: jobs={row['jobs']} "
                f"cold {row['cold_seconds']:.2f}s warm {row['warm_seconds']:.2f}s "
                f"({row['warm_speedup_vs_sequential']:.2f}x vs sequential)"
            )
    print(f"report written to {args.output}")
    if committed is not None:
        return check_against(report, committed, args.tolerance)
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
