"""Ablation benchmarks for the design choices DESIGN.md calls out.

Not a paper figure: quantifies the contribution of each ingredient —
self-tuning, decay itself, the target task duration, the EWMA weight,
and the high-load fan-out restriction — on the standard mixed workload
at 95% load.
"""

from benchmarks.conftest import run_once
from repro.experiments import ablation


def test_ablation(benchmark, bench_config):
    result = run_once(benchmark, lambda: ablation.run(bench_config))
    print()
    print(result.render())
    # Decay (tuned or not) must beat fixed priorities for short queries.
    assert result.metric("tuning", 3.0, "mean_slowdown") < result.metric(
        "fair", 3.0, "mean_slowdown"
    )
    assert result.metric("stride-no-tuning", 3.0, "mean_slowdown") < result.metric(
        "fair", 3.0, "mean_slowdown"
    )
    # A very large t_max hurts responsiveness (tail of short queries).
    assert result.metric("tuning", 3.0, "p95_slowdown") <= result.metric(
        "tmax-8ms", 3.0, "p95_slowdown"
    ) * 1.5
