"""Benchmark: alternative tuning objectives (§3.2's "other cost functions").

Runs the same high-load workload with the self-tuning scheduler under
the mean-slowdown objective (the paper's Equation 1) and a tail-focused
p95 objective, comparing the resulting short-query latency profiles.
"""

from __future__ import annotations

from benchmarks.conftest import run_once
from repro.core import SchedulerConfig, make_scheduler
from repro.experiments.common import (
    build_workload,
    measure_isolated_latencies,
    split_by_scale_factor,
)
from repro.metrics.slowdown import slowdown_summary
from repro.simcore import Simulator
from repro.workloads.load import arrival_rate_for_load


def _run_with_objective(config, workload, bases, objective):
    scheduler = make_scheduler(
        "tuning",
        SchedulerConfig(
            n_workers=config.n_workers,
            tracking_duration=config.tracking_duration,
            refresh_duration=config.refresh_duration,
            tuning_objective=objective,
        ),
    )
    result = Simulator(
        scheduler, workload, seed=config.seed, max_time=config.duration
    ).run()
    records = result.records.apply_bases(bases)
    short, _ = split_by_scale_factor(records, config.sf_small, config.sf_large)
    return slowdown_summary(short)


def test_cost_function_objectives(benchmark, bench_config):
    config = bench_config
    mix = config.mix()
    bases = measure_isolated_latencies(mix.queries, config)
    rate = arrival_rate_for_load(mix, 0.95, bases, n_workers=config.n_workers)
    workload = build_workload(mix, rate, config, salt=21)

    def run_both():
        return (
            _run_with_objective(config, workload, bases, "mean"),
            _run_with_objective(config, workload, bases, "p95"),
        )

    mean_summary, p95_summary = run_once(benchmark, run_both)
    print()
    print(
        f"objective=mean : SF3 mean={mean_summary['mean_slowdown']:.2f} "
        f"p95={mean_summary['p95_slowdown']:.2f}"
    )
    print(
        f"objective=p95  : SF3 mean={p95_summary['mean_slowdown']:.2f} "
        f"p95={p95_summary['p95_slowdown']:.2f}"
    )
    # Both objectives must produce sane, non-pathological schedules.
    assert mean_summary["mean_slowdown"] < 20.0
    assert p95_summary["mean_slowdown"] < 20.0
