"""Benchmark regenerating Figure 1: slowdowns at 95% load, ours vs PostgreSQL.

Paper shape: the tuned scheduler keeps short-query slowdowns near 1 with
a tight tail, while PostgreSQL's short-query tail is one to two orders
of magnitude worse.
"""

from benchmarks.conftest import run_once
from repro.experiments import figure1


def test_figure1(benchmark, bench_config):
    result = run_once(benchmark, lambda: figure1.run(bench_config))
    print()
    print(result.render())
    print(f"short-query p95 improvement over PostgreSQL: "
          f"{result.tail_improvement('short', 'p95'):.1f}x")
    # Paper: tail latencies often improve by more than 10x.
    assert result.tail_improvement("short", "p95") > 5.0
    assert result.tail_improvement("short", "median") > 2.0
