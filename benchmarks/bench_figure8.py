"""Benchmark regenerating Figure 8: per-query latency distributions at load 1.0.

Paper shape: for the short-running queries at SF3 the tuned scheduler
improves the mean slowdown over fair scheduling by large factors (6.8x
Q1, 2.8x Q3) with even stronger tail effects, and the legacy Umbra
scheduler shows an extremely heavy latency tail.
"""

from benchmarks.conftest import run_once
from repro.experiments import figure8


def test_figure8(benchmark, bench_config):
    config = bench_config.with_options(duration=12.0)
    result = run_once(benchmark, lambda: figure8.run(config))
    print()
    print(result.render())
    # Aggregate SF3 improvement of tuning over fair across the five
    # queries (individual cells are noisy at benchmark scale).
    improvements = [
        result.improvement(query, 3.0, "mean_slowdown", "fair")
        for query in ("Q1", "Q3", "Q6", "Q11", "Q18")
    ]
    finite = [f for f in improvements if f == f]
    mean_improvement = sum(finite) / len(finite)
    print(f"mean SF3 improvement over fair: {mean_improvement:.2f}x")
    assert mean_improvement > 1.3
    # FIFO's short-query slowdowns are catastrophic.
    assert result.improvement("Q6", 3.0, "mean_slowdown", "fifo") > 5.0
