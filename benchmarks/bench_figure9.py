"""Benchmark regenerating Figure 9: cross-system comparison under load.

Paper shape: the tuned scheduler sustains ~10x PostgreSQL's and ~1.8x
MonetDB's query throughput, keeps SF3 mean slowdowns several-fold lower
than MonetDB and 30x+ lower than PostgreSQL at load 0.96, and is the
only system whose mean slowdown stays near 1 for both query types.
"""

from benchmarks.conftest import run_once
from repro.experiments import figure9

LOADS = (0.7, 0.9, 0.96)


def test_figure9(benchmark, bench_config):
    config = bench_config.with_options(
        compile_seconds=figure9.DEFAULT_COMPILE_SECONDS
    )
    result = run_once(benchmark, lambda: figure9.run(config, loads=LOADS))
    print()
    print(result.render())

    # Throughput ratios (paper: 84% more than MonetDB, 10x PostgreSQL).
    qps_ours = result.metric("tuning", 0.96, 3.0, "qps")
    qps_monetdb = result.metric("monetdb", 0.96, 3.0, "qps")
    qps_postgres = result.metric("postgresql", 0.96, 3.0, "qps")
    print(f"QPS: tuning {qps_ours:.1f} / monetdb {qps_monetdb:.1f} "
          f"/ postgresql {qps_postgres:.1f}")
    assert qps_ours > 1.5 * qps_monetdb
    assert qps_ours > 5.0 * qps_postgres

    # SF3 mean slowdown at 0.96 (paper: 4.5x vs MonetDB, >65x vs PG).
    ours = result.metric("tuning", 0.96, 3.0, "mean_slowdown")
    assert ours < result.metric("monetdb", 0.96, 3.0, "mean_slowdown") / 3.0
    assert ours < result.metric("postgresql", 0.96, 3.0, "mean_slowdown") / 5.0

    # Graceful degradation: tuning's SF3 mean slowdown moves little from
    # load 0.7 to 0.96 (paper: 18% vs 2x MonetDB / 30x PostgreSQL).
    ours_low = result.metric("tuning", 0.7, 3.0, "mean_slowdown")
    assert ours / ours_low < 2.5
