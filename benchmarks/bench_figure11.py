"""Benchmark regenerating Figure 11: per-query slowdowns at load 0.96.

Paper shape: for the short SF3 queries the tuned scheduler improves the
mean slowdown at least 3.5x over MonetDB (up to 6.4x for Q11) and more
than 30x over PostgreSQL, with even larger tail factors; the very short
queries benefit strongly even at SF30.
"""

from benchmarks.conftest import run_once
from repro.experiments import figure9, figure11


def test_figure11(benchmark, bench_config):
    config = bench_config.with_options(
        compile_seconds=figure9.DEFAULT_COMPILE_SECONDS
    )
    result = run_once(benchmark, lambda: figure11.run(config))
    print()
    print(result.render())

    for query in ("Q3", "Q6", "Q11", "Q18"):
        monetdb_factor = result.improvement(query, 3.0, "mean_slowdown", "monetdb")
        print(f"{query}@SF3 improvement over monetdb: {monetdb_factor:.1f}x")
        assert monetdb_factor > 2.0, query
    # PostgreSQL factors aggregated over the four queries: individual
    # cells carry few samples, the aggregate must be large.
    pg_factors = [
        result.improvement(query, 3.0, "mean_slowdown", "postgresql")
        for query in ("Q3", "Q6", "Q11", "Q18")
    ]
    finite = [f for f in pg_factors if f == f]
    assert sum(finite) / len(finite) > 3.0
