"""Benchmark regenerating Figure 5: static vs adaptive morsel execution.

Paper shape: static 60k-tuple morsels produce task durations spreading
by more than an order of magnitude (the paper reports >30x across Q13
and Q21 pipelines); adaptive 1 ms tasks are uniform, and the shutdown
photo-finish reduces Q13's makespan.
"""

from benchmarks.conftest import run_once
from repro.experiments import figure5
from repro.experiments.common import ExperimentConfig


def test_figure5(benchmark):
    config = ExperimentConfig(n_workers=20, seed=42)
    result = run_once(benchmark, lambda: figure5.run(config))
    print()
    print(result.render())
    static_spread = result.spread("static-60k")
    adaptive_spread = result.spread("adaptive-1ms")
    # Robust (p95/p5) task-duration spread collapses under the adaptive
    # framework.
    static_row = next(r for r in result.rows if r["policy"] == "static-60k")
    adaptive_row = next(r for r in result.rows if r["policy"] == "adaptive-1ms")
    assert static_row["robust_spread"] > 5.0
    assert adaptive_row["robust_spread"] < 3.0
    # The photo finish helps Q13's latency (paper: "reducing the latency
    # of query 13 compared to static morsel sizes").
    assert adaptive_row["makespan_q13_ms"] < static_row["makespan_q13_ms"]
