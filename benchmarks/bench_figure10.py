"""Benchmark regenerating Figure 10: scheduling overhead vs core count.

Paper shape: total overhead is negligible (~0.05% at low core counts,
dropping to ~0.02% at 120 cores), the mask-update and local-work phases
grow with the core count, the tuning phase — confined to one core —
shrinks relatively, and finalization costs almost nothing.
"""

from benchmarks.conftest import run_once
from repro.experiments import figure10
from repro.experiments.common import ExperimentConfig

CORES = (1, 20, 40, 120)


def test_figure10(benchmark):
    config = ExperimentConfig(
        seed=42, t_max=0.004, tracking_duration=1.0, refresh_duration=3.0
    )
    result = run_once(
        benchmark,
        lambda: figure10.run(config, cores=CORES, queries_per_core=6),
    )
    print()
    print(result.render())
    rows = {row["cores"]: row for row in result.rows}
    # Total overhead stays far below 1% everywhere.
    assert all(row["total"] < 0.5 for row in result.rows)
    # The tuning share shrinks as cores are added (it uses one core).
    assert rows[120]["tuning"] < rows[20]["tuning"]
    # Mask updates grow with the core count (pushed into every worker
    # with the high-load optimization disabled).
    assert rows[120]["mask_updates"] > rows[20]["mask_updates"]
    # Finalization causes almost no overhead.
    assert rows[120]["finalization"] < 0.05
