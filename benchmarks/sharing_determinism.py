"""Bit-identity gate: work sharing must not change any query's result.

Runs a high-overlap engine-mode scenario on the simulated backend twice
— ``sharing=False`` and ``sharing=True`` — against the same generated
database, and demands that every per-query result row set is
bit-identical between the two modes.  CI repeats the script under
``PYTHONHASHSEED`` 0..2 and several workload seeds, so any dict- or
set-iteration-order dependence in the fold/attach/replay path shows up
as a digest mismatch.

Specs are pinned to fixed-size morsels (``supports_adaptive=False``):
adaptive sizing feeds *measured wall time* into the morsel boundaries,
which perturbs numpy's pairwise summation at the last ulp between any
two runs — sharing or not — and would make this gate flaky for reasons
unrelated to sharing.  The fold's extra share is granted through its
stride weight (scheduling passes), so fixed morsels lose nothing.

Usage::

    PYTHONPATH=src python benchmarks/sharing_determinism.py --seed 0

Exit status 0 when both modes agree, 1 otherwise.
"""

from __future__ import annotations

import argparse
import hashlib
from dataclasses import replace

import numpy as np

from repro.engine import generate_tpch
from repro.server import AnalyticsServer
from repro.workloads import DEFAULT_MIX_NAMES

SCALE_FACTOR = 0.02
N_QUERIES = 16


def fixed_spec(server: AnalyticsServer, name: str):
    """The named query's spec with adaptive morsel sizing pinned off."""
    spec = server.query_spec(name)
    return replace(
        spec,
        pipelines=tuple(
            replace(p, supports_adaptive=False) for p in spec.pipelines
        ),
    )


def run_scenario(database, names, sharing: bool):
    """Submit the sampled queries and return per-query result reprs."""
    server = AnalyticsServer(
        scale_factor=SCALE_FACTOR,
        scheduler="stride",
        n_workers=4,
        seed=7,
        database=database,
        sharing=sharing,
    )
    tickets = [server.submit_spec(fixed_spec(server, name)) for name in names]
    server.run()
    rows = [(name, repr(server.result(t))) for name, t in zip(names, tickets)]
    return rows, server.sharing_stats.as_dict()


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--seed",
        type=int,
        default=0,
        help="workload sampling seed (CI sweeps 0..2)",
    )
    args = parser.parse_args(argv)

    rng = np.random.default_rng(args.seed)
    names = [
        DEFAULT_MIX_NAMES[int(i)]
        for i in rng.integers(0, len(DEFAULT_MIX_NAMES), size=N_QUERIES)
    ]
    database = generate_tpch(scale_factor=SCALE_FACTOR, seed=7)

    rows_off, _ = run_scenario(database, names, sharing=False)
    rows_on, stats = run_scenario(database, names, sharing=True)

    digest_off = hashlib.sha1(repr(rows_off).encode()).hexdigest()[:16]
    digest_on = hashlib.sha1(repr(rows_on).encode()).hexdigest()[:16]
    print(f"seed={args.seed} queries={names}")
    print(f"sharing off digest: {digest_off}")
    print(f"sharing on  digest: {digest_on}")
    print(f"sharing stats     : {stats}")
    if rows_off != rows_on:
        mismatches = [
            name
            for (name, off), (_, on) in zip(rows_off, rows_on)
            if off != on
        ]
        print(f"MISMATCH: results differ for {mismatches}")
        return 1
    if stats["folds"] == 0 and stats["cache_hits"] == 0:
        # A determinism gate that never folds anything gates nothing.
        print("MISMATCH: sharing run neither folded nor hit the cache")
        return 1
    print("identical per-query results with sharing on and off")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
