"""Latency, slowdown and overhead metrics used throughout the evaluation."""

from repro.metrics.latency import LatencyRecord, LatencyCollector
from repro.metrics.overhead import OverheadAccounting, PhaseCosts
from repro.metrics.slowdown import (
    geometric_mean,
    mean_relative_slowdown,
    percentile,
    slowdown_summary,
)
from repro.metrics.report import format_table

__all__ = [
    "LatencyCollector",
    "LatencyRecord",
    "OverheadAccounting",
    "PhaseCosts",
    "format_table",
    "geometric_mean",
    "mean_relative_slowdown",
    "percentile",
    "slowdown_summary",
]
