"""Per-query latency records collected during simulation runs.

Besides the record/collector classes this module defines the *compact
wire format* used to move collectors between processes: a collector of N
records becomes a handful of flat numpy arrays (plus a small table of
distinct query names) instead of N pickled dataclass instances.  The
round trip is lossless — every float crosses as the identical 64-bit
pattern — which the parallel-sweep determinism tests rely on.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, List


@dataclass(frozen=True)
class LatencyRecord:
    """The outcome of one query in a workload run."""

    query_id: int
    name: str
    scale_factor: float
    arrival_time: float
    completion_time: float
    cpu_seconds: float
    #: Isolated-execution latency used as the slowdown baseline.  Which
    #: baseline (all-cores isolated for §5.2, single-threaded for §5.4)
    #: depends on the experiment and is filled in by the runner.
    base_latency: float = float("nan")
    #: Whether the query was cancelled instead of completing normally.
    #: Cancelled queries still complete through the finalization
    #: protocol, so they carry real completion times and CPU charges.
    cancelled: bool = False
    #: Whether the query failed (morsel exception, injected fault,
    #: missed deadline, dead worker).  Failed queries also wind down
    #: through the finalization protocol and carry real timings.
    failed: bool = False
    #: ``"ClassName: message"`` for failed queries (empty otherwise);
    #: see :func:`repro.errors.error_from_text` for the inverse mapping.
    error: str = ""

    @property
    def latency(self) -> float:
        """End-to-end latency in seconds."""
        return self.completion_time - self.arrival_time

    @property
    def slowdown(self) -> float:
        """Relative slowdown with respect to the base latency."""
        return self.latency / self.base_latency

    def with_base(self, base_latency: float) -> "LatencyRecord":
        """Return a copy with the slowdown baseline filled in."""
        return LatencyRecord(
            query_id=self.query_id,
            name=self.name,
            scale_factor=self.scale_factor,
            arrival_time=self.arrival_time,
            completion_time=self.completion_time,
            cpu_seconds=self.cpu_seconds,
            base_latency=base_latency,
            cancelled=self.cancelled,
            failed=self.failed,
            error=self.error,
        )


class LatencyCollector:
    """Accumulates latency records and offers grouped views."""

    def __init__(self) -> None:
        self._records: List[LatencyRecord] = []

    def add(self, record: LatencyRecord) -> None:
        """Store one finished query."""
        self._records.append(record)

    @property
    def records(self) -> List[LatencyRecord]:
        """All records in completion order."""
        return self._records

    def __len__(self) -> int:
        return len(self._records)

    def filter(self, predicate: Callable[[LatencyRecord], bool]) -> List[LatencyRecord]:
        """Records matching a predicate."""
        return [r for r in self._records if predicate(r)]

    def by_scale_factor(self) -> Dict[float, List[LatencyRecord]]:
        """Group records by TPC-H scale factor (the SF3/SF30 split)."""
        groups: Dict[float, List[LatencyRecord]] = {}
        for record in self._records:
            groups.setdefault(record.scale_factor, []).append(record)
        return groups

    def by_query(self) -> Dict[str, List[LatencyRecord]]:
        """Group records by query name."""
        groups: Dict[str, List[LatencyRecord]] = {}
        for record in self._records:
            groups.setdefault(record.name, []).append(record)
        return groups

    def queries_per_second(self, duration: float) -> float:
        """Completed-query throughput over a run of ``duration`` seconds."""
        if duration <= 0.0:
            return 0.0
        return len(self._records) / duration

    def apply_bases(self, bases: Dict[str, float]) -> "LatencyCollector":
        """Return a new collector whose records carry base latencies.

        ``bases`` maps a query key (``f"{name}@{scale_factor}"``) to the
        isolated latency measured for that query.
        """
        out = LatencyCollector()
        for record in self._records:
            key = f"{record.name}@{record.scale_factor:g}"
            base = bases.get(key)
            out.add(record.with_base(base) if base is not None else record)
        return out

    # ------------------------------------------------------------------
    # Compact wire format (process-pool handoff)
    # ------------------------------------------------------------------
    def to_arrays(self) -> dict:
        """Encode all records as flat arrays plus a name table.

        The payload holds one ``int64`` array (query ids), one ``int32``
        array of indices into the distinct-name table, and five
        ``float64`` arrays — ~48 bytes per record on the wire, versus a
        full pickled dataclass instance each.  ``float64`` is exactly
        Python's float, so every value (including NaN base latencies)
        round-trips bit-for-bit.
        """
        import numpy as np

        records = self._records
        names: List[str] = []
        name_index: Dict[str, int] = {}
        name_ids = np.empty(len(records), dtype=np.int32)
        for i, record in enumerate(records):
            idx = name_index.get(record.name)
            if idx is None:
                idx = len(names)
                name_index[record.name] = idx
                names.append(record.name)
            name_ids[i] = idx
        return {
            "names": names,
            "name_ids": name_ids,
            "query_ids": np.array(
                [r.query_id for r in records], dtype=np.int64
            ),
            "scale_factors": np.array(
                [r.scale_factor for r in records], dtype=np.float64
            ),
            "arrival_times": np.array(
                [r.arrival_time for r in records], dtype=np.float64
            ),
            "completion_times": np.array(
                [r.completion_time for r in records], dtype=np.float64
            ),
            "cpu_seconds": np.array(
                [r.cpu_seconds for r in records], dtype=np.float64
            ),
            "base_latencies": np.array(
                [r.base_latency for r in records], dtype=np.float64
            ),
            "cancelled": np.array(
                [r.cancelled for r in records], dtype=np.bool_
            ),
            "failed": np.array(
                [r.failed for r in records], dtype=np.bool_
            ),
            # Error texts are almost always empty; a plain list keeps
            # the (rare) non-empty strings lossless on the wire.
            "errors": [r.error for r in records],
        }

    @classmethod
    def from_arrays(cls, payload: dict) -> "LatencyCollector":
        """Inverse of :meth:`to_arrays` (lossless)."""
        out = cls()
        names = payload["names"]
        name_ids = payload["name_ids"]
        query_ids = payload["query_ids"]
        scale_factors = payload["scale_factors"]
        arrivals = payload["arrival_times"]
        completions = payload["completion_times"]
        cpu = payload["cpu_seconds"]
        bases = payload["base_latencies"]
        # Older payloads (pre-streaming / pre-fault-tolerance) lack the
        # cancelled and failed/errors columns.
        cancelled = payload.get("cancelled")
        failed = payload.get("failed")
        errors = payload.get("errors")
        add = out.add
        for i in range(len(query_ids)):
            add(
                LatencyRecord(
                    query_id=int(query_ids[i]),
                    name=names[name_ids[i]],
                    scale_factor=float(scale_factors[i]),
                    arrival_time=float(arrivals[i]),
                    completion_time=float(completions[i]),
                    cpu_seconds=float(cpu[i]),
                    base_latency=float(bases[i]),
                    cancelled=bool(cancelled[i]) if cancelled is not None else False,
                    failed=bool(failed[i]) if failed is not None else False,
                    error=errors[i] if errors is not None else "",
                )
            )
        return out


def query_key(name: str, scale_factor: float) -> str:
    """Canonical key used to look up base latencies."""
    return f"{name}@{scale_factor:g}"
