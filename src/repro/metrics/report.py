"""Plain-text table rendering for experiment output.

Every experiment driver prints the rows/series the corresponding paper
figure reports.  A tiny fixed-width renderer keeps the output readable in
terminals and in the benchmark logs without pulling in a dependency.
"""

from __future__ import annotations

from typing import Iterable, List, Sequence, Union

Cell = Union[str, int, float]


def _format_cell(cell: Cell) -> str:
    if isinstance(cell, bool):
        return str(cell)
    if isinstance(cell, int):
        return str(cell)
    if isinstance(cell, float):
        if cell != cell:  # NaN
            return "-"
        magnitude = abs(cell)
        if magnitude != 0.0 and (magnitude >= 1e5 or magnitude < 1e-3):
            return f"{cell:.3e}"
        return f"{cell:.4g}"
    return str(cell)


def format_table(
    headers: Sequence[str],
    rows: Iterable[Sequence[Cell]],
    title: str = "",
) -> str:
    """Render a fixed-width text table.

    >>> print(format_table(["a", "b"], [[1, 2.5]]))
    a  b
    -  ---
    1  2.5
    """
    text_rows: List[List[str]] = [[_format_cell(c) for c in row] for row in rows]
    widths = [len(h) for h in headers]
    for row in text_rows:
        for i, cell in enumerate(row):
            widths[i] = max(widths[i], len(cell))
    lines: List[str] = []
    if title:
        lines.append(title)
        lines.append("=" * len(title))
    lines.append("  ".join(h.ljust(widths[i]) for i, h in enumerate(headers)).rstrip())
    lines.append("  ".join("-" * widths[i] for i in range(len(headers))).rstrip())
    for row in text_rows:
        lines.append(
            "  ".join(cell.ljust(widths[i]) for i, cell in enumerate(row)).rstrip()
        )
    return "\n".join(lines)
