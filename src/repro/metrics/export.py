"""Exporting experiment results for downstream analysis.

Every experiment driver produces plain ``rows`` (lists of dicts); these
helpers write them as CSV or JSON so results can be plotted or diffed
outside Python.  Latency records and execution traces get dedicated
writers because they are the most common raw exports.
"""

from __future__ import annotations

import csv
import json
from pathlib import Path
from typing import Iterable, List, Mapping, Sequence, Union

from repro.metrics.latency import LatencyRecord
from repro.runtime.trace import MorselSpan

PathLike = Union[str, Path]


def rows_to_csv(rows: Sequence[Mapping], path: PathLike) -> Path:
    """Write experiment rows (list of dicts) to a CSV file.

    The header is the union of all keys in first-seen order, so rows
    with heterogeneous keys export cleanly (missing cells stay empty).
    """
    path = Path(path)
    fieldnames: List[str] = []
    for row in rows:
        for key in row:
            if key not in fieldnames:
                fieldnames.append(key)
    with path.open("w", newline="") as handle:
        writer = csv.DictWriter(handle, fieldnames=fieldnames, restval="")
        writer.writeheader()
        for row in rows:
            writer.writerow(dict(row))
    return path


def rows_to_json(rows: Sequence[Mapping], path: PathLike) -> Path:
    """Write experiment rows to a JSON file (list of objects)."""
    path = Path(path)
    with path.open("w") as handle:
        json.dump([dict(row) for row in rows], handle, indent=2, default=str)
    return path


def latency_records_to_csv(
    records: Iterable[LatencyRecord], path: PathLike
) -> Path:
    """Write raw latency records (one row per completed query)."""
    rows = [
        {
            "query_id": r.query_id,
            "name": r.name,
            "scale_factor": r.scale_factor,
            "arrival_time": r.arrival_time,
            "completion_time": r.completion_time,
            "latency": r.latency,
            "cpu_seconds": r.cpu_seconds,
            "base_latency": r.base_latency,
            "slowdown": r.slowdown,
        }
        for r in records
    ]
    return rows_to_csv(rows, path)


def sharing_stats_rows(stats, label: str = "total") -> List[dict]:
    """One export row per work-sharing counter surface.

    ``stats`` is a :class:`~repro.sharing.SharingStats` (server) or any
    object with ``as_dict()``; pass several labelled surfaces (e.g. one
    per shard plus the cluster total) by calling this per surface and
    concatenating.
    """
    row = {"surface": label}
    row.update(stats.as_dict())
    return [row]


def sharing_stats_to_csv(
    surfaces: Mapping[str, object], path: PathLike
) -> Path:
    """Write labelled work-sharing counters (label -> stats) as CSV.

    Rows are emitted in sorted-label order so exports are deterministic
    regardless of how the mapping was built.
    """
    rows: List[dict] = []
    for label in sorted(surfaces):
        rows.extend(sharing_stats_rows(surfaces[label], label))
    return rows_to_csv(rows, path)


def tuning_stats_rows(cycles: Iterable, label: str = "total") -> List[dict]:
    """One export row per tuning cycle, labelled by surface.

    ``cycles`` is an iterable of
    :class:`~repro.tuning.controller.TuningCycleStats` (or any object
    with ``as_dict()``); each row carries the cycle's mode, costs,
    evaluation counts, budget spend and the chosen knob vector
    (``knob:<name>`` columns).  Mirrors :func:`sharing_stats_rows`: pass
    several labelled surfaces (e.g. one per shard) by calling this per
    surface and concatenating.
    """
    rows: List[dict] = []
    for stats in cycles:
        row = {"surface": label}
        row.update(stats.as_dict())
        rows.append(row)
    return rows


def tuning_stats_to_csv(
    surfaces: Mapping[str, Iterable], path: PathLike
) -> Path:
    """Write labelled tuning cycles (label -> cycle list) as CSV.

    Rows are emitted in sorted-label order, cycles within a surface in
    cycle order, so exports are deterministic regardless of how the
    mapping was built.  Knob columns appear in first-seen order; cycles
    that never touched a knob leave its cell empty.
    """
    rows: List[dict] = []
    for label in sorted(surfaces):
        rows.extend(tuning_stats_rows(surfaces[label], label))
    return rows_to_csv(rows, path)


def trace_to_csv(spans: Iterable[MorselSpan], path: PathLike) -> Path:
    """Write morsel/task spans (e.g. for external Gantt rendering)."""
    rows = [
        {
            "worker_id": s.worker_id,
            "start": s.start,
            "end": s.end,
            "duration": s.duration,
            "query_id": s.query_id,
            "pipeline_index": s.pipeline_index,
            "phase": s.phase,
            "tuples": s.tuples,
        }
        for s in spans
    ]
    return rows_to_csv(rows, path)
