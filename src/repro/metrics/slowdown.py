"""Slowdown statistics: the metrics the paper's evaluation reports.

* geometric-mean latency (Figure 7, Figure 9 panel 1);
* mean relative slowdown — the cost function of Equations 1/3
  (Figure 9 panel 2, Figures 8 and 11);
* tail percentiles of the relative slowdown (Figure 9 panel 3).
"""

from __future__ import annotations

import math
from typing import Dict, Iterable, List, Sequence

from repro.metrics.latency import LatencyRecord


def geometric_mean(values: Iterable[float]) -> float:
    """Geometric mean; returns NaN for empty input, like the paper's plots."""
    log_sum = 0.0
    count = 0
    for value in values:
        if value <= 0.0:
            raise ValueError("geometric mean requires positive values")
        log_sum += math.log(value)
        count += 1
    if count == 0:
        return float("nan")
    return math.exp(log_sum / count)


def percentile(values: Sequence[float], q: float) -> float:
    """Linear-interpolated percentile (q in [0, 100])."""
    if not values:
        return float("nan")
    if not 0.0 <= q <= 100.0:
        raise ValueError("percentile q must be in [0, 100]")
    ordered = sorted(values)
    if len(ordered) == 1:
        return ordered[0]
    rank = (q / 100.0) * (len(ordered) - 1)
    lower = int(math.floor(rank))
    upper = int(math.ceil(rank))
    if lower == upper:
        return ordered[lower]
    frac = rank - lower
    return ordered[lower] * (1.0 - frac) + ordered[upper] * frac


def mean_relative_slowdown(records: Iterable[LatencyRecord]) -> float:
    """The paper's cost function: mean of latency / base-latency (Eq. 1)."""
    slowdowns = [r.slowdown for r in records]
    if not slowdowns:
        return float("nan")
    return sum(slowdowns) / len(slowdowns)


def slowdown_summary(records: Sequence[LatencyRecord]) -> Dict[str, float]:
    """The full metric set reported across Figures 7-9 and 11."""
    if not records:
        return {
            "count": 0,
            "geomean_latency": float("nan"),
            "mean_slowdown": float("nan"),
            "p50_slowdown": float("nan"),
            "p95_slowdown": float("nan"),
            "p99_slowdown": float("nan"),
            "max_slowdown": float("nan"),
        }
    latencies: List[float] = [r.latency for r in records]
    slowdowns: List[float] = [r.slowdown for r in records]
    return {
        "count": len(records),
        "geomean_latency": geometric_mean(latencies),
        "mean_slowdown": sum(slowdowns) / len(slowdowns),
        "p50_slowdown": percentile(slowdowns, 50.0),
        "p95_slowdown": percentile(slowdowns, 95.0),
        "p99_slowdown": percentile(slowdowns, 99.0),
        "max_slowdown": max(slowdowns),
    }
