"""Scheduling-overhead accounting by phase (Figure 10).

Figure 10 breaks the scheduler's overhead into four phases:

* **mask updates** — pushing change/return bits into the workers' atomic
  update masks when a task set is installed (grows linearly with cores);
* **local work** — each worker pulling outstanding updates into its local
  scheduling state (activity mask, pass values, priorities);
* **finalization** — the task-set finalization protocol (state-array
  scans, counter updates);
* **tuning** — workload tracking plus the directional-search optimizer,
  confined to a single worker.

In the original C++ system these phases are measured with hardware
timers.  The simulation counts the *protocol operations* instead and
charges a calibrated per-operation cost, which reproduces the relative
overhead shape: operation counts, not machine speed, determine how each
phase scales with the core count.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict

PHASES = ("mask_updates", "local_work", "finalization", "tuning")


@dataclass(frozen=True)
class PhaseCosts:
    """Seconds charged per protocol operation, calibrated to §2.3/§5.3.

    The paper measures each scheduling decision at "less than one
    microsecond"; the individual atomic operations within it are a
    fraction of that.
    """

    mask_update_op: float = 5.0e-8
    local_work_op: float = 1.0e-7
    finalization_op: float = 1.0e-7
    #: Tuning cost is charged as real simulated seconds, factor 1.
    tuning_second: float = 1.0


class OverheadAccounting:
    """Counts protocol operations and converts them to overhead time."""

    def __init__(self, costs: PhaseCosts = PhaseCosts()) -> None:
        self.costs = costs
        self.ops: Dict[str, int] = {phase: 0 for phase in PHASES}
        self.seconds: Dict[str, float] = {phase: 0.0 for phase in PHASES}
        #: Total busy (query-execution) seconds across all workers.
        self.busy_seconds = 0.0

    # ------------------------------------------------------------------
    # Charging
    # ------------------------------------------------------------------
    def charge_mask_updates(self, n_ops: int) -> None:
        """Atomic fetch-or pushes into worker update masks."""
        self.ops["mask_updates"] += n_ops
        self.seconds["mask_updates"] += n_ops * self.costs.mask_update_op

    def charge_local_work(self, n_ops: int) -> None:
        """Worker-local pulls: mask exchanges plus per-slot state updates."""
        self.ops["local_work"] += n_ops
        self.seconds["local_work"] += n_ops * self.costs.local_work_op

    def charge_finalization(self, n_ops: int) -> None:
        """State-array exchanges and finalization-counter updates."""
        self.ops["finalization"] += n_ops
        self.seconds["finalization"] += n_ops * self.costs.finalization_op

    def charge_tuning(self, seconds: float) -> None:
        """Tracking/optimization time on the tuning worker."""
        self.ops["tuning"] += 1
        self.seconds["tuning"] += seconds * self.costs.tuning_second

    def charge_busy(self, seconds: float) -> None:
        """Query-execution time (the denominator of the overhead ratio)."""
        self.busy_seconds += seconds

    # ------------------------------------------------------------------
    # Reporting
    # ------------------------------------------------------------------
    def overhead_fraction(self, phase: str) -> float:
        """Overhead of one phase relative to total execution time."""
        total = self.busy_seconds + sum(self.seconds.values())
        if total <= 0.0:
            return 0.0
        return self.seconds[phase] / total

    def total_overhead_fraction(self) -> float:
        """Summed overhead of all phases relative to total time."""
        return sum(self.overhead_fraction(phase) for phase in PHASES)

    def breakdown_percent(self) -> Dict[str, float]:
        """Per-phase overhead in percent (the unit of Figure 10)."""
        return {phase: 100.0 * self.overhead_fraction(phase) for phase in PHASES}

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        parts = ", ".join(
            f"{phase}={100.0 * self.overhead_fraction(phase):.4f}%" for phase in PHASES
        )
        return f"OverheadAccounting({parts})"
