"""Deterministic fault injection for chaos-testing the runtime.

A :class:`FaultPlan` is a seeded, picklable description of *what should
go wrong*: raise inside an operator at morsel N, stall a worker, kill a
worker, make a channel consumer disappear mid-stream.  Plans install on
any :class:`~repro.runtime.backend.ExecutionBackend` via
``install_faults``; the backend wraps its execution environment in a
:class:`FaultyEnvironment` that fires the planned faults at exactly the
planned morsels.

Determinism contract: on :class:`~repro.runtime.simulated.SimulatedBackend`
the same plan produces bit-for-bit identical failure records and
survivor results.  The wrapper intentionally does **not** expose the
batched fast-cost interface (``morsel_cost_factors`` / ``peek_noise``),
so the executor takes the per-morsel ``run_morsel`` path — which
consumes the shared noise stream one draw per morsel, exactly like the
batched paths it replaces (guarded by the determinism tests).  Virtual
time sees stalls as deterministic duration inflation and worker death
as a query failure (there is no worker to kill); real-thread backends
sleep and raise :class:`~repro.errors.WorkerDiedError` respectively.
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import Dict, Iterable, List, Optional, Tuple

from repro.errors import InjectedFault, ReproError, WorkerDiedError

#: Raise :class:`InjectedFault` inside the target query's morsel N.
OPERATOR_RAISE = "operator_raise"
#: Stall the worker executing the target query's morsel N.
WORKER_STALL = "worker_stall"
#: Kill the worker executing the target query's morsel N (thread retires
#: and is respawned; on the process backend the epoch worker dies and
#: the pool is rebuilt; in pure virtual time the query fails).
WORKER_DEATH = "worker_death"
#: The target query's result consumer disappears: its channel fails
#: after ``after_chunks`` chunks, exercising producer-side resilience.
CONSUMER_GONE = "consumer_gone"

FAULT_KINDS = (OPERATOR_RAISE, WORKER_STALL, WORKER_DEATH, CONSUMER_GONE)


@dataclass(frozen=True)
class FaultSpec:
    """One planned fault.

    Targeting: ``query`` matches by spec name, ``query_index`` by the
    scheduler's arrival index; with neither set the fault hits the first
    query that executes a morsel.  Each fault fires at most once per
    plan installation, so retried queries are not re-poisoned.
    """

    kind: str
    query: Optional[str] = None
    query_index: Optional[int] = None
    #: Fire on the Nth executed morsel of the target query (0-based,
    #: counted across all its pipelines).
    morsel: int = 0
    #: Stall duration for :data:`WORKER_STALL` (real seconds on the
    #: threaded backend, virtual seconds in simulation).
    stall_seconds: float = 0.05
    #: Chunk threshold for :data:`CONSUMER_GONE`.
    after_chunks: int = 1

    def __post_init__(self) -> None:
        if self.kind not in FAULT_KINDS:
            raise ReproError(f"unknown fault kind {self.kind!r}")
        if self.morsel < 0:
            raise ReproError("fault morsel index must be >= 0")
        if self.stall_seconds < 0.0:
            raise ReproError("stall_seconds must be >= 0")
        if self.after_chunks < 1:
            raise ReproError("after_chunks must be >= 1")

    def matches(self, query_id: int, name: str) -> bool:
        """Whether this fault targets the given query."""
        if self.query_index is not None:
            return query_id == self.query_index
        if self.query is not None:
            return name == self.query
        return True


@dataclass(frozen=True)
class FaultPlan:
    """A seeded, picklable set of planned faults."""

    faults: Tuple[FaultSpec, ...] = ()
    seed: int = 0

    def __post_init__(self) -> None:
        object.__setattr__(self, "faults", tuple(self.faults))

    @classmethod
    def random(
        cls,
        seed: int,
        n_queries: int,
        kinds: Iterable[str] = (OPERATOR_RAISE,),
        n_faults: int = 1,
        max_morsel: int = 8,
    ) -> "FaultPlan":
        """A reproducible random plan: same seed, same faults, always."""
        import numpy as np

        kinds = tuple(kinds)
        if not kinds or n_queries < 1:
            raise ReproError("need at least one fault kind and one query")
        rng = np.random.default_rng(seed)
        faults = []
        for _ in range(n_faults):
            faults.append(
                FaultSpec(
                    kind=kinds[int(rng.integers(len(kinds)))],
                    query_index=int(rng.integers(n_queries)),
                    morsel=int(rng.integers(max_morsel)),
                )
            )
        return cls(faults=tuple(faults), seed=seed)

    def kinds(self) -> Tuple[str, ...]:
        """The distinct fault kinds in plan order."""
        seen: List[str] = []
        for fault in self.faults:
            if fault.kind not in seen:
                seen.append(fault.kind)
        return tuple(seen)


class FaultInjector:
    """Shared firing state for one plan installation.

    Lives on the backend and survives across epochs/drains, so each
    fault fires at most once even though every epoch wraps a fresh
    environment.  ``spent`` holds indices into ``plan.faults`` (it can
    be pre-seeded when a plan crosses a process boundary); ``fired`` is
    an ordered log for tests.
    """

    def __init__(
        self,
        plan: FaultPlan,
        realtime: bool = False,
        spent: Iterable[int] = (),
        skip_kinds: Iterable[str] = (),
    ) -> None:
        self.plan = plan
        self.realtime = realtime
        self.spent = set(spent)
        self.skip_kinds = frozenset(skip_kinds)
        #: Ordered log of fired faults: (plan index, kind, query name, morsel).
        self.fired: List[Tuple[int, str, str, int]] = []

    def wrap(self, environment):
        """Wrap an execution environment (idempotent)."""
        if isinstance(environment, FaultyEnvironment):
            return environment
        return FaultyEnvironment(environment, self)

    def pending_for(self, query_id: int, name: str) -> List[Tuple[int, FaultSpec]]:
        """Un-fired faults targeting one query, in plan order."""
        return [
            (index, fault)
            for index, fault in enumerate(self.plan.faults)
            if index not in self.spent
            and fault.kind not in self.skip_kinds
            and fault.matches(query_id, name)
        ]

    def mark_fired(self, index: int, name: str, morsel: int) -> None:
        """Record one fault as fired (it will never fire again)."""
        self.spent.add(index)
        self.fired.append((index, self.plan.faults[index].kind, name, morsel))


class FaultyEnvironment:
    """Execution-environment wrapper that fires planned faults.

    Delegates everything except the batched fast-cost interface to the
    wrapped environment (see the module docstring for why that interface
    is hidden).  ``open_channel`` is always provided so consumer-gone
    faults can arm result channels even on environments that do not
    stream results themselves.
    """

    #: The batched cost-model interface the wrapper must NOT expose:
    #: its absence forces the executor onto the per-morsel path.
    _HIDDEN = frozenset(
        {
            "morsel_cost_factors",
            "next_noise",
            "peek_noise",
            "consume_noise",
            "_noise_buffer",
            "_noise_pos",
            "cache_pressure",
            "cache_pressure_cap",
        }
    )

    def __init__(self, inner, injector: FaultInjector) -> None:
        self._inner = inner
        self._injector = injector
        self._morsel_counts: Dict[int, int] = {}
        self._armed: Dict[int, List[Tuple[int, FaultSpec]]] = {}
        self._channels: Dict[int, object] = {}

    @property
    def inner(self):
        """The wrapped environment."""
        return self._inner

    def __getattr__(self, name: str):
        if name in FaultyEnvironment._HIDDEN:
            raise AttributeError(name)
        return getattr(self._inner, name)

    # The simulator wires its active-query callback through this
    # attribute; forward both directions so the wrapped cost model sees
    # the exact contention the fault-free run would.
    @property
    def active_count_fn(self):
        return getattr(self._inner, "active_count_fn", False)

    @active_count_fn.setter
    def active_count_fn(self, fn) -> None:
        self._inner.active_count_fn = fn

    def open_channel(self, query_id: int, channel) -> None:
        """Track (and delegate) a result channel registration."""
        self._channels[query_id] = channel
        inner_open = getattr(self._inner, "open_channel", None)
        if inner_open is not None:
            inner_open(query_id, channel)

    def _arm(self, query_id: int, name: str) -> List[Tuple[int, FaultSpec]]:
        """Resolve this query's faults on its first morsel.

        Consumer-gone faults arm the channel immediately (and count as
        fired); morsel-triggered kinds are kept for :meth:`run_morsel`.
        """
        injector = self._injector
        armed: List[Tuple[int, FaultSpec]] = []
        for index, fault in injector.pending_for(query_id, name):
            if fault.kind == CONSUMER_GONE:
                channel = self._channels.get(query_id)
                if channel is not None:
                    channel.fail_after(fault.after_chunks)
                    injector.mark_fired(index, name, 0)
            else:
                armed.append((index, fault))
        self._armed[query_id] = armed
        return armed

    def run_morsel(self, task_set, tuples: int) -> float:
        group = task_set.resource_group
        query_id = group.query_id
        counts = self._morsel_counts
        n = counts.get(query_id)
        if n is None:
            n = 0
            armed = self._arm(query_id, group.query.name)
        else:
            armed = self._armed.get(query_id)
        counts[query_id] = n + 1
        stall = 0.0
        if armed:
            injector = self._injector
            for index, fault in list(armed):
                if index in injector.spent:
                    armed.remove((index, fault))
                    continue
                if n < fault.morsel:
                    continue
                injector.mark_fired(index, group.query.name, n)
                armed.remove((index, fault))
                kind = fault.kind
                if kind == OPERATOR_RAISE:
                    raise InjectedFault(
                        f"injected operator fault in {group.query.name!r} "
                        f"at morsel {n}"
                    )
                if kind == WORKER_DEATH:
                    if injector.realtime:
                        raise WorkerDiedError(
                            f"injected worker death while executing "
                            f"{group.query.name!r} at morsel {n}"
                        )
                    # Pure virtual time has no worker to kill: the
                    # closest deterministic analogue is losing the work,
                    # i.e. failing the query it was executing.
                    raise InjectedFault(
                        f"injected worker death (virtual) while executing "
                        f"{group.query.name!r} at morsel {n}"
                    )
                # WORKER_STALL
                if injector.realtime:
                    time.sleep(fault.stall_seconds)
                else:
                    stall += fault.stall_seconds
        return self._inner.run_morsel(task_set, tuples) + stall


__all__ = [
    "OPERATOR_RAISE",
    "WORKER_STALL",
    "WORKER_DEATH",
    "CONSUMER_GONE",
    "FAULT_KINDS",
    "FaultSpec",
    "FaultPlan",
    "FaultInjector",
    "FaultyEnvironment",
]
