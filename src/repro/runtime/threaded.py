"""The real-thread execution backend.

:class:`ThreadedBackend` runs the *same* scheduler code the simulator
drives — the stride scheduler's slot array, update bitmasks and the
§2.3 finalization protocol — but from one OS thread per worker.  Under
this backend the :mod:`repro.atomics` primitives are genuinely
contended: the change/return masks are fetch-or'd and exchanged by
racing threads, the tagged slot pointers are CAS'd by competing
finalization coordinators, and the finalization counter decides which
worker runs the finalization logic.  The protocol invariants (no lost
or duplicated tuple, exactly one finalizer per task set, an empty slot
array after drain) are what the threaded test suite asserts.

Time is real: the :class:`~repro.runtime.clock.WallClock` starts at
``start()`` and every ``now`` the scheduler sees is monotonic seconds
since then, so latency records are shaped like the simulator's (floats
in seconds from a zero epoch).

Workers never sleep while work is available.  A worker whose
``worker_decide`` returns ``None`` parks on a per-worker event with a
small timeout: the scheduler's wake callback sets the event when a mask
update targets the worker, and the timeout bounds the cost of the
inherent publish/park race (a wake between the last mask probe and the
park would otherwise be lost).
"""

from __future__ import annotations

import threading
import time
from dataclasses import replace
from typing import Dict, List, Optional, Tuple

from repro.core.scheduler_base import SchedulerBase
from repro.core.specs import QuerySpec
from repro.errors import (
    ChannelClosedError,
    QueryFailedError,
    QueryTimeoutError,
    ReproError,
    UnknownTicketError,
    WorkerDiedError,
    WorkerFailedError,
    error_from_text,
)
from repro.metrics.latency import LatencyRecord
from repro.runtime.backend import ExecutionBackend
from repro.runtime.channel import DEFAULT_CHANNEL_CAPACITY, STREAMED
from repro.runtime.clock import WallClock
from repro.runtime.faults import FaultInjector, FaultPlan
from repro.sharing import LiveFold, SharingStats, TeeChannel, spec_fingerprint


class ThreadedBackend(ExecutionBackend):
    """Drive a scheduler with one real OS thread per worker."""

    #: Real backpressure: a producer filling a channel parks its worker
    #: thread inside the morsel, so the stride scheduler keeps charging
    #: that query and naturally deprioritizes it.
    _channel_blocking = True

    def __init__(
        self,
        scheduler: SchedulerBase,
        environment: object,
        *,
        park_timeout: float = 0.002,
        channel_capacity: int = DEFAULT_CHANNEL_CAPACITY,
        sharing: bool = False,
        sharing_attach_buffer: int = 16,
    ) -> None:
        super().__init__(channel_capacity=channel_capacity)
        if sharing_attach_buffer < 1:
            raise ReproError("sharing_attach_buffer must be at least 1")
        if scheduler.admitted_count:
            raise ReproError(
                "threaded backend needs a fresh scheduler (queries were "
                "already admitted)"
            )
        self._scheduler = scheduler
        self._environment = environment
        self._park_timeout = park_timeout
        # Install the concurrency seams immediately: queries submitted
        # before start() must already produce lock-guarded task sets.
        scheduler.enable_concurrency()
        self._clock = WallClock()
        self._threads: List[threading.Thread] = []
        self._park_events = [
            threading.Event() for _ in range(scheduler.n_workers)
        ]
        self._stop = threading.Event()
        #: Signalled on every completion (and on worker failure) so
        #: drain() and wait() can block without polling the scheduler.
        self._done = threading.Condition()
        #: group.query_id -> job id; written under the scheduler's
        #: admission lock before the group becomes runnable.
        self._jobs = {}
        #: job id -> resource group (the reverse map, for cancel()).
        self._groups = {}
        self._reported: set = set()
        self._worker_error: Optional[BaseException] = None
        #: Worker threads retired by an (injected or real) worker death;
        #: each is replaced by a fresh thread on the same worker id.
        self.dead_workers = 0
        #: Live work sharing (off by default): a compatible query
        #: arriving while a matching one is in flight attaches to it
        #: instead of being admitted; produced chunks replay to the
        #: attached queries at completion from a bounded buffer.  With
        #: sharing off every submit takes the historical path untouched.
        self._sharing = bool(sharing)
        self._attach_buffer = sharing_attach_buffer
        self.sharing_stats = SharingStats()
        self._fold_lock = threading.Lock()
        self._folds: Dict[str, LiveFold] = {}
        self._fold_by_leader: Dict[int, LiveFold] = {}
        #: Attached job id -> (fold, spec, arrival wall time).
        self._member_info: Dict[int, Tuple[LiveFold, QuerySpec, float]] = {}

    # ------------------------------------------------------------------
    # ExecutionBackend contract
    # ------------------------------------------------------------------
    @property
    def clock(self) -> WallClock:
        """Wall-clock seconds since ``start()``."""
        return self._clock

    @property
    def scheduler(self) -> SchedulerBase:
        """The scheduler this backend drives (for tests and stats)."""
        return self._scheduler

    def broadcast_knobs(self, changes) -> list:
        """Push tuned knobs into the *live* scheduler mid-run.

        Extends the base broadcast with the core decay knobs: the
        scheduler keeps running, so new parameters go through the §4
        broadcast path (every worker's decay state is recomputed from
        the closed form).
        """
        applied = super().broadcast_knobs(changes)
        if "core.decay" in changes or "core.d_start" in changes:
            params = getattr(self._scheduler, "decay_parameters", None)
            setter = getattr(self._scheduler, "set_decay_parameters", None)
            if params is not None and setter is not None:
                decay = float(changes.get("core.decay", params.decay))
                d_start = int(changes.get("core.d_start", params.d_start))
                setter(params.with_values(decay, d_start))
                applied.extend(
                    name
                    for name in ("core.decay", "core.d_start")
                    if name in changes
                )
        return applied

    def install_faults(
        self, plan: FaultPlan, *, spent=(), skip_kinds=()
    ) -> FaultInjector:
        """Install a fault plan (before submitting, so channels arm)."""
        injector = super().install_faults(
            plan, spent=spent, skip_kinds=skip_kinds
        )
        # Wrap immediately: submissions register their result channels
        # through the environment, and the wrapper must see them to arm
        # consumer-disappearance faults.
        self._environment = injector.wrap(self._environment)
        return injector

    def _do_start(self) -> None:
        scheduler = self._scheduler
        enable = getattr(self._environment, "enable_concurrency", None)
        if enable is not None:
            enable()
        scheduler.attach(
            self._environment, wake_fn=self._wake, clock=self._clock
        )
        scheduler.on_complete = self._on_complete
        self._clock.start()
        for worker_id in range(scheduler.n_workers):
            self._spawn_worker(worker_id)

    def _spawn_worker(self, worker_id: int) -> None:
        thread = threading.Thread(
            target=self._worker_loop,
            args=(worker_id,),
            name=f"repro-worker-{worker_id}",
            daemon=True,
        )
        self._threads.append(thread)
        thread.start()

    def _do_submit(self, job_id: int, spec: QuerySpec, at: Optional[float]) -> None:
        if at is not None:
            raise ReproError(
                "the threaded backend admits queries at the wall-clock "
                "instant of submit(); future arrival times are a "
                "virtual-time concept (use the simulated backend)"
            )
        # Before start() the clock reports 0.0, so pre-start submissions
        # all arrive at time zero and simply queue until workers spawn.
        now = self._clock.now()
        if self._sharing and "noshare" not in spec.tags:
            if self._try_attach(job_id, spec, now):
                return  # attached: served at the leader's completion
        self._admit(job_id, spec, now)

    def _admit(self, job_id: int, spec: QuerySpec, now: float) -> None:
        open_channel = getattr(self._environment, "open_channel", None)

        def register(group) -> None:
            self._jobs[group.query_id] = job_id
            self._groups[job_id] = group
            if open_channel is not None:
                # Before the group becomes runnable, so the engine wraps
                # the final sink ahead of the query's first morsel.
                channel = self._channels[job_id]
                fold = self._fold_by_leader.get(job_id)
                if fold is not None:
                    # Fold leader: tee produced chunks into the bounded
                    # replay buffer for the attached queries.
                    channel = TeeChannel(
                        channel,
                        fold,
                        self._attach_buffer,
                        self._on_replay_overflow,
                    )
                open_channel(group.query_id, channel)

        self._scheduler.admit_query(spec, now, on_group=register)

    # ------------------------------------------------------------------
    # Work sharing (sharing=True only)
    # ------------------------------------------------------------------
    def _try_attach(self, job_id: int, spec: QuerySpec, now: float) -> bool:
        """Attach to a matching in-flight fold, or register a new one.

        Returns ``True`` when the query attached (no scheduler
        admission); ``False`` when it must execute itself — either as
        the new leader of its fingerprint or, when the fold's replay
        buffer is exhausted, as a fresh unshared execution (counted as
        a replay fallback).
        """
        fp = spec_fingerprint(spec)
        stats = self.sharing_stats
        with self._fold_lock:
            fold = self._folds.get(fp)
            if fold is not None and fold.open and not fold.overflowed:
                if len(fold.members) < self._attach_buffer:
                    fold.members.append((job_id, spec, now))
                    self._member_info[job_id] = (fold, spec, now)
                    if len(fold.members) == 1:
                        stats.folds += 1
                    stats.attached_queries += 1
                    # §3.2 weighted fairness for live folds: the leader
                    # group now executes on behalf of one more query.
                    # The stride scheduler multiplies the slot's
                    # user_scale by fold_size, so the summed share takes
                    # effect from the group's next slot (re)init (plain
                    # int write; never the morsel budget, which would
                    # perturb result bit-identity).
                    group = self._groups.get(fold.leader_job)
                    if group is not None:
                        group.fold_size = 1 + len(fold.members)
                    return True
                stats.replay_fallbacks += 1
                return False
            fold = LiveFold(fingerprint=fp, leader_job=job_id)
            self._folds[fp] = fold
            self._fold_by_leader[job_id] = fold
            return False

    def _on_replay_overflow(self, fold: LiveFold) -> None:
        """The replay buffer overflowed: fall back to fresh scans.

        Runs on the producing worker thread, mid-put.  Every attached
        query is re-admitted as its own unshared execution and the fold
        stops accepting members; the leader continues untouched.
        """
        with self._fold_lock:
            promoted = list(fold.members)
            fold.members.clear()
            for m_job, _, _ in promoted:
                self._member_info.pop(m_job, None)
        for m_job, m_spec, _ in promoted:
            self.sharing_stats.replay_fallbacks += 1
            self._admit(m_job, m_spec, self._clock.now())

    def _do_drain(self) -> List[LatencyRecord]:
        while True:
            with self._done:
                if self._worker_error is not None:
                    raise WorkerFailedError(
                        "worker thread failed during drain"
                    ) from self._worker_error
                # Job records are written *after* the scheduler's own
                # completion bookkeeping, so counting them (not the
                # scheduler's counters) guarantees every drained job is
                # fully materialised.
                if len(self.records) >= self.submitted_count:
                    break
                self._done.wait(timeout=0.05)
            # Outside the condition: pop buffered chunks into the
            # handles' spill lists.  This is what keeps drain() deadlock
            # free — a producer parked on a full bounded channel can only
            # make progress if somebody consumes, and during drain() that
            # somebody is us.  Handles being live-streamed by the caller
            # are left alone (their consumer is elsewhere).
            for job_id in range(self.submitted_count):
                self._absorb_stream(job_id)
        for job_id in range(self.submitted_count):
            self._absorb_stream(job_id)
        fresh = [
            job_id for job_id in sorted(self.records)
            if job_id not in self._reported
        ]
        self._reported.update(fresh)
        return [self.records[job_id] for job_id in fresh]

    def _do_shutdown(self) -> None:
        self._stop.set()
        # Fail every still-open channel *before* joining: a producer
        # parked inside put() on a full channel only re-checks its exit
        # conditions when the channel signals, so without this a worker
        # mid-stream (or stranded by a dead sibling) would never observe
        # the stop flag and the join below would time out.
        self._fail_open_channels(
            ChannelClosedError("backend shut down before this stream completed")
        )
        for event in self._park_events:
            event.set()
        for thread in self._threads:
            thread.join(timeout=5.0)
        self._threads.clear()
        if self._worker_error is not None:
            raise WorkerFailedError(
                "worker thread failed before shutdown"
            ) from self._worker_error

    def _fail_open_channels(self, error: BaseException) -> None:
        """Fail every channel that has not closed cleanly (wakes parkers).

        ``ResultChannel.fail`` is a no-op on cleanly closed channels, so
        completed results are never poisoned.
        """
        for channel in list(self._channels.values()):
            channel.fail(error)

    # ------------------------------------------------------------------
    # Worker threads
    # ------------------------------------------------------------------
    def _worker_loop(self, worker_id: int) -> None:
        scheduler = self._scheduler
        clock = self._clock
        event = self._park_events[worker_id]
        park_timeout = self._park_timeout
        stop = self._stop
        try:
            while not stop.is_set():
                decision = scheduler.worker_decide(worker_id, clock.now())
                if decision is None:
                    # Parked: wait for a wake (mask update targeting this
                    # worker) or the timeout that bounds the publish/park
                    # race window.
                    event.wait(park_timeout)
                    event.clear()
                    continue
                # Under this backend worker_decide already *executed* the
                # task (the environment ran the morsels and measured real
                # durations), so completion follows immediately.
                scheduler.worker_finish(worker_id, clock.now(), decision)
        except WorkerDiedError:
            # This worker is gone, but the scheduler already wound the
            # failed query down before re-raising, so its state is
            # consistent.  Retire the thread and (unless the backend is
            # stopping) respawn a replacement on the same worker id.
            with self._done:
                self.dead_workers += 1
                self._done.notify_all()
            if not stop.is_set():
                self._spawn_worker(worker_id)
        except BaseException as exc:  # noqa: BLE001 - reported via drain
            with self._done:
                if self._worker_error is None:
                    self._worker_error = exc
                self._done.notify_all()
            self._stop.set()
            # Wake sibling workers parked on full channels — with this
            # worker gone nobody may ever consume, and a producer stuck
            # in put() would hang shutdown forever.
            self._fail_open_channels(
                WorkerFailedError(f"worker thread {worker_id} failed: {exc}")
            )
            for other in self._park_events:
                other.set()

    def _wake(self, worker_id: int) -> None:
        """Scheduler wake callback: unpark one worker thread."""
        self._park_events[worker_id].set()

    def _on_complete(self, group, record: LatencyRecord) -> None:
        """Scheduler completion hook (runs on the finalizing worker)."""
        job_id = self._jobs[group.query_id]
        channel = self._channels.get(job_id)
        fold: Optional[LiveFold] = None
        attached: List[Tuple[int, QuerySpec, float]] = []
        leader_detached = False
        if self._sharing:
            with self._fold_lock:
                fold = self._fold_by_leader.pop(job_id, None)
                if fold is not None:
                    # Seal the fold: later arrivals of this fingerprint
                    # start a fresh one instead of attaching to a
                    # completed execution.
                    fold.open = False
                    attached = list(fold.members)
                    fold.members.clear()
                    for m_job, _, _ in attached:
                        self._member_info.pop(m_job, None)
                    if self._folds.get(fold.fingerprint) is fold:
                        del self._folds[fold.fingerprint]
                    leader_detached = fold.leader_detached
        if group.cancelled:
            # The plan state is dropped, not finalized: finalization
            # would defensively drain the remaining relation through the
            # pipeline — exactly the work cancellation avoids.  The
            # channel already failed in cancel().
            discard = getattr(self._environment, "discard_query", None)
            if discard is not None:
                discard(group.query_id)
        elif group.failed:
            # Failure isolation: drop the plan state like a cancel, but
            # surface the captured cause through the channel and the
            # failures map so fetch()/result() raise QueryFailedError.
            discard = getattr(self._environment, "discard_query", None)
            if discard is not None:
                discard(group.query_id)
            if group.failure is not None:
                self.failures[job_id] = group.failure
            if channel is not None:
                error = QueryFailedError(
                    f"query job {job_id} failed: {record.error}"
                )
                error.__cause__ = group.failure
                channel.fail(error)
        else:
            finish_query = getattr(self._environment, "finish_query", None)
            if finish_query is not None:
                # A detached leader's final chunk still flows through
                # the tee (the inner channel already failed, so the put
                # is a silent drop there) — members replay a complete
                # result even though the leader's consumer left.
                value = finish_query(group.query_id)
                if value is not STREAMED and not leader_detached:
                    self.results[job_id] = value
            if channel is not None and not leader_detached:
                channel.close()
        if leader_detached and not record.failed and not record.cancelled:
            # The leader's submitter cancelled (or shed) it mid-flight;
            # the group kept executing for the attached queries, so the
            # scheduler's record reads like a normal completion.  Restate
            # the caller-visible outcome.
            cause = self.failures.get(job_id)
            if cause is not None:
                record = replace(
                    record,
                    failed=True,
                    error=f"{type(cause).__name__}: {cause}",
                )
            else:
                record = replace(record, cancelled=True)
        # Deliver the attached queries before their records are counted:
        # on group failure they inherit the leader's cause; otherwise
        # they replay the tee'd chunks (the §2.3 wind-down of any one of
        # them never disturbed the shared execution).
        if attached:
            if group.failed or group.cancelled:
                for m_job, m_spec, m_arrival in attached:
                    self._fail_attached(m_job, m_spec, m_arrival, record)
            else:
                chunks = tuple(fold.replay)
                for m_job, m_spec, m_arrival in attached:
                    self._serve_attached(
                        m_job, m_spec, m_arrival, record, chunks
                    )
        # The record is written last: drain() counts records, so a
        # counted job is guaranteed fully materialised.
        self.records[job_id] = record
        with self._done:
            self._done.notify_all()

    def _replay_to(self, job_id: int, chunks) -> None:
        """Copy replay chunks into an attached query's channel."""
        channel = self._channels.get(job_id)
        if channel is None:  # pragma: no cover - submit always registers
            return
        for kind, payload, rows in chunks:
            channel.put(kind, payload, rows)
        channel.close()

    def _serve_attached(
        self,
        job_id: int,
        spec: QuerySpec,
        arrival: float,
        leader_record: LatencyRecord,
        chunks,
    ) -> None:
        """Deliver the shared execution's result to one attached query.

        The member completes when the leader does (never before its own
        arrival).  A member whose own deadline expired by then fails
        with :class:`~repro.errors.QueryTimeoutError` without disturbing
        its siblings.
        """
        completion = max(leader_record.completion_time, arrival)
        if spec.deadline is not None and completion - arrival > spec.deadline:
            cause = QueryTimeoutError(
                f"attached query {spec.name!r} missed its {spec.deadline}s "
                f"deadline: the shared execution completed at {completion}"
            )
            record = LatencyRecord(
                query_id=-1,
                name=spec.name,
                scale_factor=spec.scale_factor,
                arrival_time=arrival,
                completion_time=completion,
                cpu_seconds=0.0,
                failed=True,
                error=f"{type(cause).__name__}: {cause}",
            )
            self.failures[job_id] = cause
            channel = self._channels.get(job_id)
            if channel is not None:
                error = QueryFailedError(
                    f"query job {job_id} failed: {record.error}"
                )
                error.__cause__ = cause
                channel.fail(error)
            self.records[job_id] = record
            return
        self._replay_to(job_id, chunks)
        self.records[job_id] = LatencyRecord(
            query_id=-1,
            name=spec.name,
            scale_factor=spec.scale_factor,
            arrival_time=arrival,
            completion_time=completion,
            cpu_seconds=0.0,
        )

    def _fail_attached(
        self,
        job_id: int,
        spec: QuerySpec,
        arrival: float,
        leader_record: LatencyRecord,
    ) -> None:
        """Fail one attached query with the shared execution's cause."""
        error_text = leader_record.error or (
            "QueryCancelledError: the shared execution was cancelled"
        )
        cause = error_from_text(error_text)
        record = LatencyRecord(
            query_id=-1,
            name=spec.name,
            scale_factor=spec.scale_factor,
            arrival_time=arrival,
            completion_time=max(leader_record.completion_time, arrival),
            cpu_seconds=0.0,
            failed=True,
            error=error_text,
        )
        self.failures[job_id] = cause
        channel = self._channels.get(job_id)
        if channel is not None:
            error = QueryFailedError(
                f"query job {job_id} failed: {record.error}"
            )
            error.__cause__ = cause
            channel.fail(error)
        self.records[job_id] = record

    # ------------------------------------------------------------------
    # Conveniences
    # ------------------------------------------------------------------
    def wait(self, job_id: int, timeout: Optional[float] = None) -> LatencyRecord:
        """Block until one job completes; returns its latency record."""
        if job_id >= self.submitted_count or job_id < 0:
            raise UnknownTicketError(f"unknown job id {job_id}")
        # The deadline runs on the OS monotonic clock, not the backend's
        # WallClock: before start() the latter is pinned at 0.0 and a
        # timed wait would never expire.
        deadline = None if timeout is None else time.monotonic() + timeout
        while True:
            with self._done:
                if job_id in self.records:
                    break
                if self._worker_error is not None:
                    raise WorkerFailedError(
                        "worker thread failed while waiting"
                    ) from self._worker_error
                remaining = 0.05
                if deadline is not None:
                    remaining = min(remaining, deadline - time.monotonic())
                    if remaining <= 0.0:
                        raise ReproError(
                            f"job {job_id} did not complete within {timeout}s"
                        )
                self._done.wait(timeout=remaining)
            # Absorb buffered chunks while waiting (same deadlock-freedom
            # argument as drain): a producer parked on this job's full
            # channel must not be able to stall the wait forever.
            self._absorb_stream(job_id)
        return self.records[job_id]

    def _detach_member(
        self, job_id: int, *, cancelled: bool, error: str = ""
    ) -> bool:
        """Detach one attached query from its fold, if it is one.

        §2.3 wind-down for members costs nothing: the member never held
        scheduler state, so detaching is pure bookkeeping — the shared
        execution and its sibling members are untouched.  Returns
        ``False`` when the job is not an attached query.
        """
        with self._fold_lock:
            info = self._member_info.pop(job_id, None)
            if info is None:
                return False
            fold, spec, arrival = info
            fold.members = [m for m in fold.members if m[0] != job_id]
        self.records[job_id] = LatencyRecord(
            query_id=-1,
            name=spec.name,
            scale_factor=spec.scale_factor,
            arrival_time=arrival,
            completion_time=self._clock.now(),
            cpu_seconds=0.0,
            cancelled=cancelled,
            failed=not cancelled,
            error=error,
        )
        with self._done:
            self._done.notify_all()
        return True

    def _detach_leader(self, job_id: int) -> bool:
        """Detach a fold leader whose execution must survive for members.

        Returns ``True`` when the leader had attached queries: the
        channel already failed (the caller's view winds down normally)
        but the group keeps executing so the members still get their
        replayed results at completion.
        """
        if not self._sharing:
            return False
        with self._fold_lock:
            fold = self._fold_by_leader.get(job_id)
            if fold is None:
                return False
            fold.open = False
            if not fold.members:
                return False
            fold.leader_detached = True
            return True

    def _do_cancel(self, job_id: int) -> None:
        if self._sharing and self._detach_member(job_id, cancelled=True):
            return
        if self._detach_leader(job_id):
            return
        group = self._groups.get(job_id)
        if group is None:
            if self._sharing:  # pragma: no cover - detach/complete race
                # The fold resolved concurrently (leader completion or
                # overflow promotion); the job's record lands through
                # that path, so there is nothing left to wind down.
                return
            raise ReproError(f"job {job_id} has no resource group")
        self._scheduler.cancel_group(group, self._clock.now())

    def _do_fail(self, job_id: int, error: BaseException) -> None:
        if self._sharing and self._detach_member(
            job_id,
            cancelled=False,
            error=f"{type(error).__name__}: {error}",
        ):
            return
        if self._detach_leader(job_id):
            return
        group = self._groups.get(job_id)
        if group is None:
            if self._sharing:  # pragma: no cover - detach/complete race
                return
            raise ReproError(f"job {job_id} has no resource group")
        self._scheduler.fail_group(group, error, self._clock.now())
