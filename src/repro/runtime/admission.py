"""Pluggable admission control: reject/block/shed, quotas, SLA classes.

PR 7 extracts the :class:`~repro.server.AnalyticsServer`'s inline
admission logic into policy objects so a cluster of shards can share
(and specialise) it.  Three pieces:

* :class:`SlaClass` — a *deliberately unfair* service class ("Unfair by
  design", arXiv 2605.02377): latency-critical queries get a large
  scheduling priority and §3.2 user-priority weight and are never shed;
  bulk analytics run at baseline weight and are first against the wall
  under overload.  Classes are first-class admission policy, not a
  per-query knob the caller has to remember.
* :class:`TenantQuota` bookkeeping — per-tenant bounds on pending
  queries, enforced *before* global capacity so one tenant cannot
  occupy a whole shard.  Violations raise the machine-distinguishable
  :class:`~repro.errors.TenantQuotaError`.
* :class:`AdmissionPolicy` and its three concrete modes, matching the
  server's historical ``admission="reject" | "block" | "shed"`` strings
  bit-for-bit in behaviour and message text.

A policy object is stateless with respect to the server: every decision
reads the live backend counters and the
:class:`~repro.runtime.tickets.TicketRegistry`, so one policy instance
could in principle be shared by many shards.
"""

from __future__ import annotations

import abc
import time
from dataclasses import dataclass
from typing import Dict, Mapping, Optional

from repro.errors import AdmissionError, ReproError, TenantQuotaError
from repro.runtime.backend import BackendState, ExecutionBackend
from repro.runtime.tickets import TicketRegistry


@dataclass(frozen=True)
class SlaClass:
    """One admission class: how unfairly its queries are treated.

    ``priority`` feeds the server's shedding order (higher survives),
    ``weight`` is applied as the §3.2 user-priority scaling inside the
    scheduler (a weight-4 query's decayed priority floors four times
    higher), and ``sheddable=False`` exempts the class from overload
    eviction entirely.
    """

    name: str
    priority: int = 0
    weight: float = 1.0
    sheddable: bool = True

    def __post_init__(self) -> None:
        if not self.name:
            raise ReproError("an SLA class needs a non-empty name")
        if self.weight <= 0.0:
            raise ReproError(
                f"SLA class {self.name!r}: weight must be positive"
            )


#: The canonical unfair pair: interactive dashboards vs. bulk analytics.
LATENCY_CRITICAL = SlaClass("latency", priority=100, weight=4.0, sheddable=False)
BULK = SlaClass("bulk", priority=0, weight=1.0, sheddable=True)

#: Name -> class for the classes every server understands by default.
DEFAULT_SLA_CLASSES: Dict[str, SlaClass] = {
    cls.name: cls for cls in (LATENCY_CRITICAL, BULK)
}


@dataclass(frozen=True)
class AdmissionRequest:
    """What a submission looks like to an admission policy."""

    priority: int = 0
    tenant: Optional[str] = None
    sla: Optional[SlaClass] = None

    @property
    def effective_priority(self) -> int:
        """Class base priority plus the caller's within-class offset."""
        base = self.sla.priority if self.sla is not None else 0
        return base + self.priority


class AdmissionPolicy(abc.ABC):
    """Decides whether one more query may enter a shard.

    Policies are consulted by ``AnalyticsServer.submit`` *before* the
    backend sees the spec.  They may admit silently, raise
    :class:`~repro.errors.AdmissionError` /
    :class:`~repro.errors.TenantQuotaError`, fail a pending victim to
    make room, or (realtime backends only) block the caller.
    """

    #: The historical ``admission=...`` string this policy implements.
    name: str = "abstract"
    #: Whether the policy needs real concurrent completions to make
    #: progress.  The server rejects such policies *at construction*
    #: on virtual-time backends, where blocking would deadlock.
    requires_realtime: bool = False

    def __init__(
        self,
        max_pending: Optional[int] = None,
        tenant_quotas: Optional[Mapping[str, int]] = None,
        default_tenant_quota: Optional[int] = None,
    ) -> None:
        if max_pending is not None and max_pending < 1:
            raise ReproError("max_pending must be at least 1")
        quotas = dict(tenant_quotas or {})
        for tenant, quota in quotas.items():
            if quota < 1:
                raise ReproError(
                    f"tenant {tenant!r}: quota must be at least 1"
                )
        if default_tenant_quota is not None and default_tenant_quota < 1:
            raise ReproError("default_tenant_quota must be at least 1")
        self.max_pending = max_pending
        self.tenant_quotas = quotas
        self.default_tenant_quota = default_tenant_quota

    # ------------------------------------------------------------------
    # The decision
    # ------------------------------------------------------------------
    def admit(
        self,
        backend: ExecutionBackend,
        tickets: TicketRegistry,
        request: AdmissionRequest,
    ) -> None:
        """Admit ``request`` or raise; may shed a victim to make room."""
        self._check_tenant_quota(backend, tickets, request)
        limit = self.max_pending
        if limit is None or backend.pending_count < limit:
            return
        self._on_full(backend, tickets, request)

    @abc.abstractmethod
    def _on_full(
        self,
        backend: ExecutionBackend,
        tickets: TicketRegistry,
        request: AdmissionRequest,
    ) -> None:
        """Handle a submission that found the shard at capacity."""

    # ------------------------------------------------------------------
    # Shared helpers
    # ------------------------------------------------------------------
    @staticmethod
    def _is_pending(backend: ExecutionBackend, ticket: int) -> bool:
        return (
            ticket not in backend.records
            and ticket not in backend.failures
            and not backend.cancelled(ticket)
        )

    def tenant_pending(
        self,
        backend: ExecutionBackend,
        tickets: TicketRegistry,
        tenant: str,
    ) -> int:
        """Pending queries currently charged to ``tenant``."""
        count = 0
        for ticket in tickets:
            if tickets.tenant_of(ticket) != tenant:
                continue
            if ticket < backend.submitted_count and self._is_pending(
                backend, ticket
            ):
                count += 1
        return count

    def _check_tenant_quota(
        self,
        backend: ExecutionBackend,
        tickets: TicketRegistry,
        request: AdmissionRequest,
    ) -> None:
        if request.tenant is None:
            return
        quota = self.tenant_quotas.get(
            request.tenant, self.default_tenant_quota
        )
        if quota is None:
            return
        pending = self.tenant_pending(backend, tickets, request.tenant)
        if pending >= quota:
            raise TenantQuotaError(
                f"tenant {request.tenant!r} is over quota: {pending} "
                f"queries pending (quota {quota}); throttle this tenant "
                f"or drain()"
            )


class RejectingAdmission(AdmissionPolicy):
    """Explicit backpressure: a full shard raises ``AdmissionError``."""

    name = "reject"

    def _on_full(self, backend, tickets, request):
        raise AdmissionError(
            f"server full: {backend.pending_count} queries "
            f"pending (max_pending={self.max_pending}); retry later or "
            f"drain()"
        )


class BlockingAdmission(AdmissionPolicy):
    """Wait for capacity — realtime backends only.

    In virtual time nothing completes between submissions, so blocking
    would deadlock; the server enforces ``requires_realtime`` eagerly
    at construction (see the PR 7 satellite fix) instead of hanging at
    submit time.
    """

    name = "block"
    requires_realtime = True

    def _on_full(self, backend, tickets, request):
        # Worker failures surface through drain()/wait(); here a closed
        # backend is the only reason to give up.
        while backend.pending_count >= self.max_pending:
            if backend.state is BackendState.CLOSED:
                raise ReproError("server shut down while blocked on admission")
            time.sleep(0.001)


class SheddingAdmission(AdmissionPolicy):
    """Degrade under overload: evict the lowest-priority pending query.

    Only *strictly* lower priorities qualify (two same-priority queries
    must not evict each other in a loop), ties resolve to the newest
    victim, and queries in a non-sheddable SLA class (latency-critical)
    are never considered.
    """

    name = "shed"

    def __init__(
        self,
        max_pending: Optional[int] = None,
        tenant_quotas: Optional[Mapping[str, int]] = None,
        default_tenant_quota: Optional[int] = None,
        sla_classes: Optional[Mapping[str, SlaClass]] = None,
    ) -> None:
        super().__init__(max_pending, tenant_quotas, default_tenant_quota)
        self.sla_classes = dict(sla_classes or DEFAULT_SLA_CLASSES)

    def _sheddable(self, tickets: TicketRegistry, ticket: int) -> bool:
        sla_name = tickets.sla_of(ticket)
        if sla_name is None:
            return True
        sla = self.sla_classes.get(sla_name)
        return sla is None or sla.sheddable

    def shed_victim(
        self,
        backend: ExecutionBackend,
        tickets: TicketRegistry,
        priority: int,
    ) -> Optional[int]:
        """The pending ticket to shed: lowest priority, newest on ties."""
        best: Optional[int] = None
        best_priority = priority
        for ticket in range(backend.submitted_count):
            if not self._is_pending(backend, ticket):
                continue
            if not self._sheddable(tickets, ticket):
                continue
            ticket_priority = tickets.priority_of(ticket, 0)
            if ticket_priority < best_priority or (
                best is not None
                and ticket_priority == tickets.priority_of(best, 0)
                and ticket > best
            ):
                best = ticket
                best_priority = ticket_priority
        return best

    def _on_full(self, backend, tickets, request):
        priority = request.effective_priority
        victim = self.shed_victim(backend, tickets, priority)
        if victim is None:
            raise AdmissionError(
                f"server full: {backend.pending_count} queries "
                f"pending (max_pending={self.max_pending}) and none has "
                f"lower priority than {priority}; retry later or drain()"
            )
        backend.fail(
            victim,
            AdmissionError(
                f"query job {victim} shed under overload to admit a "
                f"priority-{priority} query"
            ),
        )


#: ``admission=`` string -> policy class, the server's construction map.
ADMISSION_POLICIES = {
    "reject": RejectingAdmission,
    "block": BlockingAdmission,
    "shed": SheddingAdmission,
}


def make_admission_policy(
    mode: str,
    *,
    max_pending: Optional[int] = None,
    tenant_quotas: Optional[Mapping[str, int]] = None,
    default_tenant_quota: Optional[int] = None,
    sla_classes: Optional[Mapping[str, SlaClass]] = None,
) -> AdmissionPolicy:
    """Build an admission policy from its historical string name."""
    cls = ADMISSION_POLICIES.get(mode)
    if cls is None:
        raise ReproError(
            f"unknown admission policy {mode!r}; choose from "
            f"{sorted(ADMISSION_POLICIES)}"
        )
    if cls is SheddingAdmission:
        return SheddingAdmission(
            max_pending,
            tenant_quotas,
            default_tenant_quota,
            sla_classes=sla_classes,
        )
    return cls(max_pending, tenant_quotas, default_tenant_quota)
