"""Bounded result channels: how row-batches move from morsels to callers.

Before the streaming refactor every layer of the result path
materialized whole: the engine's final sink buffered all rows, the
backends stashed finished results in a dict, and the server could only
hand them out after ``drain()``.  A :class:`ResultChannel` replaces the
private buffer with an explicit, bounded, producer/consumer channel of
:class:`ResultChunk` items:

* the **engine** pushes one chunk per completed morsel when the final
  pipeline's sink can stream rows (:class:`~repro.engine.operators.CollectSink`),
  or a single terminal chunk at finalization for blocking sinks
  (aggregates, sorts, top-k — pipeline breakers cannot stream);
* the **backends** own one channel per job and close (or fail) it when
  the query completes (or is cancelled);
* the **caller** consumes through a
  :class:`~repro.runtime.handle.QueryHandle` — ``fetch``/iteration pop
  chunks as they arrive.

Two delivery regimes share the class:

``blocking=True`` (threaded backend)
    ``put`` blocks while the channel holds ``capacity`` chunks.  The
    producing worker thread parks inside the engine kernel, so the
    stride scheduler naturally stops handing that query CPU — real
    backpressure, and the peak buffered memory is bounded by
    ``capacity`` chunks no matter how large the result is.

``blocking=False`` (virtual-time backends)
    ``put`` never blocks — in virtual time no consumer can run
    concurrently with the epoch, so chunks accumulate and are delivered
    deterministically when ``drain()`` returns.  ``capacity`` still
    feeds :attr:`peak_depth` accounting.

Thread-safety: every mutation runs under one condition variable; the
sequential virtual-time paths pay a single uncontended lock acquisition
per chunk, which is noise next to the numpy kernels producing it.
"""

from __future__ import annotations

import threading
from collections import deque
from typing import Deque, Iterator, List, Optional

from repro.errors import ChannelClosedError, ReproError

#: Default bound: how many chunks a channel buffers before applying
#: backpressure (blocking mode).  Morsel-sized chunks make this a few
#: hundred KB of float64 columns.
DEFAULT_CHANNEL_CAPACITY = 8

#: Chunk kinds.
ROWS = "rows"
FINAL = "final"


class ResultChunk:
    """One increment of a query result.

    ``kind == "rows"`` carries a column batch (dict of numpy arrays) of
    ``rows`` result rows from one morsel of the final pipeline.
    ``kind == "final"`` carries the whole result object of a blocking
    sink (aggregate rows, a scalar, a dict) pushed at finalization.
    A plain slotted class: one is allocated per streamed morsel.
    """

    __slots__ = ("kind", "payload", "rows")

    def __init__(self, kind: str, payload: object, rows: int) -> None:
        self.kind = kind
        self.payload = payload
        self.rows = rows

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"ResultChunk(kind={self.kind!r}, rows={self.rows})"


class ResultChannel:
    """A bounded producer/consumer channel of :class:`ResultChunk` items."""

    def __init__(
        self,
        capacity: int = DEFAULT_CHANNEL_CAPACITY,
        *,
        blocking: bool = False,
    ) -> None:
        if capacity < 1:
            raise ReproError("channel capacity must be at least 1")
        self.capacity = capacity
        self.blocking = blocking
        self._buffer: Deque[ResultChunk] = deque()
        self._cond = threading.Condition()
        self._closed = False
        self._error: Optional[BaseException] = None
        # Armed consumer-disappearance fault (see fail_after()).
        self._fail_at_chunk: Optional[int] = None
        self._fail_with: Optional[BaseException] = None
        #: Monotone counters (observability + the bounded-memory test).
        self.chunks_put = 0
        self.rows_put = 0
        self.chunks_taken = 0
        self.peak_depth = 0

    # ------------------------------------------------------------------
    # Pickling (process-backend environments ship whole; the condition
    # variable is recreated on the other side)
    # ------------------------------------------------------------------
    def __getstate__(self) -> dict:
        state = dict(self.__dict__)
        del state["_cond"]
        return state

    def __setstate__(self, state: dict) -> None:
        self.__dict__.update(state)
        self._cond = threading.Condition()

    # ------------------------------------------------------------------
    # State
    # ------------------------------------------------------------------
    @property
    def closed(self) -> bool:
        """Whether the producer side finished (normally or by failure)."""
        return self._closed

    @property
    def failed(self) -> bool:
        """Whether the channel carries an error (e.g. cancellation)."""
        return self._error is not None

    @property
    def error(self) -> Optional[BaseException]:
        """The failure, if :meth:`fail` was called."""
        return self._error

    @property
    def depth(self) -> int:
        """Chunks currently buffered."""
        return len(self._buffer)

    # ------------------------------------------------------------------
    # Producer side
    # ------------------------------------------------------------------
    def put(self, kind: str, payload: object, rows: int) -> None:
        """Append one chunk; blocks while full in blocking mode.

        On a failed channel (cancellation) the chunk is dropped
        silently: the producer is mid-kernel and must wind down through
        the scheduler's finalization protocol, not via an exception
        raised from inside a morsel.  On a channel closed without
        failure, raises :class:`~repro.errors.ChannelClosedError` —
        producing after close is a backend bug.
        """
        with self._cond:
            if self._error is not None:
                return
            if self._closed:
                raise ChannelClosedError(
                    "put() on a closed result channel"
                )
            if self.blocking:
                while (
                    len(self._buffer) >= self.capacity
                    and not self._closed
                    and self._error is None
                ):
                    self._cond.wait(timeout=0.05)
                if self._error is not None:
                    return
            self._buffer.append(ResultChunk(kind, payload, rows))
            self.chunks_put += 1
            self.rows_put += rows
            depth = len(self._buffer)
            if depth > self.peak_depth:
                self.peak_depth = depth
            if (
                self._fail_at_chunk is not None
                and self.chunks_put >= self._fail_at_chunk
            ):
                # Armed consumer disappearance (see fail_after): the
                # consumer side goes away mid-stream.  Fail in place —
                # the producer's own put stays silent, exactly like a
                # concurrent fail() racing this put.
                self._error = self._fail_with or ChannelClosedError(
                    "result consumer disappeared mid-stream"
                )
                self._closed = True
                self._buffer.clear()
            self._cond.notify_all()

    def put_rows(self, payload: object, rows: int) -> None:
        """Push one row-batch chunk (the per-morsel streaming path)."""
        self.put(ROWS, payload, rows)

    def put_final(self, payload: object, rows: int = 0) -> None:
        """Push the terminal chunk of a blocking (pipeline-breaker) sink."""
        self.put(FINAL, payload, rows)

    def close(self) -> None:
        """Producer is done; consumers drain the buffer then stop.

        Idempotent, and a no-op after :meth:`fail` (the failure wins).
        """
        with self._cond:
            self._closed = True
            self._cond.notify_all()

    def fail(self, error: BaseException) -> None:
        """Terminate the stream with an error (cancellation path).

        Buffered chunks are discarded, blocked producers and consumers
        wake, later ``put`` calls drop silently and later ``get`` calls
        raise ``error``.  A no-op if the channel already closed cleanly
        — a completed result is not retroactively poisoned.
        """
        with self._cond:
            if self._closed:
                return
            self._error = error
            self._closed = True
            self._buffer.clear()
            self._cond.notify_all()

    def fail_after(
        self, chunks: int, error: Optional[BaseException] = None
    ) -> None:
        """Arm a consumer-disappearance fault: fail after ``chunks`` puts.

        Fault-injection hook (``repro.runtime.faults``): once the
        producer has put ``chunks`` total chunks, the channel fails as
        if the consumer vanished mid-stream — buffered chunks are
        dropped, parked producers wake and their later puts drop
        silently, and consumers see ``error`` (default: a
        :class:`~repro.errors.ChannelClosedError`).  Deterministic: the
        trigger is the monotone ``chunks_put`` counter, not timing.
        """
        if chunks < 1:
            raise ReproError("fail_after threshold must be >= 1")
        with self._cond:
            self._fail_at_chunk = chunks
            self._fail_with = error

    # ------------------------------------------------------------------
    # Consumer side
    # ------------------------------------------------------------------
    def get(self, timeout: Optional[float] = None) -> Optional[ResultChunk]:
        """Pop the next chunk; ``None`` means end-of-stream.

        In blocking mode, waits until a chunk arrives, the channel
        closes, or ``timeout`` elapses (then raises).  In virtual-time
        mode an empty open channel raises immediately — chunks only
        materialise inside ``drain()``, so there is nothing to wait for.
        """
        with self._cond:
            while True:
                if self._error is not None:
                    raise self._error
                if self._buffer:
                    self.chunks_taken += 1
                    chunk = self._buffer.popleft()
                    self._cond.notify_all()
                    return chunk
                if self._closed:
                    return None
                if not self.blocking:
                    raise ReproError(
                        "result channel is empty and still open; "
                        "virtual-time backends deliver chunks in "
                        "drain()/run()"
                    )
                if not self._cond.wait(timeout=timeout):
                    raise ReproError(
                        f"no result chunk arrived within {timeout}s"
                    )

    def get_nowait(self) -> Optional[ResultChunk]:
        """Pop the next buffered chunk without waiting, else ``None``.

        Unlike :meth:`get`, an exhausted *open* channel also returns
        ``None`` — callers distinguish end-of-stream via :attr:`closed`.
        Raises the channel error if it failed.
        """
        with self._cond:
            if self._error is not None:
                raise self._error
            if self._buffer:
                self.chunks_taken += 1
                chunk = self._buffer.popleft()
                self._cond.notify_all()
                return chunk
            return None

    def __iter__(self) -> Iterator[ResultChunk]:
        """Yield chunks until end-of-stream."""
        while True:
            chunk = self.get()
            if chunk is None:
                return
            yield chunk


# ----------------------------------------------------------------------
# Assembly + wire codec
# ----------------------------------------------------------------------
#: Sentinel: "this query produced no result object" (environments
#: without an engine, e.g. the counting environments of the protocol
#: tests).  Distinct from None, which is a legal query result.
NO_RESULT = object()

#: Sentinel returned by ``EngineEnvironment.finish_query`` for a query
#: whose rows streamed through a channel: the engine never materialized
#: the full result — the chunks in the channel *are* the result.
STREAMED = object()


def assemble_chunks(chunks: List[ResultChunk]) -> object:
    """Reassemble a full result from its stream of chunks.

    The inverse of streaming: a single ``final`` chunk *is* the result;
    a sequence of ``rows`` chunks concatenates back into one column
    batch — byte-identical to what the pre-streaming
    :class:`~repro.engine.operators.CollectSink` produced, because the
    parts and their order are exactly the sink's old private buffer.
    """
    if not chunks:
        return NO_RESULT
    if len(chunks) == 1 and chunks[0].kind == FINAL:
        return chunks[0].payload
    import numpy as np

    parts = [chunk.payload for chunk in chunks if chunk.kind == ROWS]
    if len(parts) != len(chunks):
        raise ReproError("mixed rows/final chunks in one result stream")
    columns = list(parts[0].keys())
    return {
        name: np.concatenate([part[name] for part in parts])
        for name in columns
    }


def chunks_to_arrays(chunks: List[ResultChunk]) -> list:
    """Encode a chunk list for the process-pool pipe.

    Row batches stay dicts of flat numpy arrays — the pool's pickle-5
    framing extracts each array buffer out-of-band, so a streamed result
    crosses as raw column buffers plus a tiny pickle head, preserving
    the chunk boundaries instead of collapsing to one terminal blob.
    """
    return [(chunk.kind, chunk.payload, chunk.rows) for chunk in chunks]


def chunks_from_arrays(payload: list) -> List[ResultChunk]:
    """Inverse of :func:`chunks_to_arrays` (lossless)."""
    return [ResultChunk(kind, data, rows) for kind, data, rows in payload]
