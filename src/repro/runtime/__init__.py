"""The runtime layer: clocks, execution backends, trace recording.

This package is the seam between the scheduling policies of
:mod:`repro.core` and the substrate that executes them.  Schedulers are
driven through ``admit`` / ``worker_decide`` / ``worker_finish`` and
never know whether time is virtual or real:

* :class:`SimulatedBackend` drives them from the discrete-event
  simulator in virtual time (bit-identical to the pre-runtime-layer
  code path — every figure of the paper is reproduced on it);
* :class:`ThreadedBackend` drives the *same* scheduler objects from
  real OS worker threads, making the atomics and the §2.3 finalization
  protocol genuinely concurrent;
* :class:`ProcessBackend` executes each drain epoch in a warm worker
  process of the shared sweep pool, so CPU-bound engine/simulator work
  runs without holding the submitting process's GIL.

Results flow through one bounded :class:`ResultChannel` per job:
``submit`` returns a :class:`QueryHandle` cursor over the stream of
:class:`ResultChunk` row batches, and ``drain()`` absorbs unconsumed
streams so ``results[job_id]`` still holds the assembled value.

The :class:`~repro.server.AnalyticsServer` selects a backend by name
and layers online submission semantics on top.
"""

from repro.runtime.admission import (
    ADMISSION_POLICIES,
    BULK,
    DEFAULT_SLA_CLASSES,
    LATENCY_CRITICAL,
    AdmissionPolicy,
    AdmissionRequest,
    BlockingAdmission,
    RejectingAdmission,
    SheddingAdmission,
    SlaClass,
    make_admission_policy,
)
from repro.runtime.backend import BackendState, ExecutionBackend
from repro.runtime.channel import (
    DEFAULT_CHANNEL_CAPACITY,
    NO_RESULT,
    STREAMED,
    ResultChannel,
    ResultChunk,
    assemble_chunks,
)
from repro.runtime.clock import Clock, VirtualClock, WallClock
from repro.runtime.handle import QueryHandle
from repro.runtime.tickets import ShardAddress, TicketRegistry, TicketState
from repro.runtime.trace import MorselSpan, TraceRecorder, merge_adjacent_spans

_LAZY_BACKENDS = {
    "ProcessBackend": "repro.runtime.process",
    "SimulatedBackend": "repro.runtime.simulated",
    "ThreadedBackend": "repro.runtime.threaded",
}


def __getattr__(name: str):
    # The concrete backends import the scheduler base, which itself
    # imports this package for Clock/TraceRecorder; loading them lazily
    # (PEP 562) breaks that cycle.
    module_name = _LAZY_BACKENDS.get(name)
    if module_name is None:
        raise AttributeError(f"module {__name__!r} has no attribute {name!r}")
    import importlib

    return getattr(importlib.import_module(module_name), name)

__all__ = [
    "ADMISSION_POLICIES",
    "AdmissionPolicy",
    "AdmissionRequest",
    "BULK",
    "BackendState",
    "BlockingAdmission",
    "Clock",
    "DEFAULT_CHANNEL_CAPACITY",
    "DEFAULT_SLA_CLASSES",
    "ExecutionBackend",
    "LATENCY_CRITICAL",
    "MorselSpan",
    "NO_RESULT",
    "ProcessBackend",
    "QueryHandle",
    "RejectingAdmission",
    "ResultChannel",
    "ResultChunk",
    "STREAMED",
    "ShardAddress",
    "SheddingAdmission",
    "SimulatedBackend",
    "SlaClass",
    "ThreadedBackend",
    "TicketRegistry",
    "TicketState",
    "TraceRecorder",
    "VirtualClock",
    "WallClock",
    "assemble_chunks",
    "make_admission_policy",
    "merge_adjacent_spans",
]
