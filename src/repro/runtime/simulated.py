"""The virtual-time execution backend: a thin adapter over the simulator.

:class:`SimulatedBackend` wraps the fast tuple-heap
:class:`~repro.simcore.simulator.Simulator` behind the
:class:`~repro.runtime.backend.ExecutionBackend` lifecycle.  It changes
*nothing* about how a simulation runs — :meth:`SimulatedBackend.execute`
constructs the scheduler and the simulator exactly as the experiment
drivers always have, so results are bit-for-bit identical to calling
:class:`Simulator` directly (the figure/determinism test suite is the
oracle for this claim).

Online semantics in virtual time: submissions accumulate while the
backend is "running" and each :meth:`drain` executes everything pending
as one simulation *epoch* — a fresh scheduler and a fresh virtual clock
starting at zero, with submissions ordered by their requested arrival
times.  Submit-during-drain is meaningless in virtual time (the event
loop is synchronous), so true mid-flight admission is what the
:class:`~repro.runtime.threaded.ThreadedBackend` provides; the epoch
model is the faithful virtual-time analogue.
"""

from __future__ import annotations

from dataclasses import replace
from typing import Callable, List, Optional, Sequence, Tuple

from repro.core.scheduler_base import SchedulerBase
from repro.core.specs import QuerySpec
from repro.errors import (
    QueryFailedError,
    QueryTimeoutError,
    ReproError,
    error_from_text,
)
from repro.metrics.latency import LatencyRecord
from repro.runtime.backend import ExecutionBackend
from repro.runtime.channel import DEFAULT_CHANNEL_CAPACITY, STREAMED
from repro.runtime.clock import VirtualClock
from repro.runtime.trace import TraceRecorder
from repro.sharing import (
    MISS,
    FragmentCache,
    SharingStats,
    max_fold_priority,
    spec_fingerprint,
)
from repro.simcore.rng import RngFactory
from repro.simcore.simulator import (
    SimulationEnvironment,
    SimulationResult,
    Simulator,
)


class SimulatedBackend(ExecutionBackend):
    """Run schedulers in virtual time on the discrete-event simulator."""

    def __init__(
        self,
        scheduler_factory: Callable[[], SchedulerBase],
        *,
        seed: int = 0,
        noise_sigma: float = 0.05,
        environment_factory: Optional[Callable[[], object]] = None,
        max_time: Optional[float] = None,
        trace: Optional[TraceRecorder] = None,
        channel_capacity: int = DEFAULT_CHANNEL_CAPACITY,
        sharing: bool = False,
        sharing_cache_entries: int = 64,
        sharing_attach_buffer: int = 16,
    ) -> None:
        super().__init__(channel_capacity=channel_capacity)
        if sharing_attach_buffer < 1:
            raise ReproError("sharing_attach_buffer must be at least 1")
        self._scheduler_factory = scheduler_factory
        self._seed = seed
        self._noise_sigma = noise_sigma
        self._environment_factory = environment_factory
        self._max_time = max_time
        self._trace = trace
        #: Work sharing (off by default): fold compatible pending queries
        #: into one execution per drain epoch and serve repeats from the
        #: fragment cache.  With sharing off ``_do_drain`` takes the
        #: historical path untouched, so results stay bit-identical.
        self._sharing = bool(sharing)
        self._attach_buffer = sharing_attach_buffer
        self.sharing_stats = SharingStats()
        self._fragment_cache: Optional[FragmentCache] = (
            FragmentCache(sharing_cache_entries, stats=self.sharing_stats)
            if self._sharing
            else None
        )
        self._pending: List[Tuple[float, QuerySpec, int]] = []
        self._unreported_cancels: List[int] = []
        self._clock = VirtualClock()
        #: The result of the most recent epoch (for counters/overhead).
        self.last_result: Optional[SimulationResult] = None
        #: The environment of the most recent epoch (engine results).
        self.last_environment: Optional[object] = None

    # ------------------------------------------------------------------
    # ExecutionBackend contract
    # ------------------------------------------------------------------
    @property
    def clock(self) -> VirtualClock:
        """Virtual time of the most recent epoch."""
        return self._clock

    def _do_start(self) -> None:
        pass  # virtual time only advances inside drain()

    def _do_submit(self, job_id: int, spec: QuerySpec, at: Optional[float]) -> None:
        arrival = 0.0 if at is None else float(at)
        if arrival < 0.0:
            raise ReproError("arrival time must be non-negative")
        self._pending.append((arrival, spec, job_id))

    def _do_drain(self) -> List[LatencyRecord]:
        # Cancellations since the previous drain are "finished" jobs too:
        # their records surface exactly once, like every completion.
        finished: List[LatencyRecord] = [
            self.records[job_id] for job_id in self._unreported_cancels
        ]
        self._unreported_cancels = []
        if not self._pending:
            return finished
        pending = self._pending
        self._pending = []
        if self._sharing:
            return self._drain_shared(pending, finished)
        # Stable sort by arrival time: ties resolve in submission order,
        # and the scheduler numbers resource groups in arrival order.
        order = sorted(range(len(pending)), key=lambda i: pending[i][0])
        workload = [(pending[i][0], pending[i][1]) for i in order]
        arrival_to_job = {
            arrival_index: pending[submit_index][2]
            for arrival_index, submit_index in enumerate(order)
        }
        environment = (
            self._environment_factory() if self._environment_factory else None
        )
        environment = self._wrap_environment(environment)
        # Hand the environment each query's result channel before the
        # epoch runs: the scheduler numbers resource groups in arrival
        # order, so arrival index == the environment's query id.
        open_channel = getattr(environment, "open_channel", None)
        if open_channel is not None:
            for arrival_index, job_id in arrival_to_job.items():
                open_channel(arrival_index, self._channels[job_id])
        result = self.execute(workload, environment=environment)
        self._clock = VirtualClock(result.end_time)
        self.last_environment = environment
        finish_query = getattr(environment, "finish_query", None)
        discard_query = getattr(environment, "discard_query", None)
        for record in result.records.records:
            job_id = arrival_to_job[record.query_id]
            self.records[job_id] = record
            channel = self._channels.get(job_id)
            if record.failed:
                # Per-query failure isolation: the scheduler already
                # wound this query down through the abort protocol;
                # surface the captured cause and drop its plan state.
                # Survivors of the same epoch are untouched.
                if discard_query is not None:
                    discard_query(record.query_id)
                cause = error_from_text(record.error)
                self.failures[job_id] = cause
                if channel is not None:
                    error = QueryFailedError(
                        f"query job {job_id} failed: {record.error}"
                    )
                    error.__cause__ = cause
                    channel.fail(error)
                finished.append(record)
                continue
            if finish_query is not None:
                value = finish_query(record.query_id)
                if value is not STREAMED:
                    self.results[job_id] = value
            if channel is not None:
                channel.close()
                self._absorb_stream(job_id)
            finished.append(record)
        return finished

    def _do_shutdown(self) -> None:
        self._pending.clear()

    # ------------------------------------------------------------------
    # Work sharing (sharing=True only)
    # ------------------------------------------------------------------
    def invalidate_sharing_cache(self) -> None:
        """Drop every cached fragment result and bump the cache epoch."""
        if self._fragment_cache is not None:
            self._fragment_cache.invalidate()

    def _drain_shared(self, pending, finished: List[LatencyRecord]):
        """Drain one epoch with dynamic folding.

        The epoch *is* the attach window: compatible pending queries
        (equal spec fingerprints, not tagged ``noshare``) fold into one
        execution.  The earliest arrival leads; its spec is stamped with
        a ``fold:N`` tag (stride share = sum of the members' shares) and
        the maximum member priority (§3.2).  Attached queries are served the
        leader's result chunks at its completion, clamped to their own
        arrival — the virtual-time analogue of replaying buffered
        morsels to a late attacher.  A fold accepts at most
        ``sharing_attach_buffer`` members; overflow queries fall back to
        fresh unshared executions (counted as replay fallbacks).
        Repeat fingerprints that completed in an earlier epoch are
        served straight from the fragment cache.
        """
        stats = self.sharing_stats
        cache = self._fragment_cache
        engine_mode = self._environment_factory is not None
        order = sorted(range(len(pending)), key=lambda i: pending[i][0])
        run: List[Tuple[float, QuerySpec, int]] = []
        leader_of = {}  # fingerprint -> index into run
        members = {}  # leader job id -> [(job id, arrival, spec)]
        leader_fp = {}  # leader job id -> fingerprint (for caching)
        for i in order:
            arrival, spec, job_id = pending[i]
            if "noshare" in spec.tags:
                run.append((arrival, spec, job_id))
                continue
            fp = spec_fingerprint(spec)
            if cache is not None and engine_mode:
                chunks = cache.get(fp)
                if chunks is not MISS:
                    finished.append(
                        self._serve_cached(job_id, spec, arrival, chunks)
                    )
                    continue
            index = leader_of.get(fp)
            if index is None:
                leader_of[fp] = len(run)
                leader_fp[job_id] = fp
                members[job_id] = []
                run.append((arrival, spec, job_id))
                continue
            leader_job = run[index][2]
            attached = members[leader_job]
            if len(attached) >= self._attach_buffer:
                stats.replay_fallbacks += 1
                run.append((arrival, spec, job_id))
            else:
                attached.append((job_id, arrival, spec))
                stats.attached_queries += 1
        # Decorate fold leaders: fold:N budget tag, max member priority.
        for index in leader_of.values():
            arrival, spec, job_id = run[index]
            attached = members[job_id]
            if not attached:
                continue
            stats.folds += 1
            priority = max_fold_priority(
                [spec] + [m_spec for _, _, m_spec in attached]
            )
            changes = {"tags": spec.tags + (f"fold:{1 + len(attached)}",)}
            if priority is not None:
                changes["user_priority"] = priority
            run[index] = (arrival, replace(spec, **changes), job_id)
        if not run:
            return finished
        workload = [(arrival, spec) for arrival, spec, _ in run]
        arrival_to_job = {i: job_id for i, (_, _, job_id) in enumerate(run)}
        environment = (
            self._environment_factory() if self._environment_factory else None
        )
        environment = self._wrap_environment(environment)
        open_channel = getattr(environment, "open_channel", None)
        if open_channel is not None:
            for arrival_index, job_id in arrival_to_job.items():
                open_channel(arrival_index, self._channels[job_id])
        result = self.execute(workload, environment=environment)
        self._clock = VirtualClock(result.end_time)
        self.last_environment = environment
        finish_query = getattr(environment, "finish_query", None)
        discard_query = getattr(environment, "discard_query", None)
        for record in result.records.records:
            job_id = arrival_to_job[record.query_id]
            self.records[job_id] = record
            channel = self._channels.get(job_id)
            attached = members.get(job_id, ())
            if record.failed:
                if discard_query is not None:
                    discard_query(record.query_id)
                cause = error_from_text(record.error)
                self.failures[job_id] = cause
                if channel is not None:
                    error = QueryFailedError(
                        f"query job {job_id} failed: {record.error}"
                    )
                    error.__cause__ = cause
                    channel.fail(error)
                finished.append(record)
                # The leader's §2.3 wind-down detaches the whole fold:
                # every attached query fails with the same cause (their
                # retries resubmit unshared, see the server).
                for m_job, m_arrival, m_spec in attached:
                    finished.append(
                        self._fail_member(m_job, m_spec, m_arrival, record)
                    )
                continue
            if finish_query is not None:
                value = finish_query(record.query_id)
                if value is not STREAMED:
                    self.results[job_id] = value
            if channel is not None:
                channel.close()
                self._absorb_stream(job_id)
            finished.append(record)
            # The leader's spilled chunks are the fold's replay buffer:
            # they fan out to every attached query and (on success) into
            # the fragment cache for future epochs.
            chunks = None
            handle = self._handles.get(job_id)
            if handle is not None and handle._spill:
                chunks = tuple(
                    (c.kind, c.payload, c.rows) for c in handle._spill
                )
            for m_job, m_arrival, m_spec in attached:
                finished.append(
                    self._serve_member(
                        m_job, m_spec, m_arrival, record, chunks
                    )
                )
            fp = leader_fp.get(job_id)
            if cache is not None and fp is not None and chunks is not None:
                cache.put(fp, chunks)
        return finished

    def _replay_chunks(self, job_id: int, chunks) -> None:
        """Copy replay chunks into a job's channel and assemble them."""
        channel = self._channels.get(job_id)
        if channel is None:  # pragma: no cover - submit always registers
            return
        if chunks is not None:
            for kind, payload, rows in chunks:
                channel.put(kind, payload, rows)
        channel.close()
        self._absorb_stream(job_id)

    def _serve_cached(
        self, job_id: int, spec: QuerySpec, arrival: float, chunks
    ) -> LatencyRecord:
        """Serve one query from the fragment cache at its arrival time."""
        self._replay_chunks(job_id, chunks)
        record = LatencyRecord(
            query_id=-1,
            name=spec.name,
            scale_factor=spec.scale_factor,
            arrival_time=arrival,
            completion_time=arrival,
            cpu_seconds=0.0,
        )
        self.records[job_id] = record
        return record

    def _serve_member(
        self,
        job_id: int,
        spec: QuerySpec,
        arrival: float,
        leader_record: LatencyRecord,
        chunks,
    ) -> LatencyRecord:
        """Deliver the leader's result to one attached query.

        The member completes when the shared execution does (never
        before its own arrival).  A member whose own deadline expired by
        then fails with :class:`~repro.errors.QueryTimeoutError` —
        without disturbing the leader or its sibling members.
        """
        completion = max(leader_record.completion_time, arrival)
        if spec.deadline is not None and completion - arrival > spec.deadline:
            cause = QueryTimeoutError(
                f"attached query {spec.name!r} missed its {spec.deadline}s "
                f"deadline: the shared execution completed at {completion}"
            )
            record = LatencyRecord(
                query_id=-1,
                name=spec.name,
                scale_factor=spec.scale_factor,
                arrival_time=arrival,
                completion_time=completion,
                cpu_seconds=0.0,
                failed=True,
                error=f"{type(cause).__name__}: {cause}",
            )
            self.records[job_id] = record
            self.failures[job_id] = cause
            channel = self._channels.get(job_id)
            if channel is not None:
                error = QueryFailedError(
                    f"query job {job_id} failed: {record.error}"
                )
                error.__cause__ = cause
                channel.fail(error)
            return record
        self._replay_chunks(job_id, chunks)
        record = LatencyRecord(
            query_id=-1,
            name=spec.name,
            scale_factor=spec.scale_factor,
            arrival_time=arrival,
            completion_time=completion,
            cpu_seconds=0.0,
        )
        self.records[job_id] = record
        return record

    def _fail_member(
        self,
        job_id: int,
        spec: QuerySpec,
        arrival: float,
        leader_record: LatencyRecord,
    ) -> LatencyRecord:
        """Fail one attached query with the shared execution's cause."""
        cause = error_from_text(leader_record.error)
        record = LatencyRecord(
            query_id=-1,
            name=spec.name,
            scale_factor=spec.scale_factor,
            arrival_time=arrival,
            completion_time=max(leader_record.completion_time, arrival),
            cpu_seconds=0.0,
            failed=True,
            error=leader_record.error,
        )
        self.records[job_id] = record
        self.failures[job_id] = cause
        channel = self._channels.get(job_id)
        if channel is not None:
            error = QueryFailedError(
                f"query job {job_id} failed: {record.error}"
            )
            error.__cause__ = cause
            channel.fail(error)
        return record

    def _do_cancel(self, job_id: int) -> None:
        # Virtual-time epochs are synchronous, so a cancellable job is
        # always still pending: remove it and record the cancellation at
        # its arrival time (zero CPU, zero latency) so counters settle.
        for index, (arrival, spec, pending_id) in enumerate(self._pending):
            if pending_id == job_id:
                del self._pending[index]
                self.records[job_id] = LatencyRecord(
                    query_id=-1,
                    name=spec.name,
                    scale_factor=spec.scale_factor,
                    arrival_time=arrival,
                    completion_time=arrival,
                    cpu_seconds=0.0,
                    cancelled=True,
                )
                self._unreported_cancels.append(job_id)
                return

    def _do_fail(self, job_id: int, error: BaseException) -> None:
        # Mirrors _do_cancel: in virtual time a failable job is always
        # still pending.  Remove it and record the failure at its
        # arrival time so counters settle and drain() reports it once.
        for index, (arrival, spec, pending_id) in enumerate(self._pending):
            if pending_id == job_id:
                del self._pending[index]
                self.records[job_id] = LatencyRecord(
                    query_id=-1,
                    name=spec.name,
                    scale_factor=spec.scale_factor,
                    arrival_time=arrival,
                    completion_time=arrival,
                    cpu_seconds=0.0,
                    failed=True,
                    error=f"{type(error).__name__}: {error}",
                )
                self._unreported_cancels.append(job_id)
                return

    # ------------------------------------------------------------------
    # Fault injection
    # ------------------------------------------------------------------
    def _wrap_environment(self, environment: Optional[object]):
        """Wrap an epoch's environment when a fault plan is installed.

        Without an installed plan this is the identity — the fault-free
        path constructs environments exactly as before, so results stay
        bit-identical.  With a plan, a cost-model environment is built
        here (when the epoch would otherwise let the simulator build its
        own) so the wrapper can intercept ``run_morsel``.
        """
        if self._fault_injector is None:
            return environment
        if environment is None:
            environment = SimulationEnvironment(
                RngFactory(self._seed), noise_sigma=self._noise_sigma
            )
        return self._fault_injector.wrap(environment)

    # ------------------------------------------------------------------
    # Batch adapter (the experiment drivers' entry point)
    # ------------------------------------------------------------------
    def execute(
        self,
        workload: Sequence[Tuple[float, QuerySpec]],
        environment: Optional[object] = None,
    ) -> SimulationResult:
        """Run one workload through a fresh scheduler and simulator.

        This is the exact pre-refactor code path — scheduler from the
        factory, :class:`Simulator` over the workload — so latencies,
        traces and counters are bit-identical to driving the simulator
        directly.
        """
        environment = self._wrap_environment(environment)
        scheduler = self._scheduler_factory()
        simulator = Simulator(
            scheduler,
            list(workload),
            seed=self._seed,
            noise_sigma=self._noise_sigma,
            max_time=self._max_time,
            trace=self._trace,
            environment=environment,
        )
        result = simulator.run()
        self.last_result = result
        return result
