"""The virtual-time execution backend: a thin adapter over the simulator.

:class:`SimulatedBackend` wraps the fast tuple-heap
:class:`~repro.simcore.simulator.Simulator` behind the
:class:`~repro.runtime.backend.ExecutionBackend` lifecycle.  It changes
*nothing* about how a simulation runs — :meth:`SimulatedBackend.execute`
constructs the scheduler and the simulator exactly as the experiment
drivers always have, so results are bit-for-bit identical to calling
:class:`Simulator` directly (the figure/determinism test suite is the
oracle for this claim).

Online semantics in virtual time: submissions accumulate while the
backend is "running" and each :meth:`drain` executes everything pending
as one simulation *epoch* — a fresh scheduler and a fresh virtual clock
starting at zero, with submissions ordered by their requested arrival
times.  Submit-during-drain is meaningless in virtual time (the event
loop is synchronous), so true mid-flight admission is what the
:class:`~repro.runtime.threaded.ThreadedBackend` provides; the epoch
model is the faithful virtual-time analogue.
"""

from __future__ import annotations

from typing import Callable, List, Optional, Sequence, Tuple

from repro.core.scheduler_base import SchedulerBase
from repro.core.specs import QuerySpec
from repro.errors import QueryFailedError, ReproError, error_from_text
from repro.metrics.latency import LatencyRecord
from repro.runtime.backend import ExecutionBackend
from repro.runtime.channel import DEFAULT_CHANNEL_CAPACITY, STREAMED
from repro.runtime.clock import VirtualClock
from repro.runtime.trace import TraceRecorder
from repro.simcore.rng import RngFactory
from repro.simcore.simulator import (
    SimulationEnvironment,
    SimulationResult,
    Simulator,
)


class SimulatedBackend(ExecutionBackend):
    """Run schedulers in virtual time on the discrete-event simulator."""

    def __init__(
        self,
        scheduler_factory: Callable[[], SchedulerBase],
        *,
        seed: int = 0,
        noise_sigma: float = 0.05,
        environment_factory: Optional[Callable[[], object]] = None,
        max_time: Optional[float] = None,
        trace: Optional[TraceRecorder] = None,
        channel_capacity: int = DEFAULT_CHANNEL_CAPACITY,
    ) -> None:
        super().__init__(channel_capacity=channel_capacity)
        self._scheduler_factory = scheduler_factory
        self._seed = seed
        self._noise_sigma = noise_sigma
        self._environment_factory = environment_factory
        self._max_time = max_time
        self._trace = trace
        self._pending: List[Tuple[float, QuerySpec, int]] = []
        self._unreported_cancels: List[int] = []
        self._clock = VirtualClock()
        #: The result of the most recent epoch (for counters/overhead).
        self.last_result: Optional[SimulationResult] = None
        #: The environment of the most recent epoch (engine results).
        self.last_environment: Optional[object] = None

    # ------------------------------------------------------------------
    # ExecutionBackend contract
    # ------------------------------------------------------------------
    @property
    def clock(self) -> VirtualClock:
        """Virtual time of the most recent epoch."""
        return self._clock

    def _do_start(self) -> None:
        pass  # virtual time only advances inside drain()

    def _do_submit(self, job_id: int, spec: QuerySpec, at: Optional[float]) -> None:
        arrival = 0.0 if at is None else float(at)
        if arrival < 0.0:
            raise ReproError("arrival time must be non-negative")
        self._pending.append((arrival, spec, job_id))

    def _do_drain(self) -> List[LatencyRecord]:
        # Cancellations since the previous drain are "finished" jobs too:
        # their records surface exactly once, like every completion.
        finished: List[LatencyRecord] = [
            self.records[job_id] for job_id in self._unreported_cancels
        ]
        self._unreported_cancels = []
        if not self._pending:
            return finished
        pending = self._pending
        self._pending = []
        # Stable sort by arrival time: ties resolve in submission order,
        # and the scheduler numbers resource groups in arrival order.
        order = sorted(range(len(pending)), key=lambda i: pending[i][0])
        workload = [(pending[i][0], pending[i][1]) for i in order]
        arrival_to_job = {
            arrival_index: pending[submit_index][2]
            for arrival_index, submit_index in enumerate(order)
        }
        environment = (
            self._environment_factory() if self._environment_factory else None
        )
        environment = self._wrap_environment(environment)
        # Hand the environment each query's result channel before the
        # epoch runs: the scheduler numbers resource groups in arrival
        # order, so arrival index == the environment's query id.
        open_channel = getattr(environment, "open_channel", None)
        if open_channel is not None:
            for arrival_index, job_id in arrival_to_job.items():
                open_channel(arrival_index, self._channels[job_id])
        result = self.execute(workload, environment=environment)
        self._clock = VirtualClock(result.end_time)
        self.last_environment = environment
        finish_query = getattr(environment, "finish_query", None)
        discard_query = getattr(environment, "discard_query", None)
        for record in result.records.records:
            job_id = arrival_to_job[record.query_id]
            self.records[job_id] = record
            channel = self._channels.get(job_id)
            if record.failed:
                # Per-query failure isolation: the scheduler already
                # wound this query down through the abort protocol;
                # surface the captured cause and drop its plan state.
                # Survivors of the same epoch are untouched.
                if discard_query is not None:
                    discard_query(record.query_id)
                cause = error_from_text(record.error)
                self.failures[job_id] = cause
                if channel is not None:
                    error = QueryFailedError(
                        f"query job {job_id} failed: {record.error}"
                    )
                    error.__cause__ = cause
                    channel.fail(error)
                finished.append(record)
                continue
            if finish_query is not None:
                value = finish_query(record.query_id)
                if value is not STREAMED:
                    self.results[job_id] = value
            if channel is not None:
                channel.close()
                self._absorb_stream(job_id)
            finished.append(record)
        return finished

    def _do_shutdown(self) -> None:
        self._pending.clear()

    def _do_cancel(self, job_id: int) -> None:
        # Virtual-time epochs are synchronous, so a cancellable job is
        # always still pending: remove it and record the cancellation at
        # its arrival time (zero CPU, zero latency) so counters settle.
        for index, (arrival, spec, pending_id) in enumerate(self._pending):
            if pending_id == job_id:
                del self._pending[index]
                self.records[job_id] = LatencyRecord(
                    query_id=-1,
                    name=spec.name,
                    scale_factor=spec.scale_factor,
                    arrival_time=arrival,
                    completion_time=arrival,
                    cpu_seconds=0.0,
                    cancelled=True,
                )
                self._unreported_cancels.append(job_id)
                return

    def _do_fail(self, job_id: int, error: BaseException) -> None:
        # Mirrors _do_cancel: in virtual time a failable job is always
        # still pending.  Remove it and record the failure at its
        # arrival time so counters settle and drain() reports it once.
        for index, (arrival, spec, pending_id) in enumerate(self._pending):
            if pending_id == job_id:
                del self._pending[index]
                self.records[job_id] = LatencyRecord(
                    query_id=-1,
                    name=spec.name,
                    scale_factor=spec.scale_factor,
                    arrival_time=arrival,
                    completion_time=arrival,
                    cpu_seconds=0.0,
                    failed=True,
                    error=f"{type(error).__name__}: {error}",
                )
                self._unreported_cancels.append(job_id)
                return

    # ------------------------------------------------------------------
    # Fault injection
    # ------------------------------------------------------------------
    def _wrap_environment(self, environment: Optional[object]):
        """Wrap an epoch's environment when a fault plan is installed.

        Without an installed plan this is the identity — the fault-free
        path constructs environments exactly as before, so results stay
        bit-identical.  With a plan, a cost-model environment is built
        here (when the epoch would otherwise let the simulator build its
        own) so the wrapper can intercept ``run_morsel``.
        """
        if self._fault_injector is None:
            return environment
        if environment is None:
            environment = SimulationEnvironment(
                RngFactory(self._seed), noise_sigma=self._noise_sigma
            )
        return self._fault_injector.wrap(environment)

    # ------------------------------------------------------------------
    # Batch adapter (the experiment drivers' entry point)
    # ------------------------------------------------------------------
    def execute(
        self,
        workload: Sequence[Tuple[float, QuerySpec]],
        environment: Optional[object] = None,
    ) -> SimulationResult:
        """Run one workload through a fresh scheduler and simulator.

        This is the exact pre-refactor code path — scheduler from the
        factory, :class:`Simulator` over the workload — so latencies,
        traces and counters are bit-identical to driving the simulator
        directly.
        """
        environment = self._wrap_environment(environment)
        scheduler = self._scheduler_factory()
        simulator = Simulator(
            scheduler,
            list(workload),
            seed=self._seed,
            noise_sigma=self._noise_sigma,
            max_time=self._max_time,
            trace=self._trace,
            environment=environment,
        )
        result = simulator.run()
        self.last_result = result
        return result
