"""The process execution backend: virtual-time epochs, GIL-free.

:class:`ProcessBackend` presents the same online lifecycle as the other
backends but executes each drain *epoch* in a warm worker process of the
shared sweep pool (:mod:`repro.experiments.pool`).  The submitting
process never holds the GIL for engine or simulator work — it ships a
compact workload payload, the worker runs the epoch through the exact
:class:`~repro.runtime.simulated.SimulatedBackend` code path, and the
latency records come back as flat arrays.  Results are therefore
bit-identical to the simulated backend on the same submissions.

Worker-side warm state: everything the epoch needs that is expensive to
build crosses as *parameters*, not objects.  The scheduler is
constructed in the worker from a picklable factory
(``functools.partial(make_scheduler, name, config)``), and the engine
environment of the :class:`~repro.server.AnalyticsServer` is built from
``(scale_factor, seed)`` against a per-worker memoized TPC-H database
(:func:`engine_environment_factory`) — generated once per worker per
profile, reused by every later epoch, exactly like the engine
calibration cache.

Lifecycle notes:

* ``submit(spec, at=...)`` takes virtual arrival times, like the
  simulated backend;
* ``drain()`` runs one epoch remotely and blocks for its results;
* ``shutdown()`` drops pending submissions but leaves the shared pool
  running for other users (a privately passed pool is also left to its
  owner).
"""

from __future__ import annotations

from concurrent.futures import BrokenExecutor
from typing import Callable, List, Optional, Tuple

from repro.core.specs import QuerySpec
from repro.errors import (
    QueryFailedError,
    ReproError,
    WorkerFailedError,
    error_from_text,
)
from repro.metrics.latency import LatencyCollector, LatencyRecord
from repro.runtime.backend import ExecutionBackend
from repro.runtime.channel import chunks_from_arrays
from repro.runtime.clock import VirtualClock
from repro.runtime.faults import WORKER_DEATH


# ----------------------------------------------------------------------
# Worker-side epoch execution (module level: picklable)
# ----------------------------------------------------------------------
def _execute_epoch(payload: dict) -> dict:
    """Run one virtual-time epoch in this (worker) process."""
    from repro.runtime.channel import STREAMED, ResultChannel, chunks_to_arrays
    from repro.runtime.simulated import SimulatedBackend
    from repro.workloads.serialize import workload_from_arrays

    workload = workload_from_arrays(payload["workload"])
    backend = SimulatedBackend(
        payload["scheduler_factory"],
        seed=payload["seed"],
        noise_sigma=payload["noise_sigma"],
        max_time=payload["max_time"],
    )
    environment_factory = payload["environment_factory"]
    environment = environment_factory() if environment_factory else None
    injector = None
    plan = payload.get("fault_plan")
    if plan is not None:
        spent = set(payload.get("fault_spent", ()))
        if payload.get("attempt", 0) == 0 and any(
            fault.kind == WORKER_DEATH and index not in spent
            for index, fault in enumerate(plan.faults)
        ):
            # Injected worker death at process level: this epoch worker
            # dies abruptly, the submitting side sees a broken pool and
            # exercises the rebuild-and-retry path.  Only the first
            # attempt dies — the retry marks the fault spent.
            import os

            os._exit(23)
        # Worker deaths are process-level here, never morsel-level: the
        # wrapped environment skips them so the retried epoch does not
        # also fail the target query.
        injector = backend.install_faults(
            plan, spent=spent, skip_kinds=(WORKER_DEATH,)
        )
        environment = backend._wrap_environment(environment)
    # Worker-side result channels, one per query (the scheduler numbers
    # resource groups in arrival order, so arrival index == query id).
    channels = {}
    open_channel = getattr(environment, "open_channel", None)
    if open_channel is not None:
        for arrival_index in range(len(workload)):
            channel = ResultChannel(payload.get("channel_capacity", 8))
            channels[arrival_index] = channel
            open_channel(arrival_index, channel)
    result = backend.execute(workload, environment=environment)
    results = {}
    chunks = {}
    finish_query = getattr(environment, "finish_query", None)
    discard_query = getattr(environment, "discard_query", None)
    for record in result.records.records:
        if record.failed:
            # Failure isolation: drop the failed query's plan state and
            # ship nothing for it — the record's error text is the
            # authoritative cause on the other side of the pipe.
            if discard_query is not None:
                discard_query(record.query_id)
            continue
        if finish_query is None:
            continue
        value = finish_query(record.query_id)
        if value is STREAMED:
            # The channel holds the result: ship its chunks as flat
            # arrays so pickle-5 keeps every column buffer
            # out-of-band, preserving the chunk boundaries instead
            # of collapsing the stream into one terminal blob.
            channel = channels[record.query_id]
            channel.close()
            chunks[record.query_id] = chunks_to_arrays(list(channel))
        else:
            results[record.query_id] = value
    out = {
        "records": result.records.to_arrays(),
        "results": results,
        "chunks": chunks,
        "tasks_executed": result.tasks_executed,
        "events_processed": result.events_processed,
        "end_time": result.end_time,
        "faults_fired": injector.fired if injector is not None else [],
    }
    if payload["return_environment"]:
        out["environment"] = environment
    return out


#: Per-worker memoized TPC-H databases, keyed by (scale_factor, seed).
_DATABASE_MEMO: dict = {}


def _database_for(scale_factor: float, seed: int):
    """A worker-side TPC-H database, generated once per profile."""
    key = (scale_factor, seed)
    db = _DATABASE_MEMO.get(key)
    if db is None:
        from repro.engine.datagen import generate_tpch

        db = generate_tpch(scale_factor=scale_factor, seed=seed)
        _DATABASE_MEMO[key] = db
    return db


def engine_environment_factory(scale_factor: float, seed: int):
    """Build an :class:`~repro.engine.execution.EngineEnvironment` here.

    Used with ``functools.partial`` as a picklable environment factory:
    the database is *regenerated* in the worker from its deterministic
    ``(scale_factor, seed)`` profile (then memoized), so drains never
    ship the relation data across the pipe.
    """
    from repro.engine.execution import EngineEnvironment

    return EngineEnvironment(_database_for(scale_factor, seed))


def warm_engine_database(scale_factor: float, seed: int) -> int:
    """Pool warmup thunk: pre-generate a worker's database profile."""
    return len(_database_for(scale_factor, seed).tables)


class ProcessBackend(ExecutionBackend):
    """Run virtual-time epochs in warm worker processes (GIL-free)."""

    def __init__(
        self,
        scheduler_factory: Callable,
        *,
        seed: int = 0,
        noise_sigma: float = 0.05,
        environment_factory: Optional[Callable] = None,
        max_time: Optional[float] = None,
        return_environment: bool = False,
        pool=None,
        channel_capacity: int = 8,
        max_epoch_retries: int = 2,
    ) -> None:
        """``scheduler_factory`` and ``environment_factory`` must be
        picklable zero-argument callables (module-level functions or
        :func:`functools.partial` over them) — they are invoked in the
        worker process, never here.  ``return_environment`` ships the
        epoch's environment object back after each drain (it must then
        be picklable) and exposes it as :attr:`last_environment`.
        """
        super().__init__(channel_capacity=channel_capacity)
        self._scheduler_factory = scheduler_factory
        self._seed = seed
        self._noise_sigma = noise_sigma
        self._environment_factory = environment_factory
        self._max_time = max_time
        self._return_environment = return_environment
        self._pool = pool
        self._max_epoch_retries = max_epoch_retries
        self._pending: List[Tuple[float, QuerySpec, int]] = []
        self._unreported_cancels: List[int] = []
        self._clock = VirtualClock()
        #: The environment of the most recent epoch (when shipped back).
        self.last_environment: Optional[object] = None
        #: Counters of the most recent epoch.
        self.last_tasks_executed = 0
        self.last_events_processed = 0
        #: How many times a broken worker pool was rebuilt (recovery).
        self.pool_rebuilds = 0

    # ------------------------------------------------------------------
    # ExecutionBackend contract
    # ------------------------------------------------------------------
    @property
    def clock(self) -> VirtualClock:
        """Virtual time of the most recent epoch."""
        return self._clock

    def set_scheduler_factory(self, factory: Callable) -> None:
        """Swap the scheduler factory shipped to workers on later drains.

        The knob-broadcast path for process execution: the factory is
        pickled into the worker at each drain, so epochs already in
        flight keep their configuration and every subsequent drain
        builds its scheduler from the new one.  Must stay a picklable
        zero-argument callable.
        """
        self._scheduler_factory = factory

    def _get_pool(self):
        if self._pool is not None:
            return self._pool
        from repro.experiments.pool import get_pool

        return get_pool()

    def _do_start(self) -> None:
        # Spawn (or attach to) the warm pool eagerly so the first drain
        # pays no startup cost.
        self._get_pool()

    def _do_submit(self, job_id: int, spec: QuerySpec, at: Optional[float]) -> None:
        arrival = 0.0 if at is None else float(at)
        if arrival < 0.0:
            raise ReproError("arrival time must be non-negative")
        self._pending.append((arrival, spec, job_id))

    def _do_drain(self) -> List[LatencyRecord]:
        # Cancellations since the previous drain surface exactly once,
        # like every completion.
        finished: List[LatencyRecord] = [
            self.records[job_id] for job_id in self._unreported_cancels
        ]
        self._unreported_cancels = []
        if not self._pending:
            return finished
        pending = self._pending
        self._pending = []
        # Stable sort by arrival time, exactly like the simulated
        # backend: ties resolve in submission order.
        order = sorted(range(len(pending)), key=lambda i: pending[i][0])
        workload = [(pending[i][0], pending[i][1]) for i in order]
        arrival_to_job = {
            arrival_index: pending[submit_index][2]
            for arrival_index, submit_index in enumerate(order)
        }
        from repro.workloads.serialize import workload_to_arrays

        injector = self._fault_injector
        attempt = 0
        while True:
            payload = {
                "scheduler_factory": self._scheduler_factory,
                "seed": self._seed,
                "noise_sigma": self._noise_sigma,
                "max_time": self._max_time,
                "environment_factory": self._environment_factory,
                "return_environment": self._return_environment,
                "channel_capacity": self.channel_capacity,
                "workload": workload_to_arrays(workload),
                "fault_plan": injector.plan if injector is not None else None,
                "fault_spent": tuple(sorted(injector.spent))
                if injector is not None
                else (),
                "attempt": attempt,
            }
            try:
                epoch = self._get_pool().call(_execute_epoch, payload)
                break
            except BrokenExecutor as exc:
                # A worker process died mid-epoch (injected or real).
                # The epoch is pure — nothing was applied locally — so
                # rebuild the pool and re-run it, bounded by
                # max_epoch_retries.
                attempt += 1
                if injector is not None:
                    # Planned deaths fired as a real process death;
                    # record them so the retry does not die again.
                    for index, fault in enumerate(injector.plan.faults):
                        if (
                            fault.kind == WORKER_DEATH
                            and index not in injector.spent
                        ):
                            injector.mark_fired(
                                index, fault.query or "", fault.morsel
                            )
                self._rebuild_pool()
                if attempt > self._max_epoch_retries:
                    error = WorkerFailedError(
                        f"epoch worker processes died {attempt} times; "
                        "giving up on this epoch"
                    )
                    error.__cause__ = exc
                    return finished + self._fail_epoch(
                        workload, arrival_to_job, error
                    )
        self._merge_fired(injector, epoch.get("faults_fired", []))
        self._clock = VirtualClock(epoch["end_time"])
        self.last_tasks_executed = epoch["tasks_executed"]
        self.last_events_processed = epoch["events_processed"]
        self.last_environment = epoch.get("environment")
        results = epoch["results"]
        chunk_payloads = epoch.get("chunks", {})
        for record in LatencyCollector.from_arrays(epoch["records"]).records:
            job_id = arrival_to_job[record.query_id]
            self.records[job_id] = record
            channel = self._channels.get(job_id)
            if record.failed:
                # The worker isolated this query's failure; reconstruct
                # the cause from the record's error text (class identity
                # is preserved for library errors).
                cause = error_from_text(record.error)
                self.failures[job_id] = cause
                if channel is not None:
                    error = QueryFailedError(
                        f"query job {job_id} failed: {record.error}"
                    )
                    error.__cause__ = cause
                    channel.fail(error)
                finished.append(record)
                continue
            if record.query_id in results:
                value = results[record.query_id]
                self.results[job_id] = value
                if channel is not None and not channel.closed:
                    # Materialized results cross as-is; replay them as
                    # one terminal chunk so the handle can still fetch.
                    channel.put_final(value)
            elif record.query_id in chunk_payloads and channel is not None:
                # Streamed result: refill the local channel with the
                # worker's chunks (decoded from their flat-array form).
                for chunk in chunks_from_arrays(
                    chunk_payloads[record.query_id]
                ):
                    channel.put(chunk.kind, chunk.payload, chunk.rows)
            if channel is not None:
                channel.close()
                self._absorb_stream(job_id)
            finished.append(record)
        return finished

    def _do_shutdown(self) -> None:
        # The pool outlives the backend: it is shared warm state.
        self._pending.clear()

    # ------------------------------------------------------------------
    # Worker recovery
    # ------------------------------------------------------------------
    def _rebuild_pool(self) -> None:
        """Replace a broken worker pool with a fresh, equivalent one."""
        self.pool_rebuilds += 1
        if self._pool is not None:
            # A privately supplied pool: the broken executor cannot be
            # reused, so replace it in place with one of the same size.
            from repro.experiments.pool import SweepPool

            workers = self._pool.max_workers
            try:
                self._pool.shutdown()
            except Exception:  # noqa: BLE001 - broken pools may misbehave
                pass
            self._pool = SweepPool(max_workers=workers)
        else:
            from repro.experiments.pool import get_pool, shutdown_pool

            shutdown_pool()
            get_pool()

    def _fail_epoch(
        self, workload, arrival_to_job: dict, error: BaseException
    ) -> List[LatencyRecord]:
        """Fail every job of one lost epoch (retries exhausted)."""
        text = f"{type(error).__name__}: {error}"
        records: List[LatencyRecord] = []
        for arrival_index, job_id in sorted(arrival_to_job.items()):
            arrival, spec = workload[arrival_index]
            record = LatencyRecord(
                query_id=arrival_index,
                name=spec.name,
                scale_factor=spec.scale_factor,
                arrival_time=arrival,
                completion_time=arrival,
                cpu_seconds=0.0,
                failed=True,
                error=text,
            )
            self.records[job_id] = record
            self.failures[job_id] = error
            channel = self._channels.get(job_id)
            if channel is not None:
                failure = QueryFailedError(
                    f"query job {job_id} failed: {text}"
                )
                failure.__cause__ = error
                channel.fail(failure)
            records.append(record)
        return records

    @staticmethod
    def _merge_fired(injector, fired) -> None:
        """Fold a worker-side firing log into the local injector."""
        if injector is None:
            return
        for index, kind, name, morsel in fired:
            if index not in injector.spent:
                injector.spent.add(index)
                injector.fired.append((index, kind, name, morsel))

    def _do_cancel(self, job_id: int) -> None:
        # Epochs run remotely and synchronously, so a cancellable job is
        # always still pending here: remove it and record the
        # cancellation at its arrival time, exactly like the simulated
        # backend.
        for index, (arrival, spec, pending_id) in enumerate(self._pending):
            if pending_id == job_id:
                del self._pending[index]
                self.records[job_id] = LatencyRecord(
                    query_id=-1,
                    name=spec.name,
                    scale_factor=spec.scale_factor,
                    arrival_time=arrival,
                    completion_time=arrival,
                    cpu_seconds=0.0,
                    cancelled=True,
                )
                self._unreported_cancels.append(job_id)
                return

    def _do_fail(self, job_id: int, error: BaseException) -> None:
        # Mirrors _do_cancel: a failable job is always still pending.
        for index, (arrival, spec, pending_id) in enumerate(self._pending):
            if pending_id == job_id:
                del self._pending[index]
                self.records[job_id] = LatencyRecord(
                    query_id=-1,
                    name=spec.name,
                    scale_factor=spec.scale_factor,
                    arrival_time=arrival,
                    completion_time=arrival,
                    cpu_seconds=0.0,
                    failed=True,
                    error=f"{type(error).__name__}: {error}",
                )
                self._unreported_cancels.append(job_id)
                return
