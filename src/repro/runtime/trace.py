"""Execution-trace recording.

Figure 5 of the paper visualises per-morsel execution spans across worker
threads for two TPC-H queries, contrasting static and adaptive morsel
sizes.  The :class:`TraceRecorder` captures exactly that information:
one :class:`MorselSpan` per executed morsel, tagged with the worker, the
query, the pipeline, and the pipeline's execution phase.

Recording is off by default because sustained-load experiments execute
hundreds of thousands of morsels; the figure-5 experiment switches it on
for its two isolated queries.

The recorder lives in :mod:`repro.runtime` because it is
backend-agnostic: spans carry whatever timestamps the active
:class:`~repro.runtime.clock.Clock` produces — virtual seconds under the
:class:`~repro.runtime.simulated.SimulatedBackend`, wall-clock seconds
under the :class:`~repro.runtime.threaded.ThreadedBackend`.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterable, List, Tuple


@dataclass(frozen=True)
class MorselSpan:
    """One executed morsel: where, when, and on behalf of what."""

    worker_id: int
    start: float
    end: float
    query_id: int
    pipeline_index: int
    phase: str
    tuples: int

    @property
    def duration(self) -> float:
        """Elapsed virtual time of this morsel in seconds."""
        return self.end - self.start


class TraceRecorder:
    """Collects :class:`MorselSpan` records when enabled."""

    def __init__(self, enabled: bool = False) -> None:
        self.enabled = enabled
        self._spans: List[MorselSpan] = []
        #: Task-level spans: what the *scheduler* sees.  A task may nest
        #: many morsels (adaptive execution) — those are transparent to
        #: the scheduler and recorded separately in ``spans``.
        self._task_spans: List[MorselSpan] = []

    def record(self, span: MorselSpan) -> None:
        """Store one morsel span (no-op unless recording is enabled)."""
        if self.enabled:
            self._spans.append(span)

    def record_task(self, span: MorselSpan) -> None:
        """Store one scheduler-task span."""
        if self.enabled:
            self._task_spans.append(span)

    @property
    def spans(self) -> List[MorselSpan]:
        """All recorded morsel spans in execution order."""
        return self._spans

    @property
    def task_spans(self) -> List[MorselSpan]:
        """All recorded task spans (one per scheduler decision)."""
        return self._task_spans

    def clear(self) -> None:
        """Drop all recorded spans."""
        self._spans.clear()
        self._task_spans.clear()

    def spans_for_query(self, query_id: int) -> List[MorselSpan]:
        """All spans belonging to one query."""
        return [s for s in self._spans if s.query_id == query_id]

    def duration_stats(self, task_level: bool = False) -> Dict[str, float]:
        """Duration statistics at morsel or scheduler-task granularity.

        ``spread`` is max/min; ``robust_spread`` is p95/p5, which ignores
        the tiny last morsel of each pipeline.  The ratio is the quantity
        the paper calls out in Figure 5a: with static 60k-tuple morsels,
        durations "differ by more than 30x".
        """
        source = self._task_spans if task_level else self._spans
        durations = sorted(s.duration for s in source if s.duration > 0.0)
        if not durations:
            return {
                "min": 0.0,
                "max": 0.0,
                "mean": 0.0,
                "spread": 0.0,
                "robust_spread": 0.0,
            }
        lo = durations[0]
        hi = durations[-1]
        p5 = durations[int(0.05 * (len(durations) - 1))]
        p95 = durations[int(0.95 * (len(durations) - 1))]
        return {
            "min": lo,
            "max": hi,
            "mean": sum(durations) / len(durations),
            "spread": hi / lo if lo > 0.0 else float("inf"),
            "robust_spread": p95 / p5 if p5 > 0.0 else float("inf"),
        }

    def makespan(self) -> Tuple[float, float]:
        """Return (first start, last end) over all recorded spans."""
        if not self._spans:
            return (0.0, 0.0)
        return (
            min(s.start for s in self._spans),
            max(s.end for s in self._spans),
        )

    def worker_utilisation(self, n_workers: int) -> Dict[int, float]:
        """Busy time per worker across the recorded window."""
        busy: Dict[int, float] = {w: 0.0 for w in range(n_workers)}
        for span in self._spans:
            busy[span.worker_id] = busy.get(span.worker_id, 0.0) + span.duration
        return busy


def merge_adjacent_spans(spans: Iterable[MorselSpan]) -> List[MorselSpan]:
    """Merge back-to-back spans of the same worker/query/pipeline/phase.

    Useful for rendering compact task-level traces out of morsel-level
    recordings (the paper draws tasks with their nested morsels).
    """
    merged: List[MorselSpan] = []
    for span in spans:
        if merged:
            last = merged[-1]
            contiguous = (
                last.worker_id == span.worker_id
                and last.query_id == span.query_id
                and last.pipeline_index == span.pipeline_index
                and last.phase == span.phase
                and abs(last.end - span.start) < 1e-12
            )
            if contiguous:
                merged[-1] = MorselSpan(
                    worker_id=last.worker_id,
                    start=last.start,
                    end=span.end,
                    query_id=last.query_id,
                    pipeline_index=last.pipeline_index,
                    phase=last.phase,
                    tuples=last.tuples + span.tuples,
                )
                continue
        merged.append(span)
    return merged
