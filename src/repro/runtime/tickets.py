"""Ticket bookkeeping: aliases, retry state and per-ticket metadata.

The :class:`~repro.server.AnalyticsServer` (and, one level up, the
:class:`~repro.cluster.ClusterRouter`) issue integer *tickets* for
submitted queries.  A ticket's life is more complicated than one
backend job id:

* a retried query gets a fresh backend ticket per attempt, and the
  caller's original ticket must transparently follow the chain to the
  latest attempt (PR 5's alias machinery);
* a query handed off to another shard keeps its cluster ticket but
  changes its :class:`ShardAddress`;
* admission policies need the submission priority, tenant and SLA
  class of every pending ticket to pick shedding victims and enforce
  per-tenant quotas.

:class:`TicketRegistry` centralises that bookkeeping behind one small
API, so the server is free to treat tickets as opaque and the cluster
router can address any query as ``(shard, ticket)``.  The registry is
deliberately dumb storage — it never talks to a backend — which keeps
it trivially picklable and usable at both the shard and cluster layer.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterator, List, NamedTuple, Optional


class ShardAddress(NamedTuple):
    """Where a cluster ticket currently lives: ``(shard, ticket)``."""

    shard: int
    ticket: int


@dataclass
class TicketState:
    """Everything the issuing layer knows about one ticket."""

    priority: int = 0
    tenant: Optional[str] = None
    sla: Optional[str] = None
    #: Cluster layer only: the shard ticket this cluster ticket maps to.
    address: Optional[ShardAddress] = None
    #: Retry policy of the *original* ticket of a chain:
    #: ``{"spec", "at", "left", "attempt", "backoff"}``; ``None`` for
    #: tickets submitted without retries (and for replacement attempts).
    retry: Optional[dict] = None


class TicketRegistry:
    """Alias chains plus per-ticket metadata for one ticket namespace.

    One registry instance covers one ticket space: the server keeps one
    over backend job ids, the cluster router keeps another over cluster
    tickets.  ``resolve`` follows retry/handoff aliases to the ticket
    that currently represents the query; metadata lookups resolve
    through the chain so a replacement attempt inherits the original's
    priority, tenant and SLA class.
    """

    def __init__(self) -> None:
        #: superseded ticket -> its replacement; chains.
        self._aliases: Dict[int, int] = {}
        self._states: Dict[int, TicketState] = {}
        #: Tickets in registration order (deterministic iteration).
        self._order: List[int] = []

    # ------------------------------------------------------------------
    # Registration and aliasing
    # ------------------------------------------------------------------
    def register(
        self,
        ticket: int,
        *,
        priority: int = 0,
        tenant: Optional[str] = None,
        sla: Optional[str] = None,
        address: Optional[ShardAddress] = None,
    ) -> TicketState:
        """Record a freshly issued ticket; returns its mutable state."""
        state = TicketState(
            priority=priority, tenant=tenant, sla=sla, address=address
        )
        self._states[int(ticket)] = state
        self._order.append(int(ticket))
        return state

    def alias(self, old: int, new: int) -> None:
        """Point a superseded ticket at its replacement.

        The replacement inherits the old ticket's metadata (priority,
        tenant, SLA) unless it was registered with its own; retry state
        stays keyed on the *original* ticket of the chain.
        """
        old, new = int(old), int(new)
        self._aliases[old] = new
        if new not in self._states:
            previous = self._states.get(old)
            self.register(
                new,
                priority=previous.priority if previous else 0,
                tenant=previous.tenant if previous else None,
                sla=previous.sla if previous else None,
            )

    def resolve(self, ticket: int) -> int:
        """Follow a ticket through its replacements to the latest one."""
        ticket = int(ticket)
        while ticket in self._aliases:
            ticket = self._aliases[ticket]
        return ticket

    def known(self, ticket: int) -> bool:
        """Whether this registry ever issued ``ticket``."""
        return int(ticket) in self._states

    def __len__(self) -> int:
        return len(self._states)

    def __iter__(self) -> Iterator[int]:
        """All registered tickets, oldest first (deterministic)."""
        return iter(self._order)

    # ------------------------------------------------------------------
    # Metadata (resolved through alias chains on lookup)
    # ------------------------------------------------------------------
    def state_of(self, ticket: int) -> Optional[TicketState]:
        """The ticket's own state record (not alias-resolved)."""
        return self._states.get(int(ticket))

    def priority_of(self, ticket: int, default: int = 0) -> int:
        state = self._states.get(int(ticket))
        return state.priority if state is not None else default

    def tenant_of(self, ticket: int) -> Optional[str]:
        state = self._states.get(int(ticket))
        return state.tenant if state is not None else None

    def sla_of(self, ticket: int) -> Optional[str]:
        state = self._states.get(int(ticket))
        return state.sla if state is not None else None

    # ------------------------------------------------------------------
    # Addresses (cluster layer)
    # ------------------------------------------------------------------
    def address_of(self, ticket: int) -> Optional[ShardAddress]:
        """The current shard address of a (resolved) cluster ticket."""
        state = self._states.get(self.resolve(ticket))
        return state.address if state is not None else None

    def readdress(self, ticket: int, address: ShardAddress) -> None:
        """Move a cluster ticket to a new shard (drain/handoff)."""
        state = self._states.get(self.resolve(ticket))
        if state is None:
            raise KeyError(f"unknown ticket {ticket}")
        state.address = address

    def tickets_at(self, shard: int) -> List[int]:
        """Resolved tickets currently addressed to ``shard``, in order."""
        out = []
        for ticket in self._order:
            if ticket in self._aliases:
                continue
            state = self._states[ticket]
            if state.address is not None and state.address.shard == shard:
                out.append(ticket)
        return out

    # ------------------------------------------------------------------
    # Retry state (keyed on the chain's original ticket)
    # ------------------------------------------------------------------
    def arm_retry(
        self,
        ticket: int,
        *,
        spec,
        at,
        retries: int,
        backoff: float,
    ) -> None:
        """Attach a retry policy to a freshly submitted ticket."""
        state = self._states[int(ticket)]
        state.retry = {
            "spec": spec,
            "at": at,
            "left": retries,
            "attempt": 0,
            "backoff": backoff,
        }

    def retry_state(self, ticket: int) -> Optional[dict]:
        state = self._states.get(int(ticket))
        return state.retry if state is not None else None

    def disarm_retry(self, ticket: int) -> None:
        """Stop further retries of a chain (cancellation)."""
        state = self._states.get(int(ticket))
        if state is not None:
            state.retry = None

    def retryable_tickets(self) -> List[int]:
        """Original tickets that still carry an armed retry policy."""
        return [
            ticket
            for ticket in self._order
            if self._states[ticket].retry is not None
        ]
