"""Clocks: the runtime layer's only notion of time.

Schedulers, the morsel executor and the tuning controller never ask the
operating system for the time — they receive ``now`` values from whoever
drives them and, when they need a time source themselves (the tuning
controller measuring its own optimization cost), they consult a
:class:`Clock`.  Two implementations cover both execution backends:

* :class:`VirtualClock` — manually advanced virtual seconds, driven by
  the discrete-event simulator (the
  :class:`~repro.runtime.simulated.SimulatedBackend`);
* :class:`WallClock` — monotonic wall-clock seconds since ``start()``,
  used by the :class:`~repro.runtime.threaded.ThreadedBackend` whose
  workers are real OS threads.

Both express time as floating-point **seconds** starting at zero, so
latency records are directly comparable across backends.
"""

from __future__ import annotations

import time
from typing import Protocol, runtime_checkable

from repro.errors import ReproError


@runtime_checkable
class Clock(Protocol):
    """Anything that can report the current time in seconds."""

    def now(self) -> float:
        """Current time in seconds since the epoch of the run."""
        ...  # pragma: no cover - protocol

    #: Whether ``now()`` advances on its own (wall clock) or only when
    #: the driver advances it (virtual clock).  Lets time consumers —
    #: the tuning controller measuring its own optimization cost —
    #: decide between *measuring* elapsed time and *modelling* it.
    realtime: bool


class VirtualClock:
    """A monotonically advancing virtual clock (discrete-event time).

    Functionally equivalent to :class:`repro.simcore.clock.SimClock` but
    exposes time through the :class:`Clock` protocol (``now()`` as a
    method) so schedulers can hold a clock without knowing whether it is
    virtual or real.
    """

    __slots__ = ("_now",)

    realtime = False

    def __init__(self, start: float = 0.0) -> None:
        if start < 0.0:
            raise ReproError("clock cannot start before time zero")
        self._now = float(start)

    def now(self) -> float:
        """Current virtual time in seconds."""
        return self._now

    def advance_to(self, when: float) -> None:
        """Move the clock forward to ``when`` (never backwards)."""
        if when < self._now:
            raise ReproError(
                f"clock moving backwards: {when:.9f} < {self._now:.9f}"
            )
        self._now = when

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"VirtualClock(now={self._now:.6f})"


class WallClock:
    """Monotonic wall-clock seconds since :meth:`start`.

    ``now()`` before ``start()`` returns 0.0 so that arrival timestamps
    taken while a backend is still being wired up are well defined.
    """

    __slots__ = ("_epoch",)

    realtime = True

    def __init__(self) -> None:
        self._epoch: float | None = None

    def start(self) -> None:
        """Pin the epoch; subsequent ``now()`` calls are relative to it."""
        if self._epoch is None:
            self._epoch = time.monotonic()

    @property
    def started(self) -> bool:
        """Whether the epoch has been pinned."""
        return self._epoch is not None

    def now(self) -> float:
        """Seconds elapsed since :meth:`start` (0.0 before it)."""
        if self._epoch is None:
            return 0.0
        return time.monotonic() - self._epoch

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"WallClock(now={self.now():.6f})"
