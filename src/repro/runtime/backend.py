"""The execution-backend protocol: one scheduler, pluggable substrates.

The schedulers in :mod:`repro.core` are driven through three calls
(``admit`` / ``worker_decide`` / ``worker_finish``) and are agnostic to
*what* advances time and executes morsels.  An
:class:`ExecutionBackend` is the thing that drives them:

* the :class:`~repro.runtime.simulated.SimulatedBackend` replays the
  calls from a discrete-event loop in virtual time (the substrate every
  figure of the paper is reproduced on);
* the :class:`~repro.runtime.threaded.ThreadedBackend` runs one real OS
  thread per worker, so the scheduler's atomics, update masks and the
  finalization protocol are exercised under genuine concurrency.

Both present the same *online* lifecycle, which the
:class:`~repro.server.AnalyticsServer` builds on:

``start()``
    begin executing (idempotent while running; illegal after
    ``shutdown``);
``submit(spec, at=None)``
    register one query; returns a :class:`~repro.runtime.handle.QueryHandle`
    — an ``int`` job id that doubles as a result cursor
    (``fetch``/iteration/``cancel``/``progress``).  Legal before and
    while running;
``drain()``
    block until every submitted job completed; returns the latency
    records of the jobs that finished since the previous drain.  The
    backend stays usable afterwards;
``cancel(job_id)``
    abort one in-flight job: its result channel fails with
    :class:`~repro.errors.QueryCancelledError` and the scheduler winds
    the query down through the normal finalization protocol;
``shutdown()``
    stop executing and release workers.  Afterwards every mutating call
    raises :class:`~repro.errors.ReproError`; completed records remain
    readable.

Results flow through one bounded
:class:`~repro.runtime.channel.ResultChannel` per job.  The engine
pushes row chunks as morsels of the final pipeline complete; callers
either consume the live stream through the handle (threaded backend —
bounded memory) or let ``drain()`` absorb the stream into the handle's
spill so ``results[job_id]`` holds the assembled value exactly as it
did before the streaming refactor.
"""

from __future__ import annotations

import abc
import enum
import threading
from typing import Dict, List, Mapping, Optional, Set

from repro.core.specs import QuerySpec
from repro.errors import (
    QueryCancelledError,
    QueryFailedError,
    ReproError,
    UnknownTicketError,
)
from repro.metrics.latency import LatencyRecord
from repro.runtime.channel import (
    DEFAULT_CHANNEL_CAPACITY,
    NO_RESULT,
    ResultChannel,
    assemble_chunks,
)
from repro.runtime.clock import Clock
from repro.runtime.faults import FaultInjector, FaultPlan
from repro.runtime.handle import QueryHandle


class BackendState(enum.Enum):
    """Lifecycle phase of an execution backend."""

    NEW = "new"
    RUNNING = "running"
    CLOSED = "closed"


class ExecutionBackend(abc.ABC):
    """Common lifecycle + job bookkeeping for execution backends."""

    #: Whether this backend's result channels block producers when full
    #: (real backpressure).  Virtual-time backends keep ``False`` — in
    #: an epoch no consumer can run concurrently, so blocking would
    #: deadlock; the threaded backend overrides to ``True``.
    _channel_blocking = False

    def __init__(
        self, *, channel_capacity: int = DEFAULT_CHANNEL_CAPACITY
    ) -> None:
        self._state = BackendState.NEW
        self._lifecycle_lock = threading.Lock()
        self._next_job_id = 0
        #: Latency records of completed jobs, keyed by job id.
        self.records: Dict[int, LatencyRecord] = {}
        #: Engine results of completed jobs (only populated when the
        #: execution environment produces real results).
        self.results: Dict[int, object] = {}
        #: How many chunks each job's result channel buffers before
        #: applying backpressure.
        self.channel_capacity = channel_capacity
        self._channels: Dict[int, ResultChannel] = {}
        self._handles: Dict[int, QueryHandle] = {}
        self._cancelled: Set[int] = set()
        #: The exception that failed each failed job (in-process view;
        #: failures that crossed a process pipe are reconstructed from
        #: the record's error text).
        self.failures: Dict[int, BaseException] = {}
        self._fault_injector: Optional[FaultInjector] = None

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------
    @property
    def state(self) -> BackendState:
        """The current lifecycle phase."""
        return self._state

    def start(self) -> None:
        """Begin executing submitted jobs."""
        with self._lifecycle_lock:
            if self._state is BackendState.CLOSED:
                raise ReproError("backend already shut down; create a new one")
            if self._state is BackendState.RUNNING:
                return
            self._state = BackendState.RUNNING
            self._do_start()

    def submit(self, spec: QuerySpec, at: Optional[float] = None) -> QueryHandle:
        """Register one query for execution; returns its handle.

        The handle is an ``int`` (the job id) and stays valid as a
        plain ticket everywhere a job id is accepted; it additionally
        exposes the streaming cursor API
        (:meth:`~repro.runtime.handle.QueryHandle.fetch`, iteration,
        ``cancel``, ``progress``).
        """
        with self._lifecycle_lock:
            if self._state is BackendState.CLOSED:
                raise ReproError(
                    "cannot submit to a backend after shutdown()"
                )
            job_id = self._next_job_id
            self._next_job_id += 1
            channel = ResultChannel(
                self.channel_capacity, blocking=self._channel_blocking
            )
            handle = QueryHandle.attach(job_id, self, channel)
            self._channels[job_id] = channel
            self._handles[job_id] = handle
        self._do_submit(job_id, spec, at)
        return handle

    def drain(self) -> List[LatencyRecord]:
        """Run every submitted job to completion; return the new records."""
        if self._state is BackendState.CLOSED:
            raise ReproError("cannot drain a backend after shutdown()")
        if self._state is BackendState.NEW:
            self.start()
        return self._do_drain()

    def shutdown(self) -> None:
        """Stop executing; the backend cannot be restarted."""
        with self._lifecycle_lock:
            if self._state is BackendState.CLOSED:
                return
            self._state = BackendState.CLOSED
        self._do_shutdown()

    def cancel(self, job_id: int) -> bool:
        """Abort one in-flight job; returns ``True`` if it was cancelled.

        A job that already completed keeps its result and record —
        ``cancel`` then returns ``False``.  Otherwise the job's result
        channel fails with :class:`~repro.errors.QueryCancelledError`
        (waking any parked producer or consumer), the backend tags the
        query's task sets exhausted so the §2.3 finalization protocol
        winds it down through the normal completion path, and its
        admission slot frees for subsequent queries.  Idempotent.
        """
        self._check_job(job_id)
        with self._lifecycle_lock:
            if self._state is BackendState.CLOSED:
                raise ReproError("cannot cancel on a backend after shutdown()")
            if job_id in self._cancelled:
                return True
            if job_id in self.records:
                return False
            self._cancelled.add(job_id)
        channel = self._channels.get(job_id)
        if channel is not None:
            # Fail the channel *first*: a threaded producer parked in a
            # full channel must wake (and see its puts become drops)
            # before the scheduler drains the query's remaining work.
            channel.fail(
                QueryCancelledError(f"query job {job_id} was cancelled")
            )
            if not channel.failed:
                # The job completed in the race window; its clean close
                # won, so the result stands and the cancel is a no-op.
                self._cancelled.discard(job_id)
                return False
        self._do_cancel(job_id)
        return True

    def fail(self, job_id: int, error: BaseException) -> bool:
        """Fail one in-flight job; returns ``True`` if it took effect.

        The failure twin of :meth:`cancel` — used by load shedding and
        by tests; queries that fail *internally* (a raising morsel, a
        missed deadline) go through the scheduler's abort path instead
        and land in :attr:`failures` when their record surfaces.  A job
        that already completed keeps its result; the same clean-close
        race rule as ``cancel`` applies.
        """
        self._check_job(job_id)
        with self._lifecycle_lock:
            if self._state is BackendState.CLOSED:
                raise ReproError("cannot fail a job on a backend after shutdown()")
            if job_id in self.failures:
                return True
            if job_id in self.records or job_id in self._cancelled:
                return False
            self.failures[job_id] = error
        channel = self._channels.get(job_id)
        if channel is not None:
            failure = QueryFailedError(
                f"query job {job_id} failed: "
                f"{type(error).__name__}: {error}"
            )
            failure.__cause__ = error
            channel.fail(failure)
            if not channel.failed:
                # The job completed in the race window; its clean close
                # won, so the result stands and the fail is a no-op.
                self.failures.pop(job_id, None)
                return False
        self._do_fail(job_id, error)
        return True

    # ------------------------------------------------------------------
    # Knob broadcast (§4 generalized: mid-run tuning updates)
    # ------------------------------------------------------------------
    def broadcast_knobs(self, changes: Mapping[str, object]) -> List[str]:
        """Push tuned runtime knob values into this backend mid-run.

        The base class handles the knob every backend shares —
        ``runtime.channel_capacity``, read at each subsequent submit;
        subclasses extend with substrate-specific broadcast (the
        threaded backend pushes decay parameters into its live
        scheduler, the process backend swaps the factory shipped to
        workers).  Unknown names are ignored so one tuned vector can be
        broadcast through heterogeneous backends.  Returns the names
        that took effect.
        """
        applied: List[str] = []
        if "runtime.channel_capacity" in changes:
            capacity = int(changes["runtime.channel_capacity"])
            if capacity < 1:
                raise ReproError("channel capacity must be at least 1")
            self.channel_capacity = capacity
            applied.append("runtime.channel_capacity")
        return applied

    # ------------------------------------------------------------------
    # Fault injection
    # ------------------------------------------------------------------
    def install_faults(
        self,
        plan: FaultPlan,
        *,
        spent=(),
        skip_kinds=(),
    ) -> FaultInjector:
        """Install a deterministic fault plan on this backend.

        Execution environments are wrapped in a
        :class:`~repro.runtime.faults.FaultyEnvironment` that fires the
        planned faults; the returned injector exposes the ``fired`` log
        and ``spent`` indices.  Install before the backend starts
        executing; each fault fires at most once per installation.
        """
        if self._state is BackendState.CLOSED:
            raise ReproError("cannot install faults after shutdown()")
        self._fault_injector = FaultInjector(
            plan,
            realtime=self._channel_blocking,
            spent=spent,
            skip_kinds=skip_kinds,
        )
        return self._fault_injector

    @property
    def fault_injector(self) -> Optional[FaultInjector]:
        """The installed fault injector, if any."""
        return self._fault_injector

    # ------------------------------------------------------------------
    # Job status
    # ------------------------------------------------------------------
    def _check_job(self, job_id: int) -> None:
        if job_id >= self._next_job_id or job_id < 0:
            raise UnknownTicketError(f"unknown job id {job_id}")

    def poll(self, job_id: int) -> Optional[LatencyRecord]:
        """The job's latency record if it completed, else ``None``."""
        self._check_job(job_id)
        return self.records.get(job_id)

    def handle(self, job_id: int) -> QueryHandle:
        """The :class:`QueryHandle` issued for ``job_id`` at submit."""
        self._check_job(job_id)
        return self._handles[job_id]

    def cancelled(self, job_id: int) -> bool:
        """Whether ``job_id`` was cancelled."""
        self._check_job(job_id)
        return job_id in self._cancelled

    def failed(self, job_id: int) -> bool:
        """Whether ``job_id`` failed (exception, fault, deadline, shed)."""
        self._check_job(job_id)
        if job_id in self.failures:
            return True
        record = self.records.get(job_id)
        return record is not None and record.failed

    def failure(self, job_id: int) -> Optional[BaseException]:
        """The exception that failed ``job_id``, if it failed.

        In-process failures return the original exception; failures that
        crossed a process pipe are reconstructed from the record's error
        text (class identity preserved for library errors).
        """
        self._check_job(job_id)
        error = self.failures.get(job_id)
        if error is not None:
            return error
        record = self.records.get(job_id)
        if record is not None and record.failed:
            from repro.errors import error_from_text

            return error_from_text(record.error)
        return None

    def progress(self, job_id: int) -> dict:
        """Streaming/completion counters for one job, without consuming.

        Keys: ``done`` (record exists), ``cancelled``, ``failed``,
        ``chunks_put`` / ``rows_put`` (produced so far),
        ``chunks_pending`` (buffered, not yet fetched), ``rows_fetched``
        (consumed via the handle).
        """
        self._check_job(job_id)
        channel = self._channels.get(job_id)
        handle = self._handles.get(job_id)
        record = self.records.get(job_id)
        return {
            "done": job_id in self.records,
            "cancelled": job_id in self._cancelled,
            "failed": job_id in self.failures
            or (record is not None and record.failed),
            "chunks_put": channel.chunks_put if channel is not None else 0,
            "rows_put": channel.rows_put if channel is not None else 0,
            "chunks_pending": channel.depth if channel is not None else 0,
            "rows_fetched": handle.fetched_rows if handle is not None else 0,
        }

    def result(self, job_id: int):
        """The fully assembled result of a completed job.

        Raises :class:`~repro.errors.QueryCancelledError` for cancelled
        jobs, :class:`~repro.errors.QueryFailedError` for failed ones
        (chaining the causing exception where available), and
        :class:`~repro.errors.ReproError` when the job has not finished,
        was consumed as a live stream (its full result was deliberately
        never materialized), or ran in an environment that produces no
        results.
        """
        self._check_job(job_id)
        if job_id in self._cancelled:
            raise QueryCancelledError(
                f"query job {job_id} was cancelled; it has no result"
            )
        record = self.records.get(job_id)
        if job_id in self.failures or (record is not None and record.failed):
            cause = self.failure(job_id)
            raise QueryFailedError(
                f"query job {job_id} failed: "
                f"{type(cause).__name__}: {cause}"
            ) from cause
        if job_id in self.results:
            return self.results[job_id]
        handle = self._handles.get(job_id)
        if handle is not None and handle._streamed:
            raise ReproError(
                f"job {job_id} was consumed as a stream; its full result "
                "was never materialized"
            )
        if job_id not in self.records:
            raise ReproError(f"job {job_id} has not finished")
        self._absorb_stream(job_id)
        if job_id not in self.results:
            raise ReproError(
                f"job {job_id} produced no result "
                "(execution environment without an engine?)"
            )
        return self.results[job_id]

    def _absorb_stream(self, job_id: int) -> None:
        """Move buffered chunks into the handle's spill; assemble if done.

        Called by ``drain()`` (and ``result``): popping the channel
        unblocks any producer parked on a full channel, and once the
        channel closes cleanly the spilled chunks reassemble into
        ``results[job_id]`` — bit-identical to the pre-streaming value,
        because the chunks are exactly the old sink buffer in order.
        Handles being consumed as live streams are left alone.
        """
        handle = self._handles.get(job_id)
        channel = self._channels.get(job_id)
        if handle is None or channel is None:
            return
        if handle._streamed or handle._materialized:
            return
        while True:
            try:
                chunk = channel.get_nowait()
            except ReproError:
                return  # failed channel (cancellation); nothing to keep
            if chunk is None:
                break
            handle._spill.append(chunk)
        if channel.closed and not channel.failed:
            handle._materialized = True
            if handle._spill and job_id not in self.results:
                assembled = assemble_chunks(handle._spill)
                if assembled is not NO_RESULT:
                    self.results[job_id] = assembled

    @property
    def submitted_count(self) -> int:
        """Total number of jobs ever submitted."""
        return self._next_job_id

    @property
    def completed_count(self) -> int:
        """Number of jobs with a latency record."""
        return len(self.records)

    @property
    def pending_count(self) -> int:
        """Jobs submitted but not yet completed."""
        return self._next_job_id - len(self.records)

    # ------------------------------------------------------------------
    # Backend contract
    # ------------------------------------------------------------------
    @property
    @abc.abstractmethod
    def clock(self) -> Clock:
        """The time source of this backend (virtual or wall clock)."""

    @abc.abstractmethod
    def _do_start(self) -> None:
        """Backend-specific start (called once, under the lifecycle lock)."""

    @abc.abstractmethod
    def _do_submit(self, job_id: int, spec: QuerySpec, at: Optional[float]) -> None:
        """Register one job with the execution substrate."""

    @abc.abstractmethod
    def _do_drain(self) -> List[LatencyRecord]:
        """Block until all submitted jobs completed; return new records."""

    @abc.abstractmethod
    def _do_shutdown(self) -> None:
        """Backend-specific teardown (idempotence handled by the base)."""

    def _do_cancel(self, job_id: int) -> None:
        """Backend-specific cancellation.

        Called after the job's channel failed; the backend must ensure
        a latency record (``cancelled=True``) eventually appears so
        ``pending_count`` drops and ``drain()`` does not wait forever.
        """
        raise ReproError(
            f"{type(self).__name__} does not support cancel()"
        )

    def _do_fail(self, job_id: int, error: BaseException) -> None:
        """Backend-specific external failure (load shedding).

        Called after the job's channel failed; the backend must ensure
        a latency record (``failed=True``) eventually appears so
        ``pending_count`` drops and ``drain()`` does not wait forever.
        """
        raise ReproError(
            f"{type(self).__name__} does not support fail()"
        )
