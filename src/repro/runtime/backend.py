"""The execution-backend protocol: one scheduler, pluggable substrates.

The schedulers in :mod:`repro.core` are driven through three calls
(``admit`` / ``worker_decide`` / ``worker_finish``) and are agnostic to
*what* advances time and executes morsels.  An
:class:`ExecutionBackend` is the thing that drives them:

* the :class:`~repro.runtime.simulated.SimulatedBackend` replays the
  calls from a discrete-event loop in virtual time (the substrate every
  figure of the paper is reproduced on);
* the :class:`~repro.runtime.threaded.ThreadedBackend` runs one real OS
  thread per worker, so the scheduler's atomics, update masks and the
  finalization protocol are exercised under genuine concurrency.

Both present the same *online* lifecycle, which the
:class:`~repro.server.AnalyticsServer` builds on:

``start()``
    begin executing (idempotent while running; illegal after
    ``shutdown``);
``submit(spec, at=None)``
    register one query; returns a **job id** for later record/result
    retrieval.  Legal before and while running;
``drain()``
    block until every submitted job completed; returns the latency
    records of the jobs that finished since the previous drain.  The
    backend stays usable afterwards;
``shutdown()``
    stop executing and release workers.  Afterwards every mutating call
    raises :class:`~repro.errors.ReproError`; completed records remain
    readable.
"""

from __future__ import annotations

import abc
import enum
import threading
from typing import Dict, List, Optional

from repro.core.specs import QuerySpec
from repro.errors import ReproError
from repro.metrics.latency import LatencyRecord
from repro.runtime.clock import Clock


class BackendState(enum.Enum):
    """Lifecycle phase of an execution backend."""

    NEW = "new"
    RUNNING = "running"
    CLOSED = "closed"


class ExecutionBackend(abc.ABC):
    """Common lifecycle + job bookkeeping for execution backends."""

    def __init__(self) -> None:
        self._state = BackendState.NEW
        self._lifecycle_lock = threading.Lock()
        self._next_job_id = 0
        #: Latency records of completed jobs, keyed by job id.
        self.records: Dict[int, LatencyRecord] = {}
        #: Engine results of completed jobs (only populated when the
        #: execution environment produces real results).
        self.results: Dict[int, object] = {}

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------
    @property
    def state(self) -> BackendState:
        """The current lifecycle phase."""
        return self._state

    def start(self) -> None:
        """Begin executing submitted jobs."""
        with self._lifecycle_lock:
            if self._state is BackendState.CLOSED:
                raise ReproError("backend already shut down; create a new one")
            if self._state is BackendState.RUNNING:
                return
            self._state = BackendState.RUNNING
            self._do_start()

    def submit(self, spec: QuerySpec, at: Optional[float] = None) -> int:
        """Register one query for execution; returns its job id."""
        with self._lifecycle_lock:
            if self._state is BackendState.CLOSED:
                raise ReproError(
                    "cannot submit to a backend after shutdown()"
                )
            job_id = self._next_job_id
            self._next_job_id += 1
        self._do_submit(job_id, spec, at)
        return job_id

    def drain(self) -> List[LatencyRecord]:
        """Run every submitted job to completion; return the new records."""
        if self._state is BackendState.CLOSED:
            raise ReproError("cannot drain a backend after shutdown()")
        if self._state is BackendState.NEW:
            self.start()
        return self._do_drain()

    def shutdown(self) -> None:
        """Stop executing; the backend cannot be restarted."""
        with self._lifecycle_lock:
            if self._state is BackendState.CLOSED:
                return
            self._state = BackendState.CLOSED
        self._do_shutdown()

    # ------------------------------------------------------------------
    # Job status
    # ------------------------------------------------------------------
    def poll(self, job_id: int) -> Optional[LatencyRecord]:
        """The job's latency record if it completed, else ``None``."""
        if job_id >= self._next_job_id or job_id < 0:
            raise ReproError(f"unknown job id {job_id}")
        return self.records.get(job_id)

    @property
    def submitted_count(self) -> int:
        """Total number of jobs ever submitted."""
        return self._next_job_id

    @property
    def completed_count(self) -> int:
        """Number of jobs with a latency record."""
        return len(self.records)

    @property
    def pending_count(self) -> int:
        """Jobs submitted but not yet completed."""
        return self._next_job_id - len(self.records)

    # ------------------------------------------------------------------
    # Backend contract
    # ------------------------------------------------------------------
    @property
    @abc.abstractmethod
    def clock(self) -> Clock:
        """The time source of this backend (virtual or wall clock)."""

    @abc.abstractmethod
    def _do_start(self) -> None:
        """Backend-specific start (called once, under the lifecycle lock)."""

    @abc.abstractmethod
    def _do_submit(self, job_id: int, spec: QuerySpec, at: Optional[float]) -> None:
        """Register one job with the execution substrate."""

    @abc.abstractmethod
    def _do_drain(self) -> List[LatencyRecord]:
        """Block until all submitted jobs completed; return new records."""

    @abc.abstractmethod
    def _do_shutdown(self) -> None:
        """Backend-specific teardown (idempotence handled by the base)."""
