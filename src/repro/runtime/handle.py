"""Query handles: cursor-style access to a submitted query's results.

``ExecutionBackend.submit`` returns a :class:`QueryHandle`.  The handle
*is* the job ticket — it subclasses :class:`int`, so every caller that
treated the old integer ticket as a dict key, compared it, or passed it
back into ``poll``/``wait``/``result`` keeps working unchanged — but it
also fronts the query's :class:`~repro.runtime.channel.ResultChannel`
with cursor semantics:

* :meth:`fetch` pops up to ``n`` result rows (splitting chunks when
  needed), blocking for the next chunk on the threaded backend;
* iterating yields batches at their natural chunk boundaries;
* :meth:`cancel` propagates down to task-set tagging in ``core/``;
* :meth:`progress` reports streaming counters without consuming.

Two consumption modes share the interface:

**streaming** (threaded backend, before ``drain``)
    ``fetch`` pops the live channel, so peak buffered memory stays
    bounded by the channel capacity no matter how large the result is.
    Popped rows are gone — ``result()`` afterwards raises, because the
    full result was deliberately never materialized.

**materialized** (after ``drain``, and always on virtual-time backends)
    The backend has absorbed the stream into the handle's spill list;
    ``fetch``/iteration *replay* from the spill without consuming it,
    so ``result()`` and ``results[ticket]`` still see the whole value.
"""

from __future__ import annotations

from typing import Iterator, List, Optional, Tuple

from repro.errors import ReproError
from repro.runtime.channel import FINAL, ResultChannel, ResultChunk


class QueryHandle(int):
    """An integer job ticket that doubles as a result cursor.

    Instances are created by the backend via :meth:`attach`; the value
    is the backend-assigned job id.
    """

    #: Attribute defaults so an un-attached handle (e.g. one built by
    #: pickling the plain int) degrades to a bare ticket gracefully.
    _backend = None
    _channel: Optional[ResultChannel] = None

    @classmethod
    def attach(
        cls, job_id: int, backend, channel: ResultChannel
    ) -> "QueryHandle":
        """Build a handle for ``job_id`` wired to its backend + channel."""
        handle = cls(job_id)
        handle._backend = backend
        handle._channel = channel
        handle._spill: List[ResultChunk] = []
        handle._cursor = 0
        handle._partial: Optional[Tuple[dict, int, int]] = None
        handle._streamed = False
        handle._materialized = False
        handle.fetched_rows = 0
        return handle

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"QueryHandle({int(self)})"

    def __str__(self) -> str:
        # int has no tp_str of its own, so without this str() would fall
        # back to __repr__ and error messages would read
        # "job QueryHandle(3)" instead of "job 3".
        return str(int(self))

    # ------------------------------------------------------------------
    # Chunk cursor
    # ------------------------------------------------------------------
    def _next_chunk(self) -> Optional[ResultChunk]:
        """Advance to the next chunk: spilled first, then the live channel."""
        if self._cursor < len(self._spill):
            chunk = self._spill[self._cursor]
            self._cursor += 1
            return chunk
        if self._materialized:
            return None
        channel = self._channel
        if channel is None:
            return None
        # From here on we are consuming the live stream destructively;
        # drain() must leave this handle's channel alone.
        self._streamed = True
        return channel.get(timeout=30.0)

    def _take(self, limit: int):
        """Pop up to ``limit`` rows; returns ``(batch, rows)``.

        ``(None, 0)`` means end-of-stream; ``rows is None`` flags a
        ``final`` chunk whose payload is returned whole (pipeline
        breakers produce exactly one, and it need not be sliceable).
        """
        if self._partial is not None:
            batch, offset, total = self._partial
            take = min(limit, total - offset)
            out = {
                name: column[offset : offset + take]
                for name, column in batch.items()
            }
            if offset + take >= total:
                self._partial = None
            else:
                self._partial = (batch, offset + take, total)
            return out, take
        chunk = self._next_chunk()
        if chunk is None:
            return None, 0
        if chunk.kind == FINAL:
            return chunk.payload, None
        if chunk.rows <= limit:
            return chunk.payload, chunk.rows
        self._partial = (chunk.payload, limit, chunk.rows)
        return (
            {name: column[:limit] for name, column in chunk.payload.items()},
            limit,
        )

    # ------------------------------------------------------------------
    # Public cursor API
    # ------------------------------------------------------------------
    def fetch(self, n: int = 65536):
        """Return a batch of up to ``n`` result rows, ``None`` at the end.

        Row batches are dicts of numpy column arrays.  For a query whose
        final sink is a pipeline breaker (aggregate, sort, top-k) the
        stream holds a single terminal chunk and ``fetch`` returns its
        payload whole.  On a cancelled query this raises
        :class:`~repro.errors.QueryCancelledError`.
        """
        if n < 1:
            raise ReproError(f"fetch(n) needs n >= 1, got {n}")
        gathered: List[dict] = []
        got = 0
        while got < n:
            batch, rows = self._take(n - got)
            if batch is None:
                break
            if rows is None:
                if gathered:
                    raise ReproError(
                        "mixed rows/final chunks in one result stream"
                    )
                return batch
            gathered.append(batch)
            got += rows
        if not gathered:
            return None
        self.fetched_rows += got
        if len(gathered) == 1:
            return gathered[0]
        import numpy as np

        return {
            name: np.concatenate([part[name] for part in gathered])
            for name in gathered[0]
        }

    def __iter__(self) -> Iterator[object]:
        """Yield result batches at their natural chunk boundaries."""
        while True:
            if self._partial is not None:
                batch, offset, total = self._partial
                self._partial = None
                self.fetched_rows += total - offset
                yield {
                    name: column[offset:] for name, column in batch.items()
                }
                continue
            chunk = self._next_chunk()
            if chunk is None:
                return
            if chunk.kind != FINAL:
                self.fetched_rows += chunk.rows
            yield chunk.payload

    def rewind(self) -> None:
        """Reset the cursor to the start (materialized handles only)."""
        if self._streamed and not self._materialized:
            raise ReproError(
                "cannot rewind a live stream; rows already fetched are gone"
            )
        self._cursor = 0
        self._partial = None

    # ------------------------------------------------------------------
    # Lifecycle passthroughs
    # ------------------------------------------------------------------
    def _require_backend(self):
        if self._backend is None:
            raise ReproError(
                f"handle {int(self)} is not attached to a backend"
            )
        return self._backend

    def cancel(self) -> bool:
        """Cancel the query; see :meth:`ExecutionBackend.cancel`."""
        return self._require_backend().cancel(int(self))

    def progress(self) -> dict:
        """Streaming counters + completion state, without consuming."""
        return self._require_backend().progress(int(self))

    def result(self):
        """The fully assembled result (materialized handles only)."""
        return self._require_backend().result(int(self))

    @property
    def state(self) -> str:
        """The backend's view of this job: pending/running/done."""
        return self._require_backend().poll(int(self))

    @property
    def channel(self) -> Optional[ResultChannel]:
        """The underlying result channel (observability, tests)."""
        return self._channel
