"""Task sets and morsels.

In Umbra every executable pipeline becomes a *task set* (Figure 2).  A
task set contains an arbitrary number of independent tasks; tasks and the
morsels inside them are *carved out at runtime* (Section 2.2), which is
what makes adaptive morsel sizing possible.

A :class:`TaskSet` therefore exposes a single mutating primitive,
:meth:`carve`, which hands out up to ``n`` of the remaining input tuples.
Everything else — throughput estimation, the pipeline state machine, the
finalization counter — is bookkeeping around that primitive.
"""

from __future__ import annotations

import enum
import threading
from typing import List, Optional, TYPE_CHECKING

from repro.atomics import AtomicCounter
from repro.core.specs import PipelineSpec
from repro.errors import SchedulerError

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.core.resource_group import ResourceGroup


class PipelineState(enum.Enum):
    """Execution phases of the adaptive morsel state machine (§3.1)."""

    STARTUP = "startup"
    DEFAULT = "default"
    SHUTDOWN = "shutdown"


class Morsel:
    """A fixed set of tuples executed as one unit of work.

    A plain slotted class rather than a dataclass: morsels are created
    once per executed morsel (the hottest allocation in a simulation) and
    the frozen-dataclass ``__init__`` costs several times a direct one.
    Treat instances as immutable.
    """

    __slots__ = ("tuples", "duration", "phase")

    def __init__(self, tuples: int, duration: float, phase: str) -> None:
        self.tuples = tuples
        self.duration = duration
        self.phase = phase

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Morsel):
            return NotImplemented
        return (
            self.tuples == other.tuples
            and self.duration == other.duration
            and self.phase == other.phase
        )

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return (
            f"Morsel(tuples={self.tuples}, duration={self.duration}, "
            f"phase={self.phase!r})"
        )


class TaskSet:
    """The runnable representation of one pipeline.

    The class tracks:

    * the remaining input tuples (``carve`` hands them out);
    * the shared throughput estimate used by adaptive morsel sizing;
    * the pipeline execution phase (startup / default / shutdown);
    * the number of workers currently pinned to the task set (needed for
      the contention model and for the finalization protocol);
    * the finalization counter of Section 2.3.
    """

    __slots__ = (
        "profile",
        "resource_group",
        "pipeline_index",
        "remaining_tuples",
        "state",
        "throughput_estimate",
        "pinned_workers",
        "finalization_counter",
        "finalization_started",
        "finalized",
        "carved_tuples",
        "lock",
    )

    def __init__(
        self,
        profile: PipelineSpec,
        resource_group: "ResourceGroup",
        pipeline_index: int,
    ) -> None:
        self.profile = profile
        self.resource_group = resource_group
        self.pipeline_index = pipeline_index
        self.remaining_tuples = profile.tuples
        self.state = PipelineState.STARTUP
        #: Exponentially weighted throughput estimate in tuples/second;
        #: ``None`` until the startup phase produced a first measurement.
        self.throughput_estimate: Optional[float] = None
        #: Workers currently pinned (published in the global state array).
        self.pinned_workers = 0
        self.finalization_counter = AtomicCounter(0)
        self.finalization_started = False
        self.finalized = False
        #: Tuples carved so far (monotone; for progress assertions).
        self.carved_tuples = 0
        #: Carve/pin lock; ``None`` while the task set is only touched
        #: from one thread (the simulator), a real lock under the
        #: threaded backend (see :meth:`enable_concurrency`).
        self.lock: Optional[threading.Lock] = None

    def enable_concurrency(self) -> None:
        """Install the lock guarding carve/pin read-modify-write ops."""
        if self.lock is None:
            self.lock = threading.Lock()

    # ------------------------------------------------------------------
    # Work distribution
    # ------------------------------------------------------------------
    def carve(self, tuples: int) -> int:
        """Atomically claim up to ``tuples`` of the remaining input.

        Returns the number of tuples actually claimed (possibly zero when
        the task set is exhausted).  Carving is the only operation that
        consumes work, so concurrent workers never process a tuple twice.
        """
        if tuples < 0:
            raise SchedulerError("cannot carve a negative number of tuples")
        lock = self.lock
        if lock is None:
            claimed = min(tuples, self.remaining_tuples)
            self.remaining_tuples -= claimed
            self.carved_tuples += claimed
            return claimed
        with lock:
            claimed = min(tuples, self.remaining_tuples)
            self.remaining_tuples -= claimed
            self.carved_tuples += claimed
            return claimed

    def cancel_remaining(self) -> int:
        """Drain every remaining tuple without executing it.

        The abort primitive shared by cancellation, per-query failure
        isolation and deadline expiry: equivalent to carving the rest of
        the input and throwing it away.  The task set becomes exhausted,
        so workers racing in observe an empty task set and the §2.3
        finalization protocol winds the pipeline down through its normal
        completion path.  Returns the number of tuples dropped;
        idempotent.
        """
        lock = self.lock
        if lock is None:
            dropped = self.remaining_tuples
            self.remaining_tuples = 0
            self.carved_tuples += dropped
            return dropped
        with lock:
            dropped = self.remaining_tuples
            self.remaining_tuples = 0
            self.carved_tuples += dropped
            return dropped

    @property
    def exhausted(self) -> bool:
        """True once every input tuple has been carved out."""
        return self.remaining_tuples == 0

    # ------------------------------------------------------------------
    # Throughput estimation (§3.1, default state)
    # ------------------------------------------------------------------
    def observe_throughput(self, measured: float, alpha: float) -> None:
        """Fold a measured morsel throughput into the running estimate.

        ``T' = alpha * measured + (1 - alpha) * T`` — the paper uses
        ``alpha = 0.8`` to weight recent measurements heavily.
        """
        if measured <= 0.0:
            return
        if self.throughput_estimate is None:
            self.throughput_estimate = measured
        else:
            self.throughput_estimate = (
                alpha * measured + (1.0 - alpha) * self.throughput_estimate
            )

    def predicted_remaining_seconds(self) -> float:
        """Remaining time estimate from tuples left and current throughput."""
        if self.throughput_estimate is None or self.throughput_estimate <= 0.0:
            return float("inf") if self.remaining_tuples else 0.0
        return self.remaining_tuples / self.throughput_estimate

    # ------------------------------------------------------------------
    # Pinning (global state array support)
    # ------------------------------------------------------------------
    def pin(self) -> None:
        """A worker published this task set as its running task."""
        lock = self.lock
        if lock is None:
            self.pinned_workers += 1
        else:
            with lock:
                self.pinned_workers += 1

    def unpin(self) -> None:
        """A worker finished its task on this task set."""
        if self.pinned_workers <= 0:
            raise SchedulerError(
                f"unpin on task set {self.profile.name!r} with no pinned workers"
            )
        lock = self.lock
        if lock is None:
            self.pinned_workers -= 1
        else:
            with lock:
                self.pinned_workers -= 1

    # ------------------------------------------------------------------
    # Finalization protocol (§2.3)
    # ------------------------------------------------------------------
    def begin_finalization(self) -> bool:
        """Mark the start of the finalization phase.

        Returns ``True`` for exactly the first caller, which becomes the
        coordinating worker.
        """
        if self.finalization_started:
            return False
        self.finalization_started = True
        return True

    def mark_finalized(self) -> None:
        """Record that the finalization logic ran (exactly once)."""
        if self.finalized:
            raise SchedulerError(
                f"task set {self.profile.name!r} finalized twice"
            )
        self.finalized = True

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return (
            f"TaskSet({self.profile.name!r}, remaining={self.remaining_tuples}, "
            f"state={self.state.value}, pinned={self.pinned_workers})"
        )


class ExecutedTask:
    """The outcome of one scheduler task: the morsels it executed.

    ``duration`` is the summed simulated execution time; ``exhausted_work``
    tells the scheduler whether the task set ran out of tuples while this
    task was being carved (which triggers the finalization path).
    Like :class:`Morsel` this is a plain slotted class because one is
    allocated per scheduler task.

    ``morsel_count`` is the number of morsels the task executed.  It can
    exceed ``len(morsels)``: when tracing is disabled the executor skips
    collecting per-morsel records entirely (they would be thrown away)
    and only counts them, so schedulers must consult ``morsel_count`` —
    not the list — to tell an empty task from an untraced one.
    """

    __slots__ = ("task_set", "morsels", "duration", "exhausted_work", "morsel_count")

    def __init__(
        self,
        task_set: TaskSet,
        morsels: List[Morsel],
        duration: float,
        exhausted_work: bool,
        morsel_count: int = -1,
    ) -> None:
        self.task_set = task_set
        self.morsels = morsels
        self.duration = duration
        self.exhausted_work = exhausted_work
        self.morsel_count = len(morsels) if morsel_count < 0 else morsel_count

    @property
    def tuples(self) -> int:
        """Total tuples processed by this task."""
        return sum(m.tuples for m in self.morsels)

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return (
            f"ExecutedTask({self.task_set!r}, morsels={len(self.morsels)}, "
            f"duration={self.duration}, exhausted={self.exhausted_work})"
        )
