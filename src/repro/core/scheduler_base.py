"""Common scheduler interface shared by every policy in the reproduction.

A scheduler is driven by the discrete-event simulator through three calls:

* :meth:`SchedulerBase.admit` — a query arrived and is wrapped into a
  resource group;
* :meth:`SchedulerBase.worker_decide` — a worker became ready at ``now``
  and asks for work.  The scheduler returns a :class:`TaskDecision` whose
  ``duration`` is the virtual time the worker will be busy, or ``None``
  if the worker should park until woken;
* :meth:`SchedulerBase.worker_finish` — the task completed; the scheduler
  updates passes, priorities and finalization state and may return extra
  busy time (e.g. when this worker has to run a finalization step).

The environment object supplied via :meth:`attach` executes morsels
(returning their simulated duration) so the same scheduler code runs on
any substrate.
"""

from __future__ import annotations

import abc
from collections import deque
from dataclasses import dataclass, field, replace
from typing import Callable, Deque, Dict, List, Optional

from repro.core.decay import DecayParameters
from repro.core.morsel_exec import (
    ExecutionEnvironment,
    MorselExecutor,
    MorselExecutorConfig,
    MorselMode,
)
from repro.core.resource_group import ResourceGroup
from repro.core.specs import QuerySpec
from repro.core.task import ExecutedTask
from repro.errors import SchedulerError
from repro.metrics.latency import LatencyRecord
from repro.metrics.overhead import OverheadAccounting, PhaseCosts
from repro.simcore.trace import MorselSpan, TraceRecorder


@dataclass(frozen=True)
class SchedulerConfig:
    """Configuration shared by all scheduler policies.

    The defaults reproduce the paper's setup: 20 worker threads (the
    i9-7900X of §5.1), 128 scheduler slots, ``t_max`` = 2 ms,
    ``C0`` = 16 tuples, EWMA α = 0.8.
    """

    n_workers: int = 20
    slot_capacity: int = 128
    t_max: float = 0.002
    t_min: float = 0.00025
    c0: int = 16
    ewma_alpha: float = 0.8
    morsel_mode: MorselMode = MorselMode.ADAPTIVE
    #: High-load optimization of §2.3: shrink the update fan-out once more
    #: than half the slots are occupied.
    restrict_fanout: bool = True
    #: Decay parameters; ``None`` means fixed priorities (fair stride).
    decay: Optional[DecayParameters] = None
    #: Enable the §4 self-tuning controller (stride scheduler only).
    tuning_enabled: bool = False
    #: Tracking duration t_t and refresh duration t_r of §4.
    tracking_duration: float = 20.0
    refresh_duration: float = 60.0
    #: Objective the optimizer minimises: "mean" (Equation 1, default),
    #: "geomean", "p95" or "max" (§3.2: "other cost functions could be
    #: considered as well"); see :mod:`repro.tuning.cost`.
    tuning_objective: str = "mean"
    phase_costs: PhaseCosts = field(default_factory=PhaseCosts)

    def executor_config(self) -> MorselExecutorConfig:
        """Derive the morsel-executor tunables from this configuration."""
        return MorselExecutorConfig(
            t_max=self.t_max,
            t_min=self.t_min,
            c0=self.c0,
            ewma_alpha=self.ewma_alpha,
            n_workers=self.n_workers,
            mode=self.morsel_mode,
        )

    def effective_decay(self) -> DecayParameters:
        """Decay parameters with the quantum tied to ``t_max`` (§3.2)."""
        params = self.decay if self.decay is not None else DecayParameters()
        return replace(params, quantum=self.t_max)


class TaskDecision:
    """What a worker will do next and for how long (virtual seconds).

    A plain slotted class (one is allocated per scheduling decision, so
    construction cost matters).
    """

    __slots__ = ("worker_id", "kind", "duration", "slot", "executed", "group")

    def __init__(
        self,
        worker_id: int,
        kind: str,  # "task" | "tuning" | "finalize"
        duration: float,
        slot: int = -1,
        executed: Optional[ExecutedTask] = None,
        group: Optional[ResourceGroup] = None,
    ) -> None:
        self.worker_id = worker_id
        self.kind = kind
        self.duration = duration
        self.slot = slot
        self.executed = executed
        self.group = group

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return (
            f"TaskDecision(worker={self.worker_id}, kind={self.kind!r}, "
            f"duration={self.duration}, slot={self.slot})"
        )


class SchedulerBase(abc.ABC):
    """Base class wiring admission, the wait queue, wakes and metrics."""

    #: Registry name, overridden by subclasses.
    name = "base"

    def __init__(self, config: SchedulerConfig) -> None:
        if config.n_workers <= 0:
            raise SchedulerError("need at least one worker")
        self.config = config
        self.n_workers = config.n_workers
        self.overhead = OverheadAccounting(config.phase_costs)
        self.executor = MorselExecutor(config.executor_config())
        self.wait_queue: Deque[ResourceGroup] = deque()
        self.completed: List[LatencyRecord] = []
        self.admitted_count = 0
        self.completed_count = 0
        self.tasks_executed = 0
        self._env: Optional[ExecutionEnvironment] = None
        self._wake_fn: Optional[Callable[[int], None]] = None
        self.trace = TraceRecorder(enabled=False)
        self._idle_workers: set = set()
        self._next_group_id = 0

    # ------------------------------------------------------------------
    # Wiring
    # ------------------------------------------------------------------
    def attach(
        self,
        env: ExecutionEnvironment,
        wake_fn: Callable[[int], None],
        trace: Optional[TraceRecorder] = None,
    ) -> None:
        """Connect the scheduler to its execution environment.

        ``wake_fn(worker_id)`` asks the simulator to re-run the decision
        loop of a parked worker at the current virtual time.
        """
        self._env = env
        self._wake_fn = wake_fn
        if trace is not None:
            self.trace = trace
        # Per-morsel records are only consumed by the trace; skip
        # collecting them when tracing is off (the hottest allocation).
        self.executor.collect_morsels = self.trace.enabled

    @property
    def env(self) -> ExecutionEnvironment:
        """The attached execution environment (raises when missing)."""
        if self._env is None:
            raise SchedulerError("scheduler not attached to an environment")
        return self._env

    # ------------------------------------------------------------------
    # Admission
    # ------------------------------------------------------------------
    def make_group(self, query: QuerySpec, now: float) -> ResourceGroup:
        """Wrap an arriving query into a resource group."""
        group = ResourceGroup(query, self._next_group_id, now)
        self._next_group_id += 1
        return group

    @abc.abstractmethod
    def admit(self, group: ResourceGroup, now: float) -> None:
        """A query arrived; install it or put it into the wait queue."""

    @abc.abstractmethod
    def worker_decide(self, worker_id: int, now: float) -> Optional[TaskDecision]:
        """A worker is ready; pick its next task (``None`` parks it)."""

    @abc.abstractmethod
    def worker_finish(self, worker_id: int, now: float, decision: TaskDecision) -> float:
        """A task finished; return extra busy seconds (e.g. finalization)."""

    # ------------------------------------------------------------------
    # Idle / wake bookkeeping
    # ------------------------------------------------------------------
    def mark_idle(self, worker_id: int) -> None:
        """Record that a worker parked (called by the simulator)."""
        self._idle_workers.add(worker_id)

    def mark_busy(self, worker_id: int) -> None:
        """Record that a worker resumed."""
        self._idle_workers.discard(worker_id)

    def wake(self, worker_id: int) -> None:
        """Wake a parked worker through the simulator callback."""
        if worker_id in self._idle_workers and self._wake_fn is not None:
            self._wake_fn(worker_id)

    def wake_all(self) -> None:
        """Wake every parked worker."""
        for worker_id in list(self._idle_workers):
            self.wake(worker_id)

    @property
    def idle_workers(self) -> set:
        """The identifiers of currently parked workers."""
        return self._idle_workers

    # ------------------------------------------------------------------
    # Completion bookkeeping
    # ------------------------------------------------------------------
    def record_completion(self, group: ResourceGroup, now: float) -> None:
        """Register a finished query and emit its latency record."""
        group.mark_complete(now)
        self.completed_count += 1
        self.completed.append(
            LatencyRecord(
                query_id=group.query_id,
                name=group.query.name,
                scale_factor=group.query.scale_factor,
                arrival_time=group.arrival_time,
                completion_time=now,
                cpu_seconds=group.cpu_seconds,
            )
        )

    def all_admitted_complete(self) -> bool:
        """Whether every admitted query finished (simulation drain check)."""
        return self.completed_count == self.admitted_count and not self.wait_queue

    def active_query_count(self) -> int:
        """Queries currently *executing* (admitted, not waiting, not done).

        Used by the cache-pressure model of the simulation environment.
        """
        return self.admitted_count - self.completed_count - len(self.wait_queue)

    # ------------------------------------------------------------------
    # Trace helper
    # ------------------------------------------------------------------
    def record_task_trace(
        self, worker_id: int, start: float, executed: ExecutedTask
    ) -> None:
        """Emit one trace span per morsel of an executed task."""
        if not self.trace.enabled:
            return
        offset = start
        group = executed.task_set.resource_group
        self.trace.record_task(
            MorselSpan(
                worker_id=worker_id,
                start=start,
                end=start + executed.duration,
                query_id=group.query_id,
                pipeline_index=executed.task_set.pipeline_index,
                phase="task",
                tuples=executed.tuples,
            )
        )
        for morsel in executed.morsels:
            self.trace.record(
                MorselSpan(
                    worker_id=worker_id,
                    start=offset,
                    end=offset + morsel.duration,
                    query_id=group.query_id,
                    pipeline_index=executed.task_set.pipeline_index,
                    phase=morsel.phase,
                    tuples=morsel.tuples,
                )
            )
            offset += morsel.duration

    # ------------------------------------------------------------------
    # Stats
    # ------------------------------------------------------------------
    def stats(self) -> Dict[str, float]:
        """Run statistics useful for tests and reports."""
        return {
            "admitted": self.admitted_count,
            "completed": self.completed_count,
            "tasks_executed": self.tasks_executed,
            "waiting": len(self.wait_queue),
            "total_overhead": self.overhead.total_overhead_fraction(),
        }
