"""Common scheduler interface shared by every policy in the reproduction.

A scheduler is driven by the discrete-event simulator through three calls:

* :meth:`SchedulerBase.admit` — a query arrived and is wrapped into a
  resource group;
* :meth:`SchedulerBase.worker_decide` — a worker became ready at ``now``
  and asks for work.  The scheduler returns a :class:`TaskDecision` whose
  ``duration`` is the virtual time the worker will be busy, or ``None``
  if the worker should park until woken;
* :meth:`SchedulerBase.worker_finish` — the task completed; the scheduler
  updates passes, priorities and finalization state and may return extra
  busy time (e.g. when this worker has to run a finalization step).

The environment object supplied via :meth:`attach` executes morsels
(returning their simulated duration) so the same scheduler code runs on
any substrate.  Substrates are the execution backends of
:mod:`repro.runtime`: the discrete-event simulator drives the scheduler
from a single thread, while the threaded backend calls
:meth:`SchedulerBase.enable_concurrency` first and then invokes
``worker_decide`` / ``worker_finish`` from real OS worker threads.  The
sequential code paths are untouched by that switch — every lock is
``None`` until concurrency is enabled, and branches select the exact
pre-existing sequential code, keeping simulated results bit-identical.
"""

from __future__ import annotations

import abc
import threading
from collections import deque
from dataclasses import dataclass, field, replace
from typing import Callable, Deque, Dict, List, Optional

from repro.core.decay import DecayParameters
from repro.core.morsel_exec import (
    ExecutionEnvironment,
    MorselExecutor,
    MorselExecutorConfig,
    MorselMode,
)
from repro.core.resource_group import ResourceGroup
from repro.core.specs import QuerySpec
from repro.core.task import ExecutedTask
from repro.errors import QueryTimeoutError, SchedulerError
from repro.metrics.latency import LatencyRecord
from repro.metrics.overhead import OverheadAccounting, PhaseCosts
from repro.runtime.clock import Clock
from repro.runtime.trace import MorselSpan, TraceRecorder


@dataclass(frozen=True)
class SchedulerConfig:
    """Configuration shared by all scheduler policies.

    The defaults reproduce the paper's setup: 20 worker threads (the
    i9-7900X of §5.1), 128 scheduler slots, ``t_max`` = 2 ms,
    ``C0`` = 16 tuples, EWMA α = 0.8.
    """

    n_workers: int = 20
    slot_capacity: int = 128
    t_max: float = 0.002
    t_min: float = 0.00025
    c0: int = 16
    ewma_alpha: float = 0.8
    morsel_mode: MorselMode = MorselMode.ADAPTIVE
    #: High-load optimization of §2.3: shrink the update fan-out once more
    #: than half the slots are occupied.
    restrict_fanout: bool = True
    #: Decay parameters; ``None`` means fixed priorities (fair stride).
    decay: Optional[DecayParameters] = None
    #: Enable the §4 self-tuning controller (stride scheduler only).
    tuning_enabled: bool = False
    #: Tracking duration t_t and refresh duration t_r of §4.
    tracking_duration: float = 20.0
    refresh_duration: float = 60.0
    #: Objective the optimizer minimises: "mean" (Equation 1, default),
    #: "geomean", "p95" or "max" (§3.2: "other cost functions could be
    #: considered as well"); see :mod:`repro.tuning.cost`.
    tuning_objective: str = "mean"
    #: Tuning-time budget in simulated seconds per cycle.  ``None`` keeps
    #: the paper's exact (lambda, d_start) search; a budget switches the
    #: controller to the cost-bounded whole-knob-space search, which
    #: compresses the tracked workload and bounds its replay spend so the
    #: tuning task never exceeds this duration.
    tuning_budget: Optional[float] = None
    phase_costs: PhaseCosts = field(default_factory=PhaseCosts)

    def executor_config(self) -> MorselExecutorConfig:
        """Derive the morsel-executor tunables from this configuration."""
        return MorselExecutorConfig(
            t_max=self.t_max,
            t_min=self.t_min,
            c0=self.c0,
            ewma_alpha=self.ewma_alpha,
            n_workers=self.n_workers,
            mode=self.morsel_mode,
        )

    def effective_decay(self) -> DecayParameters:
        """Decay parameters with the quantum tied to ``t_max`` (§3.2)."""
        params = self.decay if self.decay is not None else DecayParameters()
        return replace(params, quantum=self.t_max)


class TaskDecision:
    """What a worker will do next and for how long (virtual seconds).

    A plain slotted class (one is allocated per scheduling decision, so
    construction cost matters).
    """

    __slots__ = ("worker_id", "kind", "duration", "slot", "executed", "group")

    def __init__(
        self,
        worker_id: int,
        kind: str,  # "task" | "tuning" | "finalize"
        duration: float,
        slot: int = -1,
        executed: Optional[ExecutedTask] = None,
        group: Optional[ResourceGroup] = None,
    ) -> None:
        self.worker_id = worker_id
        self.kind = kind
        self.duration = duration
        self.slot = slot
        self.executed = executed
        self.group = group

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return (
            f"TaskDecision(worker={self.worker_id}, kind={self.kind!r}, "
            f"duration={self.duration}, slot={self.slot})"
        )


class SchedulerBase(abc.ABC):
    """Base class wiring admission, the wait queue, wakes and metrics."""

    #: Registry name, overridden by subclasses.
    name = "base"

    def __init__(self, config: SchedulerConfig) -> None:
        if config.n_workers <= 0:
            raise SchedulerError("need at least one worker")
        self.config = config
        self.n_workers = config.n_workers
        self.overhead = OverheadAccounting(config.phase_costs)
        self.executor = MorselExecutor(config.executor_config())
        self.wait_queue: Deque[ResourceGroup] = deque()
        self.completed: List[LatencyRecord] = []
        self.admitted_count = 0
        self.completed_count = 0
        self.tasks_executed = 0
        self._env: Optional[ExecutionEnvironment] = None
        self._wake_fn: Optional[Callable[[int], None]] = None
        self.trace = TraceRecorder(enabled=False)
        self._idle_workers: set = set()
        self._next_group_id = 0
        #: Completion hook fired by record_completion (used by execution
        #: backends to map finished resource groups back to job ids).
        self.on_complete: Optional[Callable[[ResourceGroup, LatencyRecord], None]] = None
        #: The driving backend's time source (None when driven directly
        #: by the simulator, which passes explicit ``now`` values).
        self.clock: Optional[Clock] = None
        # Concurrency seams.  All None while the scheduler is driven
        # sequentially; enable_concurrency() installs real locks and the
        # hot paths branch on them to pick the locked variants.
        self._concurrent = False
        self._state_lock: Optional[threading.Lock] = None
        self._admission_lock: Optional[threading.RLock] = None
        self._completion_lock: Optional[threading.Lock] = None

    # ------------------------------------------------------------------
    # Wiring
    # ------------------------------------------------------------------
    def attach(
        self,
        env: ExecutionEnvironment,
        wake_fn: Callable[[int], None],
        trace: Optional[TraceRecorder] = None,
        clock: Optional[Clock] = None,
    ) -> None:
        """Connect the scheduler to its execution environment.

        ``wake_fn(worker_id)`` asks the driving backend to re-run the
        decision loop of a parked worker at the current time.
        """
        self._env = env
        self._wake_fn = wake_fn
        if trace is not None:
            self.trace = trace
        if clock is not None:
            self.clock = clock
        # Per-morsel records are only consumed by the trace; skip
        # collecting them when tracing is off (the hottest allocation).
        self.executor.collect_morsels = self.trace.enabled

    def enable_concurrency(self) -> None:
        """Prepare the scheduler for calls from multiple OS threads.

        Installs the locks that guard the global state array scan, slot
        admission/release and completion bookkeeping.  Must be called
        before the first ``admit``/``worker_decide``; the threaded
        backend does so during ``start()``.  Sequential users never call
        this, so their code paths keep running lock-free and unchanged.
        """
        if self._concurrent:
            return
        self._concurrent = True
        self._state_lock = threading.Lock()
        # Reentrant: finalization holds it while popping the wait queue,
        # and _install_group/record_completion may nest underneath.
        self._admission_lock = threading.RLock()
        self._completion_lock = threading.Lock()

    @property
    def concurrent(self) -> bool:
        """Whether :meth:`enable_concurrency` has been called."""
        return self._concurrent

    @property
    def env(self) -> ExecutionEnvironment:
        """The attached execution environment (raises when missing)."""
        if self._env is None:
            raise SchedulerError("scheduler not attached to an environment")
        return self._env

    # ------------------------------------------------------------------
    # Admission
    # ------------------------------------------------------------------
    def make_group(self, query: QuerySpec, now: float) -> ResourceGroup:
        """Wrap an arriving query into a resource group."""
        group = ResourceGroup(query, self._next_group_id, now)
        self._next_group_id += 1
        if self._concurrent:
            group.enable_concurrency()
        return group

    def admit_query(
        self,
        query: QuerySpec,
        now: float,
        on_group: Optional[Callable[[ResourceGroup], None]] = None,
    ) -> ResourceGroup:
        """Wrap and admit an arriving query; returns its resource group.

        The single entry point execution backends use: group-id
        assignment and admission happen atomically with respect to other
        submitting threads.  ``on_group`` runs after the group exists but
        *before* it becomes runnable — backends use it to register the
        group-to-job mapping so a completion can never observe an
        unmapped group.
        """
        lock = self._admission_lock
        if lock is None:
            group = self.make_group(query, now)
            if on_group is not None:
                on_group(group)
            self.admit(group, now)
            return group
        with lock:
            group = self.make_group(query, now)
            if on_group is not None:
                on_group(group)
            self.admit(group, now)
            return group

    @abc.abstractmethod
    def admit(self, group: ResourceGroup, now: float) -> None:
        """A query arrived; install it or put it into the wait queue."""

    @abc.abstractmethod
    def worker_decide(self, worker_id: int, now: float) -> Optional[TaskDecision]:
        """A worker is ready; pick its next task (``None`` parks it)."""

    @abc.abstractmethod
    def worker_finish(self, worker_id: int, now: float, decision: TaskDecision) -> float:
        """A task finished; return extra busy seconds (e.g. finalization)."""

    # ------------------------------------------------------------------
    # Idle / wake bookkeeping
    # ------------------------------------------------------------------
    def mark_idle(self, worker_id: int) -> None:
        """Record that a worker parked (called by the simulator)."""
        self._idle_workers.add(worker_id)

    def mark_busy(self, worker_id: int) -> None:
        """Record that a worker resumed."""
        self._idle_workers.discard(worker_id)

    def wake(self, worker_id: int) -> None:
        """Wake a parked worker through the simulator callback."""
        if worker_id in self._idle_workers and self._wake_fn is not None:
            self._wake_fn(worker_id)

    def wake_all(self) -> None:
        """Wake every parked worker."""
        for worker_id in list(self._idle_workers):
            self.wake(worker_id)

    @property
    def idle_workers(self) -> set:
        """The identifiers of currently parked workers."""
        return self._idle_workers

    # ------------------------------------------------------------------
    # Completion bookkeeping
    # ------------------------------------------------------------------
    def record_completion(self, group: ResourceGroup, now: float) -> None:
        """Register a finished query and emit its latency record."""
        group.mark_complete(now)
        record = LatencyRecord(
            query_id=group.query_id,
            name=group.query.name,
            scale_factor=group.query.scale_factor,
            arrival_time=group.arrival_time,
            completion_time=now,
            cpu_seconds=group.cpu_seconds,
            cancelled=group.cancelled,
            failed=group.failed,
            error=group.failure_text,
        )
        lock = self._completion_lock
        if lock is None:
            self.completed_count += 1
            self.completed.append(record)
        else:
            with lock:
                self.completed_count += 1
                self.completed.append(record)
        if self.on_complete is not None:
            self.on_complete(group, record)

    def cancel_group(self, group: ResourceGroup, now: float) -> bool:
        """Cancel one admitted query; returns ``True`` if it took effect.

        Runs under the admission lock (when concurrent) so cancellation
        cannot race admission or the wait-queue pop of finalization.
        Three cases:

        * already complete — the result stands, returns ``False``;
        * still in the wait queue — removed and completed on the spot
          with zero CPU (its slot was never occupied);
        * actively scheduled — the group is tagged and its task sets
          drained (:meth:`ResourceGroup.cancel`); parked workers are
          woken so one of them observes the exhausted task set and the
          §2.3 finalization protocol winds the query down through the
          normal completion path, freeing its slot and admitting the
          next waiting query.
        """
        lock = self._admission_lock
        if lock is None:
            return self._cancel_group_locked(group, now)
        with lock:
            return self._cancel_group_locked(group, now)

    def _cancel_group_locked(self, group: ResourceGroup, now: float) -> bool:
        if group.completion_time is not None:
            return False
        group.cancel()
        try:
            self.wait_queue.remove(group)
        except ValueError:
            pass  # not waiting: it is actively scheduled
        else:
            self.record_completion(group, now)
            return True
        self.wake_all()
        return True

    def deadline_error(self, group: ResourceGroup) -> QueryTimeoutError:
        """The error a group is failed with when its deadline expires."""
        return QueryTimeoutError(
            f"query {group.query.name!r} missed its "
            f"{group.query.deadline:g}s deadline"
        )

    def fail_group(
        self, group: ResourceGroup, exc: BaseException, now: float
    ) -> bool:
        """Fail one admitted query; returns ``True`` if it took effect.

        The failure twin of :meth:`cancel_group`: same locking, same
        three cases, but the group is tagged through
        :meth:`ResourceGroup.fail` so the latency record carries
        ``failed=True`` plus the error text.  Used for per-query failure
        isolation (a morsel raised), deadline expiry, and load shedding.
        """
        lock = self._admission_lock
        if lock is None:
            return self._fail_group_locked(group, exc, now)
        with lock:
            return self._fail_group_locked(group, exc, now)

    def _fail_group_locked(
        self, group: ResourceGroup, exc: BaseException, now: float
    ) -> bool:
        if group.completion_time is not None:
            return False
        group.fail(exc)
        try:
            self.wait_queue.remove(group)
        except ValueError:
            pass  # not waiting: it is actively scheduled
        else:
            self.record_completion(group, now)
            return True
        self.wake_all()
        return True

    def all_admitted_complete(self) -> bool:
        """Whether every admitted query finished (simulation drain check)."""
        return self.completed_count == self.admitted_count and not self.wait_queue

    def active_query_count(self) -> int:
        """Queries currently *executing* (admitted, not waiting, not done).

        Used by the cache-pressure model of the simulation environment.
        """
        return self.admitted_count - self.completed_count - len(self.wait_queue)

    # ------------------------------------------------------------------
    # Trace helper
    # ------------------------------------------------------------------
    def record_task_trace(
        self, worker_id: int, start: float, executed: ExecutedTask
    ) -> None:
        """Emit one trace span per morsel of an executed task."""
        if not self.trace.enabled:
            return
        offset = start
        group = executed.task_set.resource_group
        self.trace.record_task(
            MorselSpan(
                worker_id=worker_id,
                start=start,
                end=start + executed.duration,
                query_id=group.query_id,
                pipeline_index=executed.task_set.pipeline_index,
                phase="task",
                tuples=executed.tuples,
            )
        )
        for morsel in executed.morsels:
            self.trace.record(
                MorselSpan(
                    worker_id=worker_id,
                    start=offset,
                    end=offset + morsel.duration,
                    query_id=group.query_id,
                    pipeline_index=executed.task_set.pipeline_index,
                    phase=morsel.phase,
                    tuples=morsel.tuples,
                )
            )
            offset += morsel.duration

    # ------------------------------------------------------------------
    # Stats
    # ------------------------------------------------------------------
    def stats(self) -> Dict[str, float]:
        """Run statistics useful for tests and reports."""
        return {
            "admitted": self.admitted_count,
            "completed": self.completed_count,
            "tasks_executed": self.tasks_executed,
            "waiting": len(self.wait_queue),
            "total_overhead": self.overhead.total_overhead_fraction(),
        }
