"""Adaptive morsel execution (§3.1).

Classic morsel-driven parallelism maps one fixed-size morsel to one
scheduler task, which makes task granularity wildly unpredictable (Figure
5a: >30x duration spread).  The paper instead gives every *task* a target
duration ``t_max`` and lets the task carve however many morsels of
whatever size exhaust that target.  Each pipeline is a small state
machine:

* **startup** — no throughput estimate yet; run exponentially growing
  morsels (C0 = 16 tuples, doubling) while the next doubling still fits
  in the remaining budget, then switch to *default* seeded with the last
  morsel's measured throughput;
* **default** — carve one morsel of ``T_hat * t_max`` tuples, execute it,
  and fold the measured throughput into the EWMA estimate
  (``alpha = 0.8``);
* **shutdown** — entered when the predicted remaining pipeline time drops
  below ``W * t_max``; carve morsels sized for
  ``max(remaining / W, t_min)`` so all workers photo-finish together.

Pipelines that do not support adaptive sizes run fixed-size morsels in a
loop until the budget is exhausted (the §3.1 "Optimizations" paragraph).
The whole executor is policy-free: it only needs a way to *execute a
morsel and learn its duration*, provided by the
:class:`ExecutionEnvironment` protocol, so the identical code serves the
discrete-event simulator and the real mini engine.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import List, Protocol

from repro.core.task import ExecutedTask, Morsel, PipelineState, TaskSet


class ExecutionEnvironment(Protocol):
    """Anything that can execute a morsel and report its duration."""

    def run_morsel(self, task_set: TaskSet, tuples: int) -> float:
        """Execute ``tuples`` input tuples of ``task_set``; return seconds."""
        ...  # pragma: no cover - protocol


class MorselMode(enum.Enum):
    """Task-structure policy: the paper's adaptive design vs. HyPer-style."""

    ADAPTIVE = "adaptive"
    STATIC = "static"


class PipelinePhase:
    """Re-export of the phase names for trace consumers."""

    STARTUP = PipelineState.STARTUP.value
    DEFAULT = PipelineState.DEFAULT.value
    SHUTDOWN = PipelineState.SHUTDOWN.value


@dataclass(frozen=True)
class MorselExecutorConfig:
    """Tunables of §3.1 with the paper's defaults."""

    #: Target task duration t_max; 2 ms balances overhead vs. responsiveness.
    t_max: float = 0.002
    #: Minimum morsel duration t_min used by the shutdown state.
    t_min: float = 0.00025
    #: Initial startup morsel size C0 (tuples).
    c0: int = 16
    #: EWMA weight alpha for throughput estimates (recent-heavy).
    ewma_alpha: float = 0.8
    #: Worker count W; the shutdown state triggers below ``W * t_max``.
    n_workers: int = 20
    #: Adaptive (the paper) or static (HyPer-style 1:1 fixed morsels).
    mode: MorselMode = MorselMode.ADAPTIVE


class MorselExecutor:
    """Carves and executes the morsels of one scheduler task."""

    def __init__(self, config: MorselExecutorConfig) -> None:
        self.config = config

    # ------------------------------------------------------------------
    # Entry point
    # ------------------------------------------------------------------
    def run_task(self, task_set: TaskSet, env: ExecutionEnvironment) -> ExecutedTask:
        """Execute one task worth of morsels from ``task_set``.

        Returns the executed morsels and total duration.  If the task set
        is already exhausted when called, returns an empty task with
        ``exhausted_work=True`` so the scheduler can enter finalization.
        """
        if self.config.mode is MorselMode.STATIC:
            morsels = self._run_static(task_set, env)
        elif not task_set.profile.supports_adaptive:
            morsels = self._run_fixed_until_budget(task_set, env)
        else:
            morsels = self._run_adaptive(task_set, env)
        duration = sum(m.duration for m in morsels)
        return ExecutedTask(
            task_set=task_set,
            morsels=morsels,
            duration=duration,
            exhausted_work=task_set.exhausted,
        )

    # ------------------------------------------------------------------
    # Static policy (HyPer-style, Figure 5a)
    # ------------------------------------------------------------------
    def _run_static(self, task_set: TaskSet, env: ExecutionEnvironment) -> List[Morsel]:
        """One fixed-size morsel per task — the classic 1:1 mapping."""
        tuples = task_set.carve(task_set.profile.fixed_morsel_tuples)
        if tuples == 0:
            return []
        duration = env.run_morsel(task_set, tuples)
        task_set.observe_throughput(tuples / duration, self.config.ewma_alpha)
        return [Morsel(tuples=tuples, duration=duration, phase="static")]

    # ------------------------------------------------------------------
    # Fixed morsels looped until t_max (non-adaptive pipelines)
    # ------------------------------------------------------------------
    def _run_fixed_until_budget(
        self, task_set: TaskSet, env: ExecutionEnvironment
    ) -> List[Morsel]:
        morsels: List[Morsel] = []
        elapsed = 0.0
        while elapsed < self.config.t_max:
            tuples = task_set.carve(task_set.profile.fixed_morsel_tuples)
            if tuples == 0:
                break
            duration = env.run_morsel(task_set, tuples)
            task_set.observe_throughput(tuples / duration, self.config.ewma_alpha)
            morsels.append(Morsel(tuples=tuples, duration=duration, phase="fixed"))
            elapsed += duration
        return morsels

    # ------------------------------------------------------------------
    # Adaptive policy (§3.1)
    # ------------------------------------------------------------------
    def _run_adaptive(self, task_set: TaskSet, env: ExecutionEnvironment) -> List[Morsel]:
        morsels: List[Morsel] = []
        elapsed = 0.0
        budget = self.config.t_max
        while elapsed < budget and not task_set.exhausted:
            self._maybe_enter_shutdown(task_set)
            if task_set.state is PipelineState.STARTUP:
                startup_morsels, elapsed = self._run_startup(
                    task_set, env, morsels_elapsed=elapsed
                )
                morsels.extend(startup_morsels)
                # Startup consumes the whole budget by construction.
                break
            if task_set.state is PipelineState.SHUTDOWN:
                morsel = self._run_shutdown_morsel(task_set, env)
            else:
                morsel = self._run_default_morsel(task_set, env, budget - elapsed)
            if morsel is None:
                break
            morsels.append(morsel)
            elapsed += morsel.duration
            # A default-state morsel is sized to exhaust the budget; only
            # continue looping if it came back much shorter than planned
            # (clipped carve, noise) — the §3.1 "Optimizations" rule.
            if task_set.state is PipelineState.DEFAULT and elapsed >= 0.9 * budget:
                break
        return morsels

    def _maybe_enter_shutdown(self, task_set: TaskSet) -> None:
        """Transition default → shutdown near the end of the pipeline."""
        if task_set.state is not PipelineState.DEFAULT:
            return
        threshold = self.config.n_workers * self.config.t_max
        if task_set.predicted_remaining_seconds() < threshold:
            task_set.state = PipelineState.SHUTDOWN

    def _run_startup(
        self,
        task_set: TaskSet,
        env: ExecutionEnvironment,
        morsels_elapsed: float,
    ) -> "tuple[List[Morsel], float]":
        """Exponentially growing probe morsels until the budget is used."""
        morsels: List[Morsel] = []
        elapsed = morsels_elapsed
        budget = self.config.t_max
        size = self.config.c0
        last_duration = 0.0
        last_throughput = 0.0
        first = True
        while not task_set.exhausted:
            if not first and 2.0 * last_duration > budget - elapsed:
                break
            tuples = task_set.carve(size)
            if tuples == 0:
                break
            duration = env.run_morsel(task_set, tuples)
            morsels.append(Morsel(tuples=tuples, duration=duration, phase="startup"))
            elapsed += duration
            last_duration = duration
            last_throughput = tuples / duration if duration > 0.0 else 0.0
            size *= 2
            first = False
        if last_throughput > 0.0:
            # The final startup morsel seeds the throughput estimate.
            if task_set.throughput_estimate is None:
                task_set.throughput_estimate = last_throughput
            else:
                task_set.observe_throughput(last_throughput, self.config.ewma_alpha)
            if task_set.state is PipelineState.STARTUP:
                task_set.state = PipelineState.DEFAULT
        return morsels, elapsed

    def _run_default_morsel(
        self, task_set: TaskSet, env: ExecutionEnvironment, remaining_budget: float
    ) -> "Morsel | None":
        """One morsel sized to exhaust the remaining budget."""
        throughput = task_set.throughput_estimate
        if throughput is None or throughput <= 0.0:
            # Lost the estimate (should not happen); fall back to startup.
            task_set.state = PipelineState.STARTUP
            return None
        target = min(remaining_budget, self.config.t_max)
        tuples = task_set.carve(max(1, int(throughput * target)))
        if tuples == 0:
            return None
        duration = env.run_morsel(task_set, tuples)
        task_set.observe_throughput(tuples / duration, self.config.ewma_alpha)
        return Morsel(tuples=tuples, duration=duration, phase="default")

    def _run_shutdown_morsel(
        self, task_set: TaskSet, env: ExecutionEnvironment
    ) -> "Morsel | None":
        """Photo-finish morsel: duration max(remaining / W, t_min)."""
        throughput = task_set.throughput_estimate or 0.0
        if throughput <= 0.0:
            task_set.state = PipelineState.STARTUP
            return None
        remaining = task_set.predicted_remaining_seconds()
        target = max(remaining / self.config.n_workers, self.config.t_min)
        tuples = task_set.carve(max(1, int(throughput * target)))
        if tuples == 0:
            return None
        duration = env.run_morsel(task_set, tuples)
        task_set.observe_throughput(tuples / duration, self.config.ewma_alpha)
        return Morsel(tuples=tuples, duration=duration, phase="shutdown")
