"""Adaptive morsel execution (§3.1).

Classic morsel-driven parallelism maps one fixed-size morsel to one
scheduler task, which makes task granularity wildly unpredictable (Figure
5a: >30x duration spread).  The paper instead gives every *task* a target
duration ``t_max`` and lets the task carve however many morsels of
whatever size exhaust that target.  Each pipeline is a small state
machine:

* **startup** — no throughput estimate yet; run exponentially growing
  morsels (C0 = 16 tuples, doubling) while the next doubling still fits
  in the remaining budget, then switch to *default* seeded with the last
  morsel's measured throughput;
* **default** — carve one morsel of ``T_hat * t_max`` tuples, execute it,
  and fold the measured throughput into the EWMA estimate
  (``alpha = 0.8``);
* **shutdown** — entered when the predicted remaining pipeline time drops
  below ``W * t_max``; carve morsels sized for
  ``max(remaining / W, t_min)`` so all workers photo-finish together.

Pipelines that do not support adaptive sizes run fixed-size morsels in a
loop until the budget is exhausted (the §3.1 "Optimizations" paragraph).
The whole executor is policy-free: it only needs a way to *execute a
morsel and learn its duration*, provided by the
:class:`ExecutionEnvironment` protocol, so the identical code serves the
discrete-event simulator and the real mini engine.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import List, Protocol

from repro.core.task import ExecutedTask, Morsel, PipelineState, TaskSet

#: Sentinel distinguishing "attribute missing" from any real value.
_MISSING = object()

#: Module-level aliases of the pipeline states (cheaper loads in the hot
#: loop than attribute access on the enum class).
_STARTUP = PipelineState.STARTUP
_DEFAULT = PipelineState.DEFAULT
_SHUTDOWN = PipelineState.SHUTDOWN

#: Shared empty morsel list for untraced tasks (never mutated; consumers
#: read ``ExecutedTask.morsel_count`` instead).
_NO_MORSELS: List[Morsel] = []


class ExecutionEnvironment(Protocol):
    """Anything that can execute a morsel and report its duration.

    Environments may additionally expose the *batched cost* interface of
    :class:`~repro.simcore.simulator.SimulationEnvironment`
    (``morsel_cost_factors`` / ``peek_noise`` / ``consume_noise`` /
    ``next_noise``); the executor detects it per task and uses it to cost
    several morsels per Python call.  The fallback path below is all an
    environment must implement.
    """

    def run_morsel(self, task_set: TaskSet, tuples: int) -> float:
        """Execute ``tuples`` input tuples of ``task_set``; return seconds."""
        ...  # pragma: no cover - protocol


class MorselMode(enum.Enum):
    """Task-structure policy: the paper's adaptive design vs. HyPer-style."""

    ADAPTIVE = "adaptive"
    STATIC = "static"


class PipelinePhase:
    """Re-export of the phase names for trace consumers."""

    STARTUP = PipelineState.STARTUP.value
    DEFAULT = PipelineState.DEFAULT.value
    SHUTDOWN = PipelineState.SHUTDOWN.value


@dataclass(frozen=True)
class MorselExecutorConfig:
    """Tunables of §3.1 with the paper's defaults."""

    #: Target task duration t_max; 2 ms balances overhead vs. responsiveness.
    t_max: float = 0.002
    #: Minimum morsel duration t_min used by the shutdown state.
    t_min: float = 0.00025
    #: Initial startup morsel size C0 (tuples).
    c0: int = 16
    #: EWMA weight alpha for throughput estimates (recent-heavy).
    ewma_alpha: float = 0.8
    #: Worker count W; the shutdown state triggers below ``W * t_max``.
    n_workers: int = 20
    #: Adaptive (the paper) or static (HyPer-style 1:1 fixed morsels).
    mode: MorselMode = MorselMode.ADAPTIVE


class MorselExecutor:
    """Carves and executes the morsels of one scheduler task."""

    __slots__ = (
        "config",
        "_static_mode",
        "_cached_env",
        "_cached_factors",
        "_cached_fast_noise",
        "_t_max",
        "_t_min",
        "_alpha",
        "_one_minus_alpha",
        "_shutdown_threshold",
        "_shutdown_div",
        "_budget_cutoff",
        "collect_morsels",
    )

    def __init__(self, config: MorselExecutorConfig) -> None:
        self.config = config
        self._static_mode = config.mode is MorselMode.STATIC
        # The config is a frozen dataclass, so the derived hot-loop
        # constants can be precomputed once.
        self._t_max = config.t_max
        self._t_min = config.t_min
        self._alpha = config.ewma_alpha
        self._one_minus_alpha = 1.0 - config.ewma_alpha
        self._shutdown_threshold = config.n_workers * config.t_max
        self._shutdown_div = config.n_workers
        self._budget_cutoff = 0.9 * config.t_max
        #: Collect per-morsel records on executed tasks.  Schedulers turn
        #: this off when tracing is disabled (the records would be thrown
        #: away); tasks then report only ``ExecutedTask.morsel_count``.
        self.collect_morsels = True
        #: Per-environment capability probe, cached because the executor
        #: sees the same environment object for a whole run.
        self._cached_env = None
        self._cached_factors = None
        self._cached_fast_noise = False

    # ------------------------------------------------------------------
    # Environment capability detection (batched cost-model environments)
    # ------------------------------------------------------------------
    def _probe_environment(self, env: ExecutionEnvironment):
        """Detect (once per environment) the optional fast-cost interface.

        ``morsel_cost_factors`` marks cost-model environments whose
        ``(rate, contention, pressure)`` triple is constant for one task.
        An environment carrying the full
        :class:`~repro.simcore.simulator.SimulationEnvironment` contract
        (pre-drawn noise buffer plus the cache-pressure knobs) lets the
        hot loop compute factors and noise by direct attribute access.
        Detected once and cached, so the per-task path does a single
        identity check instead of ``getattr`` probes.
        """
        factors = getattr(env, "morsel_cost_factors", None)
        self._cached_env = env
        self._cached_factors = factors
        self._cached_fast_noise = (
            factors is not None
            and getattr(env, "_noise_buffer", _MISSING) is not _MISSING
            and getattr(env, "cache_pressure", _MISSING) is not _MISSING
        )
        return factors

    # ------------------------------------------------------------------
    # Entry point
    # ------------------------------------------------------------------
    def run_task(self, task_set: TaskSet, env: ExecutionEnvironment) -> ExecutedTask:
        """Execute one task worth of morsels from ``task_set``.

        Returns the executed morsels and total duration.  If the task set
        is already exhausted when called, returns an empty task with
        ``exhausted_work=True`` so the scheduler can enter finalization.

        The adaptive path (the common case — it runs once per scheduler
        task) is inlined into this method body: the default/shutdown
        morsel logic, carving and EWMA bookkeeping live directly in the
        loop below rather than in the reference methods
        :meth:`_run_default_morsel` / :meth:`_run_shutdown_morsel`, whose
        behaviour it reproduces exactly (guarded by the determinism
        tests).
        """
        if task_set.resource_group.aborted:
            # A cancel or failure tagged the group after this worker
            # picked the slot: drop whatever work remains instead of
            # executing it, so the empty exhausted task below triggers
            # finalization.
            task_set.cancel_remaining()
            return ExecutedTask(task_set, _NO_MORSELS, 0.0, True, 0)
        if self._static_mode:
            morsels = self._run_static(task_set, env)
            return ExecutedTask(
                task_set=task_set,
                morsels=morsels,
                duration=morsels[0].duration if morsels else 0.0,
                exhausted_work=task_set.remaining_tuples == 0,
            )
        if not task_set.profile.supports_adaptive:
            morsels = self._run_fixed_until_budget(task_set, env)
            duration = 0.0
            for morsel in morsels:
                duration += morsel.duration
            return ExecutedTask(
                task_set=task_set,
                morsels=morsels,
                duration=duration,
                exhausted_work=task_set.remaining_tuples == 0,
            )

        # ---- adaptive state machine (§3.1), flattened ----------------
        # Work-sharing folds do NOT scale this budget: a fold's summed
        # share is granted through its stride weight (more scheduling
        # passes), because a larger per-task budget would change morsel
        # boundaries and with them the engine's float accumulation
        # order — folded results must stay bit-identical to unshared.
        budget = self._t_max
        alpha = self._alpha
        one_minus_alpha = self._one_minus_alpha
        shutdown_threshold = self._shutdown_threshold
        shutdown_div = self._shutdown_div
        t_min = self._t_min
        budget_cutoff = self._budget_cutoff
        collect = self.collect_morsels
        if collect:
            morsels: List[Morsel] = []
            append = morsels.append
        else:
            morsels = _NO_MORSELS
        n_morsels = 0
        elapsed = 0.0
        factors_fn = (
            self._cached_factors
            if env is self._cached_env
            else self._probe_environment(env)
        )
        #: noise_mode 3: buffer read inline; 2: noise disabled (factor
        #: 1.0); 1: factors + next_noise() per morsel; 0: run_morsel.
        if factors_fn is None:
            run_morsel = env.run_morsel
            noise_mode = 0
        elif self._cached_fast_noise:
            # Inlined SimulationEnvironment.morsel_cost_factors (kept in
            # sync with that method; the triple is task-constant).
            profile = task_set.profile
            rate = profile.tuples_per_second
            extra_pinned = task_set.pinned_workers - 1
            contention = 1.0 + profile.parallel_efficiency * (
                extra_pinned if extra_pinned > 0 else 0
            )
            pressure = 1.0
            active_count_fn = env.active_count_fn
            if env.cache_pressure > 0.0 and active_count_fn is not None:
                active = min(active_count_fn(), env.cache_pressure_cap)
                if active > 1:
                    pressure = 1.0 + env.cache_pressure * (active - 1)
            noise_mode = 3 if env.noise_sigma > 0.0 else 2
        else:
            rate, contention, pressure = factors_fn(task_set)
            next_noise = env.next_noise
            noise_mode = 1
        DEFAULT = _DEFAULT
        SHUTDOWN = _SHUTDOWN
        STARTUP = _STARTUP
        ts_lock = task_set.lock
        while elapsed < budget and task_set.remaining_tuples:
            throughput = task_set.throughput_estimate
            state = task_set.state
            # Inlined _maybe_enter_shutdown: default -> shutdown once the
            # predicted remaining pipeline time drops below W * t_max.
            if state is DEFAULT and throughput is not None and throughput > 0.0:
                if task_set.remaining_tuples / throughput < shutdown_threshold:
                    task_set.state = state = SHUTDOWN
            if state is STARTUP:
                startup_morsels, elapsed = self._run_startup(
                    task_set, env, morsels_elapsed=elapsed
                )
                n_morsels += len(startup_morsels)
                if collect:
                    morsels.extend(startup_morsels)
                # Startup consumes the whole budget by construction.
                break
            if throughput is None or throughput <= 0.0:
                # Lost the estimate (should not happen); fall back to
                # startup on the next task.
                task_set.state = STARTUP
                break
            if state is SHUTDOWN:
                # Photo-finish morsel: duration max(remaining / W, t_min).
                remaining_seconds = task_set.remaining_tuples / throughput
                target = remaining_seconds / shutdown_div
                if target < t_min:
                    target = t_min
                phase = "shutdown"
            else:
                remaining_budget = budget - elapsed
                target = remaining_budget if remaining_budget < budget else budget
                phase = "default"
            want = int(throughput * target)
            if want < 1:
                want = 1
            # Inlined TaskSet.carve (the only work-consuming primitive).
            # With a carve lock installed (threaded backend) the locked
            # method runs instead, so concurrent workers never claim the
            # same tuples.
            if ts_lock is None:
                available = task_set.remaining_tuples
                tuples = want if want < available else available
                task_set.remaining_tuples = available - tuples
                task_set.carved_tuples += tuples
            else:
                tuples = task_set.carve(want)
                if tuples == 0:
                    # Raced to exhaustion against another worker.
                    break
            if noise_mode == 3:
                # Inlined SimulationEnvironment.next_noise.
                pos = env._noise_pos
                buf = env._noise_buffer
                if buf is None or pos >= len(buf):
                    env._refill_noise()
                    buf = env._noise_buffer
                    pos = 0
                env._noise_pos = pos + 1
                duration = (
                    tuples / rate * contention * pressure * float(buf[pos])
                )
            elif noise_mode == 2:
                # Noise disabled: next_noise() would return exactly 1.0.
                duration = tuples / rate * contention * pressure * 1.0
            elif noise_mode == 1:
                duration = tuples / rate * contention * pressure * next_noise()
            else:
                duration = run_morsel(task_set, tuples)
            # Inlined TaskSet.observe_throughput (estimate is non-None).
            measured = tuples / duration
            if measured > 0.0:
                task_set.throughput_estimate = (
                    alpha * measured + one_minus_alpha * throughput
                )
            n_morsels += 1
            if collect:
                append(Morsel(tuples, duration, phase))
            elapsed += duration
            # A default-state morsel is sized to exhaust the budget; only
            # continue looping if it came back much shorter than planned
            # (clipped carve, noise) — the §3.1 "Optimizations" rule.
            if state is not SHUTDOWN and elapsed >= budget_cutoff:
                break
        return ExecutedTask(
            task_set, morsels, elapsed, task_set.remaining_tuples == 0, n_morsels
        )

    # ------------------------------------------------------------------
    # Static policy (HyPer-style, Figure 5a)
    # ------------------------------------------------------------------
    def _run_static(self, task_set: TaskSet, env: ExecutionEnvironment) -> List[Morsel]:
        """One fixed-size morsel per task — the classic 1:1 mapping."""
        tuples = task_set.carve(task_set.profile.fixed_morsel_tuples)
        if tuples == 0:
            return []
        duration = env.run_morsel(task_set, tuples)
        task_set.observe_throughput(tuples / duration, self.config.ewma_alpha)
        return [Morsel(tuples=tuples, duration=duration, phase="static")]

    # ------------------------------------------------------------------
    # Fixed morsels looped until t_max (non-adaptive pipelines)
    # ------------------------------------------------------------------
    def _run_fixed_until_budget(
        self, task_set: TaskSet, env: ExecutionEnvironment
    ) -> List[Morsel]:
        if getattr(env, "peek_noise", None) is not None and getattr(
            env, "morsel_cost_factors", None
        ) is not None:
            return self._run_fixed_batched(task_set, env)
        morsels: List[Morsel] = []
        elapsed = 0.0
        while elapsed < self.config.t_max:
            tuples = task_set.carve(task_set.profile.fixed_morsel_tuples)
            if tuples == 0:
                break
            duration = env.run_morsel(task_set, tuples)
            task_set.observe_throughput(tuples / duration, self.config.ewma_alpha)
            morsels.append(Morsel(tuples=tuples, duration=duration, phase="fixed"))
            elapsed += duration
        return morsels

    def _run_fixed_batched(
        self, task_set: TaskSet, env: ExecutionEnvironment
    ) -> List[Morsel]:
        """Fixed-size morsels costed in vectorized look-ahead chunks.

        The sequential loop above consumes one noise draw per executed
        morsel.  Here the noise factors for a whole chunk are *peeked*
        from the environment's pre-drawn buffer, durations are computed
        until the budget is crossed, and exactly the executed draws are
        then committed with ``consume_noise`` — so carve decisions, EWMA
        updates and the RNG stream all match the sequential path
        bit-for-bit (guarded by the determinism tests).
        """
        rate, contention, pressure = env.morsel_cost_factors(task_set)
        fixed = task_set.profile.fixed_morsel_tuples
        t_max = self.config.t_max
        alpha = self.config.ewma_alpha
        morsels: List[Morsel] = []
        elapsed = 0.0
        while elapsed < t_max and not task_set.exhausted:
            remaining = task_set.remaining_tuples
            chunks_left = -(-remaining // fixed)
            chunk = chunks_left if chunks_left < 16 else 16
            noise = env.peek_noise(chunk)
            executed = 0
            for i in range(chunk):
                tuples = fixed if remaining >= fixed else remaining
                remaining -= tuples
                factor = 1.0 if noise is None else float(noise[i])
                duration = tuples / rate * contention * pressure * factor
                morsels.append(Morsel(tuples=tuples, duration=duration, phase="fixed"))
                elapsed += duration
                executed += 1
                if elapsed >= t_max or remaining == 0:
                    break
            env.consume_noise(executed)
            # Commit carves and EWMA updates in execution order.
            for morsel in morsels[len(morsels) - executed :]:
                task_set.carve(morsel.tuples)
                task_set.observe_throughput(morsel.tuples / morsel.duration, alpha)
        return morsels

    # ------------------------------------------------------------------
    # Adaptive policy (§3.1) — reference methods.  The hot loop in
    # run_task() inlines these; they remain the readable specification
    # and serve subclasses and tests.
    # ------------------------------------------------------------------
    def _maybe_enter_shutdown(self, task_set: TaskSet) -> None:
        """Transition default → shutdown near the end of the pipeline."""
        if task_set.state is not PipelineState.DEFAULT:
            return
        threshold = self.config.n_workers * self.config.t_max
        if task_set.predicted_remaining_seconds() < threshold:
            task_set.state = PipelineState.SHUTDOWN

    def _run_startup(
        self,
        task_set: TaskSet,
        env: ExecutionEnvironment,
        morsels_elapsed: float,
    ) -> "tuple[List[Morsel], float]":
        """Exponentially growing probe morsels until the budget is used."""
        morsels: List[Morsel] = []
        elapsed = morsels_elapsed
        budget = self.config.t_max
        size = self.config.c0
        last_duration = 0.0
        last_throughput = 0.0
        first = True
        while not task_set.exhausted:
            if not first and 2.0 * last_duration > budget - elapsed:
                break
            tuples = task_set.carve(size)
            if tuples == 0:
                break
            duration = env.run_morsel(task_set, tuples)
            morsels.append(Morsel(tuples=tuples, duration=duration, phase="startup"))
            elapsed += duration
            last_duration = duration
            last_throughput = tuples / duration if duration > 0.0 else 0.0
            size *= 2
            first = False
        if last_throughput > 0.0:
            # The final startup morsel seeds the throughput estimate.
            if task_set.throughput_estimate is None:
                task_set.throughput_estimate = last_throughput
            else:
                task_set.observe_throughput(last_throughput, self.config.ewma_alpha)
            if task_set.state is PipelineState.STARTUP:
                task_set.state = PipelineState.DEFAULT
        return morsels, elapsed

    def _run_default_morsel(
        self,
        task_set: TaskSet,
        env: ExecutionEnvironment,
        remaining_budget: float,
    ) -> "Morsel | None":
        """One morsel sized to exhaust the remaining budget."""
        throughput = task_set.throughput_estimate
        if throughput is None or throughput <= 0.0:
            # Lost the estimate (should not happen); fall back to startup.
            task_set.state = PipelineState.STARTUP
            return None
        target = min(remaining_budget, self.config.t_max)
        tuples = task_set.carve(max(1, int(throughput * target)))
        if tuples == 0:
            return None
        duration = env.run_morsel(task_set, tuples)
        task_set.observe_throughput(tuples / duration, self.config.ewma_alpha)
        return Morsel(tuples=tuples, duration=duration, phase="default")

    def _run_shutdown_morsel(
        self, task_set: TaskSet, env: ExecutionEnvironment
    ) -> "Morsel | None":
        """Photo-finish morsel: duration max(remaining / W, t_min)."""
        throughput = task_set.throughput_estimate or 0.0
        if throughput <= 0.0:
            task_set.state = PipelineState.STARTUP
            return None
        remaining = task_set.predicted_remaining_seconds()
        target = max(remaining / self.config.n_workers, self.config.t_min)
        tuples = task_set.carve(max(1, int(throughput * target)))
        if tuples == 0:
            return None
        duration = env.run_morsel(task_set, tuples)
        task_set.observe_throughput(tuples / duration, self.config.ewma_alpha)
        return Morsel(tuples=tuples, duration=duration, phase="shutdown")
