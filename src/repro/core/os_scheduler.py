"""OS-delegating system models: the PostgreSQL/MonetDB comparators (§5.4).

PostgreSQL and MonetDB bind OS threads (or processes) directly to
queries and leave scheduling to the operating system.  The Linux CFS
gives runnable threads an (approximately) equal share of the available
cores, which the queueing literature abstracts as *egalitarian processor
sharing*.  We implement that abstraction as an event-driven fluid
simulation:

* each admitted query is a *job* with a total amount of single-threaded
  work and a fixed number of threads;
* between events, every runnable thread progresses at rate
  ``min(1, cores / runnable_threads)``, degraded further by a
  context-switch penalty once the machine is oversubscribed;
* an admission limit (PgBouncer's 20 connections for PostgreSQL, 64 for
  MonetDB, matching §5.4) queues excess queries FIFO.

The model deliberately captures exactly the properties the paper's
comparison isolates: thread-per-query execution, OS time sharing, bounded
admission, lower base performance and limited intra-query parallelism.
"""

from __future__ import annotations

import heapq
from collections import deque
from dataclasses import dataclass
from typing import Deque, Dict, List, Optional, Tuple

from repro.core.specs import QuerySpec
from repro.errors import SimulationError
from repro.metrics.latency import LatencyCollector, LatencyRecord


@dataclass(frozen=True)
class OsSystemProfile:
    """Behavioural profile of an OS-scheduled database system.

    ``base_speed`` is the single-thread throughput relative to the
    task-based engine (1.0 = same per-tuple speed).  ``parallelism_cap``
    bounds intra-query threads; ``min_parallel_work`` is the
    single-threaded work (seconds) below which a query runs on one
    thread — modelling that e.g. PostgreSQL only launches parallel
    workers for sufficiently large scans.
    """

    name: str
    max_concurrent: int
    base_speed: float
    parallelism_cap: int
    min_parallel_work: float = 0.05
    parallel_efficiency: float = 0.08
    context_switch_penalty: float = 0.03
    #: Fixed per-query overhead (parsing/planning/optimizer), seconds.
    startup_overhead: float = 0.002

    def threads_for(self, work_seconds: float) -> int:
        """Intra-query thread count for a query of given size."""
        if work_seconds < self.min_parallel_work:
            return 1
        return max(1, self.parallelism_cap)

    def job_work(self, query: QuerySpec) -> float:
        """Single-threaded work of the query inside this system."""
        return query.total_work_seconds / self.base_speed + self.startup_overhead

    def single_thread_latency(self, query: QuerySpec) -> float:
        """Isolated single-threaded latency (the §5.4 slowdown baseline)."""
        return self.job_work(query)

    def effective_work(self, query: QuerySpec) -> float:
        """CPU seconds actually consumed, including parallelization waste.

        A query running on ``n`` threads burns ``1 + eff * (n - 1)``
        times its single-threaded work in CPU cycles.  Capacity anchoring
        must use this quantity, not the raw work, or the system gets
        driven past its true saturation point.
        """
        work = self.job_work(query)
        threads = self.threads_for(work)
        return work * (1.0 + self.parallel_efficiency * (threads - 1))


#: Tuned to reproduce §5.4: PostgreSQL 11.7 behind PgBouncer (20
#: connections), markedly lower base performance, little intra-query
#: parallelism for analytical plans.
POSTGRES_LIKE = OsSystemProfile(
    name="postgresql",
    max_concurrent=20,
    base_speed=0.12,
    parallelism_cap=4,
    min_parallel_work=0.25,
    parallel_efficiency=0.15,
    context_switch_penalty=0.05,
    startup_overhead=0.004,
)

#: MonetDB 11.33 with a 64-query admission limit imposed by the paper's
#: driver; good intra-query parallelism, solid but sub-Umbra base speed.
MONETDB_LIKE = OsSystemProfile(
    name="monetdb",
    max_concurrent=64,
    base_speed=0.55,
    parallelism_cap=8,
    min_parallel_work=0.02,
    parallel_efficiency=0.04,
    context_switch_penalty=0.015,
    startup_overhead=0.001,
)


@dataclass
class _Job:
    """One running query inside the fluid model."""

    query_id: int
    query: QuerySpec
    arrival_time: float
    remaining_work: float
    threads: int
    started_at: float


class OsSchedulerModel:
    """Event-driven fluid simulation of an OS-scheduled database."""

    def __init__(self, profile: OsSystemProfile, n_cores: int) -> None:
        if n_cores <= 0:
            raise SimulationError("need at least one core")
        self.profile = profile
        self.n_cores = n_cores

    # ------------------------------------------------------------------
    # Rates
    # ------------------------------------------------------------------
    def _progress_rates(self, jobs: List[_Job]) -> Dict[int, float]:
        """Per-job progress rate (work-seconds per second) under CFS.

        Every thread gets an equal core share; a job with ``n`` threads
        progresses ``n`` times that share, degraded by the intra-query
        parallelization overhead and, under oversubscription, by the
        context-switch penalty.
        """
        total_threads = sum(job.threads for job in jobs)
        if total_threads == 0:
            return {}
        share = min(1.0, self.n_cores / total_threads)
        oversub = max(0.0, total_threads - self.n_cores) / self.n_cores
        cs_factor = 1.0 / (1.0 + self.profile.context_switch_penalty * oversub)
        rates: Dict[int, float] = {}
        for job in jobs:
            efficiency = 1.0 / (
                1.0 + self.profile.parallel_efficiency * (job.threads - 1)
            )
            rates[job.query_id] = job.threads * share * efficiency * cs_factor
        return rates

    # ------------------------------------------------------------------
    # Simulation
    # ------------------------------------------------------------------
    def run(
        self,
        arrivals: List[Tuple[float, QuerySpec]],
        max_time: Optional[float] = None,
    ) -> LatencyCollector:
        """Execute a workload of ``(arrival_time, query)`` pairs.

        Runs until every query finished or ``max_time`` is reached;
        queries still running at ``max_time`` are dropped (they are
        censored, exactly like the fixed-duration runs in the paper).
        """
        pending = sorted(arrivals, key=lambda item: item[0])
        pending_heap: List[Tuple[float, int, QuerySpec]] = [
            (t, i, q) for i, (t, q) in enumerate(pending)
        ]
        heapq.heapify(pending_heap)
        admission_queue: Deque[Tuple[float, int, QuerySpec]] = deque()
        running: List[_Job] = []
        collector = LatencyCollector()
        now = 0.0

        def admit_from_queue() -> None:
            while admission_queue and len(running) < self.profile.max_concurrent:
                arrival, query_id, query = admission_queue.popleft()
                work = self.profile.job_work(query)
                running.append(
                    _Job(
                        query_id=query_id,
                        query=query,
                        arrival_time=arrival,
                        remaining_work=work,
                        threads=self.profile.threads_for(work),
                        started_at=now,
                    )
                )

        while pending_heap or admission_queue or running:
            if max_time is not None and now >= max_time:
                break
            rates = self._progress_rates(running)
            # Earliest completion under current rates.
            next_completion = float("inf")
            for job in running:
                rate = rates[job.query_id]
                if rate > 0.0:
                    next_completion = min(
                        next_completion, now + job.remaining_work / rate
                    )
            next_arrival = pending_heap[0][0] if pending_heap else float("inf")
            next_event = min(next_completion, next_arrival)
            if next_event == float("inf"):
                raise SimulationError("fluid model stalled with queued work")
            if max_time is not None:
                next_event = min(next_event, max_time)
            # Advance all running jobs to the event time.
            dt = next_event - now
            if dt > 0.0:
                for job in running:
                    job.remaining_work -= rates[job.query_id] * dt
            now = next_event
            # Handle arrivals at this instant.
            while pending_heap and pending_heap[0][0] <= now + 1e-12:
                arrival, query_id, query = heapq.heappop(pending_heap)
                admission_queue.append((arrival, query_id, query))
            # Handle completions (tolerance for float drift).
            finished = [job for job in running if job.remaining_work <= 1e-9]
            if finished:
                for job in finished:
                    running.remove(job)
                    collector.add(
                        LatencyRecord(
                            query_id=job.query_id,
                            name=job.query.name,
                            scale_factor=job.query.scale_factor,
                            arrival_time=job.arrival_time,
                            completion_time=now,
                            cpu_seconds=self.profile.job_work(job.query),
                            base_latency=self.profile.single_thread_latency(job.query),
                        )
                    )
            admit_from_queue()
        return collector
