"""Lottery scheduling (§2.3).

The paper notes that its scheduler infrastructure is policy-agnostic:
"we implemented non-deterministic lottery scheduling besides stride
scheduling in less than 100 lines of C++ code" — only the thread-local
pick rule changes.  We mirror that: this subclass overrides the single
slot-selection method.  Instead of picking the minimal pass value, a
worker holds a lottery in which each active slot receives tickets
proportional to its (possibly decayed) priority [Waldspurger & Weihl,
OSDI '94].
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro.core.stride import StrideScheduler
from repro.core.worker import WorkerLocalState


class LotteryScheduler(StrideScheduler):
    """Stride-scheduler infrastructure with a randomized pick rule."""

    name = "lottery"

    def _lottery_rng(self) -> np.random.Generator:
        """The deterministic RNG stream used to draw winning tickets."""
        return self.env.rng("lottery")

    def _pick_slot(self, local: WorkerLocalState) -> Optional[int]:
        slots = []
        tickets = []
        for slot in local.active_slots():
            state = local.slot_states.get(slot)
            if state is None:
                # Unknown state: repair path, same as stride.
                return slot
            slots.append(slot)
            tickets.append(state.decay.priority)
        if not slots:
            return None
        total = float(sum(tickets))
        if total <= 0.0:
            return slots[0]
        winner = self._lottery_rng().uniform(0.0, total)
        cumulative = 0.0
        for slot, ticket in zip(slots, tickets):
            cumulative += ticket
            if winner < cumulative:
                return slot
        return slots[-1]
