"""Thread-local scheduling state (§2.3, Figure 3).

Apart from the global slot array, *all* scheduling metadata lives inside
each worker:

* a bitmask tracking which global slots the worker believes are active;
* a mapping from slots to pass values and (decaying) priorities;
* the worker's own copy of the global pass;
* two shared atomic *update masks* — the change mask (a new resource
  group's first task set landed in a slot) and the return mask (a further
  task set of a known resource group landed in its slot) — which other
  threads write into and the owner drains before every decision.

Because priorities are tied to resource groups, the per-slot state also
remembers *which* resource group it belongs to.  When a slot is recycled
for a new group and this worker happened to miss the change notification
(the high-load fan-out restriction makes that legal), the mismatch is
detected on the next read of the slot pointer and the state is rebuilt —
the same lazy repair the paper uses for finished task sets.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterator, Optional

from repro.atomics import AtomicBitmask, iter_set_bits
from repro.core.decay import DecayParameters, PriorityDecay

#: Scale applied to strides so a fresh query (p = p0 = 10^4) has stride 1.
STRIDE_SCALE = 10_000.0


@dataclass(slots=True)
class SlotState:
    """Per-(worker, slot) scheduling state: pass value + priority decay."""

    group_id: int
    pass_value: float
    decay: PriorityDecay

    @property
    def priority(self) -> float:
        """Current (possibly decayed) priority of the slot's group."""
        return self.decay.priority

    @property
    def stride(self) -> float:
        """Stride S = scale / priority (§2.1)."""
        return STRIDE_SCALE / self.decay.priority


class WorkerLocalState:
    """All scheduling state owned by one worker thread."""

    __slots__ = (
        "worker_id",
        "n_slots",
        "active_mask",
        "change_mask",
        "return_mask",
        "slot_states",
        "global_pass",
        "idle",
    )

    def __init__(self, worker_id: int, n_slots: int) -> None:
        self.worker_id = worker_id
        self.n_slots = n_slots
        #: Local activity bitmask — not shared, plain int is faithful.
        self.active_mask = 0
        #: Shared update masks, written by other workers via fetch-or.
        self.change_mask = AtomicBitmask(n_slots)
        self.return_mask = AtomicBitmask(n_slots)
        #: Per-slot pass values and priorities (thread-local).
        self.slot_states: Dict[int, SlotState] = {}
        #: The worker's own global pass (§2.1, dynamic task arrival).
        self.global_pass = 0.0
        #: Whether the worker is parked waiting for work.
        self.idle = False

    # ------------------------------------------------------------------
    # Activity mask
    # ------------------------------------------------------------------
    def activate(self, slot: int) -> None:
        """Mark a slot as active in the local mask."""
        self.active_mask |= 1 << slot

    def deactivate(self, slot: int) -> None:
        """Mark a slot as inactive in the local mask."""
        self.active_mask &= ~(1 << slot)

    def is_active(self, slot: int) -> bool:
        """Whether the local mask currently considers the slot active."""
        return bool(self.active_mask & (1 << slot))

    def active_slots(self) -> Iterator[int]:
        """Iterate active slot indices in ascending order."""
        return iter_set_bits(self.active_mask)

    @property
    def has_active_slots(self) -> bool:
        """Cheap emptiness check on the activity mask."""
        return self.active_mask != 0

    # ------------------------------------------------------------------
    # Slot state management
    # ------------------------------------------------------------------
    def init_slot(
        self,
        slot: int,
        group_id: int,
        params: DecayParameters,
        user_scale: float = 1.0,
        static_priority: Optional[float] = None,
    ) -> SlotState:
        """Event (2): a new resource group appeared in ``slot``.

        The initial pass is the worker's global pass — the scheduler's
        "timestamp" that says the newcomer is owed exactly the resources
        accrued from now on (§2.1).
        """
        state = SlotState(
            group_id=group_id,
            pass_value=self.global_pass,
            decay=PriorityDecay(params, user_scale, static_priority),
        )
        self.slot_states[slot] = state
        self.activate(slot)
        return state

    def return_slot(self, slot: int) -> None:
        """Event (3): a further task set of a known group landed in ``slot``.

        The priority is retained (it belongs to the resource group); only
        the pass value is re-anchored at the global pass so a group whose
        previous task set finished long ago does not receive a huge
        catch-up burst.
        """
        state = self.slot_states.get(slot)
        if state is not None:
            state.pass_value = max(state.pass_value, self.global_pass)
        self.activate(slot)

    def forget_slot(self, slot: int) -> None:
        """Drop local state after discovering the slot was vacated."""
        self.deactivate(slot)
        self.slot_states.pop(slot, None)

    # ------------------------------------------------------------------
    # Stride accounting
    # ------------------------------------------------------------------
    def min_pass_slot(self) -> Optional[int]:
        """The active slot with minimal pass (deterministic tie-break).

        Runs once per scheduling decision, so the scan extracts set bits
        with integer arithmetic instead of the generator in
        :func:`iter_set_bits` — same ascending order, no frame per bit.
        """
        mask = self.active_mask
        best_slot: Optional[int] = None
        best_pass = float("inf")
        states = self.slot_states
        while mask:
            low = mask & -mask
            slot = low.bit_length() - 1
            state = states.get(slot)
            if state is None:
                # Activity bit without state: treat as highest urgency so
                # the inconsistency is repaired on the next pick.
                return slot
            pass_value = state.pass_value
            if pass_value < best_pass:
                best_pass = pass_value
                best_slot = slot
            mask ^= low
        return best_slot

    def account_execution(self, slot: int, fraction: float) -> None:
        """Advance the slot pass and the global pass after a task.

        ``fraction`` is f = task duration / time slice; it may exceed one
        for overlong tasks (§2.1, non-preemptive extension).
        """
        state = self.slot_states.get(slot)
        if state is None:
            return
        state.pass_value += fraction * state.stride
        total_priority = self.total_active_priority()
        if total_priority > 0.0:
            self.global_pass += fraction * STRIDE_SCALE / total_priority

    def total_active_priority(self) -> float:
        """Sum of priorities over locally active slots (global stride)."""
        mask = self.active_mask
        total = 0.0
        for slot_index, state in self.slot_states.items():
            if (mask >> slot_index) & 1:
                total += state.decay.priority
        return total

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return (
            f"WorkerLocalState(id={self.worker_id}, "
            f"active={list(self.active_slots())}, gp={self.global_pass:.3f})"
        )
