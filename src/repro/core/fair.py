"""The fair-scheduling baseline of §5.2.

The paper's fair scheduler "is based on our lock-free stride scheduler,
the only difference being that it uses fixed priorities" — so it still
benefits from the thread-local design of Section 2.  We model it the same
way: a :class:`StrideScheduler` whose every resource group is pinned to
the static initial priority ``p0`` (no decay, hence proportional *equal*
shares).
"""

from __future__ import annotations

from repro.core.stride import StrideScheduler


class FairScheduler(StrideScheduler):
    """Lock-free stride scheduling with fixed, equal priorities."""

    name = "fair"
    fixed_priorities = True
