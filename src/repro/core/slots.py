"""The global slot array (§2.3, "Thread-Local Decisions").

The scheduler maintains a bounded global array of slots.  Each slot is
bound to one active resource group and stores a tagged pointer to that
group's currently active task set.  When a task set finishes and the next
one becomes active it is put into the *same* slot, so priorities — which
are tied to resource groups — stay attached to a stable slot index.

Exhausted task sets are invalidated by *tagging* the pointer rather than
clearing it, so workers discover the change lazily the next time they pick
the slot.
"""

from __future__ import annotations

from typing import List, Optional

from repro.atomics import TaggedPointer
from repro.core.resource_group import ResourceGroup
from repro.core.task import TaskSet
from repro.errors import SlotError


class GlobalSlotArray:
    """Bounded array of tagged task-set pointers plus slot ownership."""

    def __init__(self, capacity: int = 128) -> None:
        if capacity <= 0:
            raise SlotError("slot array needs positive capacity")
        self._capacity = capacity
        self._pointers: List[TaggedPointer] = [TaggedPointer() for _ in range(capacity)]
        self._owners: List[Optional[ResourceGroup]] = [None] * capacity
        self._free: List[int] = list(range(capacity - 1, -1, -1))
        #: Writes to the slot array, for overhead accounting.
        self.store_count = 0

    @property
    def capacity(self) -> int:
        """Maximum number of simultaneously active resource groups."""
        return self._capacity

    @property
    def occupied(self) -> int:
        """Number of slots currently bound to a resource group."""
        return self._capacity - len(self._free)

    def has_free_slot(self) -> bool:
        """Whether a new resource group can be admitted right now."""
        return bool(self._free)

    # ------------------------------------------------------------------
    # Slot lifecycle
    # ------------------------------------------------------------------
    def acquire(self, group: ResourceGroup) -> int:
        """Bind a resource group to a free slot; return the slot index."""
        if not self._free:
            raise SlotError("no free slot; the caller must use the wait queue")
        slot = self._free.pop()
        self._owners[slot] = group
        return slot

    def release(self, slot: int) -> None:
        """Unbind a finished resource group and recycle its slot."""
        self._check(slot)
        if self._owners[slot] is None:
            raise SlotError(f"slot {slot} released twice")
        self._owners[slot] = None
        self._pointers[slot].clear()
        self._free.append(slot)

    def owner(self, slot: int) -> Optional[ResourceGroup]:
        """The resource group bound to ``slot`` (``None`` if free)."""
        self._check(slot)
        return self._owners[slot]

    # ------------------------------------------------------------------
    # Task-set pointer operations
    # ------------------------------------------------------------------
    def store_task_set(self, slot: int, task_set: TaskSet) -> None:
        """Publish a new active task set into ``slot``."""
        self._check(slot)
        if self._owners[slot] is not task_set.resource_group:
            raise SlotError(
                f"slot {slot} is not owned by the task set's resource group"
            )
        self._pointers[slot].store(task_set)
        self.store_count += 1

    def read(self, slot: int) -> "tuple[Optional[TaskSet], bool]":
        """Atomic read: ``(task_set, valid)`` for the slot pointer."""
        self._check(slot)
        payload, valid = self._pointers[slot].load()
        return payload, valid

    def tag_invalid(self, slot: int) -> bool:
        """Tag the slot's task-set pointer as invalid.

        Returns ``True`` only for the single caller that performed the
        transition — that worker becomes the finalization coordinator.
        """
        self._check(slot)
        return self._pointers[slot].tag_invalid()

    def _check(self, slot: int) -> None:
        if not 0 <= slot < self._capacity:
            raise SlotError(f"slot {slot} out of range [0, {self._capacity})")

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"GlobalSlotArray(occupied={self.occupied}/{self._capacity})"
