"""The lock-free, self-tuning stride scheduler (Sections 2-4).

This is the paper's headline system.  Structure of one worker decision,
matching §2.3:

1. *Pull updates*: drain the worker's change/return masks and fold new
   task sets into the local activity mask, pass values and priorities.
2. *Pick*: choose the locally active slot with minimal pass value.
3. *Publish*: write the decision into the global state array (before the
   atomic read of the slot pointer — the ordering the finalization
   protocol relies on).
4. *Read and validate*: atomically read the slot's tagged pointer.  An
   invalid pointer means the task set finished; disable the slot locally
   and pick again (lazy repair, no notification needed).
5. *Execute*: run one task — the adaptive morsel executor carves morsels
   until the target duration ``t_max`` is exhausted.
6. *Account*: advance the slot pass by ``f * stride`` (``f`` = duration /
   time slice), advance the worker's global pass, charge the priority
   decay, and handle the finalization protocol when the task set ran dry.

Admission puts each query's resource group into a free global slot, or —
when all ``slot_capacity`` slots are taken — into the preceding wait
queue (bounded-memory graceful degradation, §2.3).  Task-set updates are
pushed into all workers at low load and into a linearly shrinking subset
once more than half the slots are occupied, down to a single worker at
full occupancy (the "Coping With High Load" optimization).

With ``tuning_enabled`` the scheduler periodically tracks one worker and
re-optimizes the priority-decay parameters by simulating itself on the
tracked workload (Section 4); see :mod:`repro.tuning`.
"""

from __future__ import annotations

import math
from typing import List, Optional, Tuple

from repro.core.decay import DEFAULT_P0, DecayParameters
from repro.core.resource_group import ResourceGroup
from repro.core.scheduler_base import SchedulerBase, SchedulerConfig, TaskDecision
from repro.core.slots import GlobalSlotArray
from repro.core.task import TaskSet
from repro.core.worker import WorkerLocalState
from repro.errors import SchedulerError

#: Global-state-array entry kinds.
_RUNNING = "task"
_FINAL_MARKER = "final"


class StrideScheduler(SchedulerBase):
    """Lock-free stride scheduling with adaptive priorities (§2-§4)."""

    name = "stride"

    #: Subclasses (the fair baseline) pin every priority to p0.
    fixed_priorities = False

    def __init__(self, config: SchedulerConfig) -> None:
        super().__init__(config)
        self._slots = GlobalSlotArray(config.slot_capacity)
        self._locals: List[WorkerLocalState] = [
            WorkerLocalState(worker_id, config.slot_capacity)
            for worker_id in range(config.n_workers)
        ]
        #: Global state array: what every worker is currently running.
        #: Entries are ``None`` or ``(kind, slot, task_set)``.
        self._worker_running: List[Optional[Tuple[str, int, TaskSet]]] = [
            None
        ] * config.n_workers
        self._decay_params = config.effective_decay()
        self._tuner = None
        if config.tuning_enabled:
            # Imported lazily to avoid a core <-> tuning import cycle.
            from repro.tuning.controller import TuningController

            self._tuner = TuningController(
                scheduler=self,
                tracking_duration=config.tracking_duration,
                refresh_duration=config.refresh_duration,
                objective=config.tuning_objective,
            )

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    @property
    def slots(self) -> GlobalSlotArray:
        """The global slot array (exposed for tests and experiments)."""
        return self._slots

    @property
    def workers(self) -> List[WorkerLocalState]:
        """Per-worker local scheduling state."""
        return self._locals

    @property
    def decay_parameters(self) -> DecayParameters:
        """The currently active decay parameters."""
        return self._decay_params

    @property
    def tuner(self):
        """The self-tuning controller, if enabled."""
        return self._tuner

    def set_decay_parameters(self, params: DecayParameters) -> None:
        """Broadcast newly tuned parameters into every worker (§4).

        In the real system the parameters are pushed into the workers; in
        the sequential simulation we update all thread-local decay states
        directly, recomputing each priority from the closed form.
        """
        self._decay_params = params
        for local in self._locals:
            for state in local.slot_states.values():
                state.decay.update_parameters(params)

    # ------------------------------------------------------------------
    # Admission (§2.3: bounded slots + wait queue)
    # ------------------------------------------------------------------
    def admit(self, group: ResourceGroup, now: float) -> None:
        self.admitted_count += 1
        if self._slots.has_free_slot():
            group.admit_time = now
            self._install_group(group)
        else:
            self.wait_queue.append(group)

    def _install_group(self, group: ResourceGroup) -> None:
        """Bind a resource group to a slot and publish its first task set."""
        slot = self._slots.acquire(group)
        first_task_set = group.activate_next_task_set()
        if first_task_set is None:
            raise SchedulerError(f"query {group.query.name!r} has no task sets")
        self._slots.store_task_set(slot, first_task_set)
        self._push_updates(slot, new_group=True)

    # ------------------------------------------------------------------
    # Update-mask fan-out (§2.3, "Coping With High Load")
    # ------------------------------------------------------------------
    def _update_targets(self, slot: int) -> List[int]:
        """Workers that get notified about a task-set update in ``slot``."""
        n_workers = self.n_workers
        capacity = self._slots.capacity
        occupied = self._slots.occupied
        if not self.config.restrict_fanout or occupied * 2 <= capacity:
            return list(range(n_workers))
        half = capacity - capacity // 2
        fraction = max(0.0, (capacity - occupied) / half)
        count = max(1, math.ceil(n_workers * fraction))
        start = slot % n_workers
        return [(start + i) % n_workers for i in range(count)]

    def _push_updates(self, slot: int, new_group: bool) -> None:
        """Fetch-or the slot bit into the targets' change/return masks."""
        for worker_id in self._update_targets(slot):
            local = self._locals[worker_id]
            mask = local.change_mask if new_group else local.return_mask
            mask.set_bit(slot)
            self.overhead.charge_mask_updates(1)
            self.wake(worker_id)

    def _pull_updates(self, local: WorkerLocalState) -> None:
        """Drain the worker's update masks into its local state.

        When no writes happened since the last drain this is a cheap
        relaxed check (no atomic exchange, no cache invalidation).
        """
        has_changes = local.change_mask.any_set()
        has_returns = local.return_mask.any_set()
        if not has_changes and not has_returns:
            return
        change_bits = local.change_mask.drain() if has_changes else []
        return_bits = local.return_mask.drain() if has_returns else []
        ops = 2  # the two atomic mask exchanges
        changed = set(change_bits)
        for slot in change_bits:
            group = self._slots.owner(slot)
            if group is not None:
                self._init_local_slot(local, slot, group)
            ops += 1
        for slot in return_bits:
            if slot in changed:
                continue
            state = local.slot_states.get(slot)
            owner = self._slots.owner(slot)
            if owner is None:
                ops += 1
                continue
            if state is not None and state.group_id == owner.query_id:
                local.return_slot(slot)
            else:
                # Missed the change event for this group (restricted
                # fan-out); initialize from scratch.
                self._init_local_slot(local, slot, owner)
            ops += 1
        self.overhead.charge_local_work(ops)

    def _init_local_slot(
        self, local: WorkerLocalState, slot: int, group: ResourceGroup
    ) -> None:
        """Event (2): set up pass value and priority for a new group."""
        query = group.query
        static_priority = query.static_priority
        if self.fixed_priorities and static_priority is None:
            static_priority = DEFAULT_P0
        local.init_slot(
            slot,
            group.query_id,
            self._decay_params,
            user_scale=query.user_priority if query.user_priority else 1.0,
            static_priority=static_priority,
        )

    # ------------------------------------------------------------------
    # Worker decision loop (§2.3)
    # ------------------------------------------------------------------
    def _pick_slot(self, local: WorkerLocalState) -> Optional[int]:
        """Slot selection rule: minimal pass value (stride scheduling).

        The lottery variant overrides this single method — the remaining
        infrastructure stays in place, exactly as §2.3 promises.
        """
        return local.min_pass_slot()

    def worker_decide(self, worker_id: int, now: float) -> Optional[TaskDecision]:
        self.mark_busy(worker_id)
        local = self._locals[worker_id]
        self._pull_updates(local)
        if self._tuner is not None:
            tuning_decision = self._tuner.maybe_tune(worker_id, now)
            if tuning_decision is not None:
                return tuning_decision
        while True:
            slot = self._pick_slot(local)
            if slot is None:
                self.mark_idle(worker_id)
                return None
            # Publish the decision in the global state array *before*
            # the atomic read of the slot (finalization ordering, §2.3).
            self._worker_running[worker_id] = (_RUNNING, slot, None)
            task_set, valid = self._slots.read(slot)
            if not valid or task_set is None:
                self._worker_running[worker_id] = None
                local.forget_slot(slot)
                continue
            self._worker_running[worker_id] = (_RUNNING, slot, task_set)
            group = task_set.resource_group
            state = local.slot_states.get(slot)
            if state is None or state.group_id != group.query_id:
                # Missed notification: repair local state lazily.
                self._init_local_slot(local, slot, group)
            if task_set.exhausted:
                self._worker_running[worker_id] = None
                local.deactivate(slot)
                extra = self._notice_exhausted(slot, task_set, now)
                if extra > 0.0:
                    return TaskDecision(
                        worker_id=worker_id,
                        kind="finalize",
                        duration=extra,
                        slot=slot,
                        group=group,
                    )
                continue
            task_set.pin()
            executed = self.executor.run_task(task_set, self.env)
            if not executed.morsels:
                # Raced to exhaustion between the read and the carve.
                task_set.unpin()
                self._worker_running[worker_id] = None
                local.deactivate(slot)
                extra = self._notice_exhausted(slot, task_set, now)
                if extra > 0.0:
                    return TaskDecision(
                        worker_id=worker_id,
                        kind="finalize",
                        duration=extra,
                        slot=slot,
                        group=group,
                    )
                continue
            self.record_task_trace(worker_id, now, executed)
            self.tasks_executed += 1
            return TaskDecision(
                worker_id=worker_id,
                kind="task",
                duration=executed.duration,
                slot=slot,
                executed=executed,
                group=group,
            )

    # ------------------------------------------------------------------
    # Task completion
    # ------------------------------------------------------------------
    def worker_finish(self, worker_id: int, now: float, decision: TaskDecision) -> float:
        if decision.kind != "task":
            return 0.0
        executed = decision.executed
        if executed is None:
            raise SchedulerError("task decision without executed task")
        task_set = executed.task_set
        slot = decision.slot
        local = self._locals[worker_id]
        group = task_set.resource_group
        duration = executed.duration

        entry = self._worker_running[worker_id]
        self._worker_running[worker_id] = None
        task_set.unpin()

        # --- accounting: busy time, CPU charge, stride pass, decay ----
        self.overhead.charge_busy(duration)
        group.charge_cpu(duration)
        state = local.slot_states.get(slot)
        if state is not None and state.group_id == group.query_id:
            state.decay.charge(duration)
            local.account_execution(slot, duration / self.config.t_max)
        if self._tuner is not None:
            self._tuner.record_task(worker_id, group, duration, now)

        extra = 0.0
        # --- finalization marker handling (§2.3) -----------------------
        if entry is not None and entry[0] == _FINAL_MARKER:
            self.overhead.charge_finalization(1)
            if task_set.finalization_counter.add_and_fetch(-1) == 0:
                extra += self._run_finalization(slot, task_set, now)
        # --- did this task drain the task set? -------------------------
        if executed.exhausted_work and not task_set.finalization_started:
            extra += self._notice_exhausted(slot, task_set, now)
        return extra

    # ------------------------------------------------------------------
    # Finalization protocol (§2.3)
    # ------------------------------------------------------------------
    def _notice_exhausted(self, slot: int, task_set: TaskSet, now: float) -> float:
        """First worker to notice an empty task set coordinates finalization."""
        if task_set.finalization_started:
            return 0.0
        if not self._slots.tag_invalid(slot):
            return 0.0
        task_set.begin_finalization()
        count = 0
        for other_id in range(self.n_workers):
            entry = self._worker_running[other_id]
            if entry is not None and entry[0] == _RUNNING and entry[2] is task_set:
                self._worker_running[other_id] = (_FINAL_MARKER, slot, task_set)
                count += 1
        # The coordinator scans the whole state array once.
        self.overhead.charge_finalization(self.n_workers)
        if task_set.finalization_counter.add_and_fetch(count) == 0:
            return self._run_finalization(slot, task_set, now)
        return 0.0

    def _run_finalization(self, slot: int, task_set: TaskSet, now: float) -> float:
        """The last worker on a task set runs its finalization logic."""
        task_set.mark_finalized()
        group = task_set.resource_group
        cost = task_set.profile.finalize_seconds
        if cost > 0.0:
            self.overhead.charge_busy(cost)
            group.charge_cpu(cost)
        next_task_set = group.activate_next_task_set()
        if next_task_set is not None:
            self._slots.store_task_set(slot, next_task_set)
            self._push_updates(slot, new_group=False)
        else:
            self.record_completion(group, now)
            self._slots.release(slot)
            if self.wait_queue:
                waiting = self.wait_queue.popleft()
                waiting.admit_time = now
                self._install_group(waiting)
        return cost
