"""The lock-free, self-tuning stride scheduler (Sections 2-4).

This is the paper's headline system.  Structure of one worker decision,
matching §2.3:

1. *Pull updates*: drain the worker's change/return masks and fold new
   task sets into the local activity mask, pass values and priorities.
2. *Pick*: choose the locally active slot with minimal pass value.
3. *Publish*: write the decision into the global state array (before the
   atomic read of the slot pointer — the ordering the finalization
   protocol relies on).
4. *Read and validate*: atomically read the slot's tagged pointer.  An
   invalid pointer means the task set finished; disable the slot locally
   and pick again (lazy repair, no notification needed).
5. *Execute*: run one task — the adaptive morsel executor carves morsels
   until the target duration ``t_max`` is exhausted.
6. *Account*: advance the slot pass by ``f * stride`` (``f`` = duration /
   time slice), advance the worker's global pass, charge the priority
   decay, and handle the finalization protocol when the task set ran dry.

Admission puts each query's resource group into a free global slot, or —
when all ``slot_capacity`` slots are taken — into the preceding wait
queue (bounded-memory graceful degradation, §2.3).  Task-set updates are
pushed into all workers at low load and into a linearly shrinking subset
once more than half the slots are occupied, down to a single worker at
full occupancy (the "Coping With High Load" optimization).

With ``tuning_enabled`` the scheduler periodically tracks one worker and
re-optimizes the priority-decay parameters by simulating itself on the
tracked workload (Section 4); see :mod:`repro.tuning`.
"""

from __future__ import annotations

import math
from typing import List, Optional, Tuple

from repro.core.decay import DEFAULT_P0, DecayParameters
from repro.core.resource_group import ResourceGroup
from repro.core.scheduler_base import SchedulerBase, SchedulerConfig, TaskDecision
from repro.core.slots import GlobalSlotArray
from repro.core.task import TaskSet
from repro.core.worker import STRIDE_SCALE, WorkerLocalState
from repro.errors import SchedulerError, WorkerDiedError

#: Global-state-array entry kinds.
_RUNNING = "task"
_FINAL_MARKER = "final"

_INF = float("inf")


class StrideScheduler(SchedulerBase):
    """Lock-free stride scheduling with adaptive priorities (§2-§4)."""

    name = "stride"

    #: Subclasses (the fair baseline) pin every priority to p0.
    fixed_priorities = False

    def __init__(self, config: SchedulerConfig) -> None:
        super().__init__(config)
        self._slots = GlobalSlotArray(config.slot_capacity)
        self._locals: List[WorkerLocalState] = [
            WorkerLocalState(worker_id, config.slot_capacity)
            for worker_id in range(config.n_workers)
        ]
        #: Global state array: what every worker is currently running.
        #: Entries are ``None`` or ``(kind, slot, task_set)``.
        self._worker_running: List[Optional[Tuple[str, int, TaskSet]]] = [
            None
        ] * config.n_workers
        #: Aliases of each worker's update-mask word lists (the bitmasks
        #: mutate the lists in place, so the aliases stay current).  Used
        #: for the relaxed has-updates probe in worker_decide.
        self._change_words = [local.change_mask._words for local in self._locals]
        self._return_words = [local.return_mask._words for local in self._locals]
        self._t_max = config.t_max
        #: Whether worker_decide may use its inlined copy of the default
        #: min-pass selection rule (subclasses overriding _pick_slot —
        #: the lottery policy — keep the virtual call).
        self._default_pick = type(self)._pick_slot is StrideScheduler._pick_slot
        self._decay_params = config.effective_decay()
        self._tuner = None
        if config.tuning_enabled:
            # Imported lazily to avoid a core <-> tuning import cycle.
            from repro.tuning.controller import TuningController

            self._tuner = TuningController(
                scheduler=self,
                tracking_duration=config.tracking_duration,
                refresh_duration=config.refresh_duration,
                objective=config.tuning_objective,
                tuning_budget=config.tuning_budget,
            )

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    @property
    def slots(self) -> GlobalSlotArray:
        """The global slot array (exposed for tests and experiments)."""
        return self._slots

    @property
    def workers(self) -> List[WorkerLocalState]:
        """Per-worker local scheduling state."""
        return self._locals

    @property
    def decay_parameters(self) -> DecayParameters:
        """The currently active decay parameters."""
        return self._decay_params

    @property
    def tuner(self):
        """The self-tuning controller, if enabled."""
        return self._tuner

    def set_decay_parameters(self, params: DecayParameters) -> None:
        """Broadcast newly tuned parameters into every worker (§4).

        In the real system the parameters are pushed into the workers; in
        the sequential simulation we update all thread-local decay states
        directly, recomputing each priority from the closed form.
        """
        self._decay_params = params
        for local in self._locals:
            # list(): workers may insert slot states concurrently under
            # the threaded backend (dict iteration would raise).
            for state in list(local.slot_states.values()):
                state.decay.update_parameters(params)

    # ------------------------------------------------------------------
    # Admission (§2.3: bounded slots + wait queue)
    # ------------------------------------------------------------------
    def admit(self, group: ResourceGroup, now: float) -> None:
        lock = self._admission_lock
        if lock is None:
            self.admitted_count += 1
            if self._slots.has_free_slot():
                group.admit_time = now
                self._install_group(group)
            else:
                self.wait_queue.append(group)
            return
        with lock:
            self.admitted_count += 1
            if self._slots.has_free_slot():
                group.admit_time = now
                self._install_group(group)
            else:
                self.wait_queue.append(group)

    def _install_group(self, group: ResourceGroup) -> None:
        """Bind a resource group to a slot and publish its first task set."""
        slot = self._slots.acquire(group)
        first_task_set = group.activate_next_task_set()
        if first_task_set is None:
            raise SchedulerError(f"query {group.query.name!r} has no task sets")
        self._slots.store_task_set(slot, first_task_set)
        self._push_updates(slot, new_group=True)

    # ------------------------------------------------------------------
    # Update-mask fan-out (§2.3, "Coping With High Load")
    # ------------------------------------------------------------------
    def _update_targets(self, slot: int) -> List[int]:
        """Workers that get notified about a task-set update in ``slot``."""
        n_workers = self.n_workers
        capacity = self._slots.capacity
        occupied = self._slots.occupied
        if not self.config.restrict_fanout or occupied * 2 <= capacity:
            return list(range(n_workers))
        half = capacity - capacity // 2
        fraction = max(0.0, (capacity - occupied) / half)
        count = max(1, math.ceil(n_workers * fraction))
        start = slot % n_workers
        return [(start + i) % n_workers for i in range(count)]

    def _push_updates(self, slot: int, new_group: bool) -> None:
        """Fetch-or the slot bit into the targets' change/return masks."""
        for worker_id in self._update_targets(slot):
            local = self._locals[worker_id]
            mask = local.change_mask if new_group else local.return_mask
            mask.set_bit(slot)
            self.overhead.charge_mask_updates(1)
            self.wake(worker_id)

    def _pull_updates(self, local: WorkerLocalState) -> None:
        """Drain the worker's update masks into its local state.

        When no writes happened since the last drain this is a cheap
        relaxed check (no atomic exchange, no cache invalidation).
        """
        has_changes = local.change_mask.any_set()
        has_returns = local.return_mask.any_set()
        if not has_changes and not has_returns:
            return
        change_bits = local.change_mask.drain() if has_changes else []
        return_bits = local.return_mask.drain() if has_returns else []
        ops = 2  # the two atomic mask exchanges
        changed = set(change_bits)
        for slot in change_bits:
            group = self._slots.owner(slot)
            if group is not None:
                self._init_local_slot(local, slot, group)
            ops += 1
        for slot in return_bits:
            if slot in changed:
                continue
            state = local.slot_states.get(slot)
            owner = self._slots.owner(slot)
            if owner is None:
                ops += 1
                continue
            if state is not None and state.group_id == owner.query_id:
                local.return_slot(slot)
            else:
                # Missed the change event for this group (restricted
                # fan-out); initialize from scratch.
                self._init_local_slot(local, slot, owner)
            ops += 1
        self.overhead.charge_local_work(ops)

    def _init_local_slot(
        self, local: WorkerLocalState, slot: int, group: ResourceGroup
    ) -> None:
        """Event (2): set up pass value and priority for a new group."""
        query = group.query
        static_priority = query.static_priority
        if self.fixed_priorities and static_priority is None:
            static_priority = DEFAULT_P0
        user_scale = query.user_priority if query.user_priority else 1.0
        if group.fold_size != 1:
            # §3.2 for work-sharing folds: the group executes on behalf
            # of fold_size queries, so its stride share is the *sum* of
            # their shares (the weight itself is already the members'
            # max).  fold_size == 1 touches nothing — the unshared path
            # stays bit-identical.
            user_scale = user_scale * group.fold_size
        local.init_slot(
            slot,
            group.query_id,
            self._decay_params,
            user_scale=user_scale,
            static_priority=static_priority,
        )

    def _clear_running(
        self, worker_id: int
    ) -> Optional[Tuple[str, int, TaskSet]]:
        """Exchange this worker's global-state-array entry with ``None``.

        Under the threaded backend a finalization coordinator may
        concurrently replace the entry with a ``_FINAL_MARKER``; the
        exchange under the state lock guarantees exactly one side
        observes the marker (either the coordinator counted us and we
        see the marker here, or our clear happened first and the
        coordinator's scan skips us).  Sequentially this is the same
        plain read-then-clear the simulator always ran.
        """
        lock = self._state_lock
        worker_running = self._worker_running
        if lock is None:
            entry = worker_running[worker_id]
            worker_running[worker_id] = None
            return entry
        with lock:
            entry = worker_running[worker_id]
            worker_running[worker_id] = None
            return entry

    # ------------------------------------------------------------------
    # Worker decision loop (§2.3)
    # ------------------------------------------------------------------
    def _pick_slot(self, local: WorkerLocalState) -> Optional[int]:
        """Slot selection rule: minimal pass value (stride scheduling).

        The lottery variant overrides this single method — the remaining
        infrastructure stays in place, exactly as §2.3 promises.  The body
        duplicates :meth:`WorkerLocalState.min_pass_slot` to save a call
        frame per scheduling decision.
        """
        mask = local.active_mask
        best_slot: Optional[int] = None
        best_pass = _INF
        states_get = local.slot_states.get
        while mask:
            low = mask & -mask
            slot = low.bit_length() - 1
            state = states_get(slot)
            if state is None:
                # Activity bit without state: treat as highest urgency so
                # the inconsistency is repaired on the next pick.
                return slot
            pass_value = state.pass_value
            if pass_value < best_pass:
                best_pass = pass_value
                best_slot = slot
            mask ^= low
        return best_slot

    def worker_decide(self, worker_id: int, now: float) -> Optional[TaskDecision]:
        self._idle_workers.discard(worker_id)  # inlined mark_busy (hot path)
        local = self._locals[worker_id]
        # Relaxed emptiness probe before draining (§2.3): the common case
        # is "no updates", checked here without entering _pull_updates.
        if any(self._change_words[worker_id]) or any(self._return_words[worker_id]):
            self._pull_updates(local)
        if self._tuner is not None:
            tuning_decision = self._tuner.maybe_tune(worker_id, now)
            if tuning_decision is not None:
                return tuning_decision
        # Only names used more than once per loop iteration are hoisted;
        # the loop almost always runs a single iteration, so hoisting
        # single-use attributes would cost more than it saves.
        worker_running = self._worker_running
        #: Direct tagged-pointer access: the local activity mask only ever
        #: holds slots < capacity, so the bounds check of
        #: GlobalSlotArray.read is redundant here.
        pointers = self._slots._pointers
        states_get = local.slot_states.get
        default_pick = self._default_pick
        while True:
            if default_pick:
                # Inlined _pick_slot (kept in sync): saves one call frame
                # per scheduling decision.
                mask = local.active_mask
                slot = None
                best_pass = _INF
                while mask:
                    low = mask & -mask
                    candidate = low.bit_length() - 1
                    candidate_state = states_get(candidate)
                    if candidate_state is None:
                        slot = candidate
                        break
                    pass_value = candidate_state.pass_value
                    if pass_value < best_pass:
                        best_pass = pass_value
                        slot = candidate
                    mask ^= low
            else:
                slot = self._pick_slot(local)
            if slot is None:
                self.mark_idle(worker_id)
                return None
            # Publish the decision in the global state array *before*
            # the atomic read of the slot (finalization ordering, §2.3).
            worker_running[worker_id] = (_RUNNING, slot, None)
            pointer = pointers[slot]
            task_set = pointer._payload
            if not pointer._valid or task_set is None:
                worker_running[worker_id] = None
                local.forget_slot(slot)
                continue
            worker_running[worker_id] = (_RUNNING, slot, task_set)
            group = task_set.resource_group
            state = states_get(slot)
            if state is None or state.group_id != group.query_id:
                # Missed notification: repair local state lazily.
                self._init_local_slot(local, slot, group)
            if now > group.deadline_time:
                # Deadline expiry: fail through the abort path, then wind
                # the slot down exactly like an exhausted task set (the
                # fail drained it).  One float compare on the hot path.
                self.fail_group(group, self.deadline_error(group), now)
                extra = self._wind_down_aborted(worker_id, local, slot, task_set, now)
                if extra > 0.0:
                    return TaskDecision(
                        worker_id=worker_id,
                        kind="finalize",
                        duration=extra,
                        slot=slot,
                        group=group,
                    )
                continue
            if task_set.remaining_tuples == 0:  # inlined TaskSet.exhausted
                entry = self._clear_running(worker_id)
                local.deactivate(slot)
                if entry is not None and entry[0] is _FINAL_MARKER:
                    # A concurrent coordinator counted this worker while
                    # the entry was published; act as a marked worker.
                    self.overhead.charge_finalization(1)
                    extra = 0.0
                    if task_set.finalization_counter.add_and_fetch(-1) == 0:
                        extra = self._run_finalization(slot, task_set, now)
                else:
                    extra = self._notice_exhausted(slot, task_set, now)
                if extra > 0.0:
                    return TaskDecision(
                        worker_id=worker_id,
                        kind="finalize",
                        duration=extra,
                        slot=slot,
                        group=group,
                    )
                continue
            if task_set.lock is None:
                task_set.pinned_workers += 1  # inlined TaskSet.pin
            else:
                task_set.pin()
            try:
                executed = self.executor.run_task(task_set, self._env)
            except Exception as exc:
                # Per-query failure isolation: the raising morsel fails
                # only this query.  Its task sets drain and the slot
                # winds down through the §2.3 finalization protocol; the
                # worker (and every other in-flight query) carries on.
                if task_set.lock is None:
                    task_set.pinned_workers -= 1  # inlined TaskSet.unpin
                else:
                    task_set.unpin()
                self.fail_group(group, exc, now)
                extra = self._wind_down_aborted(worker_id, local, slot, task_set, now)
                if isinstance(exc, WorkerDiedError):
                    # The worker itself is dying: the query is already
                    # failed and the protocol state is consistent, so the
                    # hosting backend can retire and replace the worker.
                    raise
                if extra > 0.0:
                    return TaskDecision(
                        worker_id=worker_id,
                        kind="finalize",
                        duration=extra,
                        slot=slot,
                        group=group,
                    )
                continue
            if executed.morsel_count == 0:
                # Raced to exhaustion between the read and the carve.
                task_set.unpin()
                entry = self._clear_running(worker_id)
                local.deactivate(slot)
                if entry is not None and entry[0] is _FINAL_MARKER:
                    self.overhead.charge_finalization(1)
                    extra = 0.0
                    if task_set.finalization_counter.add_and_fetch(-1) == 0:
                        extra = self._run_finalization(slot, task_set, now)
                else:
                    extra = self._notice_exhausted(slot, task_set, now)
                if extra > 0.0:
                    return TaskDecision(
                        worker_id=worker_id,
                        kind="finalize",
                        duration=extra,
                        slot=slot,
                        group=group,
                    )
                continue
            if self.trace.enabled:
                self.record_task_trace(worker_id, now, executed)
            if self._state_lock is None:
                self.tasks_executed += 1
            else:
                with self._state_lock:
                    self.tasks_executed += 1
            return TaskDecision(worker_id, _RUNNING, executed.duration, slot, executed, group)

    # ------------------------------------------------------------------
    # Task completion
    # ------------------------------------------------------------------
    def worker_finish(self, worker_id: int, now: float, decision: TaskDecision) -> float:
        if decision.kind != "task":
            return 0.0
        executed = decision.executed
        if executed is None:
            raise SchedulerError("task decision without executed task")
        task_set = executed.task_set
        slot = decision.slot
        local = self._locals[worker_id]
        group = task_set.resource_group
        duration = executed.duration

        entry = self._clear_running(worker_id)
        if task_set.lock is None:
            # Inlined TaskSet.unpin: worker_decide pinned this task set,
            # so the pin count is always positive here.
            task_set.pinned_workers -= 1
        else:
            task_set.unpin()

        # --- accounting: busy time, CPU charge, stride pass, decay ----
        # (charge_busy / charge_cpu / account_execution inlined: this
        # runs once per task and dominated the completion path.)
        if self._state_lock is None:
            self.overhead.busy_seconds += duration
            group.cpu_seconds += duration
        else:
            with self._state_lock:
                self.overhead.busy_seconds += duration
            group.charge_cpu(duration)
        state = local.slot_states.get(slot)
        if state is not None and state.group_id == group.query_id:
            # Inlined PriorityDecay.charge (keep in sync with that
            # method): tasks are sized near one quantum, so stepping runs
            # on most completions and the call overhead adds up.
            decay = state.decay
            params = decay._params
            quantum = params.quantum
            accum = decay._accum + duration
            if accum < quantum:
                decay._accum = accum
                priority = decay.priority
            else:
                quanta = decay._quanta
                if decay._static is not None:
                    # Pinned static priority never decays.
                    priority = decay.priority
                    while accum >= quantum:
                        accum -= quantum
                        quanta += 1
                else:
                    d_start = params.d_start
                    decay_factor = params.decay
                    floor = params.p_min * decay._scale
                    priority = decay.priority
                    while accum >= quantum:
                        accum -= quantum
                        quanta += 1
                        if quanta > d_start:
                            decayed = decay_factor * priority
                            priority = decayed if decayed > floor else floor
                    decay.priority = priority
                decay._accum = accum
                decay._quanta = quanta
            fraction = duration / self._t_max
            state.pass_value += fraction * (STRIDE_SCALE / priority)
            mask = local.active_mask
            total_priority = 0.0
            for slot_index, slot_state in local.slot_states.items():
                if (mask >> slot_index) & 1:
                    total_priority += slot_state.decay.priority
            if total_priority > 0.0:
                local.global_pass += fraction * STRIDE_SCALE / total_priority
        if self._tuner is not None:
            self._tuner.record_task(worker_id, group, duration, now)

        extra = 0.0
        # --- finalization marker handling (§2.3) -----------------------
        if entry is not None and entry[0] is _FINAL_MARKER:
            self.overhead.charge_finalization(1)
            if task_set.finalization_counter.add_and_fetch(-1) == 0:
                extra += self._run_finalization(slot, task_set, now)
        # --- did this task drain the task set? -------------------------
        if executed.exhausted_work and not task_set.finalization_started:
            extra += self._notice_exhausted(slot, task_set, now)
        return extra

    # ------------------------------------------------------------------
    # Finalization protocol (§2.3)
    # ------------------------------------------------------------------
    def _wind_down_aborted(
        self,
        worker_id: int,
        local: WorkerLocalState,
        slot: int,
        task_set: TaskSet,
        now: float,
    ) -> float:
        """Release an aborted (failed / timed-out) slot through §2.3.

        The caller already drained the task set via ``fail_group``; this
        is the same clear/deactivate/marker dance as the exhausted
        branches of :meth:`worker_decide`: if a concurrent coordinator
        counted this worker while its entry was published, act as a
        marked worker, otherwise coordinate the finalization ourselves.
        """
        entry = self._clear_running(worker_id)
        local.deactivate(slot)
        if entry is not None and entry[0] is _FINAL_MARKER:
            self.overhead.charge_finalization(1)
            if task_set.finalization_counter.add_and_fetch(-1) == 0:
                return self._run_finalization(slot, task_set, now)
            return 0.0
        return self._notice_exhausted(slot, task_set, now)

    def _notice_exhausted(self, slot: int, task_set: TaskSet, now: float) -> float:
        """First worker to notice an empty task set coordinates finalization."""
        if task_set.finalization_started:
            return 0.0
        if not self._slots.tag_invalid(slot):
            return 0.0
        task_set.begin_finalization()
        count = 0
        worker_running = self._worker_running
        state_lock = self._state_lock
        if state_lock is None:
            for other_id in range(self.n_workers):
                entry = worker_running[other_id]
                if entry is not None and entry[0] is _RUNNING and entry[2] is task_set:
                    worker_running[other_id] = (_FINAL_MARKER, slot, task_set)
                    count += 1
        else:
            # The scan-and-mark must be atomic with respect to workers
            # clearing their entries (_clear_running): otherwise a
            # worker could exit between being counted and being marked,
            # leaving the finalization counter stranded above zero.
            with state_lock:
                for other_id in range(self.n_workers):
                    entry = worker_running[other_id]
                    if (
                        entry is not None
                        and entry[0] is _RUNNING
                        and entry[2] is task_set
                    ):
                        worker_running[other_id] = (_FINAL_MARKER, slot, task_set)
                        count += 1
        # The coordinator scans the whole state array once.
        self.overhead.charge_finalization(self.n_workers)
        if task_set.finalization_counter.add_and_fetch(count) == 0:
            return self._run_finalization(slot, task_set, now)
        return 0.0

    def _run_finalization(self, slot: int, task_set: TaskSet, now: float) -> float:
        """The last worker on a task set runs its finalization logic."""
        task_set.mark_finalized()
        group = task_set.resource_group
        cost = task_set.profile.finalize_seconds
        if cost > 0.0:
            self.overhead.charge_busy(cost)
            group.charge_cpu(cost)
        next_task_set = group.activate_next_task_set()
        if next_task_set is not None:
            self._slots.store_task_set(slot, next_task_set)
            self._push_updates(slot, new_group=False)
            return cost
        lock = self._admission_lock
        if lock is None:
            self.record_completion(group, now)
            self._slots.release(slot)
            while self.wait_queue:
                waiting = self.wait_queue.popleft()
                if now > waiting.deadline_time:
                    # Expired while waiting: fail it on the spot instead
                    # of wasting the freed slot on a guaranteed timeout.
                    waiting.fail(self.deadline_error(waiting))
                    self.record_completion(waiting, now)
                    continue
                waiting.admit_time = now
                self._install_group(waiting)
                break
            return cost
        # Concurrent variant: slot release and wait-queue pop must be
        # atomic with respect to admissions; the completion record (and
        # its on_complete callback) is emitted outside the lock so slow
        # result materialisation never blocks submitting threads.
        # (Expired waiters are recorded inside the lock — the same
        # precedent as cancel_group, which also records while holding it.)
        with lock:
            self._slots.release(slot)
            while self.wait_queue:
                waiting = self.wait_queue.popleft()
                if now > waiting.deadline_time:
                    waiting.fail(self.deadline_error(waiting))
                    self.record_completion(waiting, now)
                    continue
                waiting.admit_time = now
                self._install_group(waiting)
                break
        self.record_completion(group, now)
        return cost
