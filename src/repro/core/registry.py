"""The single registry of scheduler policies and system profiles.

Every component that turns a *name* into something runnable resolves it
here: :func:`make_scheduler` for the experiment drivers and the
:class:`~repro.server.AnalyticsServer`, :data:`OS_SYSTEMS` for the
OS-scheduled comparison systems of Figure 9 (previously duplicated
between the figure driver and the parallel sweep machinery).  There is
exactly one error path for an unknown name, and it always lists the
valid choices.

Registered entries are *factories* ``config -> scheduler`` rather than
classes, so composite configurations — ``"tuning"`` is the stride
scheduler with the §4 controller enabled — are ordinary entries instead
of special cases, and downstream code can add its own variants with
:func:`register_scheduler`.
"""

from __future__ import annotations

from dataclasses import replace
from typing import Callable, Dict, List, Type

from repro.core.fair import FairScheduler
from repro.core.fifo import FifoScheduler
from repro.core.lottery import LotteryScheduler
from repro.core.os_scheduler import MONETDB_LIKE, POSTGRES_LIKE, OsSystemProfile
from repro.core.scheduler_base import SchedulerBase, SchedulerConfig
from repro.core.stride import StrideScheduler
from repro.core.umbra_legacy import UmbraLegacyScheduler
from repro.errors import SchedulerError

SchedulerFactory = Callable[[SchedulerConfig], SchedulerBase]

#: OS-scheduled comparison systems (Figure 9), keyed by registry name.
#: The profiles model thread-per-query execution under a fair OS
#: scheduler; they are *not* task-based schedulers and are driven by
#: the fluid model in :mod:`repro.core.os_scheduler`.
OS_SYSTEMS: Dict[str, OsSystemProfile] = {
    "postgresql": POSTGRES_LIKE,
    "monetdb": MONETDB_LIKE,
}

_FACTORIES: Dict[str, SchedulerFactory] = {}


def register_scheduler(
    name: str, factory: SchedulerFactory, *, replace_existing: bool = False
) -> None:
    """Register a scheduler factory under ``name``.

    Raises :class:`~repro.errors.SchedulerError` when the name is taken
    (unless ``replace_existing``) or collides with an OS system profile.
    """
    if name in OS_SYSTEMS:
        raise SchedulerError(
            f"{name!r} names an OS system profile; scheduler names must "
            f"not shadow it"
        )
    if name in _FACTORIES and not replace_existing:
        raise SchedulerError(f"scheduler {name!r} already registered")
    _FACTORIES[name] = factory


def available_schedulers() -> List[str]:
    """Names accepted by :func:`make_scheduler`."""
    return sorted(_FACTORIES)


def make_scheduler(name: str, config: SchedulerConfig) -> SchedulerBase:
    """Instantiate a scheduler by its registry name.

    ``"tuning"`` is the paper's headline configuration: the stride
    scheduler with adaptive priorities *and* the §4 self-tuning
    controller.  ``"stride"`` is the same scheduler with decay but
    without tuning; ``"fair"`` fixes all priorities.
    """
    factory = _FACTORIES.get(name)
    if factory is None:
        raise SchedulerError(
            f"unknown scheduler {name!r}; choose from {available_schedulers()}"
        )
    return factory(config)


def _tuning_factory(config: SchedulerConfig) -> SchedulerBase:
    scheduler = StrideScheduler(replace(config, tuning_enabled=True))
    scheduler.name = "tuning"
    return scheduler


def _baseline_factory(cls: Type[SchedulerBase]) -> SchedulerFactory:
    # Baselines never run the tuning controller, whatever the config says.
    def factory(config: SchedulerConfig) -> SchedulerBase:
        return cls(replace(config, tuning_enabled=False))

    return factory


register_scheduler("stride", StrideScheduler)
register_scheduler("lottery", LotteryScheduler)
register_scheduler("tuning", _tuning_factory)
register_scheduler("fair", _baseline_factory(FairScheduler))
register_scheduler("fifo", _baseline_factory(FifoScheduler))
register_scheduler("umbra", _baseline_factory(UmbraLegacyScheduler))
