"""Factory for the scheduler policies evaluated in the paper."""

from __future__ import annotations

from dataclasses import replace
from typing import Dict, List, Type

from repro.core.fair import FairScheduler
from repro.core.fifo import FifoScheduler
from repro.core.lottery import LotteryScheduler
from repro.core.scheduler_base import SchedulerBase, SchedulerConfig
from repro.core.stride import StrideScheduler
from repro.core.umbra_legacy import UmbraLegacyScheduler
from repro.errors import SchedulerError

_REGISTRY: Dict[str, Type[SchedulerBase]] = {
    "stride": StrideScheduler,
    "fair": FairScheduler,
    "lottery": LotteryScheduler,
    "fifo": FifoScheduler,
    "umbra": UmbraLegacyScheduler,
}


def available_schedulers() -> List[str]:
    """Names accepted by :func:`make_scheduler` (plus ``"tuning"``)."""
    return sorted(_REGISTRY) + ["tuning"]


def make_scheduler(name: str, config: SchedulerConfig) -> SchedulerBase:
    """Instantiate a scheduler by its registry name.

    ``"tuning"`` is the paper's headline configuration: the stride
    scheduler with adaptive priorities *and* the §4 self-tuning
    controller.  ``"stride"`` is the same scheduler with decay but
    without tuning; ``"fair"`` fixes all priorities.
    """
    if name == "tuning":
        scheduler = StrideScheduler(replace(config, tuning_enabled=True))
        scheduler.name = "tuning"
        return scheduler
    cls = _REGISTRY.get(name)
    if cls is None:
        raise SchedulerError(
            f"unknown scheduler {name!r}; choose from {available_schedulers()}"
        )
    if name in ("stride", "lottery"):
        return cls(config)
    # Baselines never run the tuning controller.
    return cls(replace(config, tuning_enabled=False))
