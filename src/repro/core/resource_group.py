"""Resource groups: per-query containers of ordered task sets.

Section 2.2: all task sets of a query are wrapped into a *resource group*
which stores them in execution order — a task set may only start once all
previous ones finished (e.g. a join's build side before its probe side).
Resource groups are also the granularity at which CPU consumption is
tracked, which Section 3.2 exploits for adaptive query priorities.
"""

from __future__ import annotations

import threading
from typing import List, Optional

from repro.core.specs import QuerySpec
from repro.core.task import TaskSet
from repro.errors import SchedulerError


class ResourceGroup:
    """One admitted query: ordered task sets plus accounting state."""

    def __init__(self, query: QuerySpec, query_id: int, arrival_time: float) -> None:
        self.query = query
        self.query_id = query_id
        self.arrival_time = arrival_time
        #: Time at which the resource group entered the scheduler (left the
        #: wait queue).  Equals ``arrival_time`` unless the system was full.
        self.admit_time: Optional[float] = None
        self.completion_time: Optional[float] = None
        #: Total CPU seconds spent on this group across all workers.
        self.cpu_seconds = 0.0
        #: Whether the query was cancelled (see :meth:`cancel`).  Once
        #: set, task sets drain instead of executing and the group winds
        #: down through the normal finalization protocol.
        self.cancelled = False
        #: Whether the query failed (morsel exception, injected fault,
        #: missed deadline).  See :meth:`fail`.
        self.failed = False
        #: The exception that failed the query (in-process only) and its
        #: ``"ClassName: message"`` text (survives the process pipe).
        self.failure: Optional[BaseException] = None
        self.failure_text = ""
        #: Union of :attr:`cancelled` and :attr:`failed` — the flag the
        #: execution hot paths check: an aborted group's task sets drain
        #: instead of executing.
        self.aborted = False
        #: Absolute deadline (arrival + spec deadline), ``inf`` when the
        #: query has none.  One float compare per scheduling decision.
        deadline = query.deadline
        self.deadline_time = (
            arrival_time + deadline if deadline is not None else float("inf")
        )
        #: Work sharing (§3.2 fairness for folds): how many queries this
        #: group executes on behalf of, parsed from a ``fold:N`` tag the
        #: sharing layer stamps on fold leaders.  The stride scheduler
        #: multiplies the slot's user_scale by it, so a folded group
        #: receives the *sum* of its members' shares as scheduling
        #: passes — never as a larger morsel budget, which would change
        #: morsel boundaries and with them the engine's float
        #: accumulation order.  1 for unshared queries leaves every
        #: code path untouched.
        self.fold_size = 1
        for tag in query.tags:
            if tag.startswith("fold:"):
                try:
                    self.fold_size = max(1, int(tag[5:]))
                except ValueError:
                    pass
                break
        self._next_pipeline = 0
        self._active_task_set: Optional[TaskSet] = None
        self._finished_task_sets: List[TaskSet] = []
        # CPU-charge lock; None under sequential (simulated) execution,
        # installed by enable_concurrency() for the threaded backend.
        self._cpu_lock: Optional[threading.Lock] = None

    def enable_concurrency(self) -> None:
        """Make accounting thread-safe and give new task sets carve locks."""
        if self._cpu_lock is None:
            self._cpu_lock = threading.Lock()

    # ------------------------------------------------------------------
    # Task-set progression
    # ------------------------------------------------------------------
    @property
    def active_task_set(self) -> Optional[TaskSet]:
        """The currently executable task set, if any."""
        return self._active_task_set

    @property
    def started(self) -> bool:
        """Whether the first task set was activated."""
        return self._next_pipeline > 0

    @property
    def complete(self) -> bool:
        """Whether every task set of the query finished."""
        return (
            self._active_task_set is None
            and self._next_pipeline >= len(self.query.pipelines)
            and self.started
        )

    def activate_next_task_set(self) -> Optional[TaskSet]:
        """Activate the next pipeline's task set, or ``None`` when done.

        Raises if the previous task set has not been finalized — activating
        out of order would violate the pipeline dependency constraints that
        resource groups exist to enforce.
        """
        if self._active_task_set is not None and not self._active_task_set.finalized:
            raise SchedulerError(
                f"query {self.query.name!r}: next task set activated before "
                f"finalization of {self._active_task_set.profile.name!r}"
            )
        if self._active_task_set is not None:
            self._finished_task_sets.append(self._active_task_set)
            self._active_task_set = None
        if self._next_pipeline >= len(self.query.pipelines):
            return None
        profile = self.query.pipelines[self._next_pipeline]
        task_set = TaskSet(profile, self, self._next_pipeline)
        if self._cpu_lock is not None:
            task_set.enable_concurrency()
        self._next_pipeline += 1
        self._active_task_set = task_set
        if self.aborted:
            # An aborted (cancelled or failed) query's remaining
            # pipelines are drained at activation: workers observe an
            # exhausted task set and the finalization protocol steps
            # straight to the next one.
            task_set.cancel_remaining()
        return task_set

    def cancel(self) -> None:
        """Tag the query cancelled and drain its active task set.

        Idempotent, callable from any thread.  The active task set is
        drained here; future ones are drained at activation (see
        :meth:`activate_next_task_set`) — the publication order of the
        two writes makes the race benign: an activation that misses the
        flag is itself ordered before this method's drain.  Workers then
        observe exhaustion and the §2.3 protocol completes the query
        through its normal path, with zero further morsel work.
        """
        self.cancelled = True
        self.aborted = True
        task_set = self._active_task_set
        if task_set is not None:
            task_set.cancel_remaining()

    def fail(self, exc: BaseException) -> None:
        """Tag the query failed and drain its active task set.

        The failure analogue of :meth:`cancel`: same drain mechanics,
        same benign publication race, but the group records the causing
        exception so the latency record and ``QueryFailedError`` can
        carry it.  The first failure wins; later ones are ignored.
        """
        if not self.failed:
            self.failed = True
            self.failure = exc
            self.failure_text = f"{type(exc).__name__}: {exc}"
        self.aborted = True
        task_set = self._active_task_set
        if task_set is not None:
            task_set.cancel_remaining()

    @property
    def finished_task_sets(self) -> List[TaskSet]:
        """Finalized task sets in completion order."""
        return self._finished_task_sets

    # ------------------------------------------------------------------
    # Accounting
    # ------------------------------------------------------------------
    def charge_cpu(self, seconds: float) -> None:
        """Account CPU time consumed on behalf of this query."""
        if seconds < 0.0:
            raise SchedulerError("cannot charge negative CPU time")
        lock = self._cpu_lock
        if lock is None:
            self.cpu_seconds += seconds
        else:
            with lock:
                self.cpu_seconds += seconds

    def mark_complete(self, now: float) -> None:
        """Record the completion timestamp (once)."""
        if self.completion_time is not None:
            raise SchedulerError(
                f"query {self.query.name!r} completed twice"
            )
        self.completion_time = now

    @property
    def latency(self) -> Optional[float]:
        """End-to-end latency (arrival to completion), if complete."""
        if self.completion_time is None:
            return None
        return self.completion_time - self.arrival_time

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return (
            f"ResourceGroup(q={self.query.name!r}, id={self.query_id}, "
            f"pipeline={self._next_pipeline}/{len(self.query.pipelines)})"
        )
