"""The paper's primary contribution: task-based query scheduling.

This package contains the scheduler designs evaluated in the paper:

* :mod:`repro.core.stride` — the lock-free, self-tuning stride scheduler
  (Sections 2-4), the headline system;
* :mod:`repro.core.lottery` — the lottery-scheduling variant mentioned in
  Section 2.3;
* :mod:`repro.core.fair` — stride scheduling with fixed priorities
  (the "Fair" baseline of Section 5.2);
* :mod:`repro.core.fifo` — the FIFO baseline of Section 5.2;
* :mod:`repro.core.umbra_legacy` — Umbra's original scheduler (uniform
  worker balancing over active task sets);
* :mod:`repro.core.os_scheduler` — OS-delegating system models
  (PostgreSQL-like and MonetDB-like) used in Section 5.4.

Shared infrastructure lives in :mod:`repro.core.specs` (query/pipeline
execution specs), :mod:`repro.core.task` (task sets and morsels),
:mod:`repro.core.resource_group`, :mod:`repro.core.slots` (the global
slot array), :mod:`repro.core.worker` (thread-local scheduling state),
:mod:`repro.core.morsel_exec` (the adaptive morsel state machine) and
:mod:`repro.core.decay` (adaptive query priorities).
"""

from repro.core.decay import DecayParameters, PriorityDecay
from repro.core.fair import FairScheduler
from repro.core.fifo import FifoScheduler
from repro.core.lottery import LotteryScheduler
from repro.core.morsel_exec import MorselExecutor, PipelinePhase
from repro.core.os_scheduler import (
    MONETDB_LIKE,
    POSTGRES_LIKE,
    OsSchedulerModel,
    OsSystemProfile,
)
from repro.core.registry import (
    OS_SYSTEMS,
    available_schedulers,
    make_scheduler,
    register_scheduler,
)
from repro.core.resource_group import ResourceGroup
from repro.core.scheduler_base import SchedulerBase, SchedulerConfig, TaskDecision
from repro.core.slots import GlobalSlotArray
from repro.core.specs import PipelineSpec, QuerySpec
from repro.core.stride import StrideScheduler
from repro.core.task import TaskSet
from repro.core.umbra_legacy import UmbraLegacyScheduler

__all__ = [
    "DecayParameters",
    "FairScheduler",
    "FifoScheduler",
    "GlobalSlotArray",
    "LotteryScheduler",
    "MONETDB_LIKE",
    "MorselExecutor",
    "OS_SYSTEMS",
    "OsSchedulerModel",
    "OsSystemProfile",
    "POSTGRES_LIKE",
    "PipelinePhase",
    "PipelineSpec",
    "PriorityDecay",
    "QuerySpec",
    "ResourceGroup",
    "SchedulerBase",
    "SchedulerConfig",
    "StrideScheduler",
    "TaskDecision",
    "TaskSet",
    "UmbraLegacyScheduler",
    "available_schedulers",
    "make_scheduler",
    "register_scheduler",
]
