"""Adaptive query priorities (§3.2).

The priority of a resource group decays with the CPU time it has
received, similar to multi-level feedback queues:

.. math::

    p_{i+1} = \\begin{cases}
        p_i & i < d_{start} \\\\
        \\max(p_{min}, \\lambda \\cdot p_i) & i \\ge d_{start}
    \\end{cases}

where ``i`` counts fixed CPU quanta of length ``t`` (set to the target
task duration ``t_max``, so decay usually happens after every scheduled
task).  The lower bound ``p_min > 0`` guarantees queries never starve.

Custom priorities (end of §3.2) are supported two ways: a query can pin a
*static* priority that never decays, and a *user priority* scales both
``p_0`` and ``p_min`` multiplicatively.
"""

from __future__ import annotations

from dataclasses import dataclass, replace

from repro.errors import TuningError

#: Fixed initial priority (§4, "Optimization Problem").
DEFAULT_P0 = 10_000.0
#: Fixed lower priority bound ensuring progress (§4).
DEFAULT_PMIN = 100.0


@dataclass(frozen=True)
class DecayParameters:
    """The tunable decay hyperparameters ``(lambda, d_start)``.

    ``decay`` is the paper's λ ∈ [0, 1]; ``d_start`` ≥ 0 is the number of
    quanta a query executes at full priority before decay begins.  ``p0``
    and ``p_min`` are fixed by the paper to keep progress guarantees but
    remain configurable for experimentation.
    """

    decay: float = 0.9
    d_start: int = 7
    p0: float = DEFAULT_P0
    p_min: float = DEFAULT_PMIN
    quantum: float = 0.002

    def __post_init__(self) -> None:
        if not 0.0 <= self.decay <= 1.0:
            raise TuningError(f"decay must be in [0, 1], got {self.decay}")
        if self.d_start < 0:
            raise TuningError(f"d_start must be >= 0, got {self.d_start}")
        if self.p_min <= 0.0:
            raise TuningError("p_min must be positive (starvation guard)")
        if self.p0 < self.p_min:
            raise TuningError("p0 must be at least p_min")
        if self.quantum <= 0.0:
            raise TuningError("decay quantum must be positive")

    def with_values(self, decay: float, d_start: int) -> "DecayParameters":
        """Return a copy with new tunables (p0/p_min/quantum unchanged)."""
        return replace(self, decay=decay, d_start=int(d_start))

    def priority_after(self, quanta: int, scale: float = 1.0) -> float:
        """Closed-form priority after ``quanta`` CPU quanta.

        ``scale`` applies the user-priority scaling of §3.2 to both the
        initial priority and the floor.
        """
        p0 = self.p0 * scale
        p_min = self.p_min * scale
        if quanta <= self.d_start:
            return p0
        decayed = p0 * (self.decay ** (quanta - self.d_start))
        return max(p_min, decayed)


class PriorityDecay:
    """Mutable per-(worker, resource-group) decay state.

    Each worker tracks decay locally (thread-local priorities, §2.3), so
    this object is cheap: a priority, a quantum counter, and an
    accumulator of CPU time since the last decay step.
    """

    __slots__ = ("_params", "_scale", "_static", "priority", "_quanta", "_accum")

    def __init__(
        self,
        params: DecayParameters,
        user_scale: float = 1.0,
        static_priority: float = None,
    ) -> None:
        self._params = params
        self._scale = user_scale
        self._static = static_priority
        self.priority = (
            static_priority if static_priority is not None else params.p0 * user_scale
        )
        self._quanta = 0
        self._accum = 0.0

    @property
    def quanta(self) -> int:
        """Number of completed decay quanta."""
        return self._quanta

    def charge(self, cpu_seconds: float) -> None:
        """Account CPU time; apply decay steps for each completed quantum.

        Runs once per completed scheduler task, so the per-quantum
        stepping of :meth:`_step` is unrolled into local variables here.
        The accumulator is advanced by *repeated subtraction* on purpose:
        replacing it with a division would change the floating-point
        rounding and break trace reproducibility.
        """
        if cpu_seconds < 0.0:
            return
        accum = self._accum + cpu_seconds
        params = self._params
        quantum = params.quantum
        if accum < quantum:
            self._accum = accum
            return
        quanta = self._quanta
        if self._static is not None:
            # Pinned static priority never decays (§3.2, custom (1)).
            while accum >= quantum:
                accum -= quantum
                quanta += 1
        else:
            d_start = params.d_start
            decay = params.decay
            floor = params.p_min * self._scale
            priority = self.priority
            while accum >= quantum:
                accum -= quantum
                quanta += 1
                if quanta > d_start:
                    decayed = decay * priority
                    priority = decayed if decayed > floor else floor
            self.priority = priority
        self._accum = accum
        self._quanta = quanta

    def _step(self) -> None:
        """Reference single-quantum step (kept for tests; see charge())."""
        self._quanta += 1
        if self._static is not None:
            return  # pinned static priority never decays (§3.2, custom (1))
        if self._quanta <= self._params.d_start:
            return
        floor = self._params.p_min * self._scale
        self.priority = max(floor, self._params.decay * self.priority)

    def update_parameters(self, params: DecayParameters) -> None:
        """Adopt newly tuned parameters without resetting progress.

        The priority is recomputed from the closed form so that a tuning
        run taking effect mid-query behaves as if the new parameters had
        been active from the start — this keeps decay consistent across
        workers that adopt the update at slightly different times.
        """
        self._params = params
        if self._static is None:
            self.priority = params.priority_after(self._quanta, self._scale)
