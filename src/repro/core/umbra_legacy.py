"""Umbra's original scheduler (the "Umbra" baseline of §5.2/§5.4).

The paper describes it as follows: "It tries to minimize workers
switching between task sets while remaining as fair as possible.  It
maintains a queue of the active task sets and balances worker threads
uniformly across them.  If there are n active task sets and w workers,
every task set will obtain either floor or ceil of w/n workers."

The crucial weakness the evaluation exposes: once there are more active
queries than workers, some task sets receive *no* workers at all until
the assignment changes, which produces the extremely heavy latency tail
of Figures 8 and 9.
"""

from __future__ import annotations

from typing import List, Optional

from repro.core.resource_group import ResourceGroup
from repro.core.scheduler_base import SchedulerBase, SchedulerConfig, TaskDecision
from repro.core.task import TaskSet
from repro.errors import SchedulerError


class UmbraLegacyScheduler(SchedulerBase):
    """Uniform worker balancing over the queue of active task sets."""

    name = "umbra"

    def __init__(self, config: SchedulerConfig) -> None:
        super().__init__(config)
        #: Active task sets in activation order (the paper's queue).
        self._active: List[TaskSet] = []
        #: Current worker -> task-set assignment (index into _active).
        self._assignment: List[Optional[TaskSet]] = [None] * config.n_workers

    # ------------------------------------------------------------------
    # Admission
    # ------------------------------------------------------------------
    def admit(self, group: ResourceGroup, now: float) -> None:
        self.admitted_count += 1
        group.admit_time = now
        task_set = group.activate_next_task_set()
        if task_set is None:
            raise SchedulerError(f"query {group.query.name!r} has no task sets")
        self._active.append(task_set)
        self._rebalance()

    # ------------------------------------------------------------------
    # Uniform balancing
    # ------------------------------------------------------------------
    def _rebalance(self) -> None:
        """Distribute workers across active task sets (floor/ceil shares).

        Worker ``i`` serves task set ``i * n // w`` when ``n <= w`` so
        each task set gets an equal share.  With more task sets than
        workers, only the first ``w`` task sets in queue order obtain a
        worker; later arrivals receive *no CPU time* until a slot at the
        head frees up — the extended starvation the paper calls out
        ("once there are more active queries than there are workers,
        some requests will receive no CPU time over extended periods").
        """
        n_active = len(self._active)
        n_workers = self.n_workers
        for worker_id in range(n_workers):
            if n_active == 0:
                self._assignment[worker_id] = None
            elif n_active <= n_workers:
                self._assignment[worker_id] = self._active[
                    worker_id * n_active // n_workers
                ]
            else:
                self._assignment[worker_id] = self._active[worker_id]
        self.wake_all()

    # ------------------------------------------------------------------
    # Decision loop
    # ------------------------------------------------------------------
    def worker_decide(self, worker_id: int, now: float) -> Optional[TaskDecision]:
        self.mark_busy(worker_id)
        while True:
            task_set = self._assignment[worker_id]
            if task_set is None:
                self.mark_idle(worker_id)
                return None
            if task_set.finalized or task_set not in self._active:
                # Stale assignment; the rebalance raced with completion.
                self._rebalance()
                task_set = self._assignment[worker_id]
                if task_set is None or task_set.finalized:
                    self.mark_idle(worker_id)
                    return None
            if task_set.exhausted:
                if task_set.pinned_workers == 0:
                    extra = self._advance(task_set, now)
                    if extra > 0.0:
                        return TaskDecision(
                            worker_id=worker_id,
                            kind="finalize",
                            duration=extra,
                            group=task_set.resource_group,
                        )
                    continue
                self.mark_idle(worker_id)
                return None
            task_set.pin()
            executed = self.executor.run_task(task_set, self.env)
            if executed.morsel_count == 0:
                task_set.unpin()
                continue
            self.record_task_trace(worker_id, now, executed)
            self.tasks_executed += 1
            return TaskDecision(
                worker_id=worker_id,
                kind="task",
                duration=executed.duration,
                executed=executed,
                group=task_set.resource_group,
            )

    def worker_finish(self, worker_id: int, now: float, decision: TaskDecision) -> float:
        if decision.kind != "task":
            return 0.0
        executed = decision.executed
        if executed is None:
            raise SchedulerError("task decision without executed task")
        task_set = executed.task_set
        task_set.unpin()
        self.overhead.charge_busy(executed.duration)
        task_set.resource_group.charge_cpu(executed.duration)
        if task_set.exhausted and task_set.pinned_workers == 0 and not task_set.finalized:
            return self._advance(task_set, now)
        return 0.0

    # ------------------------------------------------------------------
    # Task-set progression
    # ------------------------------------------------------------------
    def _advance(self, task_set: TaskSet, now: float) -> float:
        """Finalize a drained task set; activate the query's next one."""
        task_set.mark_finalized()
        group = task_set.resource_group
        cost = task_set.profile.finalize_seconds
        if cost > 0.0:
            self.overhead.charge_busy(cost)
            group.charge_cpu(cost)
        index = self._active.index(task_set)
        next_task_set = group.activate_next_task_set()
        if next_task_set is not None:
            # Keep the queue position so workers stick to their query.
            self._active[index] = next_task_set
        else:
            del self._active[index]
            self.record_completion(group, now)
        self._rebalance()
        return cost
