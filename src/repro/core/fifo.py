"""The FIFO baseline of §5.2.

Queries are executed strictly in arrival order: all workers cooperate on
the pipelines of the oldest unfinished query before the next one starts.
The evaluation shows this is "extremely undesirable for mixed analytical
workloads" — at high load the latency of short queries is dominated by
their wait time in the FIFO queue, which is exactly the behaviour this
implementation exhibits.
"""

from __future__ import annotations

from collections import deque
from typing import Deque, Optional

from repro.core.resource_group import ResourceGroup
from repro.core.scheduler_base import SchedulerBase, SchedulerConfig, TaskDecision
from repro.core.task import TaskSet
from repro.errors import SchedulerError


class FifoScheduler(SchedulerBase):
    """First-in-first-out query execution with full intra-query fan-out."""

    name = "fifo"

    def __init__(self, config: SchedulerConfig) -> None:
        super().__init__(config)
        self._queue: Deque[ResourceGroup] = deque()

    # ------------------------------------------------------------------
    # Admission
    # ------------------------------------------------------------------
    def admit(self, group: ResourceGroup, now: float) -> None:
        self.admitted_count += 1
        group.admit_time = now
        self._queue.append(group)
        self.wake_all()

    # ------------------------------------------------------------------
    # Decision loop
    # ------------------------------------------------------------------
    def _front_task_set(self) -> Optional[TaskSet]:
        """The active task set of the oldest query, activating lazily."""
        if not self._queue:
            return None
        group = self._queue[0]
        task_set = group.active_task_set
        if task_set is None and not group.started:
            task_set = group.activate_next_task_set()
        return task_set

    def worker_decide(self, worker_id: int, now: float) -> Optional[TaskDecision]:
        self.mark_busy(worker_id)
        while True:
            task_set = self._front_task_set()
            if task_set is None:
                self.mark_idle(worker_id)
                return None
            group = task_set.resource_group
            if now > group.deadline_time and not group.aborted:
                # Deadline expiry: fail through the abort path; the
                # drained task set is then advanced by the exhausted
                # branch below.
                self.fail_group(group, self.deadline_error(group), now)
                continue
            if task_set.exhausted:
                if task_set.pinned_workers == 0:
                    extra = self._advance(task_set, now)
                    if extra > 0.0:
                        return TaskDecision(
                            worker_id=worker_id,
                            kind="finalize",
                            duration=extra,
                            group=task_set.resource_group,
                        )
                    continue
                # Other workers still run the last tasks; park until the
                # final one advances the queue.
                self.mark_idle(worker_id)
                return None
            task_set.pin()
            try:
                executed = self.executor.run_task(task_set, self.env)
            except Exception as exc:
                # Per-query failure isolation: fail only this query and
                # let the exhausted branch advance the queue past it.
                task_set.unpin()
                self.fail_group(group, exc, now)
                continue
            if executed.morsel_count == 0:
                task_set.unpin()
                continue
            self.record_task_trace(worker_id, now, executed)
            self.tasks_executed += 1
            return TaskDecision(
                worker_id=worker_id,
                kind="task",
                duration=executed.duration,
                executed=executed,
                group=task_set.resource_group,
            )

    def worker_finish(self, worker_id: int, now: float, decision: TaskDecision) -> float:
        if decision.kind != "task":
            return 0.0
        executed = decision.executed
        if executed is None:
            raise SchedulerError("task decision without executed task")
        task_set = executed.task_set
        task_set.unpin()
        self.overhead.charge_busy(executed.duration)
        task_set.resource_group.charge_cpu(executed.duration)
        if task_set.exhausted and task_set.pinned_workers == 0 and not task_set.finalized:
            return self._advance(task_set, now)
        return 0.0

    # ------------------------------------------------------------------
    # Queue progression
    # ------------------------------------------------------------------
    def _advance(self, task_set: TaskSet, now: float) -> float:
        """Finalize the drained task set and move the queue forward."""
        task_set.mark_finalized()
        group = task_set.resource_group
        cost = task_set.profile.finalize_seconds
        if cost > 0.0:
            self.overhead.charge_busy(cost)
            group.charge_cpu(cost)
        next_task_set = group.activate_next_task_set()
        if next_task_set is None:
            if not self._queue or self._queue[0] is not group:
                raise SchedulerError("completed query is not the queue head")
            self._queue.popleft()
            self.record_completion(group, now)
        self.wake_all()
        return cost
