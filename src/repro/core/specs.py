"""Execution specifications: what a query looks like to the scheduler.

A :class:`QuerySpec` describes one query as an ordered list of
:class:`PipelineSpec` objects — exactly the structure of Figure 2 in the
paper: each executable pipeline becomes one task set, and the task sets of
a query are executed in order inside a resource group.

The specs are *descriptions*, independent of how they are executed.  The
discrete-event simulator turns the per-pipeline throughput into morsel
durations (plus noise and contention); the mini engine in
:mod:`repro.engine` can calibrate these throughputs from real executions.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional, Tuple

from repro.errors import WorkloadError


@dataclass(frozen=True)
class PipelineSpec:
    """One executable pipeline of a query.

    Parameters
    ----------
    name:
        Human-readable label, e.g. ``"scan-lineitem"``.
    tuples:
        Total number of input tuples the pipeline processes.
    tuples_per_second:
        Single-worker processing rate.  The generated code for different
        pipelines varies a lot in per-tuple cost (Section 3.1: ">30x"),
        which this rate captures.
    parallel_efficiency:
        Per-extra-worker slowdown factor gamma: a morsel executed while k
        workers are pinned to the pipeline takes ``1 + gamma * (k - 1)``
        times longer.  Models the imperfect pipeline scalability that
        motivates the high-load fan-out restriction in Section 2.3.
    supports_adaptive:
        Whether the pipeline supports adaptive morsel sizes.  Pipelines
        that do not are executed with ``fixed_morsel_tuples``-sized
        morsels, looped until the target duration is exhausted
        (the "Optimizations" paragraph of Section 3.1).
    fixed_morsel_tuples:
        Morsel size used when adaptive sizing is off.
    finalize_seconds:
        Cost of the task-set finalization step (e.g. merging partial
        aggregates), paid by the single finalizing worker.
    """

    name: str
    tuples: int
    tuples_per_second: float
    parallel_efficiency: float = 0.02
    supports_adaptive: bool = True
    fixed_morsel_tuples: int = 60_000
    finalize_seconds: float = 0.0

    def __post_init__(self) -> None:
        if self.tuples < 0:
            raise WorkloadError(f"pipeline {self.name!r}: negative tuple count")
        if self.tuples_per_second <= 0.0:
            raise WorkloadError(f"pipeline {self.name!r}: rate must be positive")
        if self.fixed_morsel_tuples <= 0:
            raise WorkloadError(f"pipeline {self.name!r}: bad fixed morsel size")
        if self.parallel_efficiency < 0.0:
            raise WorkloadError(f"pipeline {self.name!r}: negative efficiency")

    @property
    def single_thread_seconds(self) -> float:
        """Uncontended single-worker execution time of the whole pipeline."""
        return self.tuples / self.tuples_per_second + self.finalize_seconds

    def scaled(self, factor: float) -> "PipelineSpec":
        """Return a copy with the tuple count scaled by ``factor``.

        Used to derive SF30 pipelines from SF3 profiles: TPC-H data sizes
        grow linearly with the scale factor, while per-tuple costs stay
        roughly constant.
        """
        return PipelineSpec(
            name=self.name,
            tuples=max(1, int(round(self.tuples * factor))),
            tuples_per_second=self.tuples_per_second,
            parallel_efficiency=self.parallel_efficiency,
            supports_adaptive=self.supports_adaptive,
            fixed_morsel_tuples=self.fixed_morsel_tuples,
            finalize_seconds=self.finalize_seconds * factor,
        )


@dataclass(frozen=True)
class QuerySpec:
    """A query as seen by the scheduler: ordered pipelines plus metadata.

    ``compile_seconds`` models Umbra's code generation, which is not
    parallelised and therefore dominates very short queries in the
    end-to-end experiments (Section 5.4).  The within-Umbra experiments
    (Section 5.2) pre-compile queries, i.e. set it to zero.
    """

    name: str
    scale_factor: float
    pipelines: Tuple[PipelineSpec, ...]
    compile_seconds: float = 0.0
    user_priority: Optional[float] = None
    static_priority: Optional[float] = None
    tags: Tuple[str, ...] = field(default_factory=tuple)
    #: Optional latency deadline in seconds, measured from arrival.  A
    #: query that exceeds it is failed with ``QueryTimeoutError`` through
    #: the scheduler's abort path (virtual or wall time alike).
    deadline: Optional[float] = None

    def __post_init__(self) -> None:
        if not self.pipelines:
            raise WorkloadError(f"query {self.name!r} has no pipelines")
        if self.compile_seconds < 0.0:
            raise WorkloadError(f"query {self.name!r}: negative compile time")
        if self.deadline is not None and self.deadline <= 0.0:
            raise WorkloadError(f"query {self.name!r}: deadline must be positive")

    @property
    def total_work_seconds(self) -> float:
        """Single-threaded CPU work of the whole query (excl. compilation)."""
        return sum(p.single_thread_seconds for p in self.pipelines)

    @property
    def single_thread_seconds(self) -> float:
        """Single-threaded end-to-end latency including compilation."""
        return self.total_work_seconds + self.compile_seconds

    def isolated_latency(self, n_workers: int, t_max: float = 0.002) -> float:
        """Analytic estimate of the isolated (all-cores) latency.

        Each pipeline runs at full fan-out; perfectly parallel except that
        no pipeline can finish faster than one target task duration.  This
        is used as a fallback; experiments measure the real isolated
        latency by running the query alone through the simulator.
        """
        if n_workers <= 0:
            raise WorkloadError("need at least one worker")
        total = self.compile_seconds
        for pipeline in self.pipelines:
            work = pipeline.tuples / pipeline.tuples_per_second
            contention = 1.0 + pipeline.parallel_efficiency * (n_workers - 1)
            total += max(work * contention / n_workers, min(work, t_max))
            total += pipeline.finalize_seconds
        return total

    def at_scale(self, scale_factor: float) -> "QuerySpec":
        """Return the same query shape at a different TPC-H scale factor."""
        if scale_factor <= 0.0:
            raise WorkloadError("scale factor must be positive")
        factor = scale_factor / self.scale_factor
        return QuerySpec(
            name=self.name,
            scale_factor=scale_factor,
            pipelines=tuple(p.scaled(factor) for p in self.pipelines),
            compile_seconds=self.compile_seconds,
            user_priority=self.user_priority,
            static_priority=self.static_priority,
            tags=self.tags,
            deadline=self.deadline,
        )
