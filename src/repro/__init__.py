"""repro — a reproduction of "Self-Tuning Query Scheduling for Analytical
Workloads" (Wagner, Kohn, Neumann; SIGMOD 2021).

The package implements the paper's lock-free, self-tuning stride
scheduler together with every substrate its evaluation depends on:

* :mod:`repro.core` — the schedulers (stride/tuning, lottery, fair,
  FIFO, legacy Umbra) plus task sets, resource groups, the global slot
  array and adaptive morsel execution;
* :mod:`repro.tuning` — workload tracking, self-simulation and the
  directional-search parameter optimizer;
* :mod:`repro.simcore` — the discrete-event simulator standing in for a
  multicore machine;
* :mod:`repro.runtime` — pluggable execution backends: the virtual-time
  :class:`~repro.runtime.SimulatedBackend` (deterministic, fast) and the
  :class:`~repro.runtime.ThreadedBackend`, which drives the same
  scheduler code from real OS threads so the atomics and the §2.3
  finalization protocol run under genuine concurrency;
* :mod:`repro.engine` — a small real columnar engine used to calibrate
  pipeline cost models and for runnable examples;
* :mod:`repro.workloads` — TPC-H-shaped query profiles, mixes, Poisson
  arrivals and load calibration;
* :mod:`repro.metrics` — latency, slowdown and overhead metrics;
* :mod:`repro.experiments` — one driver per figure of the paper.

Quickstart::

    from repro import Simulator, SchedulerConfig, make_scheduler
    from repro import tpch_mix, generate_workload
    from repro.simcore import RngFactory

    mix = tpch_mix()
    rng = RngFactory(seed=42).stream("workload")
    workload = generate_workload(mix, rate=20.0, duration=10.0, rng=rng)
    scheduler = make_scheduler("tuning", SchedulerConfig(n_workers=20))
    result = Simulator(scheduler, workload, seed=42).run()
    print(result.records.records[:3])
"""

from repro._version import __version__
from repro.core import (
    OS_SYSTEMS,
    DecayParameters,
    FairScheduler,
    FifoScheduler,
    LotteryScheduler,
    MONETDB_LIKE,
    OsSchedulerModel,
    OsSystemProfile,
    POSTGRES_LIKE,
    PipelineSpec,
    QuerySpec,
    SchedulerBase,
    SchedulerConfig,
    StrideScheduler,
    UmbraLegacyScheduler,
    available_schedulers,
    make_scheduler,
    register_scheduler,
)
from repro.cluster import ClusterRouter
from repro.errors import AdmissionError, ReproError, TenantQuotaError
from repro.metrics import slowdown_summary
from repro.runtime import (
    BackendState,
    ExecutionBackend,
    SimulatedBackend,
    ThreadedBackend,
    VirtualClock,
    WallClock,
)
from repro.server import AnalyticsServer
from repro.simcore import RngFactory, SimulationResult, Simulator
from repro.workloads import generate_workload, tpch_mix, tpch_query, tpch_suite

__all__ = [
    "AdmissionError",
    "AnalyticsServer",
    "BackendState",
    "ClusterRouter",
    "DecayParameters",
    "ExecutionBackend",
    "FairScheduler",
    "FifoScheduler",
    "LotteryScheduler",
    "MONETDB_LIKE",
    "OS_SYSTEMS",
    "OsSchedulerModel",
    "OsSystemProfile",
    "POSTGRES_LIKE",
    "PipelineSpec",
    "QuerySpec",
    "ReproError",
    "RngFactory",
    "SchedulerBase",
    "SchedulerConfig",
    "SimulatedBackend",
    "SimulationResult",
    "Simulator",
    "StrideScheduler",
    "TenantQuotaError",
    "ThreadedBackend",
    "UmbraLegacyScheduler",
    "VirtualClock",
    "WallClock",
    "__version__",
    "available_schedulers",
    "generate_workload",
    "make_scheduler",
    "register_scheduler",
    "slowdown_summary",
    "tpch_mix",
    "tpch_query",
    "tpch_suite",
]
