"""Shard placement policies: round-robin and predictive least-delay.

The router must answer one question per submission: *which shard should
run this query?*  Two answers are provided:

* :class:`RoundRobinPlacement` — the classic baseline: cycle through
  the active shards, ignoring load.  Balances query *counts*, which is
  exactly wrong for analytical workloads where one Q18 costs two orders
  of magnitude more than one Q6.
* :class:`PredictivePlacement` — a lightweight concurrent-query latency
  predictor in the spirit of learned query-performance prediction
  (Wu et al., arXiv 2501.16256), stripped to what routing actually
  needs.  Per shard it tracks a *busy-until* horizon for every
  scheduling weight class (the §3.2 user-priority weights the stride
  scheduler shares by): submitting a query of weight ``w`` and
  estimated work ``e`` at time ``t`` pushes that class's horizon to
  ``max(horizon, t) + e / n_workers``.  The predicted latency of a
  candidate on shard ``s`` is its own work estimate plus the remaining
  backlog of every class, discounted by how much that class can
  actually delay it under weighted sharing (a weight-1 bulk backlog
  delays a weight-4 dashboard query at most 1/4 as much as peer
  dashboard work does)::

      predicted(s, q) = work(q)
                      + sum_w  max(0, horizon[s][w] - t) * min(1, w / w_q)

  The horizon formulation makes backlog *decay with virtual time* — a
  monster query routed at t=0 stops repelling traffic once the model
  says it has finished — which a plain in-flight-work counter gets
  wrong.  ``work(q)`` starts from the query's cost-model estimate
  (:attr:`QuerySpec.total_work_seconds`) and is calibrated online from
  the shards' own :class:`LatencyRecord` streams (an exponential moving
  average of observed CPU-seconds per query name), so systematic
  cost-model bias washes out after the first drain — the model-mode
  profiles are near-exact, but engine-mode estimates need it.

Both policies are deterministic: round-robin state is a single cursor,
the predictor breaks ties toward the lowest shard index and iterates
weight classes in sorted order, and calibration updates happen in the
router's settlement order (ticket registration order), never in hash
order.
"""

from __future__ import annotations

import abc
from typing import Dict, List, Optional, Sequence, Union

from repro.core.specs import QuerySpec
from repro.errors import ReproError
from repro.metrics.latency import LatencyRecord


class PlacementPolicy(abc.ABC):
    """Chooses a shard for each submission; observes completions.

    ``at`` is the query's arrival time in the epoch's virtual clock
    (0.0 when unspecified) and ``weight`` its §3.2 scheduling weight —
    the router resolves both before consulting the policy.
    """

    #: The ``placement=...`` string this policy implements.
    name: str = "abstract"

    def bind(self, n_shards: int, n_workers: int) -> None:
        """Called once by the router before any placement decision."""
        self.n_shards = n_shards
        self.n_workers = n_workers

    @abc.abstractmethod
    def choose(
        self,
        spec: QuerySpec,
        active: Sequence[int],
        at: float = 0.0,
        weight: float = 1.0,
    ) -> int:
        """Pick a shard index from ``active`` for ``spec``."""

    def on_submit(
        self,
        shard: int,
        spec: QuerySpec,
        at: float = 0.0,
        weight: float = 1.0,
    ) -> float:
        """Account a routed query; returns the *charge* to settle later.

        The router stores the returned charge with the ticket and hands
        it back to :meth:`on_complete` when the query finishes, so a
        policy can reconcile its prediction against the outcome.
        """
        return 0.0

    def on_complete(
        self, shard: int, record: LatencyRecord, charge: float
    ) -> None:
        """Settle a completed (or failed/cancelled) routed query."""

    def transfer(
        self,
        source: int,
        target: int,
        spec: QuerySpec,
        charge: float,
        at: float = 0.0,
        weight: float = 1.0,
    ) -> float:
        """Move a routed query's accounting across shards (handoff).

        Returns the new charge to settle when the query completes on
        ``target``.
        """
        return charge

    def epoch_reset(self) -> None:
        """Called after a cluster-wide drain: all backlog has run dry.

        Virtual-time backends restart each drain epoch at clock zero,
        so any time-based backlog state must reset with them.
        """

    def snapshot(self) -> dict:
        """Introspection: the policy's current internal state."""
        return {}


class RoundRobinPlacement(PlacementPolicy):
    """Cycle through the active shards, ignoring load entirely."""

    name = "round-robin"

    def __init__(self) -> None:
        self._cursor = 0

    def choose(
        self,
        spec: QuerySpec,
        active: Sequence[int],
        at: float = 0.0,
        weight: float = 1.0,
    ) -> int:
        if not active:
            raise ReproError("no active shards to place on")
        shard = active[self._cursor % len(active)]
        self._cursor += 1
        return shard

    def snapshot(self) -> dict:
        return {"cursor": self._cursor}


class PredictivePlacement(PlacementPolicy):
    """Route to the shard with the smallest predicted completion time.

    See the module docstring for the model.  State per shard is one
    small ``{weight: busy_until}`` dict — constant memory in the number
    of in-flight queries, linear in the number of distinct SLA weights
    (two, for the default latency/bulk pair).
    """

    name = "predictive"

    def __init__(
        self, alpha: float = 0.3, sharing_affinity: float = 0.0
    ) -> None:
        if not 0.0 < alpha <= 1.0:
            raise ReproError("alpha must be in (0, 1]")
        if not 0.0 <= sharing_affinity < 1.0:
            raise ReproError("sharing_affinity must be in [0, 1)")
        self.alpha = alpha
        #: Work-sharing affinity: how strongly to prefer a shard that
        #: already has this query's leading plan fragment in flight
        #: (its scan can be folded there instead of run twice).  The
        #: candidate's own work estimate is discounted by this factor
        #: when the fragment is live on the shard; 0.0 (the default)
        #: tracks nothing and is bit-identical to the pre-sharing
        #: predictor.
        self.sharing_affinity = sharing_affinity
        #: Calibrated work estimate per query name (EMA of cpu_seconds).
        self._work: Dict[str, float] = {}
        #: Per shard: scheduling weight -> predicted busy-until time.
        self._busy: Optional[List[Dict[float, float]]] = None
        #: Per shard: fragment fingerprint -> predicted busy-until time
        #: (only maintained when ``sharing_affinity > 0``).
        self._fragments: Optional[List[Dict[str, float]]] = None

    def bind(self, n_shards: int, n_workers: int) -> None:
        super().bind(n_shards, n_workers)
        self._busy = [dict() for _ in range(n_shards)]
        if self.sharing_affinity > 0.0:
            self._fragments = [dict() for _ in range(n_shards)]

    def set_alpha(self, alpha: float) -> None:
        """Retune the calibration EMA step (``cluster.placement_alpha``).

        Takes effect on the next completion settlement; the calibrated
        estimates accumulated so far are kept.
        """
        if not 0.0 < alpha <= 1.0:
            raise ReproError("alpha must be in (0, 1]")
        self.alpha = float(alpha)

    def set_sharing_affinity(self, affinity: float) -> None:
        """Retune the fragment-affinity discount mid-run.

        Turning affinity on after :meth:`bind` initializes the
        fragment-horizon tracking it needs; turning it off keeps the
        (now unused) state so flipping back is cheap.
        """
        if not 0.0 <= affinity < 1.0:
            raise ReproError("sharing_affinity must be in [0, 1)")
        self.sharing_affinity = float(affinity)
        if self.sharing_affinity > 0.0 and self._fragments is None:
            n_shards = getattr(self, "n_shards", None)
            if n_shards is not None:
                self._fragments = [dict() for _ in range(n_shards)]
        elif self.sharing_affinity == 0.0:
            self._fragments = None

    def estimate(self, spec: QuerySpec) -> float:
        """Expected CPU-seconds of one run of ``spec``."""
        calibrated = self._work.get(spec.name)
        if calibrated is not None:
            return calibrated
        return spec.total_work_seconds

    def predicted_latency(
        self, shard: int, spec: QuerySpec, at: float = 0.0, weight: float = 1.0
    ) -> float:
        """The model's completion-time prediction for ``spec`` on ``shard``."""
        delay = 0.0
        # Sorted for determinism: dict order must never matter.
        for w, horizon in sorted(self._busy[shard].items()):
            remaining = horizon - at
            if remaining > 0.0:
                delay += remaining * min(1.0, w / weight)
        estimate = self.estimate(spec)
        if self._fragments is not None:
            # Sharing affinity: the shard already runs this leading
            # fragment, so this query's scan folds into it — most of
            # the candidate's own work would be shared, not repeated.
            from repro.sharing import spec_fragment_fingerprint

            horizon = self._fragments[shard].get(
                spec_fragment_fingerprint(spec)
            )
            if horizon is not None and horizon > at:
                estimate = estimate * (1.0 - self.sharing_affinity)
        return estimate + delay

    def choose(
        self,
        spec: QuerySpec,
        active: Sequence[int],
        at: float = 0.0,
        weight: float = 1.0,
    ) -> int:
        if not active:
            raise ReproError("no active shards to place on")
        best = active[0]
        best_predicted = self.predicted_latency(best, spec, at, weight)
        for shard in active[1:]:
            predicted = self.predicted_latency(shard, spec, at, weight)
            if predicted < best_predicted:  # strict: ties → lowest index
                best = shard
                best_predicted = predicted
        return best

    def on_submit(
        self,
        shard: int,
        spec: QuerySpec,
        at: float = 0.0,
        weight: float = 1.0,
    ) -> float:
        charge = self.estimate(spec)
        busy = self._busy[shard]
        busy[weight] = max(busy.get(weight, 0.0), at) + (
            charge / self.n_workers
        )
        if self._fragments is not None:
            from repro.sharing import spec_fragment_fingerprint

            fragments = self._fragments[shard]
            fp = spec_fragment_fingerprint(spec)
            fragments[fp] = max(
                fragments.get(fp, 0.0), at + charge / self.n_workers
            )
        return charge

    def on_complete(
        self, shard: int, record: LatencyRecord, charge: float
    ) -> None:
        if record.cancelled or record.failed:
            return  # partial executions would bias the estimate low
        observed = float(record.cpu_seconds)
        previous = self._work.get(record.name)
        if previous is None:
            self._work[record.name] = observed
        else:
            self._work[record.name] = (
                previous + self.alpha * (observed - previous)
            )

    def transfer(
        self,
        source: int,
        target: int,
        spec: QuerySpec,
        charge: float,
        at: float = 0.0,
        weight: float = 1.0,
    ) -> float:
        # The source keeps its (now pessimistic) horizon — it is being
        # drained and excluded from placement anyway, and time-based
        # backlog decays on its own; the target picks up the work.
        return self.on_submit(target, spec, at, weight)

    def epoch_reset(self) -> None:
        if self._busy is not None:
            for busy in self._busy:
                busy.clear()
        if self._fragments is not None:
            for fragments in self._fragments:
                fragments.clear()

    def snapshot(self) -> dict:
        snap = {
            "busy_until": [
                dict(sorted(busy.items())) for busy in self._busy or ()
            ],
            "calibrated_work": dict(sorted(self._work.items())),
        }
        if self._fragments is not None:
            snap["sharing_affinity"] = self.sharing_affinity
            snap["fragments_in_flight"] = [
                dict(sorted(fragments.items()))
                for fragments in self._fragments
            ]
        return snap


#: ``placement=`` string -> policy factory, the router's construction map.
PLACEMENT_POLICIES = {
    "round-robin": RoundRobinPlacement,
    "predictive": PredictivePlacement,
}


def make_placement_policy(
    policy: Union[str, PlacementPolicy],
) -> PlacementPolicy:
    """Build (or pass through) a placement policy."""
    if isinstance(policy, PlacementPolicy):
        return policy
    cls = PLACEMENT_POLICIES.get(policy)
    if cls is None:
        raise ReproError(
            f"unknown placement policy {policy!r}; choose from "
            f"{sorted(PLACEMENT_POLICIES)}"
        )
    return cls()
