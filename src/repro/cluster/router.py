"""The cluster layer: a router fronting N analytics shards.

:class:`ClusterRouter` owns a fleet of
:class:`~repro.server.AnalyticsServer` shards and presents the same
submit/drain/result surface one server does, plus the cluster-only
operations — placement, fan-out and shard draining:

* **Placement** — every :meth:`submit` picks a shard through a
  :class:`~repro.cluster.placement.PlacementPolicy`; the default
  :class:`~repro.cluster.placement.PredictivePlacement` routes to the
  shard with the smallest predicted completion time, calibrated online
  from the shards' own latency records.
* **Cluster tickets** — the router issues its own ticket namespace and
  maps each ticket to a live ``(shard, shard_ticket)``
  :class:`~repro.runtime.tickets.ShardAddress`.  Shard-level retries
  stay invisible: the address points at the *original* shard ticket and
  the shard resolves its own alias chain (PR 5's machinery), so a
  cluster ticket follows every attempt automatically.
* **Fan-out** — :meth:`fanout` submits one query to every active shard
  and returns a :class:`FanoutHandle` merging the per-shard result
  streams, in shard order, behind one cursor.
* **Drain/handoff** — :meth:`drain_shard` moves every unfinished query
  off a shard (cancel at the source, resubmit at a placement-chosen
  target, re-address the cluster ticket) and optionally decommissions
  it.  No ticket is ever lost: finished queries keep their records on
  the retired shard, moved ones complete elsewhere.

Tenant quotas are enforced *cluster-wide* here (before placement, so a
rejected query never perturbs the placement state), while per-shard
``max_pending``/``admission`` backpressure stays a shard concern.  On
the simulated backend with ``environment="model"`` (the default) a
router run is bit-identical across repeats and hash seeds — the
determinism the routing benchmarks and CI smoke are built on.
"""

from __future__ import annotations

from typing import Dict, Iterator, List, Optional, Sequence, Tuple, Union

from repro.core.specs import QuerySpec
from repro.engine.datagen import TpchDatabase, generate_tpch
from repro.errors import ReproError, TenantQuotaError
from repro.metrics.latency import LatencyRecord
from repro.runtime.admission import AdmissionPolicy, SlaClass
from repro.runtime.handle import QueryHandle
from repro.runtime.tickets import ShardAddress, TicketRegistry
from repro.server import AnalyticsServer
from repro.cluster.placement import PlacementPolicy, make_placement_policy
from repro.workloads.phased import sla_of, tenant_of


class ClusterHandle(int):
    """A cluster ticket that doubles as a result cursor.

    Mirrors :class:`~repro.runtime.handle.QueryHandle` (which backs it
    one hop down): the value is the router-assigned cluster ticket, and
    the cursor methods delegate to the shard handle the ticket currently
    resolves to — transparently following retries and handoffs.
    """

    _router = None

    @classmethod
    def attach(cls, ticket: int, router: "ClusterRouter") -> "ClusterHandle":
        handle = cls(ticket)
        handle._router = router
        return handle

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"ClusterHandle({int(self)})"

    def __str__(self) -> str:
        return str(int(self))

    def _require_router(self) -> "ClusterRouter":
        if self._router is None:
            raise ReproError(
                f"cluster handle {int(self)} is not attached to a router"
            )
        return self._router

    @property
    def address(self) -> ShardAddress:
        """Where the query currently lives: ``(shard, ticket)``."""
        return self._require_router().address_of(int(self))

    def _shard_handle(self) -> QueryHandle:
        return self._require_router().handle(int(self))

    def fetch(self, n: int = 65536):
        """Up to ``n`` result rows from the query's current attempt."""
        return self._shard_handle().fetch(n)

    def __iter__(self) -> Iterator[object]:
        return iter(self._shard_handle())

    def result(self):
        return self._require_router().result(int(self))

    def cancel(self) -> bool:
        return self._require_router().cancel(int(self))

    def progress(self) -> dict:
        return self._shard_handle().progress()


class FanoutHandle:
    """One cursor over a query fanned out to every shard.

    Per-shard result streams are merged in shard order: :meth:`fetch`
    and iteration exhaust shard 0's stream, then shard 1's, and so on —
    a deterministic merge that preserves each shard's internal order.
    For pipeline-breaker queries (aggregates, top-k) each shard
    contributes one whole final payload, so iteration yields exactly one
    batch per shard.
    """

    def __init__(
        self, router: "ClusterRouter", tickets: Sequence[ClusterHandle]
    ) -> None:
        self._router = router
        self.tickets: Tuple[ClusterHandle, ...] = tuple(tickets)
        self._cursor = 0

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"FanoutHandle({[int(t) for t in self.tickets]})"

    def fetch(self, n: int = 65536):
        """The next batch of up to ``n`` rows, ``None`` when exhausted."""
        while self._cursor < len(self.tickets):
            handle = self._router.handle(self.tickets[self._cursor])
            batch = handle.fetch(n)
            if batch is not None:
                return batch
            self._cursor += 1
        return None

    def __iter__(self) -> Iterator[object]:
        for ticket in self.tickets:
            yield from self._router.handle(ticket)

    def results(self) -> List[object]:
        """Per-shard assembled results, in shard order."""
        return [self._router.result(ticket) for ticket in self.tickets]

    def records(self) -> List[LatencyRecord]:
        """Per-shard latency records, in shard order."""
        return [self._router.record(ticket) for ticket in self.tickets]

    def cancel(self) -> int:
        """Cancel every per-shard query; returns how many were cancelled."""
        return sum(1 for t in self.tickets if self._router.cancel(t))


class ClusterRouter:
    """Route queries across a fleet of analytics shards.

    ``environment="model"`` (the default) gives bit-identical cluster
    runs on the simulated backend; ``environment="engine"`` generates
    one TPC-H database (or takes ``database=``) and shares it read-only
    across all shards, which may then use any backend.  Shard ``i`` runs
    with ``seed + i`` so shards are decorrelated but the fleet as a
    whole is a pure function of ``seed``.
    """

    def __init__(
        self,
        n_shards: int = 4,
        scale_factor: float = 1.0,
        scheduler: str = "tuning",
        n_workers: int = 4,
        t_max: float = 0.002,
        seed: int = 0,
        backend: str = "simulated",
        max_pending: Optional[int] = None,
        admission: Union[str, AdmissionPolicy] = "reject",
        retry_budget: int = 16,
        *,
        environment: str = "model",
        placement: Union[str, PlacementPolicy] = "predictive",
        tenant_quotas: Optional[Dict[str, int]] = None,
        default_tenant_quota: Optional[int] = None,
        sla_classes: Optional[dict] = None,
        database: Optional[TpchDatabase] = None,
        sharing: bool = False,
        sharing_cache_entries: int = 64,
        sharing_attach_buffer: int = 16,
    ) -> None:
        if n_shards < 1:
            raise ReproError("a cluster needs at least one shard")
        quotas = dict(tenant_quotas or {})
        for tenant, quota in quotas.items():
            if quota < 1:
                raise ReproError(f"tenant {tenant!r}: quota must be at least 1")
        if default_tenant_quota is not None and default_tenant_quota < 1:
            raise ReproError("default_tenant_quota must be at least 1")
        self.tenant_quotas = quotas
        self.default_tenant_quota = default_tenant_quota
        if environment == "engine" and database is None:
            # One database for the whole fleet: shards serve the same
            # data (scale-out for concurrency, not partitioning).
            database = generate_tpch(scale_factor, seed=seed)
        self.shards: List[AnalyticsServer] = [
            AnalyticsServer(
                scale_factor=scale_factor,
                scheduler=scheduler,
                n_workers=n_workers,
                t_max=t_max,
                seed=seed + index,
                database=database,
                backend=backend,
                max_pending=max_pending,
                admission=admission,
                retry_budget=retry_budget,
                environment=environment,
                sla_classes=sla_classes,
                sharing=sharing,
                sharing_cache_entries=sharing_cache_entries,
                sharing_attach_buffer=sharing_attach_buffer,
            )
            for index in range(n_shards)
        ]
        self._sharing = bool(sharing)
        if sharing and isinstance(placement, str) and placement == "predictive":
            # With sharing on, the default predictor also steers
            # same-fragment queries toward the shard already scanning
            # that fragment, so they fold instead of running twice.
            # Explicit policy instances are taken as configured.
            from repro.cluster.placement import PredictivePlacement

            placement = PredictivePlacement(sharing_affinity=0.5)
        self._placement = make_placement_policy(placement)
        self._placement.bind(n_shards, n_workers)
        #: Shards eligible for new placements (drained shards drop out).
        self._active: List[bool] = [True] * n_shards
        #: Shards whose server is still running (decommissioned drop out).
        self._alive: List[bool] = [True] * n_shards
        self._tickets = TicketRegistry()
        self._next_ticket = 0
        #: Cluster ticket -> submission bookkeeping for handoff/settle.
        self._entries: Dict[int, dict] = {}
        #: (query name, observed cpu-seconds) in settlement order — the
        #: training signal for router-level knob tuning.  Bounded so a
        #: long-lived router does not grow without limit.
        self._completion_log: List[Tuple[str, float]] = []

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    @property
    def n_shards(self) -> int:
        return len(self.shards)

    @property
    def placement(self) -> PlacementPolicy:
        """The placement policy (exposed for tests and monitoring)."""
        return self._placement

    @property
    def tickets(self) -> TicketRegistry:
        """Cluster ticket bookkeeping (addresses, tenants, SLA)."""
        return self._tickets

    @property
    def sharing(self) -> bool:
        """Whether the shards run with work sharing enabled."""
        return self._sharing

    @property
    def sharing_stats(self):
        """Cluster-wide work-sharing counters (summed over shards)."""
        from repro.sharing import SharingStats

        total = SharingStats()
        for shard in self.shards:
            total = total.merge(shard.sharing_stats)
        return total

    def active_shards(self) -> List[int]:
        """Indices of shards eligible for new placements, ascending."""
        return [i for i, active in enumerate(self._active) if active]

    @property
    def pending_count(self) -> int:
        return sum(
            shard.pending_count
            for shard, alive in zip(self.shards, self._alive)
            if alive
        )

    @property
    def completed_count(self) -> int:
        return sum(shard.completed_count for shard in self.shards)

    def tenant_pending(self, tenant: str) -> int:
        """Pending queries charged to ``tenant`` across the cluster."""
        return sum(
            shard.tenant_pending(tenant)
            for shard, alive in zip(self.shards, self._alive)
            if alive
        )

    @property
    def available_queries(self) -> Tuple[str, ...]:
        return self.shards[0].available_queries

    def query_spec(self, name: str) -> QuerySpec:
        """The spec :meth:`submit` would route for ``name``."""
        return self.shards[0].query_spec(name)

    def address_of(self, ticket: int) -> ShardAddress:
        """The ``(shard, shard_ticket)`` a cluster ticket resolves to."""
        address = self._tickets.address_of(ticket)
        if address is None:
            raise ReproError(f"unknown cluster ticket {int(ticket)}")
        return address

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------
    def start(self) -> None:
        for shard, alive in zip(self.shards, self._alive):
            if alive:
                shard.start()

    def shutdown(self) -> None:
        for shard, alive in zip(self.shards, self._alive):
            if alive:
                shard.shutdown()

    def drain(self) -> List[LatencyRecord]:
        """Run every shard to quiescence; new records in shard order.

        Like :meth:`AnalyticsServer.drain` the returned list contains
        the records of every *attempt*; use :meth:`record` on a cluster
        ticket for its final outcome.  Completions are fed back into the
        placement predictor (calibration) before returning.
        """
        records: List[LatencyRecord] = []
        for index, shard in enumerate(self.shards):
            if self._alive[index]:
                records.extend(shard.drain())
        self._settle()
        # Virtual time restarts at zero next epoch; time-based backlog
        # state in the placement model must restart with it.
        self._placement.epoch_reset()
        return records

    run = drain

    # ------------------------------------------------------------------
    # Submission and routing
    # ------------------------------------------------------------------
    def submit(
        self,
        name: str,
        at: Optional[float] = None,
        *,
        deadline: Optional[float] = None,
        retries: int = 0,
        backoff: float = 0.05,
        priority: int = 0,
        tenant: Optional[str] = None,
        sla: Optional[Union[str, SlaClass]] = None,
        shard: Optional[int] = None,
    ) -> ClusterHandle:
        """Route one query by name; returns its :class:`ClusterHandle`.

        All :meth:`AnalyticsServer.submit` keywords apply per shard;
        ``shard=`` pins the query to an explicit shard (fan-out and
        tests), otherwise the placement policy chooses.
        """
        return self.submit_spec(
            self.query_spec(name),
            at=at,
            deadline=deadline,
            retries=retries,
            backoff=backoff,
            priority=priority,
            tenant=tenant,
            sla=sla,
            shard=shard,
        )

    def submit_spec(
        self,
        spec: QuerySpec,
        at: Optional[float] = None,
        *,
        deadline: Optional[float] = None,
        retries: int = 0,
        backoff: float = 0.05,
        priority: int = 0,
        tenant: Optional[str] = None,
        sla: Optional[Union[str, SlaClass]] = None,
        shard: Optional[int] = None,
    ) -> ClusterHandle:
        """Route a pre-built :class:`QuerySpec` (model environment)."""
        self._check_tenant_quota(tenant)
        at_time = 0.0 if at is None else float(at)
        weight = self._weight_of(spec, sla)
        if shard is None:
            shard = self._placement.choose(
                spec, self.active_shards(), at_time, weight
            )
        elif not (0 <= shard < len(self.shards)) or not self._alive[shard]:
            raise ReproError(
                f"shard {shard} is not available; active shards: "
                f"{self.active_shards()}"
            )
        server = self.shards[shard]
        shard_handle = server.submit_spec(
            spec,
            at=at,
            deadline=deadline,
            retries=retries,
            backoff=backoff,
            priority=priority,
            tenant=tenant,
            sla=sla,
        )
        charge = self._placement.on_submit(shard, spec, at_time, weight)
        ticket = self._next_ticket
        self._next_ticket += 1
        sla_name = sla.name if isinstance(sla, SlaClass) else sla
        self._tickets.register(
            ticket,
            priority=priority,
            tenant=tenant,
            sla=sla_name,
            address=ShardAddress(shard, int(shard_handle)),
        )
        self._entries[ticket] = {
            "spec": spec,
            "at": at,
            "deadline": deadline,
            "retries": retries,
            "backoff": backoff,
            "priority": priority,
            "tenant": tenant,
            "sla": sla,
            "weight": weight,
            "charge": charge,
            "settled": False,
        }
        return ClusterHandle.attach(ticket, self)

    def _weight_of(
        self, spec: QuerySpec, sla: Optional[Union[str, SlaClass]]
    ) -> float:
        """The §3.2 scheduling weight the query will run with."""
        if spec.user_priority is not None:
            return float(spec.user_priority)
        if isinstance(sla, SlaClass):
            return sla.weight
        if sla is not None:
            sla_class = self.shards[0].sla_classes.get(sla)
            if sla_class is not None:
                return sla_class.weight
        return 1.0

    def submit_workload(
        self,
        workload: Sequence[Tuple[float, QuerySpec]],
        *,
        retries: int = 0,
        backoff: float = 0.05,
    ) -> List[ClusterHandle]:
        """Route a ``[(arrival, spec)]`` workload (e.g. a phased
        multi-tenant stream): each query's tenant and SLA class are read
        off its ``tenant:<name>`` / ``sla:<name>`` tags, so §3.2
        fairness workloads run against the cluster unchanged."""
        handles = []
        for arrival, spec in workload:
            handles.append(
                self.submit_spec(
                    spec,
                    at=arrival,
                    retries=retries,
                    backoff=backoff,
                    tenant=tenant_of(spec),
                    sla=sla_of(spec),
                )
            )
        return handles

    def fanout(
        self,
        name: str,
        at: Optional[float] = None,
        *,
        deadline: Optional[float] = None,
        priority: int = 0,
        tenant: Optional[str] = None,
        sla: Optional[Union[str, SlaClass]] = None,
    ) -> FanoutHandle:
        """Submit ``name`` to *every* active shard; merge the streams."""
        tickets = [
            self.submit(
                name,
                at=at,
                deadline=deadline,
                priority=priority,
                tenant=tenant,
                sla=sla,
                shard=shard,
            )
            for shard in self.active_shards()
        ]
        return FanoutHandle(self, tickets)

    def _check_tenant_quota(self, tenant: Optional[str]) -> None:
        if tenant is None:
            return
        quota = self.tenant_quotas.get(tenant, self.default_tenant_quota)
        if quota is None:
            return
        pending = self.tenant_pending(tenant)
        if pending >= quota:
            raise TenantQuotaError(
                f"tenant {tenant!r} is over cluster quota: {pending} "
                f"queries pending (quota {quota}); throttle this tenant "
                f"or drain()"
            )

    # ------------------------------------------------------------------
    # Shard draining / handoff
    # ------------------------------------------------------------------
    def drain_shard(self, shard: int, *, decommission: bool = True) -> int:
        """Move every unfinished query off ``shard``; returns the count.

        Each moved query is cancelled at the source (which also disarms
        its shard-level retries), resubmitted at a placement-chosen
        target with its original spec, arrival, deadline, retry policy,
        priority, tenant and SLA class, and its cluster ticket is
        re-addressed — callers holding the ticket never notice.  With
        ``decommission=True`` (default) the emptied shard is then
        drained and shut down; finished queries keep their records
        readable there.  With ``decommission=False`` the shard stays
        running but receives no new placements until
        :meth:`reactivate`.
        """
        if not (0 <= shard < len(self.shards)):
            raise ReproError(f"no such shard {shard}")
        if not self._alive[shard]:
            raise ReproError(f"shard {shard} is already decommissioned")
        self._active[shard] = False
        targets = self.active_shards()
        if not targets:
            self._active[shard] = True
            raise ReproError(
                "cannot drain the last active shard; add capacity first"
            )
        server = self.shards[shard]
        moved = 0
        for ticket in self._tickets:
            entry = self._entries[ticket]
            if entry["settled"]:
                continue
            address = self._tickets.address_of(ticket)
            if address is None or address.shard != shard:
                continue
            resolved = server.tickets.resolve(address.ticket)
            backend = server.backend
            if (
                resolved in backend.records
                or resolved in backend.failures
                or backend.cancelled(resolved)
            ):
                continue  # already finished here; settles normally
            at_time = 0.0 if entry["at"] is None else float(entry["at"])
            target = self._placement.choose(
                entry["spec"], targets, at_time, entry["weight"]
            )
            server.cancel(address.ticket)
            replacement = self.shards[target].submit_spec(
                entry["spec"],
                at=entry["at"],
                deadline=entry["deadline"],
                retries=entry["retries"],
                backoff=entry["backoff"],
                priority=entry["priority"],
                tenant=entry["tenant"],
                sla=entry["sla"],
            )
            entry["charge"] = self._placement.transfer(
                shard,
                target,
                entry["spec"],
                entry["charge"],
                at_time,
                entry["weight"],
            )
            self._tickets.readdress(
                ticket, ShardAddress(target, int(replacement))
            )
            moved += 1
        if decommission:
            server.drain()
            server.shutdown()
            self._alive[shard] = False
        return moved

    def reactivate(self, shard: int) -> None:
        """Resume placements onto a shard drained with
        ``decommission=False``."""
        if not (0 <= shard < len(self.shards)):
            raise ReproError(f"no such shard {shard}")
        if not self._alive[shard]:
            raise ReproError(
                f"shard {shard} was decommissioned and cannot come back"
            )
        self._active[shard] = True

    # ------------------------------------------------------------------
    # Results (all resolve the cluster ticket to its current address)
    # ------------------------------------------------------------------
    def _locate(self, ticket: int) -> Tuple[AnalyticsServer, int]:
        address = self.address_of(ticket)
        return self.shards[address.shard], address.ticket

    def poll(self, ticket: int) -> Optional[LatencyRecord]:
        server, shard_ticket = self._locate(ticket)
        return server.poll(shard_ticket)

    def wait(
        self, ticket: int, timeout: Optional[float] = None
    ) -> LatencyRecord:
        server, shard_ticket = self._locate(ticket)
        return server.wait(shard_ticket, timeout=timeout)

    def cancel(self, ticket: int) -> bool:
        server, shard_ticket = self._locate(ticket)
        return server.cancel(shard_ticket)

    def handle(self, ticket: int) -> QueryHandle:
        """The shard-level handle of the ticket's current attempt."""
        server, shard_ticket = self._locate(ticket)
        return server.handle(shard_ticket)

    def failed(self, ticket: int) -> bool:
        server, shard_ticket = self._locate(ticket)
        return server.failed(shard_ticket)

    def failure(self, ticket: int) -> Optional[BaseException]:
        server, shard_ticket = self._locate(ticket)
        return server.failure(shard_ticket)

    def result(self, ticket: int):
        server, shard_ticket = self._locate(ticket)
        return server.result(shard_ticket)

    def latency(self, ticket: int) -> float:
        server, shard_ticket = self._locate(ticket)
        return server.latency(shard_ticket)

    def record(self, ticket: int) -> LatencyRecord:
        server, shard_ticket = self._locate(ticket)
        return server.record(shard_ticket)

    # ------------------------------------------------------------------
    # Settlement: feed completions back into the placement predictor
    # ------------------------------------------------------------------
    def _settle(self) -> None:
        for ticket in self._tickets:
            entry = self._entries.get(ticket)
            if entry is None or entry["settled"]:
                continue
            address = self._tickets.address_of(ticket)
            if address is None:
                continue
            record = self.shards[address.shard].poll(address.ticket)
            if record is None:
                continue
            entry["settled"] = True
            self._placement.on_complete(
                address.shard, record, entry["charge"]
            )
            if not record.failed and not record.cancelled:
                self._completion_log.append(
                    (record.name, float(record.cpu_seconds))
                )
        if len(self._completion_log) > self.COMPLETION_LOG_LIMIT:
            del self._completion_log[: -self.COMPLETION_LOG_LIMIT]

    # ------------------------------------------------------------------
    # Self-tuning: per-shard knobs plus router-level placement knobs
    # ------------------------------------------------------------------

    #: Completion-log entries kept for router-level tuning.
    COMPLETION_LOG_LIMIT = 4096
    #: Completions needed before the placement coefficients are retuned.
    MIN_TUNING_COMPLETIONS = 8

    def knob_space(self):
        """Router-level cluster knobs, bound to the placement policy.

        Per-shard knobs are *not* merged in here — each shard owns its
        own space (:meth:`AnalyticsServer.knob_space`) and :meth:`tune`
        drives them shard by shard; this space covers what only the
        router sees: the predictive placement's calibration EMA step and
        its work-sharing affinity discount.  Empty for policies without
        those coefficients (round-robin has nothing to tune).
        """
        from repro.tuning.knobs import KnobSpace, stock_knob

        space = KnobSpace()
        placement = self._placement
        if getattr(placement, "set_alpha", None) is not None:
            space.register(
                stock_knob(
                    "cluster.placement_alpha",
                    read=lambda: placement.alpha,
                    apply=placement.set_alpha,
                    default=placement.alpha,
                )
            )
        if getattr(placement, "set_sharing_affinity", None) is not None:
            space.register(
                stock_knob(
                    "cluster.sharing_affinity",
                    read=lambda: placement.sharing_affinity,
                    apply=placement.set_sharing_affinity,
                    default=placement.sharing_affinity,
                )
            )
        return space

    def tune_placement(self) -> dict:
        """Fit the placement EMA step to the observed completion log.

        Replays the log through the work-estimate EMA for each candidate
        ``alpha`` on the knob's grid and keeps the one minimizing the
        squared one-step-ahead prediction error of per-query
        cpu-seconds — the quantity :meth:`PredictivePlacement.estimate`
        actually predicts.  Deterministic: the log is in settlement
        order and ties resolve to the smallest candidate.  Returns the
        applied values (empty when the policy is not predictive or the
        log is too short).
        """
        placement = self._placement
        set_alpha = getattr(placement, "set_alpha", None)
        log = self._completion_log
        if set_alpha is None or len(log) < self.MIN_TUNING_COMPLETIONS:
            return {}
        best_alpha = placement.alpha
        best_error = None
        for step in range(1, 21):
            alpha = step * 0.05
            error = 0.0
            estimates: Dict[str, float] = {}
            for name, observed in log:
                previous = estimates.get(name)
                if previous is None:
                    estimates[name] = observed
                    continue
                error += (previous - observed) ** 2
                estimates[name] = previous + alpha * (observed - previous)
            if best_error is None or error < best_error:
                best_error = error
                best_alpha = alpha
        set_alpha(best_alpha)
        return {
            "cluster.placement_alpha": best_alpha,
            "prediction_error": best_error,
        }

    def tune(self, budget_seconds: Optional[float] = 0.05, *, history=None):
        """One fleet-wide tuning sweep: every shard, then the router.

        Each live shard runs a cost-bounded cycle over its own knob
        space on its observed workload (pass one
        :class:`~repro.tuning.history.TuningHistory` and the surrogate
        learns across the whole fleet); afterwards the router-level
        placement coefficients are refit from the completion log.
        Returns ``{"shards": [KnobSearchResult per live shard, in shard
        order], "router": applied router-level values}``.
        """
        shard_results = []
        for index, shard in enumerate(self.shards):
            if not self._alive[index]:
                continue
            shard_results.append(
                shard.tune(budget_seconds, history=history)
            )
        return {"shards": shard_results, "router": self.tune_placement()}
