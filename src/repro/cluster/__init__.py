"""The cluster layer: a router fronting a fleet of analytics shards.

PR 7 splits the server into shard + router layers.  A *shard* is one
:class:`~repro.server.AnalyticsServer` (engine + scheduler + backend);
the :class:`ClusterRouter` owns N of them and adds what only a cluster
can provide:

* predictive placement (:mod:`repro.cluster.placement`) — route each
  query to the shard with the smallest predicted completion time,
  calibrated online from observed latency records;
* cluster-wide tenant quotas with the typed
  :class:`~repro.errors.TenantQuotaError`;
* cross-shard fan-out queries with streams merged into one cursor;
* shard draining/handoff for rolling decommissions with zero lost
  tickets.

See ``docs/architecture.md`` ("Cluster topology") for the full design
and ``examples/cluster_demo.py`` for a runnable tour.
"""

from repro.cluster.placement import (
    PLACEMENT_POLICIES,
    PlacementPolicy,
    PredictivePlacement,
    RoundRobinPlacement,
    make_placement_policy,
)
from repro.cluster.router import ClusterHandle, ClusterRouter, FanoutHandle

__all__ = [
    "PLACEMENT_POLICIES",
    "ClusterHandle",
    "ClusterRouter",
    "FanoutHandle",
    "PlacementPolicy",
    "PredictivePlacement",
    "RoundRobinPlacement",
    "make_placement_policy",
]
