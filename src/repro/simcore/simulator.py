"""The discrete-event simulator driving scheduler + workload.

The simulator owns the virtual clock and the event heap and mediates
between three parties:

* the **workload** — a list of ``(arrival_time, QuerySpec)`` pairs turned
  into arrival events that call :meth:`SchedulerBase.admit`;
* the **scheduler** — asked for a decision whenever a worker becomes
  ready; a returned :class:`TaskDecision` keeps the worker busy for its
  (virtual) duration, ``None`` parks the worker until the scheduler wakes
  it;
* the **execution environment** — a cost model translating "run this
  morsel" into elapsed virtual seconds, including multiplicative
  log-normal noise and a contention factor for workers sharing a
  pipeline.

Determinism: all randomness flows through named
:class:`~repro.simcore.rng.RngFactory` streams and event ties break by
insertion order, so a (scheduler, workload, seed) triple always yields
the identical trace.

Performance: the event loop is the hottest code in the repository — every
scheduling decision of every figure flows through it.  Instead of
allocating an :class:`~repro.simcore.events.Event` object plus a closure
per event, the loop keeps a raw heap of ``(time, seq, kind, worker_id,
payload)`` tuples and dispatches on the integer ``kind`` inline.  Tuple
comparison happens in C, there is no per-event allocation beyond the
tuple itself, and the three handlers are inlined into the loop body.
Event ordering — ``(time, insertion sequence)`` — is identical to the
previous object-based queue, so traces are bit-for-bit unchanged.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from itertools import count
from heapq import heapify, heappop, heappush
from typing import Dict, List, Optional, Sequence, TYPE_CHECKING, Tuple

import numpy as np

from repro.errors import SimulationError
from repro.metrics.latency import LatencyCollector
from repro.simcore.clock import SimClock
from repro.simcore.rng import RngFactory
from repro.runtime.trace import TraceRecorder

if TYPE_CHECKING:  # pragma: no cover - avoid a core <-> simcore cycle
    from repro.core.scheduler_base import SchedulerBase
    from repro.core.specs import QuerySpec
    from repro.core.task import TaskSet

#: Heap-entry kinds, dispatched on in :meth:`Simulator.run`.
_EV_ARRIVAL = 0
_EV_READY = 1
_EV_DONE = 2

#: Size of the pre-drawn execution-noise buffer (one numpy draw per
#: ``_NOISE_BLOCK`` morsels instead of one per morsel).
_NOISE_BLOCK = 4096


class SimulationEnvironment:
    """Cost-model implementation of the ExecutionEnvironment protocol.

    ``run_morsel`` charges ``tuples / rate`` seconds, scaled by

    * a log-normal noise factor with unit mean (``noise_sigma``), and
    * a contention factor ``1 + gamma * (pinned - 1)`` capturing the
      imperfect pipeline scalability of §2.3.
    """

    __slots__ = (
        "rng_factory",
        "noise_sigma",
        "cache_pressure",
        "cache_pressure_cap",
        "active_count_fn",
        "_noise_rng",
        "_noise_buffer",
        "_noise_pos",
    )

    def __init__(
        self,
        rng_factory: RngFactory,
        noise_sigma: float = 0.05,
        cache_pressure: float = 0.0,
    ) -> None:
        self.rng_factory = rng_factory
        self.noise_sigma = float(noise_sigma)
        #: Optional per-extra-active-query throughput penalty (off by
        #: default).  §5.2 attributes part of the tuning scheduler's
        #: benefit for long queries to "fewer active queries at any
        #: given time, which reduces scheduling overhead and cache
        #: pressure".  The knob lets users explore that engine-level
        #: effect; EXPERIMENTS.md discusses why a simple global penalty
        #: does not reproduce it.  Active-query counts are supplied by
        #: the scheduler through ``active_count_fn``.
        self.cache_pressure = float(cache_pressure)
        #: The pressure factor saturates: cache pollution is bounded by
        #: the cache itself, so beyond ~2x the worker count additional
        #: active queries do not slow execution further.  The cap also
        #:  keeps the feedback loop (more actives -> slower -> more
        #: actives) from destabilising runs below full load.
        self.cache_pressure_cap = 40
        self.active_count_fn = None
        self._noise_rng = rng_factory.stream("execution-noise")
        # Pre-drawn noise buffer: one numpy call per block of morsels
        # instead of one per morsel keeps large simulations fast.
        self._noise_buffer: Optional[np.ndarray] = None
        self._noise_pos = 0

    # ------------------------------------------------------------------
    # Noise stream
    # ------------------------------------------------------------------
    def _refill_noise(self) -> None:
        """Draw the next noise block, keeping any unconsumed values.

        The underlying RNG stream always advances in fixed-size blocks,
        so the sequence of noise values is independent of *how* callers
        consume the buffer (one at a time or in batched look-aheads).
        """
        mu = -0.5 * self.noise_sigma * self.noise_sigma
        block = self._noise_rng.lognormal(
            mean=mu, sigma=self.noise_sigma, size=_NOISE_BLOCK
        )
        if self._noise_buffer is None or self._noise_pos >= len(self._noise_buffer):
            self._noise_buffer = block
        else:
            self._noise_buffer = np.concatenate(
                [self._noise_buffer[self._noise_pos :], block]
            )
        self._noise_pos = 0

    def next_noise(self) -> float:
        """Draw the next per-morsel noise factor from the buffered stream."""
        if self.noise_sigma <= 0.0:
            return 1.0
        buffer = self._noise_buffer
        if buffer is None or self._noise_pos >= len(buffer):
            self._refill_noise()
            buffer = self._noise_buffer
        value = float(buffer[self._noise_pos])
        self._noise_pos += 1
        return value

    #: Backwards-compatible alias for the pre-batching private name.
    _next_noise = next_noise

    def peek_noise(self, count: int) -> Optional[np.ndarray]:
        """The next ``count`` noise factors *without* consuming them.

        Returns ``None`` when noise is disabled (factor 1.0).  Used by the
        batched morsel executor to decide how many morsels fit a task
        budget before committing to the RNG draws; combined with
        :meth:`consume_noise` this reproduces the exact per-morsel stream
        of sequential :meth:`_next_noise` calls.
        """
        if self.noise_sigma <= 0.0:
            return None
        while (
            self._noise_buffer is None
            or len(self._noise_buffer) - self._noise_pos < count
        ):
            self._refill_noise()
        return self._noise_buffer[self._noise_pos : self._noise_pos + count]

    def consume_noise(self, count: int) -> None:
        """Commit ``count`` previously peeked noise factors."""
        if self.noise_sigma <= 0.0:
            return
        self._noise_pos += count

    # ------------------------------------------------------------------
    # Cost model
    # ------------------------------------------------------------------
    def morsel_cost_factors(self, task_set: "TaskSet") -> Tuple[float, float, float]:
        """``(tuples_per_second, contention, pressure)`` for one task.

        All three factors are constant while a single task executes (the
        simulation is sequential, so no pin/unpin or admission can
        interleave), which lets the morsel executor cost a whole batch of
        morsels without re-deriving them per morsel.
        """
        profile = task_set.profile
        contention = 1.0 + profile.parallel_efficiency * max(
            0, task_set.pinned_workers - 1
        )
        pressure = 1.0
        if self.cache_pressure > 0.0 and self.active_count_fn is not None:
            active = min(self.active_count_fn(), self.cache_pressure_cap)
            if active > 1:
                pressure = 1.0 + self.cache_pressure * (active - 1)
        return profile.tuples_per_second, contention, pressure

    def run_morsel(self, task_set: "TaskSet", tuples: int) -> float:
        """Simulated execution time of ``tuples`` tuples of the pipeline."""
        rate, contention, pressure = self.morsel_cost_factors(task_set)
        return tuples / rate * contention * pressure * self.next_noise()

    def rng(self, name: str) -> np.random.Generator:
        """Named deterministic RNG stream (used e.g. by lottery picks)."""
        return self.rng_factory.stream(name)


@dataclass
class SimulationResult:
    """Everything a run produces: latencies, counters, overhead, trace."""

    records: LatencyCollector
    end_time: float
    admitted: int
    completed: int
    tasks_executed: int
    overhead_percent: Dict[str, float]
    total_overhead_percent: float
    trace: TraceRecorder
    worker_busy_seconds: List[float] = field(default_factory=list)
    #: Number of discrete events processed by the run (for perf reports).
    events_processed: int = 0

    @property
    def queries_per_second(self) -> float:
        """Completed-query throughput over the run."""
        return self.records.queries_per_second(self.end_time)

    def steady_state_records(self, warmup: float) -> LatencyCollector:
        """Records of queries that *arrived* after the warmup period.

        Standard sustained-load methodology: the first seconds of a run
        start from an empty system and bias latencies downward; dropping
        arrivals before ``warmup`` measures steady-state behaviour.
        """
        out = LatencyCollector()
        for record in self.records.records:
            if record.arrival_time >= warmup:
                out.add(record)
        return out

    def utilisation(self) -> float:
        """Mean worker utilisation over the run."""
        if self.end_time <= 0.0 or not self.worker_busy_seconds:
            return 0.0
        return sum(self.worker_busy_seconds) / (
            self.end_time * len(self.worker_busy_seconds)
        )


class Simulator:
    """Runs one scheduler against one workload in virtual time."""

    def __init__(
        self,
        scheduler: "SchedulerBase",
        workload: Sequence[Tuple[float, "QuerySpec"]],
        seed: int = 0,
        noise_sigma: float = 0.05,
        max_time: Optional[float] = None,
        trace: Optional[TraceRecorder] = None,
        environment: Optional[SimulationEnvironment] = None,
    ) -> None:
        self.scheduler = scheduler
        self.workload = sorted(workload, key=lambda item: item[0])
        self.max_time = max_time
        self.clock = SimClock()
        self.rng_factory = RngFactory(seed)
        self.environment = environment or SimulationEnvironment(
            self.rng_factory, noise_sigma=noise_sigma
        )
        self.trace = trace or TraceRecorder(enabled=False)
        #: The live event heap of (time, seq, kind, worker_id, payload).
        self._heap: List[tuple] = []
        #: Monotone insertion sequence shared by run() and _wake(); a C
        #: iterator is cheaper than a Python attribute increment.
        self._seq = count()
        self._events_processed = 0
        self._pending_worker_event = [False] * scheduler.n_workers
        self._busy_seconds = [0.0] * scheduler.n_workers
        scheduler.attach(self.environment, wake_fn=self._wake, trace=self.trace)
        # Wire the default active-query counter only into environments
        # that expose the knob (attribute present) and left it unset.
        if getattr(self.environment, "active_count_fn", False) is None:
            self.environment.active_count_fn = scheduler.active_query_count

    # ------------------------------------------------------------------
    # Scheduler callback
    # ------------------------------------------------------------------
    def _wake(self, worker_id: int) -> None:
        """Scheduler callback: re-run a parked worker's decision loop."""
        if not self._pending_worker_event[worker_id]:
            self._pending_worker_event[worker_id] = True
            heappush(
                self._heap,
                (self.clock._now, next(self._seq), _EV_READY, worker_id, None),
            )

    # ------------------------------------------------------------------
    # Main loop
    # ------------------------------------------------------------------
    def run(self) -> SimulationResult:
        """Process events until the workload drains (or ``max_time``)."""
        heap = self._heap
        heap.clear()
        self._seq = seq = count()
        for arrival_time, query in self.workload:
            heap.append((float(arrival_time), next(seq), _EV_ARRIVAL, -1, query))
        pending = self._pending_worker_event
        # Kick every worker once at time zero.
        for worker_id in range(self.scheduler.n_workers):
            pending[worker_id] = True
            heap.append((0.0, next(seq), _EV_READY, worker_id, None))
        # Building the heap in one pass is O(n); pop order depends only on
        # the (time, seq) total order, not on the insertion method.
        heapify(heap)

        scheduler = self.scheduler
        clock = self.clock
        max_time = self.max_time
        time_limit = math.inf if max_time is None else max_time
        decide = scheduler.worker_decide
        finish = scheduler.worker_finish
        make_group = scheduler.make_group
        admit = scheduler.admit
        busy = self._busy_seconds
        inf = math.inf
        ev_ready = _EV_READY
        ev_done = _EV_DONE
        end_time = 0.0
        truncated = 0
        while heap:
            time, _tie, kind, worker_id, payload = heappop(heap)
            if time > time_limit:
                end_time = max_time
                truncated = 1
                break
            # Inlined SimClock.advance_to (hot path).
            if time < clock._now:
                raise SimulationError(
                    f"clock moving backwards: {time:.9f} < {clock._now:.9f}"
                )
            clock._now = time
            if kind == ev_ready:
                pending[worker_id] = False
                decision = decide(worker_id, time)
                if decision is None:
                    continue  # parked; the scheduler will wake it
                duration = decision.duration
                # Chained comparison rejects negatives, inf and NaN in one
                # expression (NaN fails every comparison).
                if not 0.0 <= duration < inf:
                    raise SimulationError(
                        f"worker {worker_id}: invalid task duration {duration}"
                    )
                busy[worker_id] += duration
                pending[worker_id] = True
                heappush(
                    heap, (time + duration, next(seq), ev_done, worker_id, decision)
                )
            elif kind == ev_done:
                # A DONE handler always queues the follow-up READY, so the
                # pending flag stays True throughout (and worker_finish can
                # never wake this non-idle worker) — no flag writes needed.
                extra = finish(worker_id, time, payload)
                if not 0.0 <= extra < inf:
                    raise SimulationError(
                        f"worker {worker_id}: invalid extra time {extra}"
                    )
                busy[worker_id] += extra
                heappush(heap, (time + extra, next(seq), ev_ready, worker_id, None))
            else:  # _EV_ARRIVAL
                admit(make_group(payload, time), time)
        if not truncated:
            # The clock stopped on the last processed event, so no
            # per-event end_time store is needed in the loop.
            end_time = clock._now
        # Every pushed event was either popped (and, unless it was the one
        # that crossed max_time, processed) or is still in the heap, so the
        # counts reconcile without a per-event increment in the loop.
        processed = next(seq) - len(heap) - truncated
        self._events_processed = processed
        collector = LatencyCollector()
        for record in scheduler.completed:
            collector.add(record)
        return SimulationResult(
            records=collector,
            end_time=end_time,
            admitted=scheduler.admitted_count,
            completed=scheduler.completed_count,
            tasks_executed=scheduler.tasks_executed,
            overhead_percent=scheduler.overhead.breakdown_percent(),
            total_overhead_percent=100.0
            * scheduler.overhead.total_overhead_fraction(),
            trace=self.trace,
            worker_busy_seconds=list(busy),
            events_processed=processed,
        )
