"""The discrete-event simulator driving scheduler + workload.

The simulator owns the virtual clock and the event queue and mediates
between three parties:

* the **workload** — a list of ``(arrival_time, QuerySpec)`` pairs turned
  into arrival events that call :meth:`SchedulerBase.admit`;
* the **scheduler** — asked for a decision whenever a worker becomes
  ready; a returned :class:`TaskDecision` keeps the worker busy for its
  (virtual) duration, ``None`` parks the worker until the scheduler wakes
  it;
* the **execution environment** — a cost model translating "run this
  morsel" into elapsed virtual seconds, including multiplicative
  log-normal noise and a contention factor for workers sharing a
  pipeline.

Determinism: all randomness flows through named
:class:`~repro.simcore.rng.RngFactory` streams and event ties break by
insertion order, so a (scheduler, workload, seed) triple always yields
the identical trace.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, TYPE_CHECKING, Tuple

import numpy as np

from repro.errors import SimulationError
from repro.metrics.latency import LatencyCollector
from repro.simcore.clock import SimClock
from repro.simcore.events import EventQueue
from repro.simcore.rng import RngFactory
from repro.simcore.trace import TraceRecorder

if TYPE_CHECKING:  # pragma: no cover - avoid a core <-> simcore cycle
    from repro.core.scheduler_base import SchedulerBase, TaskDecision
    from repro.core.specs import QuerySpec
    from repro.core.task import TaskSet


class SimulationEnvironment:
    """Cost-model implementation of the ExecutionEnvironment protocol.

    ``run_morsel`` charges ``tuples / rate`` seconds, scaled by

    * a log-normal noise factor with unit mean (``noise_sigma``), and
    * a contention factor ``1 + gamma * (pinned - 1)`` capturing the
      imperfect pipeline scalability of §2.3.
    """

    def __init__(
        self,
        rng_factory: RngFactory,
        noise_sigma: float = 0.05,
        cache_pressure: float = 0.0,
    ) -> None:
        self.rng_factory = rng_factory
        self.noise_sigma = float(noise_sigma)
        #: Optional per-extra-active-query throughput penalty (off by
        #: default).  §5.2 attributes part of the tuning scheduler's
        #: benefit for long queries to "fewer active queries at any
        #: given time, which reduces scheduling overhead and cache
        #: pressure".  The knob lets users explore that engine-level
        #: effect; EXPERIMENTS.md discusses why a simple global penalty
        #: does not reproduce it.  Active-query counts are supplied by
        #: the scheduler through ``active_count_fn``.
        self.cache_pressure = float(cache_pressure)
        #: The pressure factor saturates: cache pollution is bounded by
        #: the cache itself, so beyond ~2x the worker count additional
        #: active queries do not slow execution further.  The cap also
        #:  keeps the feedback loop (more actives -> slower -> more
        #: actives) from destabilising runs below full load.
        self.cache_pressure_cap = 40
        self.active_count_fn = None
        self._noise_rng = rng_factory.stream("execution-noise")
        # Pre-drawn noise buffer: one numpy call per 4096 morsels instead
        # of one per morsel keeps large simulations fast.
        self._noise_buffer: Optional[np.ndarray] = None
        self._noise_pos = 0

    def _next_noise(self) -> float:
        if self.noise_sigma <= 0.0:
            return 1.0
        if self._noise_buffer is None or self._noise_pos >= len(self._noise_buffer):
            mu = -0.5 * self.noise_sigma * self.noise_sigma
            self._noise_buffer = self._noise_rng.lognormal(
                mean=mu, sigma=self.noise_sigma, size=4096
            )
            self._noise_pos = 0
        value = float(self._noise_buffer[self._noise_pos])
        self._noise_pos += 1
        return value

    def run_morsel(self, task_set: "TaskSet", tuples: int) -> float:
        """Simulated execution time of ``tuples`` tuples of the pipeline."""
        profile = task_set.profile
        base = tuples / profile.tuples_per_second
        contention = 1.0 + profile.parallel_efficiency * max(
            0, task_set.pinned_workers - 1
        )
        pressure = 1.0
        if self.cache_pressure > 0.0 and self.active_count_fn is not None:
            active = min(self.active_count_fn(), self.cache_pressure_cap)
            if active > 1:
                pressure = 1.0 + self.cache_pressure * (active - 1)
        return base * contention * pressure * self._next_noise()

    def rng(self, name: str) -> np.random.Generator:
        """Named deterministic RNG stream (used e.g. by lottery picks)."""
        return self.rng_factory.stream(name)


@dataclass
class SimulationResult:
    """Everything a run produces: latencies, counters, overhead, trace."""

    records: LatencyCollector
    end_time: float
    admitted: int
    completed: int
    tasks_executed: int
    overhead_percent: Dict[str, float]
    total_overhead_percent: float
    trace: TraceRecorder
    worker_busy_seconds: List[float] = field(default_factory=list)

    @property
    def queries_per_second(self) -> float:
        """Completed-query throughput over the run."""
        return self.records.queries_per_second(self.end_time)

    def steady_state_records(self, warmup: float) -> LatencyCollector:
        """Records of queries that *arrived* after the warmup period.

        Standard sustained-load methodology: the first seconds of a run
        start from an empty system and bias latencies downward; dropping
        arrivals before ``warmup`` measures steady-state behaviour.
        """
        out = LatencyCollector()
        for record in self.records.records:
            if record.arrival_time >= warmup:
                out.add(record)
        return out

    def utilisation(self) -> float:
        """Mean worker utilisation over the run."""
        if self.end_time <= 0.0 or not self.worker_busy_seconds:
            return 0.0
        return sum(self.worker_busy_seconds) / (
            self.end_time * len(self.worker_busy_seconds)
        )


class Simulator:
    """Runs one scheduler against one workload in virtual time."""

    def __init__(
        self,
        scheduler: "SchedulerBase",
        workload: Sequence[Tuple[float, "QuerySpec"]],
        seed: int = 0,
        noise_sigma: float = 0.05,
        max_time: Optional[float] = None,
        trace: Optional[TraceRecorder] = None,
        environment: Optional[SimulationEnvironment] = None,
    ) -> None:
        self.scheduler = scheduler
        self.workload = sorted(workload, key=lambda item: item[0])
        self.max_time = max_time
        self.clock = SimClock()
        self.events = EventQueue()
        self.rng_factory = RngFactory(seed)
        self.environment = environment or SimulationEnvironment(
            self.rng_factory, noise_sigma=noise_sigma
        )
        self.trace = trace or TraceRecorder(enabled=False)
        self._pending_worker_event = [False] * scheduler.n_workers
        self._busy_seconds = [0.0] * scheduler.n_workers
        scheduler.attach(self.environment, wake_fn=self._wake, trace=self.trace)
        if getattr(self.environment, "active_count_fn", None) is None and hasattr(
            self.environment, "active_count_fn"
        ):
            self.environment.active_count_fn = scheduler.active_query_count

    # ------------------------------------------------------------------
    # Event handlers
    # ------------------------------------------------------------------
    def _wake(self, worker_id: int) -> None:
        """Scheduler callback: re-run a parked worker's decision loop."""
        if not self._pending_worker_event[worker_id]:
            self._pending_worker_event[worker_id] = True
            self.events.push(
                self.clock.now, lambda now, w=worker_id: self._worker_ready(w, now)
            )

    def _worker_ready(self, worker_id: int, now: float) -> None:
        self._pending_worker_event[worker_id] = False
        decision = self.scheduler.worker_decide(worker_id, now)
        if decision is None:
            return  # parked; the scheduler marked it idle and will wake it
        if decision.duration < 0.0 or not math.isfinite(decision.duration):
            raise SimulationError(
                f"worker {worker_id}: invalid task duration {decision.duration}"
            )
        self._busy_seconds[worker_id] += decision.duration
        self._pending_worker_event[worker_id] = True
        self.events.push(
            now + decision.duration,
            lambda t, w=worker_id, d=decision: self._worker_done(w, t, d),
        )

    def _worker_done(self, worker_id: int, now: float, decision: "TaskDecision") -> None:
        self._pending_worker_event[worker_id] = False
        extra = self.scheduler.worker_finish(worker_id, now, decision)
        if extra < 0.0 or not math.isfinite(extra):
            raise SimulationError(f"worker {worker_id}: invalid extra time {extra}")
        self._busy_seconds[worker_id] += extra
        self._pending_worker_event[worker_id] = True
        self.events.push(
            now + extra, lambda t, w=worker_id: self._worker_ready(w, t)
        )

    def _arrival(self, query: "QuerySpec", now: float) -> None:
        group = self.scheduler.make_group(query, now)
        self.scheduler.admit(group, now)

    # ------------------------------------------------------------------
    # Main loop
    # ------------------------------------------------------------------
    def run(self) -> SimulationResult:
        """Process events until the workload drains (or ``max_time``)."""
        for arrival_time, query in self.workload:
            self.events.push(
                arrival_time, lambda now, q=query: self._arrival(q, now)
            )
        # Kick every worker once at time zero.
        for worker_id in range(self.scheduler.n_workers):
            self._pending_worker_event[worker_id] = True
            self.events.push(
                0.0, lambda now, w=worker_id: self._worker_ready(w, now)
            )
        end_time = 0.0
        while True:
            event = self.events.pop()
            if event is None:
                break
            if self.max_time is not None and event.time > self.max_time:
                end_time = self.max_time
                break
            self.clock.advance_to(event.time)
            end_time = event.time
            event.action(event.time)
        collector = LatencyCollector()
        for record in self.scheduler.completed:
            collector.add(record)
        return SimulationResult(
            records=collector,
            end_time=end_time,
            admitted=self.scheduler.admitted_count,
            completed=self.scheduler.completed_count,
            tasks_executed=self.scheduler.tasks_executed,
            overhead_percent=self.scheduler.overhead.breakdown_percent(),
            total_overhead_percent=100.0
            * self.scheduler.overhead.total_overhead_fraction(),
            trace=self.trace,
            worker_busy_seconds=list(self._busy_seconds),
        )
