"""Deterministic, named random-number streams.

Experiments must be reproducible: the same seed has to produce the same
workload, the same execution noise and therefore the same latencies.  A
single shared generator would make streams interfere (adding one more
noise draw would shift all subsequent arrival times).  We therefore derive
an independent generator per *named stream* from a root seed, using
numpy's ``SeedSequence`` spawning so streams are statistically independent.
"""

from __future__ import annotations

import zlib
from typing import Dict

import numpy as np


class RngFactory:
    """Creates independent deterministic RNG streams from a root seed.

    Streams are identified by name; requesting the same name twice returns
    the *same* generator instance so that sequential draws continue the
    stream instead of restarting it.

    >>> factory = RngFactory(seed=7)
    >>> a = factory.stream("arrivals")
    >>> b = factory.stream("noise")
    >>> a is factory.stream("arrivals")
    True
    """

    def __init__(self, seed: int) -> None:
        self._seed = int(seed)
        self._streams: Dict[str, np.random.Generator] = {}

    @property
    def seed(self) -> int:
        """The root seed this factory was created with."""
        return self._seed

    def stream(self, name: str) -> np.random.Generator:
        """Return the generator for ``name``, creating it on first use."""
        generator = self._streams.get(name)
        if generator is None:
            # Mix the stream name into the seed deterministically.  crc32 is
            # stable across Python versions (unlike hash()).
            name_key = zlib.crc32(name.encode("utf-8"))
            sequence = np.random.SeedSequence([self._seed, name_key])
            generator = np.random.Generator(np.random.PCG64(sequence))
            self._streams[name] = generator
        return generator

    def fork(self, salt: int) -> "RngFactory":
        """Create an independent factory (e.g. per repetition of a sweep)."""
        return RngFactory(self._seed * 1_000_003 + int(salt) + 1)
